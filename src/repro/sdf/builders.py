"""Validated constructors for common SDF graph families.

Every benchmark in the repo used to funnel through the MJPEG decoder and
the two Fig. 6 graphs; these helpers are the structural vocabulary the
synthetic scenario generator (:mod:`repro.scenarios`) composes into
arbitrary workloads: linear chains, split/join fans, fork-join diamonds
and token-carrying rings.

All constructors share two guarantees:

* **consistency by construction** -- rates are parameterized so the
  balance equations always have a solution (branch multipliers rather
  than free production/consumption pairs where a cycle would otherwise
  over-constrain the graph);
* **validity post-conditions** -- each builder finishes with
  :func:`check_well_formed`, which asserts the graph is non-empty,
  weakly connected, consistent and deadlock-free and raises
  :class:`~repro.exceptions.GraphError` otherwise.  A builder can
  therefore never hand an analysis a graph that fails late inside the
  simulator.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.exceptions import GraphError
from repro.sdf.deadlock import deadlock_report
from repro.sdf.graph import SDFGraph, validate_graph
from repro.sdf.repetition import repetition_vector


def check_well_formed(graph: SDFGraph) -> None:
    """Post-condition shared by the builders (and usable standalone).

    Raises :class:`GraphError` unless ``graph`` is non-empty, weakly
    connected, consistent (a repetition vector exists) and deadlock-free.
    ``InconsistentGraphError`` is a :class:`GraphError`, so one except
    clause catches every rejection.
    """
    validate_graph(graph)
    repetition_vector(graph)
    report = deadlock_report(graph)
    if report is not None:
        raise GraphError(
            f"graph {graph.name!r} is not live: {report}"
        )


def _wcets(count: int, wcets: Sequence[int], what: str) -> Sequence[int]:
    if len(wcets) != count:
        raise GraphError(
            f"{what}: expected {count} execution time(s), got {len(wcets)}"
        )
    return wcets


def chain_graph(
    name: str,
    wcets: Sequence[int],
    rates: Optional[Sequence[Tuple[int, int]]] = None,
    initial_tokens: Optional[Sequence[int]] = None,
    token_size: int = 4,
) -> SDFGraph:
    """A linear pipeline ``a0 -> a1 -> ... -> a(n-1)``.

    ``rates[i]`` is the ``(production, consumption)`` pair of edge ``i``
    (default ``(1, 1)``); any pair is consistent on a chain.
    ``initial_tokens[i]`` pre-loads edge ``i`` (default 0).
    """
    n = len(wcets)
    if n < 2:
        raise GraphError(f"chain {name!r} needs at least 2 actors")
    if rates is None:
        rates = [(1, 1)] * (n - 1)
    if initial_tokens is None:
        initial_tokens = [0] * (n - 1)
    if len(rates) != n - 1 or len(initial_tokens) != n - 1:
        raise GraphError(
            f"chain {name!r}: need {n - 1} rate pairs and token counts"
        )
    graph = SDFGraph(name)
    for index, wcet in enumerate(wcets):
        graph.add_actor(f"a{index}", execution_time=wcet)
    for index, (production, consumption) in enumerate(rates):
        graph.add_edge(
            f"e{index}",
            f"a{index}",
            f"a{index + 1}",
            production=production,
            consumption=consumption,
            initial_tokens=initial_tokens[index],
            token_size=token_size,
        )
    check_well_formed(graph)
    return graph


def split_join_graph(
    name: str,
    source_wcet: int,
    branch_wcets: Sequence[int],
    sink_wcet: int,
    branch_repeats: Optional[Sequence[int]] = None,
    token_size: int = 4,
) -> SDFGraph:
    """A one-level fan: ``src`` -> N parallel branches -> ``snk``.

    ``branch_repeats[i]`` makes branch ``i`` fire that many times per
    source firing (split edge produces ``r`` tokens consumed one at a
    time; the join edge collects ``r`` back).  This parameterization is
    consistent for *any* repeat vector -- the join cycle closes exactly.
    """
    branches = len(branch_wcets)
    if branches < 2:
        raise GraphError(f"split/join {name!r} needs at least 2 branches")
    if branch_repeats is None:
        branch_repeats = [1] * branches
    if len(branch_repeats) != branches:
        raise GraphError(
            f"split/join {name!r}: need {branches} branch repeat(s)"
        )
    if any(r < 1 for r in branch_repeats):
        raise GraphError(
            f"split/join {name!r}: branch repeats must be >= 1"
        )
    graph = SDFGraph(name)
    graph.add_actor("src", execution_time=source_wcet)
    graph.add_actor("snk", execution_time=sink_wcet)
    for index, wcet in enumerate(branch_wcets):
        branch = f"b{index}"
        graph.add_actor(branch, execution_time=wcet)
        repeat = branch_repeats[index]
        graph.add_edge(
            f"split{index}", "src", branch,
            production=repeat, consumption=1, token_size=token_size,
        )
        graph.add_edge(
            f"join{index}", branch, "snk",
            production=1, consumption=repeat, token_size=token_size,
        )
    check_well_formed(graph)
    return graph


def diamond_graph(
    name: str,
    wcets: Sequence[int],
    branch_repeats: Tuple[int, int] = (1, 1),
    token_size: int = 4,
) -> SDFGraph:
    """A fork-join diamond: ``top -> {left, right} -> bottom``.

    ``wcets`` is ``(top, left, right, bottom)``; ``branch_repeats``
    scales how often each arm fires per top firing (same consistent
    multiplier scheme as :func:`split_join_graph`).
    """
    top, left, right, bottom = _wcets(4, wcets, f"diamond {name!r}")
    if any(r < 1 for r in branch_repeats):
        raise GraphError(f"diamond {name!r}: repeats must be >= 1")
    graph = SDFGraph(name)
    graph.add_actor("top", execution_time=top)
    graph.add_actor("left", execution_time=left)
    graph.add_actor("right", execution_time=right)
    graph.add_actor("bottom", execution_time=bottom)
    for arm, repeat in zip(("left", "right"), branch_repeats):
        graph.add_edge(
            f"fork_{arm}", "top", arm,
            production=repeat, consumption=1, token_size=token_size,
        )
        graph.add_edge(
            f"join_{arm}", arm, "bottom",
            production=1, consumption=repeat, token_size=token_size,
        )
    check_well_formed(graph)
    return graph


def ring_graph(
    name: str,
    wcets: Sequence[int],
    initial_tokens: int = 1,
    token_size: int = 4,
) -> SDFGraph:
    """A directed cycle ``a0 -> a1 -> ... -> a(n-1) -> a0``.

    All rates are 1 (arbitrary rates around a cycle over-constrain the
    balance equations); ``initial_tokens`` tokens sit on the closing
    back-edge and bound the pipeline parallelism of the ring.  At least
    one token is required or the ring could never start.
    """
    n = len(wcets)
    if n < 2:
        raise GraphError(f"ring {name!r} needs at least 2 actors")
    if initial_tokens < 1:
        raise GraphError(
            f"ring {name!r} needs at least one initial token to be live"
        )
    graph = SDFGraph(name)
    for index, wcet in enumerate(wcets):
        graph.add_actor(f"a{index}", execution_time=wcet)
    for index in range(n - 1):
        graph.add_edge(
            f"e{index}", f"a{index}", f"a{index + 1}",
            token_size=token_size,
        )
    graph.add_edge(
        "back", f"a{n - 1}", "a0",
        initial_tokens=initial_tokens, token_size=token_size,
    )
    check_well_formed(graph)
    return graph
