"""MAMPS platform generation (paper Section 5.2).

Combines the application model, the architecture model and SDF3's mapping
output into a complete platform project:

* hardware: template components instantiated and connected, memory sizes
  computed per tile, interconnect configured and routed
  (:mod:`repro.mamps.hardware`, :mod:`repro.mamps.memory_map`);
* software: per-tile actor wrappers, the static-order schedule translated
  to C, communication initialisation
  (:mod:`repro.mamps.software`);
* project glue: the XPS TCL script that assembles everything
  (:mod:`repro.mamps.xps`).

:func:`generate_platform` produces the on-disk project bundle;
:func:`synthesize` turns it into a runnable
:class:`~repro.sim.PlatformSimulator` -- this repository's substitute for
bitstream synthesis (see DESIGN.md).
"""

from repro.mamps.memory_map import TileMemoryMap, compute_memory_maps
from repro.mamps.project import PlatformProject
from repro.mamps.generator import generate_platform, synthesize

__all__ = [
    "TileMemoryMap",
    "compute_memory_maps",
    "PlatformProject",
    "generate_platform",
    "synthesize",
]
