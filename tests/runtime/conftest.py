"""Shared fixtures for the run-time platform layer tests."""

import pytest

from repro.flow.spec import ArchSpec
from repro.runtime import build_library
from repro.scenarios import generate_scenarios, scenario_flow_spec

#: Small managed platforms the runtime tests admit against.
ARCH_FSL = ArchSpec(tiles=4, interconnect="fsl")
ARCH_NOC = ArchSpec(tiles=4, interconnect="noc")


def flow_specs(family, count, seed, architecture, constraint=None):
    """Scenario FlowSpecs retargeted onto one managed architecture."""
    return [
        scenario_flow_spec(
            s, architecture=architecture, constraint=constraint
        )
        for s in generate_scenarios(family, count, seed)
    ]


@pytest.fixture(scope="session")
def fsl_builds():
    """Libraries for two FSL scenario apps (built once per session)."""
    specs = flow_specs("splitjoin", 2, 3, ARCH_FSL)
    return [(spec, build_library(spec)) for spec in specs]


@pytest.fixture(scope="session")
def noc_builds():
    """Libraries for two NoC scenario apps (built once per session)."""
    specs = flow_specs("splitjoin", 2, 3, ARCH_NOC)
    return [(spec, build_library(spec)) for spec in specs]
