"""JSON persistence for application models.

The paper's flow hinges on "a common input format for both the mapping and
platform generation tools" (Section 2).  Graphs persist as SDF3-style XML
(:mod:`repro.sdf.io_sdf3`); this module persists the rest of the
application model -- implementations, metrics, argument bindings, the
throughput constraint -- as JSON.  Functional models are code and do not
serialize; on load they re-attach by implementation name through the
``functions``/``init_functions`` registries.
"""

from __future__ import annotations

import json
from fractions import Fraction
from pathlib import Path
from typing import Callable, Dict, Optional, Union

from repro.appmodel.implementation import ActorImplementation
from repro.appmodel.metrics import ImplementationMetrics, MemoryRequirements
from repro.appmodel.model import ApplicationModel
from repro.exceptions import GraphError
from repro.sdf.graph import SDFGraph
from repro.sdf.io_sdf3 import graph_from_xml, graph_to_xml

import xml.etree.ElementTree as ET

FORMAT_VERSION = 1


def model_to_dict(app: ApplicationModel) -> dict:
    """Serialize the model (graph embedded as SDF3-style XML text)."""
    return {
        "version": FORMAT_VERSION,
        "name": app.name,
        "graph_xml": ET.tostring(
            graph_to_xml(app.graph), encoding="unicode"
        ),
        "throughput_constraint": (
            None
            if app.throughput_constraint is None
            else [
                app.throughput_constraint.numerator,
                app.throughput_constraint.denominator,
            ]
        ),
        "implementations": [
            {
                "name": impl.name,
                "actor": impl.actor,
                "pe_type": impl.pe_type,
                "wcet": impl.metrics.wcet,
                "instruction_bytes": (
                    impl.metrics.memory.instruction_bytes
                ),
                "data_bytes": impl.metrics.memory.data_bytes,
                "argument_order": list(impl.argument_order),
                "functional": impl.function is not None,
            }
            for impl in app.implementations
        ],
    }


def model_from_dict(
    data: dict,
    functions: Optional[Dict[str, Callable]] = None,
    init_functions: Optional[Dict[str, Callable]] = None,
) -> ApplicationModel:
    """Rebuild a model; ``functions``/``init_functions`` re-attach the
    functional implementations by implementation name."""
    version = data.get("version")
    if version != FORMAT_VERSION:
        raise GraphError(
            f"unsupported application-model format version {version!r}"
        )
    graph = graph_from_xml(ET.fromstring(data["graph_xml"]))
    constraint = data.get("throughput_constraint")
    implementations = []
    for entry in data["implementations"]:
        name = entry["name"]
        function = (functions or {}).get(name)
        if entry.get("functional") and function is None and functions:
            raise GraphError(
                f"stored model marks {name!r} functional but no function "
                "was supplied for it"
            )
        implementations.append(
            ActorImplementation(
                actor=entry["actor"],
                pe_type=entry["pe_type"],
                metrics=ImplementationMetrics(
                    wcet=entry["wcet"],
                    memory=MemoryRequirements(
                        instruction_bytes=entry["instruction_bytes"],
                        data_bytes=entry["data_bytes"],
                    ),
                ),
                function=function,
                init_function=(init_functions or {}).get(name),
                argument_order=list(entry.get("argument_order", [])),
                name=name,
            )
        )
    return ApplicationModel(
        graph=graph,
        implementations=implementations,
        throughput_constraint=(
            None if constraint is None
            else Fraction(constraint[0], constraint[1])
        ),
        name=data.get("name", graph.name),
    )


def save_model(app: ApplicationModel, path: Union[str, Path]) -> None:
    Path(path).write_text(
        json.dumps(model_to_dict(app), indent=2), encoding="utf-8"
    )


def load_model(
    path: Union[str, Path],
    functions: Optional[Dict[str, Callable]] = None,
    init_functions: Optional[Dict[str, Callable]] = None,
) -> ApplicationModel:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return model_from_dict(
        data, functions=functions, init_functions=init_functions
    )
