"""Tests for the end-to-end design flow driver, effort and reporting."""

from fractions import Fraction

import pytest

from repro.appmodel import (
    ActorImplementation,
    ApplicationModel,
    FiringOutput,
    ImplementationMetrics,
    MemoryRequirements,
    measure_execution_times,
)
from repro.arch import architecture_from_template
from repro.flow import (
    DesignFlow,
    EffortReport,
    TABLE1_MANUAL_STEPS,
    compare_throughput,
    format_throughput_table,
)
from repro.flow.effort import TABLE1_AUTOMATED_STEPS
from repro.flow.report import expected_throughput
from repro.sdf import SDFGraph


@pytest.fixture
def functional_app():
    g = SDFGraph("tiny")
    g.add_actor("Src", execution_time=300)
    g.add_actor("Sink", execution_time=500)
    g.add_edge("s2s", "Src", "Sink", token_size=8)

    def src_fn(ctx):
        return FiringOutput(
            outputs={"s2s": [ctx.firing_index]},
            cycles=150 + (ctx.firing_index % 4) * 25,
        )

    def sink_fn(ctx):
        return FiringOutput(outputs={}, cycles=400)

    def impl(actor, wcet, fn):
        return ActorImplementation(
            actor=actor, pe_type="microblaze",
            metrics=ImplementationMetrics(
                wcet=wcet, memory=MemoryRequirements(2048, 1024)
            ),
            function=fn,
        )

    return ApplicationModel(
        graph=g,
        implementations=[impl("Src", 300, src_fn),
                         impl("Sink", 500, sink_fn)],
    )


class TestDesignFlow:
    def test_full_run(self, functional_app):
        arch = architecture_from_template(2)
        flow = DesignFlow(functional_app, arch)
        result = flow.run(iterations=15)
        assert result.guaranteed_throughput > 0
        assert result.measured_throughput >= result.guaranteed_throughput
        assert "system.mhs" in result.project.paths()

    def test_effort_covers_automated_steps(self, functional_app):
        arch = architecture_from_template(2)
        result = DesignFlow(functional_app, arch).run(iterations=5)
        names = [t.name for t in result.effort.timings]
        assert names == list(TABLE1_AUTOMATED_STEPS)

    def test_effort_counts_engine_tiers(self, functional_app):
        arch = architecture_from_template(2)
        result = DesignFlow(functional_app, arch).run(measure=False)
        tiers = result.effort.engine_tiers
        # mapping + buffer sizing ran through the tiered engine
        assert sum(tiers.values()) > 0
        assert set(tiers) <= {"analytic", "vectorized", "reference"}
        assert all(count > 0 for count in tiers.values())
        # the tier line renders in Table 1
        assert "throughput engine calls:" in result.effort.as_table()

    def test_summary_contains_table1(self, functional_app):
        arch = architecture_from_template(2)
        result = DesignFlow(functional_app, arch).run(iterations=5)
        text = result.summary()
        for manual, effort in TABLE1_MANUAL_STEPS:
            assert manual in text
        assert "automated" in text
        assert "guaranteed" in text

    def test_measure_false_skips_measurement(self, functional_app):
        arch = architecture_from_template(2)
        result = DesignFlow(functional_app, arch).run(measure=False)
        assert result.measured is None
        assert result.simulator is not None

    def test_fixed_binding_propagates(self, functional_app):
        arch = architecture_from_template(2)
        flow = DesignFlow(functional_app, arch, fixed={"Src": "tile1"})
        result = flow.run(measure=False)
        assert result.mapping_result.mapping.actor_binding["Src"] == "tile1"

    def test_non_functional_app_generates_but_does_not_run(self):
        g = SDFGraph("timed_only")
        g.add_actor("A", execution_time=100)
        g.add_actor("B", execution_time=100)
        g.add_edge("ab", "A", "B", token_size=4)
        app = ApplicationModel(
            graph=g,
            implementations=[
                ActorImplementation(
                    actor=name, pe_type="microblaze",
                    metrics=ImplementationMetrics(
                        wcet=100, memory=MemoryRequirements(1024, 512)
                    ),
                )
                for name in ("A", "B")
            ],
        )
        arch = architecture_from_template(2)
        result = DesignFlow(app, arch).run()
        assert result.simulator is None
        assert result.measured is None
        assert result.guaranteed_throughput > 0


class TestEffortReport:
    def test_step_timing(self):
        report = EffortReport()
        with report.step("sample"):
            pass
        assert report.seconds_of("sample") >= 0
        assert report.total_automated_seconds() >= 0

    def test_unknown_step(self):
        with pytest.raises(KeyError):
            EffortReport().seconds_of("nope")

    def test_human_units(self):
        from repro.flow.effort import StepTiming

        assert StepTiming("x", 0.005).human().endswith("ms")
        assert StepTiming("x", 2.0).human().endswith("s")
        assert StepTiming("x", 300.0).human().endswith("min")


class TestReporting:
    def test_expected_throughput_between_worst_and_ideal(
        self, functional_app
    ):
        from repro.mapping import map_application

        arch = architecture_from_template(2)
        result = map_application(functional_app, arch)
        measured_times = measure_execution_times(functional_app, 10)
        expected = expected_throughput(
            functional_app, arch, result, measured_times
        )
        # Actors run below WCET, so the expectation beats the guarantee.
        assert expected >= result.guaranteed_throughput

    def test_comparison_flags(self):
        good = compare_throughput(
            "w", Fraction(1, 10), Fraction(1, 8), Fraction(1, 7)
        )
        assert good.conservative()
        bad = compare_throughput(
            "w", Fraction(1, 5), Fraction(1, 8), Fraction(1, 7)
        )
        assert not bad.conservative()

    def test_expected_margin(self):
        comparison = compare_throughput(
            "w", Fraction(1, 10), Fraction(1, 8), Fraction(1, 8)
        )
        assert comparison.expected_margin() == 0.0

    def test_format_table(self):
        rows = [
            compare_throughput(
                "synthetic", Fraction(1, 10), Fraction(1, 9), Fraction(1, 8)
            ),
            compare_throughput(
                "gradient", Fraction(1, 10), Fraction(1, 4), Fraction(1, 4)
            ),
        ]
        text = format_throughput_table(rows)
        assert "synthetic" in text and "gradient" in text
        assert "worst-case" in text
        assert "BOUND VIOLATED" not in text
