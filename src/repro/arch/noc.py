"""The SDM (spatial division multiplexing) mesh NoC of [17], Section 5.3.1.

One router per tile, arranged in a 2-D mesh "kept as close to square as
possible to reduce the maximum distance between two tiles".  Connections are
programmed point-to-point: each gets a number of *wires* on every link along
its XY route; wires are exclusive to one connection, so bandwidth is
guaranteed by construction (SDM).  A 32-bit word crosses a link in
``ceil(32 / wires)`` cycles; each router adds a fixed pipeline latency.

Flow control was "added as part of the integration of the NoC in the MAMPS
platform" and costs about 12 % extra slices (Section 5.3.1) -- modelled here
as a constructor flag that area accounting (:mod:`repro.arch.area`) and the
channel parameters both honour.  Without flow control a connection gets no
in-network buffering credit (``alpha_n = 0``) *and* the platform cannot
guarantee freedom from word loss, so the generator refuses it; the flag
exists to reproduce the area comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.interconnect import Connection, Interconnect
from repro.comm.params import ChannelParameters, WORD_BITS
from repro.exceptions import ArchitectureError, RoutingError

Coordinate = Tuple[int, int]  # (column, row)


def mesh_dimensions(n_tiles: int) -> Tuple[int, int]:
    """(columns, rows) of the near-square mesh for ``n_tiles`` tiles."""
    if n_tiles < 1:
        raise ArchitectureError("mesh needs at least one tile")
    columns = math.ceil(math.sqrt(n_tiles))
    rows = math.ceil(n_tiles / columns)
    return columns, rows


def xy_route(src: Coordinate, dst: Coordinate) -> List[Coordinate]:
    """Deterministic XY route: horizontal first, then vertical.

    Returns the router coordinates visited, endpoints included.
    """
    (x, y), (dx, dy) = src, dst
    path = [(x, y)]
    while x != dx:
        x += 1 if dx > x else -1
        path.append((x, y))
    while y != dy:
        y += 1 if dy > y else -1
        path.append((x, y))
    return path


@dataclass(frozen=True)
class NoCAllocation:
    """Bookkeeping for one allocated connection."""

    connection: Connection
    path: Tuple[Coordinate, ...]
    wires: int

    @property
    def hops(self) -> int:
        return len(self.path) - 1


class SDMNoC(Interconnect):
    """The SDM mesh NoC.

    Parameters
    ----------
    tile_names:
        Tiles in placement order; tile ``i`` sits at router
        ``(i % columns, i // columns)`` (row-major).
    wires_per_link:
        Physical wires per directed link between adjacent routers.
    default_connection_wires:
        Wires a connection is assigned unless ``allocate`` overrides it.
    router_latency:
        Pipeline cycles per router traversal.
    buffer_words_per_hop:
        Flow-controlled buffering per traversed router (the ``alpha_n``
        contribution).
    flow_control:
        Include the flow-control logic the paper added to [17].
    """

    kind = "noc"

    def __init__(
        self,
        tile_names: Sequence[str],
        wires_per_link: int = 32,
        default_connection_wires: int = 8,
        router_latency: int = 3,
        buffer_words_per_hop: int = 2,
        flow_control: bool = True,
    ) -> None:
        if not tile_names:
            raise ArchitectureError("NoC needs at least one tile")
        if len(set(tile_names)) != len(tile_names):
            raise ArchitectureError("duplicate tile names in NoC placement")
        if wires_per_link < 1 or default_connection_wires < 1:
            raise ArchitectureError("wire counts must be >= 1")
        if default_connection_wires > wires_per_link:
            raise ArchitectureError(
                "a connection cannot use more wires than a link has"
            )
        if router_latency < 1:
            raise ArchitectureError("router latency must be >= 1")

        self.columns, self.rows = mesh_dimensions(len(tile_names))
        self.wires_per_link = wires_per_link
        self.default_connection_wires = default_connection_wires
        self.router_latency = router_latency
        self.buffer_words_per_hop = buffer_words_per_hop
        self.flow_control = flow_control

        self._position: Dict[str, Coordinate] = {
            name: (i % self.columns, i // self.columns)
            for i, name in enumerate(tile_names)
        }
        # directed link (from, to) -> wires still free
        self._free_wires: Dict[Tuple[Coordinate, Coordinate], int] = {}
        for x in range(self.columns):
            for y in range(self.rows):
                for nx, ny in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)):
                    if 0 <= nx < self.columns and 0 <= ny < self.rows:
                        self._free_wires[((x, y), (nx, ny))] = wires_per_link
        self._allocations: List[NoCAllocation] = []

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def tile_names(self) -> Tuple[str, ...]:
        """Tiles in placement (row-major) order, as given at construction."""
        return tuple(self._position)

    def position_of(self, tile: str) -> Coordinate:
        try:
            return self._position[tile]
        except KeyError:
            raise ArchitectureError(
                f"tile {tile!r} is not placed on this NoC"
            ) from None

    def hop_distance(self, src_tile: str, dst_tile: str) -> int:
        (x1, y1) = self.position_of(src_tile)
        (x2, y2) = self.position_of(dst_tile)
        return abs(x1 - x2) + abs(y1 - y2)

    def router_count(self) -> int:
        return self.columns * self.rows

    def link_count(self) -> int:
        return len(self._free_wires)

    def free_wires(self, src: Coordinate, dst: Coordinate) -> int:
        return self._free_wires[(src, dst)]

    def allocations(self) -> Tuple[NoCAllocation, ...]:
        return tuple(self._allocations)

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def allocate(
        self, connection: Connection, wires: Optional[int] = None
    ) -> ChannelParameters:
        """Route ``connection`` over XY and claim wires on every link.

        Raises :class:`RoutingError` when any link on the route lacks the
        requested wires (SDM wires are exclusive; the paper's efficiency
        comes precisely from this static assignment).
        """
        if not self.flow_control:
            raise RoutingError(
                "the MAMPS integration requires the flow-controlled NoC; "
                "the flow_control=False variant exists only for area "
                "comparison (Section 5.3.1)"
            )
        wanted = wires if wires is not None else self.default_connection_wires
        if wanted < 1 or wanted > self.wires_per_link:
            raise RoutingError(
                f"connection {connection.name!r} requests {wanted} wires; "
                f"links have {self.wires_per_link}"
            )
        src = self.position_of(connection.src_tile)
        dst = self.position_of(connection.dst_tile)
        path = xy_route(src, dst)
        links = list(zip(path, path[1:]))
        for link in links:
            if self._free_wires[link] < wanted:
                raise RoutingError(
                    f"link {link[0]}->{link[1]} has only "
                    f"{self._free_wires[link]} free wires; connection "
                    f"{connection.name!r} needs {wanted} (SDM wires are "
                    "exclusive)"
                )
        for link in links:
            self._free_wires[link] -= wanted
        allocation = NoCAllocation(
            connection=connection, path=tuple(path), wires=wanted
        )
        self._allocations.append(allocation)
        return self._parameters(allocation)

    def _parameters(self, allocation: NoCAllocation) -> ChannelParameters:
        hops = allocation.hops
        cycles_per_word = math.ceil(WORD_BITS / allocation.wires)
        latency = self.router_latency * max(hops, 1)
        # One word can occupy each router stage of the route.
        words_in_flight = max(
            1, math.ceil(latency / max(cycles_per_word, 1))
        )
        buffering = self.buffer_words_per_hop * hops
        return ChannelParameters(
            words_in_flight=words_in_flight,
            network_buffer_words=buffering,
            injection_cycles_per_word=cycles_per_word,
            channel_latency=latency,
        )

    def release_all(self) -> None:
        for link in self._free_wires:
            self._free_wires[link] = self.wires_per_link
        self._allocations.clear()

    def allocated_connections(self) -> Tuple[Connection, ...]:
        return tuple(a.connection for a in self._allocations)

    def __eq__(self, other: object) -> bool:
        """Structural equality: placement, parameters and allocations."""
        if not isinstance(other, SDMNoC):
            return NotImplemented
        return (
            self._position == other._position
            and self.wires_per_link == other.wires_per_link
            and self.default_connection_wires
            == other.default_connection_wires
            and self.router_latency == other.router_latency
            and self.buffer_words_per_hop == other.buffer_words_per_hop
            and self.flow_control == other.flow_control
            and self._allocations == other._allocations
        )

    __hash__ = object.__hash__  # mutable allocation state

    def describe(self) -> str:
        return (
            f"SDM NoC {self.columns}x{self.rows} mesh, "
            f"{self.wires_per_link} wires/link, "
            f"{len(self._allocations)} connections, flow control "
            f"{'on' if self.flow_control else 'off'}"
        )
