"""Tests for the WCET measurement harness."""

import pytest

from repro.appmodel import (
    ActorImplementation,
    ApplicationModel,
    FiringOutput,
    ImplementationMetrics,
    measure_execution_times,
)
from repro.exceptions import GraphError, SimulationError
from repro.sdf import SDFGraph


def functional_pipeline(producer_cycles, consumer_cycles, wcet=1000):
    """P -> Q pipeline where P emits increasing ints and cycle counts come
    from the given callables."""
    g = SDFGraph("pipe")
    g.add_actor("P", execution_time=wcet)
    g.add_actor("Q", execution_time=wcet)
    g.add_edge("pq", "P", "Q", token_size=4)

    def p_fn(ctx):
        value = ctx.firing_index
        return FiringOutput(
            outputs={"pq": [value]}, cycles=producer_cycles(ctx.firing_index)
        )

    def q_fn(ctx):
        consumed = ctx.single("pq")
        ctx.state["sum"] = ctx.state.get("sum", 0) + consumed
        return FiringOutput(
            outputs={}, cycles=consumer_cycles(ctx.firing_index)
        )

    model = ApplicationModel(
        graph=g,
        implementations=[
            ActorImplementation(
                actor="P", pe_type="microblaze",
                metrics=ImplementationMetrics(wcet=wcet), function=p_fn,
            ),
            ActorImplementation(
                actor="Q", pe_type="microblaze",
                metrics=ImplementationMetrics(wcet=wcet), function=q_fn,
            ),
        ],
    )
    return model


def test_records_min_avg_max():
    model = functional_pipeline(
        producer_cycles=lambda i: 10 + (i % 3) * 5,  # 10, 15, 20, 10...
        consumer_cycles=lambda i: 7,
    )
    measured = measure_execution_times(model, iterations=9)
    p = measured.record("P")
    assert p.firings == 9
    assert p.min_cycles == 10
    assert p.max_cycles == 20
    assert p.average_cycles == pytest.approx(15.0)
    assert measured.measured_wcet()["Q"] == 7


def test_wcet_violation_detected():
    model = functional_pipeline(
        producer_cycles=lambda i: 50,
        consumer_cycles=lambda i: 5,
        wcet=40,
    )
    with pytest.raises(SimulationError, match="above the declared WCET"):
        measure_execution_times(model, iterations=1)


def test_wcet_check_can_be_disabled():
    model = functional_pipeline(
        producer_cycles=lambda i: 50,
        consumer_cycles=lambda i: 5,
        wcet=40,
    )
    measured = measure_execution_times(model, iterations=2, check_wcet=False)
    assert measured.record("P").max_cycles == 50


def test_token_values_flow_between_actors():
    seen = []

    def q_cycles(i):
        return 1

    model = functional_pipeline(lambda i: 1, q_cycles)

    original_q = model.implementations[1].function

    def spy_q(ctx):
        seen.append(ctx.single("pq"))
        return FiringOutput(outputs={}, cycles=1)

    model.implementations[1].function = spy_q
    measure_execution_times(model, iterations=4)
    assert seen == [0, 1, 2, 3]


def test_wrong_production_count_detected():
    g = SDFGraph("bad")
    g.add_actor("P", execution_time=10)
    g.add_actor("Q", execution_time=10)
    g.add_edge("pq", "P", "Q", production=2, consumption=2, token_size=4)

    def p_fn(ctx):
        return FiringOutput(outputs={"pq": [1]}, cycles=1)  # should be 2

    def q_fn(ctx):
        return FiringOutput(outputs={}, cycles=1)

    model = ApplicationModel(
        graph=g,
        implementations=[
            ActorImplementation(
                actor="P", pe_type="mb",
                metrics=ImplementationMetrics(wcet=10), function=p_fn,
            ),
            ActorImplementation(
                actor="Q", pe_type="mb",
                metrics=ImplementationMetrics(wcet=10), function=q_fn,
            ),
        ],
    )
    with pytest.raises(SimulationError, match="produced"):
        measure_execution_times(model, iterations=1)


def test_init_function_provides_initial_tokens():
    """Listing 1 semantics: initial tokens on explicit edges come from the
    init function (here a cycle P -> Q -> P primed by Q's init)."""
    g = SDFGraph("cycle")
    g.add_actor("P", execution_time=10)
    g.add_actor("Q", execution_time=10)
    g.add_edge("pq", "P", "Q", token_size=4)
    g.add_edge("qp", "Q", "P", token_size=4, initial_tokens=1)

    def p_fn(ctx):
        return FiringOutput(
            outputs={"pq": [ctx.single("qp") + 1]}, cycles=1
        )

    def q_fn(ctx):
        return FiringOutput(outputs={"qp": [ctx.single("pq")]}, cycles=1)

    def q_init(state):
        return {"qp": [100]}

    model = ApplicationModel(
        graph=g,
        implementations=[
            ActorImplementation(
                actor="P", pe_type="mb",
                metrics=ImplementationMetrics(wcet=10), function=p_fn,
            ),
            ActorImplementation(
                actor="Q", pe_type="mb",
                metrics=ImplementationMetrics(wcet=10),
                function=q_fn, init_function=q_init,
            ),
        ],
    )
    measured = measure_execution_times(model, iterations=3)
    assert measured.record("P").firings == 3


def test_missing_init_values_rejected():
    g = SDFGraph("cycle")
    g.add_actor("P", execution_time=10)
    g.add_actor("Q", execution_time=10)
    g.add_edge("pq", "P", "Q", token_size=4)
    g.add_edge("qp", "Q", "P", token_size=4, initial_tokens=1)

    def p_fn(ctx):
        return FiringOutput(outputs={"pq": [0]}, cycles=1)

    def q_fn(ctx):
        return FiringOutput(outputs={"qp": [0]}, cycles=1)

    model = ApplicationModel(
        graph=g,
        implementations=[
            ActorImplementation(
                actor="P", pe_type="mb",
                metrics=ImplementationMetrics(wcet=10), function=p_fn,
            ),
            ActorImplementation(
                actor="Q", pe_type="mb",
                metrics=ImplementationMetrics(wcet=10), function=q_fn,
            ),
        ],
    )
    with pytest.raises(GraphError, match="init function"):
        measure_execution_times(model, iterations=1)


def test_state_persists_across_firings():
    sums = []
    model = functional_pipeline(lambda i: 1, lambda i: 1)

    def q_fn(ctx):
        ctx.state["sum"] = ctx.state.get("sum", 0) + ctx.single("pq")
        sums.append(ctx.state["sum"])
        return FiringOutput(outputs={}, cycles=1)

    model.implementations[1].function = q_fn
    measure_execution_times(model, iterations=4)
    assert sums == [0, 1, 3, 6]  # cumulative sums of 0,1,2,3
