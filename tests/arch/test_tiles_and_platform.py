"""Tests for tiles, the platform model and the template generator."""

import pytest

from repro.arch import (
    ArchitectureModel,
    FSLInterconnect,
    Peripheral,
    SDMNoC,
    architecture_from_template,
    ip_tile,
    master_tile,
    slave_tile,
)
from repro.arch.tile import MAX_TILE_MEMORY_BYTES, Tile
from repro.exceptions import ArchitectureError


class TestTiles:
    def test_master_tile_has_peripherals(self):
        tile = master_tile("t0")
        assert tile.role == "master"
        assert tile.peripherals
        assert tile.pe_type == "microblaze"

    def test_slave_tile_has_none(self):
        tile = slave_tile("t1")
        assert tile.role == "slave"
        assert not tile.peripherals

    def test_slave_cannot_own_peripherals(self):
        with pytest.raises(ArchitectureError, match="master tiles"):
            Tile(name="t", peripherals=(Peripheral("uart"),), role="slave")

    def test_memory_ceiling_enforced(self):
        with pytest.raises(ArchitectureError, match="ceiling"):
            slave_tile("big", instruction_kb=200, data_kb=200)

    def test_memory_at_ceiling_allowed(self):
        tile = slave_tile("max", instruction_kb=128, data_kb=128)
        assert tile.memory_capacity == MAX_TILE_MEMORY_BYTES

    def test_ip_tile_has_no_processor(self):
        tile = ip_tile("hw")
        assert tile.processor is None
        assert tile.pe_type is None

    def test_ip_tile_with_processor_rejected(self):
        with pytest.raises(ArchitectureError, match="no processor"):
            Tile(name="t", role="ip")

    def test_ca_flag(self):
        assert slave_tile("t", with_ca=True).has_ca
        assert not slave_tile("t").has_ca

    def test_unknown_role_rejected(self):
        with pytest.raises(ArchitectureError, match="role"):
            Tile(name="t", role="weird")


class TestArchitectureModel:
    def test_duplicate_tile_names_rejected(self):
        with pytest.raises(ArchitectureError, match="duplicate"):
            ArchitectureModel(
                name="a", tiles=[slave_tile("t"), slave_tile("t")]
            )

    def test_lookup(self):
        arch = architecture_from_template(3)
        assert arch.tile("tile1").role == "slave"
        with pytest.raises(ArchitectureError, match="unknown tile"):
            arch.tile("nope")

    def test_pe_types(self):
        arch = architecture_from_template(2)
        assert arch.pe_types() == ("microblaze",)

    def test_shared_peripheral_rejected(self):
        t0 = master_tile("t0", peripherals=(Peripheral("uart"),))
        t1 = master_tile("t1", peripherals=(Peripheral("uart"),))
        arch = ArchitectureModel(
            name="bad", tiles=[t0, t1], interconnect=FSLInterconnect()
        )
        with pytest.raises(ArchitectureError, match="predictability"):
            arch.validate()

    def test_multi_tile_needs_interconnect(self):
        arch = ArchitectureModel(
            name="a", tiles=[slave_tile("t0"), slave_tile("t1")]
        )
        with pytest.raises(ArchitectureError, match="interconnect"):
            arch.validate()

    def test_connect_allocates(self):
        arch = architecture_from_template(2, "fsl")
        params = arch.connect("c0", "tile0", "tile1")
        assert params.injection_cycles_per_word == 1
        assert len(arch.interconnect.allocated_connections()) == 1
        arch.reset_interconnect()
        assert not arch.interconnect.allocated_connections()

    def test_describe_mentions_tiles(self):
        arch = architecture_from_template(2, "noc")
        text = arch.describe()
        assert "tile0" in text and "tile1" in text and "SDM NoC" in text


class TestTemplate:
    def test_master_plus_slaves(self):
        arch = architecture_from_template(4)
        roles = [t.role for t in arch.tiles]
        assert roles == ["master", "slave", "slave", "slave"]

    def test_single_tile_no_interconnect(self):
        arch = architecture_from_template(1)
        assert arch.interconnect is None

    def test_noc_choice(self):
        arch = architecture_from_template(6, "noc")
        assert isinstance(arch.interconnect, SDMNoC)

    def test_fsl_choice(self):
        arch = architecture_from_template(3, "fsl")
        assert isinstance(arch.interconnect, FSLInterconnect)

    def test_unknown_interconnect_rejected(self):
        with pytest.raises(ArchitectureError, match="unknown interconnect"):
            architecture_from_template(3, "crossbar")

    def test_zero_tiles_rejected(self):
        with pytest.raises(ArchitectureError, match="at least one"):
            architecture_from_template(0)

    def test_with_ca_equips_all_tiles(self):
        arch = architecture_from_template(3, with_ca=True)
        assert all(t.has_ca for t in arch.tiles)
