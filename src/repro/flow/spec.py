"""Declarative flow scenarios (FlowSpec).

A *FlowSpec* is a small JSON- or TOML-loadable document that names
everything one run of the automated flow needs: the case-study input,
the architecture template parameters, the throughput constraint, the
mapping effort, and the per-stage strategy choices of the pluggable
mapping pipeline (:mod:`repro.mapping.pipeline`).  It is the scenario
format behind ``python -m repro run --spec scenario.toml`` and
:meth:`repro.flow.design_flow.DesignFlow.from_spec`.

A complete TOML example::

    name = "mjpeg-spiral"

    [app]
    sequence = "gradient"   # test-set name, or "synthetic"
    quality = 75
    frames = 2

    [architecture]
    tiles = 4
    interconnect = "noc"    # "fsl" | "noc"
    with_ca = false

    [mapping]
    constraint = "1/9000"   # iterations/cycle; omit for best effort
    effort = "normal"
    binding = "spiral"      # greedy | spiral | ga
    buffer_policy = "exponential"
    seed = 7

    [mapping.fixed]
    VLD = "tile0"

A spec may instead declare *several* applications (use-cases) that share
the platform, one ``[[apps]]`` table each::

    name = "set-top-box"

    [[apps]]
    name = "decoder"
    sequence = "gradient"
    frames = 1
    constraint = "1/120000"

    [[apps]]
    name = "osd"
    sequence = "checkerboard"
    frames = 1

    [apps.fixed]        # pins actors of the *preceding* [[apps]] table
    VLD = "tile0"

    [architecture]
    tiles = 4

Multi-application specs run through :class:`repro.flow.session.FlowSession`
(which maps every use-case and checks the union platform) and through the
multi-application design-space exploration path
(:class:`repro.flow.dse.UseCaseEvaluator`).

Unknown keys are rejected so a typo cannot silently fall back to a
default strategy.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from fractions import Fraction
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple, Union

from repro.arch.template import architecture_from_template
from repro.exceptions import ReproError
from repro.mapping.pipeline import MappingEffort, StrategyTuple

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.scenarios.spec import ScenarioSpec


class FlowSpecError(ReproError):
    """Raised for malformed or unloadable FlowSpec documents."""


@dataclass(frozen=True)
class AppSpec:
    """One application of the scenario (``[app]`` or one ``[[apps]]``).

    The workload is either an MJPEG case-study input (``sequence`` /
    ``quality`` / ``frames``) or a generated synthetic one (an
    ``[app.scenario]`` table parsed into a
    :class:`repro.scenarios.spec.ScenarioSpec`); the two forms are
    mutually exclusive.  ``name`` identifies the use-case (defaults to
    the sequence or scenario name); ``constraint`` and ``fixed``
    override the spec-level throughput constraint and actor pins for
    this application only.
    """

    sequence: str = "gradient"
    quality: Optional[int] = None
    frames: int = 2
    name: str = ""
    constraint: Optional[Fraction] = None
    fixed: Optional[Dict[str, str]] = None
    scenario: Optional["ScenarioSpec"] = None

    @property
    def effective_name(self) -> str:
        if self.name:
            return self.name
        if self.scenario is not None:
            return self.scenario.effective_name
        return self.sequence


@dataclass(frozen=True)
class ArchSpec:
    """Template parameters of the platform (``[architecture]``).

    The structural interconnect knobs (FSL FIFO depth, NoC mesh wiring)
    default to the template defaults, so existing documents keep their
    meaning; they participate in every content key automatically via
    ``dataclasses.asdict``.
    """

    tiles: int = 2
    interconnect: str = "fsl"
    with_ca: bool = False
    instruction_kb: int = 128
    data_kb: int = 128
    slave_instruction_kb: Optional[int] = None
    slave_data_kb: Optional[int] = None
    fsl_fifo_depth: int = 16
    noc_wires_per_link: int = 32
    noc_connection_wires: int = 8


@dataclass(frozen=True)
class FlowSpec:
    """One declarative scenario: app(s) + architecture + mapping choices."""

    name: str = "scenario"
    apps: Tuple[AppSpec, ...] = (AppSpec(),)
    architecture: ArchSpec = field(default_factory=ArchSpec)
    constraint: Optional[Fraction] = None
    effort: str = "normal"
    fixed: Dict[str, str] = field(default_factory=dict)
    strategies: StrategyTuple = field(default_factory=StrategyTuple)

    @property
    def app(self) -> AppSpec:
        """The first (for single-application specs: the only) app."""
        return self.apps[0]

    @property
    def multi(self) -> bool:
        """True when the spec declares several use-case applications."""
        return len(self.apps) > 1

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FlowSpec":
        """Build and validate a spec from a parsed document."""
        data = dict(data)
        name = _take(data, "name", str, default="scenario")
        has_single = "app" in data
        app = _section(data, "app", _parse_app)
        apps_raw = _take(data, "apps", list, default=None)
        architecture = _section(data, "architecture", _parse_arch)
        mapping = dict(_take(data, "mapping", dict, default={}))
        if data:
            raise FlowSpecError(
                f"unknown top-level key(s) in flow spec: {sorted(data)}"
            )

        if apps_raw is not None:
            if has_single:
                raise FlowSpecError(
                    "flow spec declares both [app] and [[apps]]; use one"
                )
            if not apps_raw:
                raise FlowSpecError("[[apps]] must list at least one app")
            apps: List[AppSpec] = []
            for index, entry in enumerate(apps_raw):
                if not isinstance(entry, dict):
                    raise FlowSpecError(
                        f"[[apps]] entry {index} must be a table/object"
                    )
                entry = dict(entry)
                parsed = _parse_app(entry)
                if entry:
                    raise FlowSpecError(
                        f"unknown [[apps]] key(s) in flow spec: "
                        f"{sorted(entry)}"
                    )
                apps.append(parsed)
            names = [a.effective_name for a in apps]
            if len(set(names)) != len(names):
                raise FlowSpecError(
                    f"use-case applications need distinct names, "
                    f"got {names}"
                )
        else:
            apps = [app]

        constraint = _parse_constraint(
            _take(mapping, "constraint", (str, int), default=None)
        )
        effort = _take(mapping, "effort", str, default="normal")
        try:
            MappingEffort.of(effort)
        except ValueError as error:
            raise FlowSpecError(str(error)) from None
        fixed = dict(_take(mapping, "fixed", dict, default={}))
        for actor, tile in fixed.items():
            if not isinstance(actor, str) or not isinstance(tile, str):
                raise FlowSpecError(
                    "[mapping.fixed] must map actor names to tile names"
                )
        strategies = StrategyTuple(
            binding=_take(mapping, "binding", str, default="greedy"),
            routing=_take(mapping, "routing", str, default="xy"),
            buffer_policy=_take(
                mapping, "buffer_policy", str, default="linear"
            ),
            scheduling=_take(
                mapping, "scheduling", str, default="static-order"
            ),
            seed=_take(mapping, "seed", int, default=None),
        )
        try:
            strategies.validate()
        except ValueError as error:
            raise FlowSpecError(str(error)) from None
        if mapping:
            raise FlowSpecError(
                f"unknown [mapping] key(s) in flow spec: {sorted(mapping)}"
            )
        return cls(
            name=name,
            apps=tuple(apps),
            architecture=architecture,
            constraint=constraint,
            effort=effort,
            fixed=fixed,
            strategies=strategies,
        )

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "FlowSpec":
        return load_flow_spec(path)

    # ------------------------------------------------------------------
    # realization
    # ------------------------------------------------------------------
    def build_application(self):
        """Instantiate the (single) case-study application of the spec."""
        if self.multi:
            raise FlowSpecError(
                f"spec {self.name!r} declares {len(self.apps)} "
                "applications; use build_applications() or run it through "
                "repro.flow.session.FlowSession / 'repro batch'"
            )
        return self.build_app(self.apps[0])

    def build_applications(self):
        """Instantiate every application, renamed to its use-case name."""
        return [self.build_app(app_spec) for app_spec in self.apps]

    def build_app(self, app_spec: AppSpec):
        """Instantiate one application, renamed to its use-case name."""
        if app_spec.scenario is not None:
            # deferred import: repro.scenarios imports this module
            from repro.scenarios.generator import (
                build_scenario_application,
            )

            model = build_scenario_application(app_spec.scenario)
        else:
            model = build_case_study_app(
                app_spec.sequence,
                quality=app_spec.quality,
                frames=app_spec.frames,
            )
        if app_spec.name or self.multi:
            model.name = app_spec.effective_name
        return model

    def constraint_for(self, app_spec: AppSpec) -> Optional[Fraction]:
        """Effective throughput constraint of one application."""
        return (
            app_spec.constraint
            if app_spec.constraint is not None
            else self.constraint
        )

    def fixed_for(self, app_spec: AppSpec) -> Optional[Dict[str, str]]:
        """Effective actor pins of one application."""
        fixed = (
            app_spec.fixed if app_spec.fixed is not None else self.fixed
        )
        return dict(fixed) if fixed else None

    def build_architecture(self):
        """Instantiate the template architecture this spec names."""
        a = self.architecture
        return architecture_from_template(
            a.tiles,
            a.interconnect,
            with_ca=a.with_ca,
            instruction_kb=a.instruction_kb,
            data_kb=a.data_kb,
            slave_instruction_kb=a.slave_instruction_kb,
            slave_data_kb=a.slave_data_kb,
            fsl_fifo_depth=a.fsl_fifo_depth,
            noc_wires_per_link=a.noc_wires_per_link,
            noc_connection_wires=a.noc_connection_wires,
        )

    def to_document(self) -> Dict[str, Any]:
        """The JSON-able document form of this spec.

        The inverse of :meth:`from_dict`:
        ``FlowSpec.from_dict(spec.to_document()) == spec``.  This is the
        body a client POSTs to the flow service (:mod:`repro.service`),
        and what lets a spec loaded from TOML travel over HTTP as JSON.
        """
        mapping: Dict[str, Any] = {
            "effort": self.effort,
            "binding": self.strategies.binding,
            "routing": self.strategies.routing,
            "buffer_policy": self.strategies.buffer_policy,
            "scheduling": self.strategies.scheduling,
        }
        if self.strategies.seed is not None:
            mapping["seed"] = self.strategies.seed
        if self.constraint is not None:
            mapping["constraint"] = str(self.constraint)
        if self.fixed:
            mapping["fixed"] = dict(self.fixed)
        document: Dict[str, Any] = {
            "name": self.name,
            "architecture": dataclasses.asdict(self.architecture),
            "mapping": mapping,
        }
        if self.multi:
            document["apps"] = [
                _app_document(app) for app in self.apps
            ]
        else:
            document["app"] = _app_document(self.app)
        return document

    def describe(self) -> str:
        bits = [f"scenario {self.name!r}:"]
        for app_spec in self.apps:
            label = "app" if not self.multi else \
                f"use-case {app_spec.effective_name!r}"
            if app_spec.scenario is not None:
                s = app_spec.scenario
                bits.append(
                    f"  {label}: generated {s.family} scenario "
                    f"(seed {s.seed}, ~{s.actors} actor(s))"
                )
            else:
                bits.append(
                    f"  {label}: {app_spec.sequence} "
                    f"(quality {app_spec.quality or 'default'}, "
                    f"{app_spec.frames} frame(s))"
                )
        bits += [
            f"  architecture: {self.architecture.tiles} tile(s), "
            f"{self.architecture.interconnect}"
            + (" +CA" if self.architecture.with_ca else ""),
            f"  mapping: {self.strategies.build_pipeline().describe()}, "
            f"effort {self.effort}",
        ]
        if self.constraint is not None:
            bits.append(f"  constraint: {self.constraint} iterations/cycle")
        if self.fixed:
            pins = ", ".join(
                f"{a}->{t}" for a, t in sorted(self.fixed.items())
            )
            bits.append(f"  pinned: {pins}")
        return "\n".join(bits)


def _app_document(app: AppSpec) -> Dict[str, Any]:
    """JSON-able form of one AppSpec (omits unset optionals)."""
    document: Dict[str, Any] = {}
    if app.scenario is not None:
        document["scenario"] = app.scenario.to_table()
    else:
        document["sequence"] = app.sequence
        document["frames"] = app.frames
        if app.quality is not None:
            document["quality"] = app.quality
    if app.name:
        document["name"] = app.name
    if app.constraint is not None:
        document["constraint"] = str(app.constraint)
    if app.fixed is not None:
        document["fixed"] = dict(app.fixed)
    return document


# ----------------------------------------------------------------------
# parsing helpers
# ----------------------------------------------------------------------
def _take(data: Dict[str, Any], key: str, kinds, default=None):
    if key not in data:
        return default
    value = data.pop(key)
    if value is None:
        return default
    accepted = kinds if isinstance(kinds, tuple) else (kinds,)
    expected = "/".join(k.__name__ for k in accepted)
    # bool subclasses int: reject it explicitly wherever int is accepted
    # but bool is not, or `constraint = true` would parse as Fraction(1)
    bad_bool = (
        isinstance(value, bool) and bool not in accepted and int in accepted
    )
    if bad_bool or not isinstance(value, accepted):
        raise FlowSpecError(
            f"flow spec key {key!r} must be {expected}, "
            f"got {type(value).__name__}"
        )
    return value


def _section(data: Dict[str, Any], key: str, parser):
    section = dict(_take(data, key, dict, default={}))
    parsed = parser(section)
    if section:
        raise FlowSpecError(
            f"unknown [{key}] key(s) in flow spec: {sorted(section)}"
        )
    return parsed


def _parse_app(section: Dict[str, Any]) -> AppSpec:
    fixed = _take(section, "fixed", dict, default=None)
    if fixed is not None:
        fixed = dict(fixed)
        for actor, tile in fixed.items():
            if not isinstance(actor, str) or not isinstance(tile, str):
                raise FlowSpecError(
                    "[apps.fixed] must map actor names to tile names"
                )
    scenario = None
    if "scenario" in section:
        clashes = [
            key for key in ("sequence", "quality", "frames")
            if key in section
        ]
        if clashes:
            raise FlowSpecError(
                "an app declares both [app.scenario] and case-study "
                f"key(s) {clashes}; a workload is either generated or "
                "an MJPEG sequence, not both"
            )
        table = _take(section, "scenario", dict)
        # deferred import: repro.scenarios imports this module
        from repro.scenarios.spec import ScenarioError, ScenarioSpec

        try:
            scenario = ScenarioSpec.from_table(dict(table))
        except ScenarioError as error:
            raise FlowSpecError(
                f"invalid [app.scenario] table: {error}"
            ) from error
    return AppSpec(
        sequence=_take(section, "sequence", str, default="gradient"),
        quality=_take(section, "quality", int, default=None),
        frames=_take(section, "frames", int, default=2),
        name=_take(section, "name", str, default=""),
        constraint=_parse_constraint(
            _take(section, "constraint", (str, int), default=None)
        ),
        fixed=fixed,
        scenario=scenario,
    )


def _parse_arch(section: Dict[str, Any]) -> ArchSpec:
    return ArchSpec(
        tiles=_take(section, "tiles", int, default=2),
        interconnect=_take(section, "interconnect", str, default="fsl"),
        with_ca=_take(section, "with_ca", bool, default=False),
        instruction_kb=_take(section, "instruction_kb", int, default=128),
        data_kb=_take(section, "data_kb", int, default=128),
        slave_instruction_kb=_take(
            section, "slave_instruction_kb", int, default=None
        ),
        slave_data_kb=_take(section, "slave_data_kb", int, default=None),
        fsl_fifo_depth=_take(section, "fsl_fifo_depth", int, default=16),
        noc_wires_per_link=_take(
            section, "noc_wires_per_link", int, default=32
        ),
        noc_connection_wires=_take(
            section, "noc_connection_wires", int, default=8
        ),
    )


def _parse_constraint(value) -> Optional[Fraction]:
    if value is None:
        return None
    try:
        return Fraction(value)
    except (ValueError, ZeroDivisionError):
        raise FlowSpecError(
            f"invalid constraint {value!r}; expected a fraction like "
            "'1/6000'"
        ) from None


def load_flow_spec(path: Union[str, Path]) -> FlowSpec:
    """Load a FlowSpec document from a ``.toml`` or ``.json`` file."""
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as error:
        raise FlowSpecError(f"cannot read flow spec {path}: {error}") \
            from None
    suffix = path.suffix.lower()
    if suffix == ".json":
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise FlowSpecError(
                f"invalid JSON flow spec {path}: {error}"
            ) from None
    elif suffix == ".toml":
        try:
            import tomllib
        except ModuleNotFoundError:  # pragma: no cover - py3.10 path
            try:
                import tomli as tomllib  # noqa: F401 (same API)
            except ModuleNotFoundError:
                raise FlowSpecError(
                    "TOML flow specs need Python 3.11+ (tomllib) or the "
                    "'tomli' package; use the JSON form otherwise"
                ) from None
        try:
            data = tomllib.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, tomllib.TOMLDecodeError) as error:
            raise FlowSpecError(
                f"invalid TOML flow spec {path}: {error}"
            ) from None
    else:
        raise FlowSpecError(
            f"unsupported flow spec format {suffix or path.name!r}; "
            "use .toml or .json"
        )
    if not isinstance(data, dict):
        raise FlowSpecError(
            f"flow spec {path} must contain a table/object at the top level"
        )
    return FlowSpec.from_dict(data)


def build_case_study_app(
    sequence: str, quality: Optional[int] = None, frames: int = 2
):
    """Build the MJPEG case-study application for one test sequence.

    ``sequence`` is a name from
    :func:`repro.mjpeg.test_set_sequences` or ``"synthetic"``.  The
    default quality follows the benchmark conventions: 75 for the
    structured sequences, 98 for the high-entropy synthetic one.
    """
    from repro.mjpeg import (
        build_mjpeg_application,
        encode_sequence,
        synthetic_sequence,
        test_set_sequences,
    )

    if sequence == "synthetic":
        encoded_frames = synthetic_sequence(n_frames=frames)
        quality = quality or 98
    else:
        sequences = test_set_sequences(n_frames=frames)
        if sequence not in sequences:
            raise ReproError(
                f"unknown sequence {sequence!r}; pick from "
                f"{sorted(sequences) + ['synthetic']}"
            )
        encoded_frames = sequences[sequence]
        quality = quality or 75
    encoded = encode_sequence(encoded_frames, quality=quality, h=4, v=2)
    return build_mjpeg_application(encoded)
