"""Tile templates (Fig. 3).

A tile bundles a processing element, local instruction/data memories, a
network interface, optional peripherals (master tiles) and an optional
communication assist.  MAMPS currently ships two tile types (Section 5.3.2):
the *master* tile (Microblaze, up to 256 kB modified-Harvard memory, board
peripherals) and the *slave* tile (the same without peripherals); the
template additionally models the CA-extended tile (Fig. 3, Tile 3) and the
hardware-IP tile (Fig. 3, Tile 4) so the Section 6.3 experiment and the
paper's future-work variants can be expressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.arch.components import (
    CommunicationAssist,
    Memory,
    MICROBLAZE,
    NetworkInterface,
    Peripheral,
    ProcessorType,
)
from repro.exceptions import ArchitectureError

#: Memory ceiling of the Microblaze tile template (Section 5.3.2:
#: "includes up to 256kB memory in a Modified Harvard configuration").
MAX_TILE_MEMORY_BYTES = 256 * 1024


@dataclass
class Tile:
    """One tile of the platform.

    Parameters
    ----------
    name:
        Unique tile name (becomes the processor name in mappings).
    processor:
        The PE type, or ``None`` for a hardware-IP tile (Fig. 3, Tile 4)
        whose actor is implemented directly in logic.
    instruction_memory, data_memory:
        The modified-Harvard local memories.
    network_interface:
        The standardized NI.
    peripherals:
        Board peripherals; only master tiles have any.
    communication_assist:
        Present on CA tiles; offloads (de)serialization from the PE.
    role:
        "master", "slave" or "ip" -- the template variant.
    """

    name: str
    processor: Optional[ProcessorType] = MICROBLAZE
    instruction_memory: Memory = field(
        default_factory=lambda: Memory(128 * 1024)
    )
    data_memory: Memory = field(default_factory=lambda: Memory(128 * 1024))
    network_interface: NetworkInterface = field(
        default_factory=NetworkInterface
    )
    peripherals: Tuple[Peripheral, ...] = ()
    communication_assist: Optional[CommunicationAssist] = None
    role: str = "slave"

    def __post_init__(self) -> None:
        if not self.name:
            raise ArchitectureError("tile needs a name")
        if self.role not in ("master", "slave", "ip"):
            raise ArchitectureError(
                f"tile {self.name!r}: unknown role {self.role!r}"
            )
        if self.role == "ip" and self.processor is not None:
            raise ArchitectureError(
                f"tile {self.name!r}: IP tiles have no processor"
            )
        if self.role != "ip" and self.processor is None:
            raise ArchitectureError(
                f"tile {self.name!r}: non-IP tiles need a processor"
            )
        if self.peripherals and self.role != "master":
            raise ArchitectureError(
                f"tile {self.name!r}: only master tiles may own "
                "peripherals (predictability by not sharing them)"
            )
        total = (
            self.instruction_memory.capacity_bytes
            + self.data_memory.capacity_bytes
        )
        if self.role != "ip" and total > MAX_TILE_MEMORY_BYTES:
            raise ArchitectureError(
                f"tile {self.name!r}: {total} bytes of memory exceeds the "
                f"{MAX_TILE_MEMORY_BYTES} byte template ceiling"
            )

    @property
    def pe_type(self) -> Optional[str]:
        """Processing-element type name, for implementation matching."""
        return self.processor.name if self.processor else None

    @property
    def has_ca(self) -> bool:
        return self.communication_assist is not None

    @property
    def memory_capacity(self) -> int:
        return (
            self.instruction_memory.capacity_bytes
            + self.data_memory.capacity_bytes
        )


def master_tile(
    name: str,
    peripherals: Tuple[Peripheral, ...] = (Peripheral("uart"),),
    instruction_kb: int = 128,
    data_kb: int = 128,
    with_ca: bool = False,
) -> Tile:
    """The master tile of Section 5.3.2: Microblaze + peripherals."""
    return Tile(
        name=name,
        processor=MICROBLAZE,
        instruction_memory=Memory(instruction_kb * 1024),
        data_memory=Memory(data_kb * 1024),
        peripherals=peripherals,
        communication_assist=CommunicationAssist() if with_ca else None,
        role="master",
    )


def slave_tile(
    name: str,
    instruction_kb: int = 128,
    data_kb: int = 128,
    with_ca: bool = False,
) -> Tile:
    """The slave tile: a master without peripheral access."""
    return Tile(
        name=name,
        processor=MICROBLAZE,
        instruction_memory=Memory(instruction_kb * 1024),
        data_memory=Memory(data_kb * 1024),
        communication_assist=CommunicationAssist() if with_ca else None,
        role="slave",
    )


def ip_tile(name: str) -> Tile:
    """A hardware-IP tile (Fig. 3 Tile 4): an actor in logic behind an NI."""
    return Tile(
        name=name,
        processor=None,
        instruction_memory=Memory(1024),
        data_memory=Memory(1024),
        role="ip",
    )
