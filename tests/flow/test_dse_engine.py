"""Tests for the parallel, cached design-space exploration engine."""

from fractions import Fraction

import pytest

from repro.appmodel import (
    ActorImplementation,
    ApplicationModel,
    ImplementationMetrics,
    MemoryRequirements,
)
from repro.arch import architecture_from_template
from repro.flow.dse import (
    COMPACT_MIX,
    UNIFORM_MIX,
    CandidatePoint,
    DesignSpace,
    EvaluationCache,
    Evaluator,
    ParallelExplorer,
    ParetoFront,
    TileMix,
    explore_design_space,
)
from repro.flow.fingerprint import (
    application_fingerprint,
    architecture_fingerprint,
)
from repro.flow.report import exploration_csv, format_exploration_report
from repro.mapping.flow import EFFORT_LEVELS, MappingEffort
from repro.sdf import SDFGraph


def build_chain_app(name="engine_chain", wcets=(500, 700, 300)):
    g = SDFGraph(name)
    names = [chr(ord("P") + i) for i in range(len(wcets))]
    for actor, t in zip(names, wcets):
        g.add_actor(actor, execution_time=t)
    for src, dst in zip(names, names[1:]):
        g.add_edge(f"{src.lower()}{dst.lower()}", src, dst, token_size=16)
    return ApplicationModel(
        graph=g,
        implementations=[
            ActorImplementation(
                actor=actor, pe_type="microblaze",
                metrics=ImplementationMetrics(
                    wcet=t, memory=MemoryRequirements(4096, 2048)
                ),
            )
            for actor, t in zip(names, wcets)
        ],
    )


@pytest.fixture
def app():
    return build_chain_app()


@pytest.fixture
def space():
    return DesignSpace(tile_counts=(1, 2, 3), interconnects=("fsl", "noc"))


class TestDesignSpace:
    def test_enumeration_order_is_deterministic(self, space):
        assert [c.label for c in space.points()] == [
            "1t/fsl", "2t/fsl", "2t/noc", "3t/fsl", "3t/noc"
        ]
        assert space.points() == space.points()

    def test_single_tile_dedupes_interconnects(self):
        space = DesignSpace(tile_counts=(1,), interconnects=("fsl", "noc"))
        assert len(space) == 1

    def test_heterogeneous_mix_adds_points_only_beyond_one_tile(self):
        space = DesignSpace(
            tile_counts=(1, 2), interconnects=("fsl",),
            mixes=(UNIFORM_MIX, COMPACT_MIX),
        )
        labels = [c.label for c in space.points()]
        # the compact mix collapses onto uniform for the single tile
        assert labels == ["1t/fsl", "2t/fsl", "2t/fsl@compact"]

    def test_ca_axis(self):
        space = DesignSpace(
            tile_counts=(2,), interconnects=("fsl",),
            ca_options=(False, True),
        )
        assert [c.label for c in space.points()] == ["2t/fsl", "2t/fsl+CA"]

    def test_candidate_builds_heterogeneous_architecture(self):
        candidate = CandidatePoint(
            tiles=3, interconnect="fsl", mix=COMPACT_MIX
        )
        arch = candidate.build_architecture()
        master, slave = arch.tile("tile0"), arch.tile("tile1")
        assert master.memory_capacity == 256 * 1024
        assert slave.memory_capacity == 128 * 1024


class TestFingerprints:
    def test_application_fingerprint_is_content_addressed(self):
        a, b = build_chain_app(), build_chain_app()
        assert a is not b
        assert application_fingerprint(a) == application_fingerprint(b)

    def test_application_fingerprint_sees_wcet_changes(self):
        a = build_chain_app()
        b = build_chain_app(wcets=(500, 700, 301))
        assert application_fingerprint(a) != application_fingerprint(b)

    def test_architecture_fingerprint_ignores_name(self):
        a = architecture_from_template(3, "fsl", name="one")
        b = architecture_from_template(3, "fsl", name="two")
        assert architecture_fingerprint(a) == architecture_fingerprint(b)

    def test_architecture_fingerprint_sees_structure(self):
        base = architecture_from_template(3, "fsl")
        other_mem = architecture_from_template(3, "fsl", data_kb=64)
        other_kind = architecture_from_template(3, "noc")
        fp = architecture_fingerprint
        assert fp(base) != fp(other_mem)
        assert fp(base) != fp(other_kind)


class TestParetoFront:
    def test_incremental_matches_posthoc(self, app, space):
        result = explore_design_space(
            app, tile_counts=(1, 2, 3, 4), interconnects=("fsl", "noc")
        )
        posthoc = sorted(
            (
                p for p in result.points
                if not any(q.dominates(p) for q in result.points)
            ),
            key=lambda p: p.area.slices,
        )
        assert result.pareto_frontier() == posthoc

    def test_dominated_newcomer_rejected_and_evicts(self, app):
        result = explore_design_space(
            app, tile_counts=(1, 2), interconnects=("fsl",)
        )
        front = ParetoFront()
        for point in result.points:
            front.add(point)
        # re-adding an existing member must not grow the front
        size = len(front)
        front.add(result.points[0])
        assert len(front) == size


class TestParallelMatchesSerial:
    def test_pareto_sets_byte_identical(self, app, space):
        serial = ParallelExplorer(Evaluator(app), jobs=1).explore(space)
        parallel = ParallelExplorer(Evaluator(app), jobs=4).explore(space)
        assert serial.points == parallel.points
        assert serial.failures == parallel.failures
        assert serial.pareto_frontier() == parallel.pareto_frontier()
        assert serial.as_table() == parallel.as_table()

    def test_report_and_csv_render(self, app, space):
        result = ParallelExplorer(Evaluator(app), jobs=2).explore(space)
        report = format_exploration_report(result)
        assert "Pareto frontier" in report
        assert "engine:" in report
        csv = exploration_csv(result)
        assert csv.splitlines()[0].startswith("label,tiles,")
        assert len(csv.splitlines()) == len(result.points) + 1

    def test_bad_jobs_rejected(self, app):
        with pytest.raises(ValueError):
            ParallelExplorer(Evaluator(app), jobs=0)


class TestCaching:
    def test_cache_hits_skip_reevaluation(self, app, space):
        evaluator = Evaluator(app)
        explorer = ParallelExplorer(evaluator, jobs=1)
        first = explorer.explore(space)
        ran = evaluator.evaluations
        assert ran == len(space)
        second = explorer.explore(space)
        assert evaluator.evaluations == ran  # nothing re-analyzed
        assert second.cache_stats.hits >= len(space)
        assert second.points == first.points
        assert second.as_table() == first.as_table()

    def test_cache_shared_across_equal_applications(self, space):
        cache = EvaluationCache()
        ParallelExplorer(
            Evaluator(build_chain_app(), cache=cache), jobs=1
        ).explore(space)
        twin = Evaluator(build_chain_app(), cache=cache)
        ParallelExplorer(twin, jobs=1).explore(space)
        assert twin.evaluations == 0  # fingerprint matched; all hits

    def test_cache_keys_distinguish_applications(self, space):
        cache = EvaluationCache()
        ParallelExplorer(
            Evaluator(build_chain_app(), cache=cache), jobs=1
        ).explore(space)
        other = Evaluator(
            build_chain_app(wcets=(100, 100, 100)), cache=cache
        )
        ParallelExplorer(other, jobs=1).explore(space)
        assert other.evaluations == len(space)

    def test_cache_hits_are_rebranded_to_the_asking_candidate(self):
        # The single-tile platform is physically identical under either
        # interconnect kind, so the two sweeps share a cache entry -- but
        # each must see its own labels back.
        cache = EvaluationCache()
        fsl = ParallelExplorer(
            Evaluator(build_chain_app(), cache=cache), jobs=1
        ).explore(DesignSpace(tile_counts=(1,), interconnects=("fsl",)))
        noc_evaluator = Evaluator(build_chain_app(), cache=cache)
        noc = ParallelExplorer(noc_evaluator, jobs=1).explore(
            DesignSpace(tile_counts=(1,), interconnects=("noc",))
        )
        assert noc_evaluator.evaluations == 0  # shared the analysis
        assert [p.label for p in fsl.points] == ["1t/fsl"]
        assert [p.label for p in noc.points] == ["1t/noc"]
        assert noc.points[0].throughput == fsl.points[0].throughput

    def test_cache_keys_distinguish_strategies(self, app):
        # Same candidate platform, different mapping strategy: the second
        # sweep must re-evaluate every point (no false cache hit).
        from repro.mapping import StrategyTuple

        cache = EvaluationCache()
        for strategy in (
            StrategyTuple(),
            StrategyTuple(binding="spiral"),
            StrategyTuple(buffer_policy="exponential"),
            StrategyTuple(binding="ga", seed=1),
            StrategyTuple(binding="ga", seed=2),
        ):
            evaluator = Evaluator(app, cache=cache)
            space = DesignSpace(
                tile_counts=(1, 2), interconnects=("fsl",),
                strategy=strategy,
            )
            ParallelExplorer(evaluator, jobs=1).explore(space)
            assert evaluator.evaluations == len(space)

    def test_same_strategy_still_hits(self, app):
        from repro.mapping import StrategyTuple

        cache = EvaluationCache()
        space = DesignSpace(
            tile_counts=(1, 2), interconnects=("fsl",),
            strategy=StrategyTuple(binding="spiral"),
        )
        ParallelExplorer(Evaluator(app, cache=cache), jobs=1).explore(space)
        twin = Evaluator(app, cache=cache)
        ParallelExplorer(twin, jobs=1).explore(space)
        assert twin.evaluations == 0

    def test_strategy_shows_up_in_labels_and_csv(self, app):
        from repro.mapping import StrategyTuple

        space = DesignSpace(
            tile_counts=(2,), interconnects=("fsl",),
            strategy=StrategyTuple(binding="spiral"),
        )
        result = ParallelExplorer(Evaluator(app), jobs=1).explore(space)
        assert [p.label for p in result.points] == [
            "2t/fsl#binding=spiral"
        ]
        csv = exploration_csv(result)
        assert csv.splitlines()[0].endswith(",strategy")
        assert "binding=spiral" in csv.splitlines()[1]

    def test_promoted_point_keeps_its_strategy(self, app):
        from repro.flow import DesignFlow
        from repro.mapping import StrategyTuple

        result = explore_design_space(
            app, tile_counts=(2,), interconnects=("fsl",),
            binding="spiral", buffer_policy="exponential",
        )
        point = result.points[0]
        assert point.strategy == StrategyTuple(
            binding="spiral", buffer_policy="exponential"
        )
        flow = DesignFlow.from_design_point(app, point)
        assert flow.pipeline is not None
        assert flow.pipeline.strategies == point.strategy

    def test_cache_keys_distinguish_effort(self, app):
        cache = EvaluationCache()
        for effort in ("low", "normal"):
            evaluator = Evaluator(app, cache=cache)
            space = DesignSpace(
                tile_counts=(1, 2), interconnects=("fsl",), effort=effort
            )
            ParallelExplorer(evaluator, jobs=1).explore(space)
            assert evaluator.evaluations == len(space)

    def test_failures_are_cached_too(self):
        # 1 kB of data memory cannot hold the buffers: mapping fails
        tiny = TileMix("tiny", master_kb=(1, 1), slave_kb=(1, 1))
        space = DesignSpace(
            tile_counts=(2,), interconnects=("fsl",), mixes=(tiny,)
        )
        evaluator = Evaluator(build_chain_app())
        explorer = ParallelExplorer(evaluator, jobs=1)
        first = explorer.explore(space)
        assert first.failures and not first.points
        ran = evaluator.evaluations
        second = explorer.explore(space)
        assert evaluator.evaluations == ran
        assert second.failures == first.failures


class TestEarlyExit:
    CONSTRAINT = Fraction(1, 1500)

    def test_stops_at_first_feasible_point(self, app, space):
        evaluator = Evaluator(app, constraint=self.CONSTRAINT)
        result = ParallelExplorer(evaluator, jobs=1).explore(
            space, early_exit=True
        )
        assert result.points[-1].constraint_met
        assert all(not p.constraint_met for p in result.points[:-1])
        assert result.skipped > 0
        assert evaluator.evaluations < len(space)

    def test_truncation_independent_of_jobs(self, app, space):
        serial = ParallelExplorer(
            Evaluator(app, constraint=self.CONSTRAINT), jobs=1
        ).explore(space, early_exit=True)
        parallel = ParallelExplorer(
            Evaluator(app, constraint=self.CONSTRAINT), jobs=4
        ).explore(space, early_exit=True)
        assert serial.points == parallel.points

    def test_unmeetable_constraint_evaluates_everything(self, app, space):
        result = ParallelExplorer(
            Evaluator(app, constraint=Fraction(1, 10)), jobs=1
        ).explore(space, early_exit=True)
        assert result.skipped == 0
        assert result.best_meeting_constraint() is None

    def test_early_exit_without_constraint_rejected(self, app, space):
        with pytest.raises(ValueError):
            ParallelExplorer(Evaluator(app), jobs=1).explore(
                space, early_exit=True
            )


class TestFlowHandOff:
    def test_from_design_point_accepts_evaluated_point(self, app):
        from repro.flow import DesignFlow

        result = explore_design_space(
            app, tile_counts=(1, 2), interconnects=("fsl",)
        )
        best = result.best_meeting_constraint()
        flow = DesignFlow.from_design_point(app, best)
        assert flow.arch.tile_names()[0] == "tile0"
        assert len(flow.arch.tiles) == best.tiles

    def test_from_design_point_accepts_candidate(self, app):
        from repro.flow import DesignFlow

        candidate = CandidatePoint(tiles=2, interconnect="fsl")
        flow = DesignFlow.from_design_point(app, candidate)
        assert len(flow.arch.tiles) == 2

    def test_bare_point_without_candidate_rejected(self, app):
        from repro.flow import DesignFlow
        from repro.arch.area import AreaEstimate
        from repro.flow.dse import DesignPoint

        bare = DesignPoint(
            tiles=1, interconnect="fsl", with_ca=False,
            throughput=Fraction(1), area=AreaEstimate(1, 1),
            constraint_met=True,
        )
        with pytest.raises(ValueError):
            DesignFlow.from_design_point(app, bare)


class TestMappingEffort:
    def test_presets_resolve(self):
        assert MappingEffort.of("low") is EFFORT_LEVELS["low"]
        assert MappingEffort.of(EFFORT_LEVELS["high"]).name == "high"

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            MappingEffort.of("heroic")

    def test_levels_are_ordered(self):
        low, normal, high = (
            EFFORT_LEVELS[k] for k in ("low", "normal", "high")
        )
        assert low.max_buffer_rounds < normal.max_buffer_rounds
        assert normal.max_buffer_rounds < high.max_buffer_rounds
        assert low.max_iterations < normal.max_iterations


class TestCLI:
    def test_explore_command_with_flags(self, capsys):
        from repro.cli import main

        code = main(
            ["explore", "gradient", "--max-tiles", "2", "--jobs", "2",
             "--effort", "low", "--heterogeneous"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2t/fsl@compact" in out
        assert "engine:" in out

    def test_explore_csv_output(self, capsys):
        from repro.cli import main

        assert main(
            ["explore", "gradient", "--max-tiles", "2", "--csv"]
        ) == 0
        out = capsys.readouterr().out
        assert out.startswith("label,tiles,")


class TestUseCaseEvaluator:
    def make_pair(self):
        return [
            build_chain_app("uc_video", (500, 700, 300)),
            build_chain_app("uc_audio", (150, 250)),
        ]

    def test_combined_point_reports_bottleneck_guarantee(self):
        from repro.flow.dse import UseCaseEvaluator

        apps = self.make_pair()
        space = DesignSpace(tile_counts=(2,), interconnects=("fsl",))
        candidate = space.points()[0]
        shared = EvaluationCache()
        combined = UseCaseEvaluator(apps, cache=shared).evaluate(candidate)
        singles = [
            Evaluator(app, cache=shared).evaluate(candidate)
            for app in apps
        ]
        assert combined.feasible
        assert combined.point.throughput == min(
            s.point.throughput for s in singles
        )

    def test_multi_app_explore_shares_the_cache_per_app(self):
        from repro.flow.dse import UseCaseEvaluator

        apps = self.make_pair()
        space = DesignSpace(tile_counts=(1, 2), interconnects=("fsl",))
        cache = EvaluationCache()
        evaluator = UseCaseEvaluator(apps, cache=cache)
        ParallelExplorer(evaluator).explore(space)
        assert evaluator.evaluations == len(apps) * len(space)
        # a later single-app sweep re-uses the per-app entries
        single = Evaluator(apps[0], cache=cache)
        ParallelExplorer(single).explore(space)
        assert single.evaluations == 0

    def test_explore_design_space_accepts_a_sequence(self):
        result = explore_design_space(
            self.make_pair(),
            tile_counts=(1, 2),
            interconnects=("fsl",),
        )
        assert len(result.points) == 2
        assert all(p.constraint_met for p in result.points)

    def test_infeasible_app_names_the_culprit(self):
        from repro.flow.dse import UseCaseEvaluator

        apps = self.make_pair()
        evaluator = UseCaseEvaluator(
            apps, fixed={"uc_audio": {"P": "tile9"}}
        )
        candidate = DesignSpace(
            tile_counts=(2,), interconnects=("fsl",)
        ).points()[0]
        outcome = evaluator.evaluate(candidate)
        assert not outcome.feasible
        assert "uc_audio" in outcome.reason

    def test_duplicate_names_rejected(self):
        from repro.flow.dse import UseCaseEvaluator

        app = build_chain_app("same")
        with pytest.raises(ValueError, match="distinct"):
            UseCaseEvaluator([app, build_chain_app("same")])

    def test_constraint_gates_every_app(self):
        from repro.flow.dse import UseCaseEvaluator

        apps = self.make_pair()
        # achievable for audio, hopeless for the video chain
        evaluator = UseCaseEvaluator(
            apps,
            constraints={"uc_video": Fraction(1, 100),
                         "uc_audio": Fraction(1, 100000)},
        )
        candidate = DesignSpace(
            tile_counts=(2,), interconnects=("fsl",)
        ).points()[0]
        outcome = evaluator.evaluate(candidate)
        assert outcome.feasible
        assert not outcome.point.constraint_met
