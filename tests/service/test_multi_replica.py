"""Multi-replica property: N schedulers + one workspace = one flow.

Replicas sharing a workspace coordinate through nothing but the
content-addressed artifact store (atomic, idempotent writes).  Whatever
the interleaving, the observable outcome must be *one computation's
worth* of byte-identical artifacts, and every replica must serve the
exact same canonical response text.
"""

import threading
import time
from pathlib import Path
from typing import Dict

from repro.service import FlowScheduler

SOLO = {
    "name": "solo",
    "app": {"sequence": "gradient", "frames": 1},
    "architecture": {"tiles": 2},
    "mapping": {"fixed": {"VLD": "tile0"}},
}


def artifact_tree(workspace: Path) -> Dict[str, bytes]:
    root = workspace / "artifacts"
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*.json"))
    }


def wait_done(scheduler, job_id, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        view = scheduler.get(job_id)
        if view["status"] in ("done", "failed"):
            return view
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never finished")


class TestSharedWorkspaceReplicas:
    def test_concurrent_replicas_produce_one_computation(self, tmp_path):
        """Two replicas (one thread-, one process-backed) race the same
        spec; the workspace ends up exactly as a solo run leaves it."""
        shared = tmp_path / "shared"
        replica_a = FlowScheduler(
            shared, jobs=1, backend="thread", replica="r-a"
        )
        replica_b = FlowScheduler(
            shared, jobs=1, backend="process", replica="r-b"
        )
        texts = {}
        try:
            barrier = threading.Barrier(2)

            def race(name, scheduler):
                barrier.wait()
                view = wait_done(
                    scheduler, scheduler.submit(SOLO)["id"]
                )
                assert view["status"] == "done"
                texts[name] = scheduler.result_text(view["id"])

            threads = [
                threading.Thread(target=race, args=("a", replica_a)),
                threading.Thread(target=race, args=("b", replica_b)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
                assert not thread.is_alive()
        finally:
            replica_a.close()
            replica_b.close()

        assert set(texts) == {"a", "b"}
        assert texts["a"] == texts["b"], (
            "replicas served different response bytes"
        )

        # the shared tree is exactly what one solo computation writes
        with FlowScheduler(tmp_path / "solo", jobs=1) as reference:
            wait_done(reference, reference.submit(SOLO)["id"])
        assert artifact_tree(shared) == artifact_tree(tmp_path / "solo")

    def test_second_replica_serves_from_first_replicas_artifacts(
        self, tmp_path
    ):
        shared = tmp_path / "shared"
        with FlowScheduler(shared, jobs=1, replica="warm") as first:
            wait_done(first, first.submit(SOLO)["id"])
        # a fresh replica over the same workspace answers instantly,
        # without computing anything
        with FlowScheduler(shared, jobs=1, replica="cold") as second:
            view = second.submit(SOLO)
            assert view["status"] == "done"
            assert view["source"] == "artifacts"
            assert second.counters.computed == 0
            assert second.counters.artifact_hits == 1
