"""Legacy setup shim.

The metadata lives in pyproject.toml; this file exists so that editable
installs work on environments whose setuptools predates PEP 660 (no
``bdist_wheel``/editable-wheel support).
"""

from setuptools import setup

setup()
