"""Self-timed execution of SDF graphs.

*Self-timed* execution fires every actor as soon as it is ready (and, when
resource constraints are given, as soon as its processor is free and the
static-order schedule designates it).  For consistent, deadlock-free SDF
graphs self-timed execution reaches a periodic regime whose rate equals the
maximal achievable throughput [Ghamarian et al. 2006]; the state-space
throughput analysis in :mod:`repro.sdf.throughput` is built directly on this
engine, as are deadlock detection, static-order schedule construction
(:mod:`repro.mapping.scheduling`) and buffer sizing.

Semantics follow SDF3: tokens are consumed at firing *start* and produced at
firing *end*.  Concurrent firings of one actor ("auto-concurrency") are
limited by ``auto_concurrency`` (default 1, matching a software actor bound
to a processor); pass ``None`` for the unlimited theoretical semantics, in
which case every actor must have at least one input edge.

Implementation notes (the hot path of every throughput guarantee)
-----------------------------------------------------------------
The engine is *incremental*: instead of re-scanning every actor after each
event, it keeps a dirty-set of actors whose inputs, concurrency slots or
processors changed since they were last examined.  This is sound because a
firing *start* only consumes tokens and occupies resources -- it can never
enable another firing -- so enabling events are exactly: token production
at a firing *end*, a concurrency slot freeing at a firing end, and a
processor freeing at a firing end.  Each of those marks precisely the
affected actors (the consuming endpoint of each produced-on edge, the
finishing actor, the processor's actors).  All per-step state lives in
integer-indexed arrays precomputed once from the graph in ``__init__``;
name-keyed views (:attr:`tokens`, :attr:`completed`, ...) are derived on
demand for callers.

The dirty-set engine starts firings in the same deterministic order as the
naive full rescan (static-order processors in declaration order, then the
remaining actors in graph insertion order), so recorded traces, hook-call
order and tie-breaking among simultaneous completions are identical to the
retained reference implementation
(:mod:`repro.sdf.simulation_reference`), which the differential test suite
checks on randomized graphs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import GraphError, SimulationError
from repro.sdf.graph import SDFGraph


@dataclass(frozen=True)
class Firing:
    """One completed (or ongoing) actor firing."""

    actor: str
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class SimulationTrace:
    """Recorded execution: firings plus per-edge occupancy statistics.

    ``completed_count`` is a *snapshot* taken when :meth:`SelfTimedSimulator.run`
    returns (and at reset); it does not mutate retroactively if the simulator
    keeps stepping after the trace was handed out.
    """

    firings: List[Firing] = field(default_factory=list)
    max_tokens: Dict[str, int] = field(default_factory=dict)
    completed_count: Dict[str, int] = field(default_factory=dict)

    def firings_of(self, actor: str) -> List[Firing]:
        return [f for f in self.firings if f.actor == actor]

    def makespan(self) -> int:
        return max((f.end for f in self.firings), default=0)


class SelfTimedSimulator:
    """Discrete-event self-timed executor for an SDF graph.

    Parameters
    ----------
    graph:
        The graph to execute.
    auto_concurrency:
        Maximum simultaneous firings per actor; ``None`` for unlimited.
    processor_of:
        Optional binding of actor name to processor name.  Actors bound to
        the same processor exclude one another in time.
    static_order:
        Optional per-processor cyclic firing order (actor names).  When
        given for a processor, that processor only starts the next actor in
        its order (blocking until it is ready), exactly like the lookup-table
        scheduler MAMPS generates (Section 6.3).  Actors bound to the
        processor but absent from its order are *interleaved work*: they may
        run whenever the processor is idle (the model of the communication
        library's (de)serialization calls, which happen inside the actor
        wrappers rather than as scheduled entities).  Interleaved actors get
        priority over the order head when both are ready, mirroring the
        wrapper servicing communication before dispatching the next actor.
    execution_time_of:
        Optional override returning the duration of the *k*-th firing of an
        actor (k counts from 0).  Defaults to the actor's static
        ``execution_time``.  The platform simulator uses this hook to feed
        measured, data-dependent execution times through the same engine.
    record_trace:
        Keep a full firing list (memory-heavy for long runs).

    :meth:`reset` re-reads every edge's ``initial_tokens`` from the graph,
    so callers may mutate initial token counts in place (the buffer-sizing
    warm path does) and re-analyze without rebuilding the simulator.
    """

    def __init__(
        self,
        graph: SDFGraph,
        auto_concurrency: Optional[int] = 1,
        processor_of: Optional[Dict[str, str]] = None,
        static_order: Optional[Dict[str, Sequence[str]]] = None,
        execution_time_of: Optional[Callable[[str, int], int]] = None,
        on_finish: Optional[Callable[[str, int], None]] = None,
        record_trace: bool = False,
    ) -> None:
        if auto_concurrency is not None and auto_concurrency < 1:
            raise GraphError("auto_concurrency must be >= 1 or None")
        self.graph = graph
        self.auto_concurrency = auto_concurrency
        self.processor_of = dict(processor_of or {})
        self.static_order = {
            proc: list(order) for proc, order in (static_order or {}).items()
        }
        self._execution_time_of = execution_time_of
        self._on_finish = on_finish
        self.record_trace = record_trace

        for proc, order in self.static_order.items():
            if not order:
                raise GraphError(f"static order for {proc!r} is empty")
            for actor in order:
                if actor not in graph:
                    raise GraphError(
                        f"static order for {proc!r} names unknown actor "
                        f"{actor!r}"
                    )
                if self.processor_of.get(actor) != proc:
                    raise GraphError(
                        f"actor {actor!r} appears in the static order of "
                        f"{proc!r} but is not bound to it"
                    )
        # Actors bound to a static-order processor but not listed in its
        # order run interleaved (communication-library work).
        in_some_order = {
            a for order in self.static_order.values() for a in order
        }
        self._interleaved: Dict[str, List[str]] = {}
        for actor, proc in self.processor_of.items():
            if proc in self.static_order and actor not in in_some_order:
                self._interleaved.setdefault(proc, []).append(actor)

        for actor in graph:
            cap = (
                actor.concurrency
                if actor.concurrency is not None
                else auto_concurrency
            )
            if cap is None and not graph.in_edges(actor.name):
                raise GraphError(
                    f"actor {actor.name!r} has no input edges; unlimited "
                    "auto-concurrency would fire it infinitely often at "
                    "time 0 (add a self-edge or set a concurrency cap)"
                )

        # ---- integer-indexed adjacency, precomputed once ----
        actors = graph.actors
        edges = graph.edges
        self._actor_names: List[str] = [a.name for a in actors]
        self._actor_index: Dict[str, int] = {
            name: i for i, name in enumerate(self._actor_names)
        }
        # Edge *objects* are kept so reset() can re-read initial tokens
        # mutated in place by the buffer-sizing warm path.
        self._edge_objs: Tuple = edges
        self._edge_names: List[str] = [e.name for e in edges]
        edge_index = {name: i for i, name in enumerate(self._edge_names)}
        self._edge_index: Dict[str, int] = edge_index

        self._exec_time: List[int] = [a.execution_time for a in actors]
        self._cap: List[Optional[int]] = [
            a.concurrency if a.concurrency is not None else auto_concurrency
            for a in actors
        ]
        # Per-actor (edge index, rate) arrays and the per-edge consumer.
        self._in_rates: List[List[Tuple[int, int]]] = [
            [(edge_index[e.name], e.consumption)
             for e in graph.in_edges(a.name)]
            for a in actors
        ]
        self._out_rates: List[List[Tuple[int, int]]] = [
            [(edge_index[e.name], e.production)
             for e in graph.out_edges(a.name)]
            for a in actors
        ]
        self._consumer_of: List[int] = [
            self._actor_index[e.dst] for e in edges
        ]

        # Processors as small integers; static-order processors keep their
        # declaration order (it fixes the deterministic start order).
        proc_index: Dict[str, int] = {}
        proc_names: List[str] = []

        def proc_id(name: str) -> int:
            pid = proc_index.get(name)
            if pid is None:
                pid = len(proc_names)
                proc_index[name] = pid
                proc_names.append(name)
            return pid

        self._static_proc_ids: List[int] = [
            proc_id(proc) for proc in self.static_order
        ]
        self._proc_of: List[int] = [-1] * len(actors)
        for i, name in enumerate(self._actor_names):
            proc = self.processor_of.get(name)
            if proc is not None:
                self._proc_of[i] = proc_id(proc)
        self._proc_names: List[str] = proc_names
        self._proc_index: Dict[str, int] = proc_index
        n_procs = len(proc_names)
        self._proc_is_static: List[bool] = [False] * n_procs
        self._static_rank: List[int] = [-1] * n_procs
        for rank, pid in enumerate(self._static_proc_ids):
            self._proc_is_static[pid] = True
            self._static_rank[pid] = rank
        self._proc_members: List[List[int]] = [[] for _ in range(n_procs)]
        for i, pid in enumerate(self._proc_of):
            if pid >= 0:
                self._proc_members[pid].append(i)
        self._order_idx: Dict[int, List[int]] = {
            proc_index[proc]: [self._actor_index[a] for a in order]
            for proc, order in self.static_order.items()
        }
        self._interleaved_idx: Dict[int, List[int]] = {
            proc_index[proc]: [self._actor_index[a] for a in names]
            for proc, names in self._interleaved.items()
        }
        # Actors the greedy (non-static-order) section may start, in graph
        # insertion order.
        self._greedy_actors: List[int] = [
            i for i in range(len(actors))
            if self._proc_of[i] < 0
            or not self._proc_is_static[self._proc_of[i]]
        ]

        self.reset()

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Return to the graph's initial state at time 0.

        Initial token counts are re-read from the edge objects, so in-place
        mutations of ``initial_tokens`` take effect on the next reset.
        """
        self.now = 0
        self._tokens: List[int] = [
            e.initial_tokens for e in self._edge_objs
        ]
        n = len(self._actor_names)
        self._ongoing: List[int] = [0] * n
        self._completed: List[int] = [0] * n
        self._started: List[int] = [0] * n
        # (end, seq, actor index, start)
        self._queue: List[Tuple[int, int, int, int]] = []
        self._seq = 0
        self._proc_busy: List[int] = [0] * len(self._proc_names)
        self._order_pos: List[int] = [0] * len(self._proc_names)
        self._max_tokens: List[int] = list(self._tokens)
        self._trace = SimulationTrace(
            max_tokens={
                name: self._tokens[i]
                for i, name in enumerate(self._edge_names)
            },
            completed_count={name: 0 for name in self._actor_names},
        )
        # Everything is potentially startable at time 0.
        self._actor_dirty: List[bool] = [False] * n
        self._dirty_actors: List[int] = []
        self._proc_dirty: List[bool] = [False] * len(self._proc_names)
        self._dirty_procs: List[int] = []
        for pid in self._static_proc_ids:
            self._proc_dirty[pid] = True
            self._dirty_procs.append(pid)
        for idx in self._greedy_actors:
            self._actor_dirty[idx] = True
            self._dirty_actors.append(idx)

    @property
    def trace(self) -> SimulationTrace:
        """The recorded trace, with ``completed_count`` refreshed.

        Refreshing on access (rather than on every firing) keeps the hot
        loop free of dict writes while step()-driven callers still read
        current counts; a ``completed_count`` dict obtained earlier is a
        snapshot and does not mutate retroactively.
        """
        return self._finalize_trace()

    @property
    def tokens(self) -> Dict[str, int]:
        """Current token counts per edge name (snapshot dict)."""
        t = self._tokens
        return {name: t[i] for i, name in enumerate(self._edge_names)}

    @property
    def completed(self) -> Dict[str, int]:
        """Completed firing counts per actor."""
        c = self._completed
        return {name: c[i] for i, name in enumerate(self._actor_names)}

    @property
    def started(self) -> Dict[str, int]:
        """Started firing counts per actor (>= completed)."""
        s = self._started
        return {name: s[i] for i, name in enumerate(self._actor_names)}

    def completed_of(self, actor: str) -> int:
        """Completed firing count of one actor (O(1); the hot-loop form)."""
        return self._completed[self._actor_index[actor]]

    def started_of(self, actor: str) -> int:
        """Started firing count of one actor (O(1))."""
        return self._started[self._actor_index[actor]]

    def ongoing_firings(self) -> List[Tuple[str, int]]:
        """(actor, remaining cycles) for every firing in flight, sorted.

        Remaining time is relative to :attr:`now`, which makes the tuple a
        time-shift-invariant component of the execution state -- exactly
        what recurrent-state detection needs.
        """
        names = self._actor_names
        return sorted(
            (names[idx], end - self.now)
            for end, _seq, idx, _start in self._queue
        )

    def state_key(self) -> Tuple:
        """Hashable, time-normalized execution state.

        Two equal keys mean the executions will evolve identically from this
        point on, which is the foundation of the periodic-phase detection in
        :mod:`repro.sdf.throughput`.  The key is built from the preallocated
        index arrays (token counts in edge declaration order, in-flight
        firings as sorted (actor index, remaining) pairs, static-order
        positions in declaration order); it is an opaque value -- only
        equality and hashing are meaningful.
        """
        now = self.now
        firing_part = tuple(sorted(
            (idx, end - now) for end, _seq, idx, _start in self._queue
        ))
        order_pos = self._order_pos
        order_idx = self._order_idx
        order_part = tuple(
            order_pos[pid] % len(order_idx[pid])
            for pid in self._static_proc_ids
        )
        return (tuple(self._tokens), firing_part, order_part)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _duration(self, idx: int) -> int:
        index = self._started[idx]
        if self._execution_time_of is not None:
            duration = self._execution_time_of(
                self._actor_names[idx], index
            )
        else:
            duration = self._exec_time[idx]
        if duration < 0:
            raise SimulationError(
                f"negative execution time for firing {index} of "
                f"{self._actor_names[idx]!r}"
            )
        return duration

    def _is_ready_idx(self, idx: int) -> bool:
        cap = self._cap[idx]
        if cap is not None and self._ongoing[idx] >= cap:
            return False
        tokens = self._tokens
        for e, c in self._in_rates[idx]:
            if tokens[e] < c:
                return False
        return True

    def _is_ready(self, actor: str) -> bool:
        return self._is_ready_idx(self._actor_index[actor])

    def _proc_free(self, proc: str) -> bool:
        pid = self._proc_index.get(proc, -1)
        return pid < 0 or self._proc_busy[pid] <= self.now

    # -- dirty-set bookkeeping -----------------------------------------
    def _mark_actor(self, idx: int) -> None:
        """Record that ``idx`` may have become startable."""
        pid = self._proc_of[idx]
        if pid >= 0 and self._proc_is_static[pid]:
            if not self._proc_dirty[pid]:
                self._proc_dirty[pid] = True
                self._dirty_procs.append(pid)
        elif not self._actor_dirty[idx]:
            self._actor_dirty[idx] = True
            self._dirty_actors.append(idx)

    def _mark_proc_free(self, pid: int) -> None:
        """Record that processor ``pid`` just went idle."""
        if self._proc_is_static[pid]:
            if not self._proc_dirty[pid]:
                self._proc_dirty[pid] = True
                self._dirty_procs.append(pid)
        else:
            dirty = self._actor_dirty
            stack = self._dirty_actors
            for idx in self._proc_members[pid]:
                if not dirty[idx]:
                    dirty[idx] = True
                    stack.append(idx)

    def _start_firing(self, idx: int) -> None:
        tokens = self._tokens
        for e, c in self._in_rates[idx]:
            tokens[e] -= c
        duration = self._duration(idx)
        end = self.now + duration
        self._started[idx] += 1
        self._ongoing[idx] += 1
        heapq.heappush(self._queue, (end, self._seq, idx, self.now))
        self._seq += 1
        pid = self._proc_of[idx]
        if pid >= 0:
            self._proc_busy[pid] = end

    def _finish_firing(self, idx: int, start: int) -> None:
        tokens = self._tokens
        maxes = self._max_tokens
        consumer = self._consumer_of
        for e, p in self._out_rates[idx]:
            value = tokens[e] + p
            tokens[e] = value
            if value > maxes[e]:
                maxes[e] = value
                # Dict write only on a fresh peak: rare after the warm-up
                # phase of a bounded graph, so the live trace dict stays
                # current at array speed.
                self._trace.max_tokens[self._edge_names[e]] = value
            self._mark_actor(consumer[e])
        self._ongoing[idx] -= 1
        completed_index = self._completed[idx]
        self._completed[idx] = completed_index + 1
        self._mark_actor(idx)
        pid = self._proc_of[idx]
        if pid >= 0:
            # The firing that just ended is the one that made the
            # processor busy (starts require a free processor), so the
            # processor is idle again as of now.
            self._mark_proc_free(pid)
        actor = self._actor_names[idx]
        if self.record_trace:
            self._trace.firings.append(Firing(actor, start, self.now))
        if self._on_finish is not None:
            # Called after token production, before any dependent firing
            # can start -- the hook point for value transport in the
            # platform simulator.
            self._on_finish(actor, completed_index)

    def _run_static_proc(self, pid: int, started: List[str]) -> None:
        """Start everything a static-order processor may start right now:
        interleaved (communication-library) work first, then the
        lookup-table head."""
        order = self._order_idx[pid]
        interleaved = self._interleaved_idx.get(pid, ())
        names = self._actor_names
        while self._proc_busy[pid] <= self.now:
            inter = -1
            for i in interleaved:
                if self._is_ready_idx(i):
                    inter = i
                    break
            if inter >= 0:
                self._start_firing(inter)
                started.append(names[inter])
                continue
            idx = order[self._order_pos[pid] % len(order)]
            if not self._is_ready_idx(idx):
                break
            self._start_firing(idx)
            self._order_pos[pid] += 1
            started.append(names[idx])

    def _start_all_ready(self) -> List[str]:
        """Start every firing allowed right now; returns started actor names.

        Only dirty actors/processors are examined.  A firing start consumes
        tokens and occupies resources but never enables another firing
        (tokens are produced at firing *end*), so one pass over the dirty
        sets reaches the same fixpoint as a full rescan -- and in the same
        order: static-order processors in declaration order, then the
        remaining actors in graph insertion order.
        """
        started: List[str] = []
        if self._dirty_procs:
            dirty_procs = self._dirty_procs
            self._dirty_procs = []
            if len(dirty_procs) > 1:
                dirty_procs.sort(key=self._static_rank.__getitem__)
            for pid in dirty_procs:
                self._proc_dirty[pid] = False
                self._run_static_proc(pid, started)
        if self._dirty_actors:
            dirty = self._dirty_actors
            self._dirty_actors = []
            if len(dirty) > 1:
                dirty.sort()
            names = self._actor_names
            proc_busy = self._proc_busy
            for idx in dirty:
                self._actor_dirty[idx] = False
                pid = self._proc_of[idx]
                if pid >= 0:
                    while (
                        self._is_ready_idx(idx)
                        and proc_busy[pid] <= self.now
                    ):
                        self._start_firing(idx)
                        started.append(names[idx])
                else:
                    while self._is_ready_idx(idx):
                        self._start_firing(idx)
                        started.append(names[idx])
        return started

    def step(self) -> List[Tuple[str, int]]:
        """Advance to the next completion instant.

        Starts any firings enabled at the current time first, then jumps to
        the earliest completion, finishes every firing ending then, and
        starts newly enabled firings.  Returns the list of (actor, end_time)
        completions, or an empty list when the execution is quiescent
        (deadlocked or finished).
        """
        self._start_all_ready()
        queue = self._queue
        if not queue:
            return []
        end = queue[0][0]
        self.now = end
        finished: List[Tuple[str, int]] = []
        names = self._actor_names
        while queue and queue[0][0] == end:
            _end, _seq, idx, start = heapq.heappop(queue)
            self._finish_firing(idx, start)
            finished.append((names[idx], end))
        self._start_all_ready()
        return finished

    def _finalize_trace(self) -> SimulationTrace:
        """Hand out the trace with a private ``completed_count`` snapshot.

        Each handout is a fresh :class:`SimulationTrace` owning its own
        completed-count dict, so a trace obtained earlier never mutates
        retroactively -- not even when the trace is finalized again by a
        later ``run()`` or property access.  ``firings`` and
        ``max_tokens`` are shared live views of the ongoing recording
        (their historic semantics).
        """
        completed = self._completed
        return SimulationTrace(
            firings=self._trace.firings,
            max_tokens=self._trace.max_tokens,
            completed_count={
                name: completed[i]
                for i, name in enumerate(self._actor_names)
            },
        )

    def run(
        self,
        max_time: Optional[int] = None,
        max_firings: Optional[int] = None,
        stop_when: Optional[Callable[["SelfTimedSimulator"], bool]] = None,
    ) -> SimulationTrace:
        """Run until quiescence or until a stop condition triggers.

        ``max_time`` bounds simulated time; ``max_firings`` bounds the total
        number of completed firings; ``stop_when`` is checked after every
        step.  At least one bound (or a graph that quiesces) is required,
        otherwise the call would not terminate.
        """
        if max_time is None and max_firings is None and stop_when is None:
            raise SimulationError(
                "run() needs max_time, max_firings or stop_when; self-timed "
                "execution of a live graph never quiesces on its own"
            )
        while True:
            finished = self.step()
            if not finished:
                return self._finalize_trace()
            if max_time is not None and self.now >= max_time:
                return self._finalize_trace()
            if max_firings is not None and (
                sum(self._completed) >= max_firings
            ):
                return self._finalize_trace()
            if stop_when is not None and stop_when(self):
                return self._finalize_trace()

    def is_quiescent(self) -> bool:
        """True when nothing is running and nothing can start."""
        if self._queue:
            return False
        for idx in range(len(self._actor_names)):
            pid = self._proc_of[idx]
            if pid >= 0 and self._proc_is_static[pid]:
                order = self._order_idx[pid]
                head = order[self._order_pos[pid] % len(order)]
                is_interleaved = idx in self._interleaved_idx.get(pid, ())
                if (head == idx or is_interleaved) and self._is_ready_idx(
                    idx
                ):
                    return False
            elif self._is_ready_idx(idx) and (
                pid < 0 or self._proc_busy[pid] <= self.now
            ):
                return False
        return True
