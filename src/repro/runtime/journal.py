"""The platform transition journal: every state change, as artifacts.

A :class:`~repro.runtime.manager.PlatformManager` is long-lived state;
the journal makes that state *durable* the same way flow results are --
each transition (configure, admit, depart, migrate) is one enveloped
``platform-event`` artifact in the workspace store, keyed by a
monotonically increasing sequence number.  A restarted manager replays
the events in order and reaches byte-identical state: events record
*decisions* (the chosen point and placement), never inputs to re-decide,
so replay performs zero throughput analyses and cannot diverge from the
original run.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.artifacts.schema import check_envelope, envelope
from repro.artifacts.store import ArtifactStore
from repro.exceptions import ReproError

#: Artifact kind of one journaled platform transition.
EVENT_KIND = "platform-event"
#: One platform per workspace (ROADMAP: "a long-lived stateful platform
#: per workspace"); the scope prefixes every event key.
DEFAULT_SCOPE = "platform"


class PlatformJournal:
    """Append-only event log over an :class:`ArtifactStore`.

    Events are plain enveloped documents (``store.put`` validates the
    envelope; no codec registration is needed because nothing decodes
    them through ``from_payload``).  Sequence numbers resume from
    whatever the store already holds, so several manager generations
    append to one history.
    """

    def __init__(
        self, store: ArtifactStore, scope: str = DEFAULT_SCOPE
    ) -> None:
        self.store = store
        self.scope = scope
        self._next_seq = 0
        for key in self.store.keys(EVENT_KIND):
            seq = self._seq_of(key)
            if seq is not None and seq >= self._next_seq:
                self._next_seq = seq + 1

    def _key(self, seq: int) -> str:
        return f"{self.scope}-{seq:08d}"

    def _seq_of(self, key: str) -> int | None:
        prefix = f"{self.scope}-"
        if not key.startswith(prefix):
            return None
        suffix = key[len(prefix):]
        return int(suffix) if suffix.isdigit() else None

    def __len__(self) -> int:
        return self._next_seq

    def append(self, event: str, data: Dict[str, Any]) -> str:
        """Persist one transition; returns the artifact key.

        ``data`` must be JSON-able (fractions already encoded as
        strings, payloads already enveloped); ``event`` names the
        transition kind (``configure``/``admit``/``depart``/``migrate``).
        """
        seq = self._next_seq
        body = {"seq": seq, "event": event, "data": data}
        key = self._key(seq)
        self.store.put(EVENT_KIND, key, envelope(EVENT_KIND, body))
        self._next_seq = seq + 1
        return key

    def events(self) -> List[Dict[str, Any]]:
        """All events of this scope, in sequence order.

        Raises :class:`ReproError` on a gap -- replaying across a hole
        would silently reconstruct a different platform.
        """
        out: List[Dict[str, Any]] = []
        for key in self.store.keys(EVENT_KIND):
            if self._seq_of(key) is None:
                continue
            payload = self.store.get(EVENT_KIND, key)
            if payload is None:
                raise ReproError(
                    f"platform journal entry {key!r} is unreadable"
                )
            check_envelope(payload, EVENT_KIND)
            out.append(payload)
        out.sort(key=lambda p: p["seq"])
        for position, payload in enumerate(out):
            if payload["seq"] != position:
                raise ReproError(
                    f"platform journal has a gap at sequence {position} "
                    f"(found {payload['seq']}); refusing to replay"
                )
        return out
