"""Buffer-size modelling and sizing.

Bounded channel capacities are modelled *inside* the SDF formalism (paper
Section 3: implicit edges "can also be used to model restrictions like
limited buffer sizes"): an edge with capacity ``beta`` gains a back-edge
from consumer to producer carrying ``beta - initial_tokens`` credit tokens.
The producer claims ``production`` credits per firing; the consumer returns
``consumption`` credits per firing.  Throughput analysis of the graph with
back-edges then *includes* the effect of finite buffers, which is what makes
the flow's throughput guarantee valid on the generated platform.

:func:`minimal_buffer_distribution` searches a small total-capacity
distribution that keeps the graph deadlock-free and, optionally, meets a
throughput constraint -- a practical greedy variant of the Pareto-space
exploration in Stuijk's thesis [14].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from math import gcd
from typing import Dict, Iterable, Optional, Tuple

from repro.exceptions import GraphError, ThroughputConstraintError
from repro.sdf.deadlock import is_deadlock_free
from repro.sdf.engine import ThroughputEngine
from repro.sdf.graph import Edge, SDFGraph
from repro.sdf.throughput import ThroughputResult, analyze_throughput

BUFFER_EDGE_PREFIX = "buf__"


@dataclass
class BufferDistribution:
    """Capacities (in tokens) per buffered edge name."""

    capacities: Dict[str, int] = field(default_factory=dict)

    def total_tokens(self) -> int:
        return sum(self.capacities.values())

    def total_bytes(self, graph: SDFGraph) -> int:
        """Memory footprint given per-edge token sizes."""
        return sum(
            cap * graph.edge(name).token_size
            for name, cap in self.capacities.items()
        )

    def __getitem__(self, edge_name: str) -> int:
        return self.capacities[edge_name]

    def __contains__(self, edge_name: str) -> bool:
        return edge_name in self.capacities


def minimal_capacity_bound(edge: Edge) -> int:
    """Smallest capacity that can possibly let both endpoints fire.

    ``p + c - gcd(p, c)`` is the classical liveness lower bound for a
    single edge between two actors; the capacity must additionally hold the
    initial tokens.
    """
    p, c = edge.production, edge.consumption
    bound = p + c - gcd(p, c)
    return max(bound, edge.initial_tokens)


def bufferable_edges(graph: SDFGraph) -> Tuple[Edge, ...]:
    """Edges that get a finite buffer on a platform: explicit inter-actor
    data edges.  Self-edges model state (one memory slot, no flow control)
    and implicit edges are analysis artifacts."""
    return graph.explicit_edges()


def _check_capacity(edge: Edge, capacity: int) -> None:
    """Shared capacity validation of :func:`add_buffer_edges` and
    :func:`retune_buffer_capacity` (one rule set, cold and warm path)."""
    if capacity < edge.initial_tokens:
        raise GraphError(
            f"capacity {capacity} of edge {edge.name!r} cannot hold its "
            f"{edge.initial_tokens} initial token(s)"
        )
    if capacity < max(edge.production, edge.consumption):
        raise GraphError(
            f"capacity {capacity} of edge {edge.name!r} is below a "
            f"single burst (production={edge.production}, "
            f"consumption={edge.consumption}); the graph could never run"
        )


def add_buffer_edges(
    graph: SDFGraph,
    distribution: BufferDistribution,
    name: Optional[str] = None,
) -> SDFGraph:
    """Return a copy of ``graph`` with credit back-edges for each capacity.

    Raises :class:`GraphError` when a capacity cannot hold the edge's
    initial tokens or is smaller than a single production/consumption burst
    (such a buffer could never work).
    """
    bounded = graph.copy(name or f"{graph.name}_bounded")
    for edge_name, capacity in distribution.capacities.items():
        edge = graph.edge(edge_name)
        if edge.is_self_edge:
            raise GraphError(
                f"self-edge {edge_name!r} cannot be buffered (its capacity "
                "is its initial token count)"
            )
        _check_capacity(edge, capacity)
        bounded.add_edge(
            f"{BUFFER_EDGE_PREFIX}{edge_name}",
            edge.dst,
            edge.src,
            production=edge.consumption,
            consumption=edge.production,
            initial_tokens=capacity - edge.initial_tokens,
            token_size=0,
            implicit=True,
        )
    return bounded


def buffer_edge_name(edge_name: str) -> str:
    """Name of the credit back-edge created for ``edge_name``."""
    return f"{BUFFER_EDGE_PREFIX}{edge_name}"


def retune_buffer_capacity(
    bounded: SDFGraph, edge_name: str, capacity: int
) -> None:
    """Re-point one modelled capacity of a bounded graph, in place.

    ``bounded`` must carry the credit back-edge :func:`add_buffer_edges`
    created for ``edge_name``; its initial tokens become
    ``capacity - initial_tokens(edge)``.  This is the warm path of the
    sizing search: one bounded graph is built and then retuned per
    candidate capacity instead of re-copied, and the simulator inside
    :class:`~repro.sdf.throughput.ThroughputAnalyzer` picks the new token
    counts up on its next reset.  Validation matches
    :func:`add_buffer_edges`.
    """
    edge = bounded.edge(edge_name)
    _check_capacity(edge, capacity)
    credit = bounded.edge(buffer_edge_name(edge_name))
    credit.initial_tokens = capacity - edge.initial_tokens


def _initial_distribution(graph: SDFGraph) -> BufferDistribution:
    return BufferDistribution(
        {e.name: minimal_capacity_bound(e) for e in bufferable_edges(graph)}
    )


def minimal_buffer_distribution(
    graph: SDFGraph,
    throughput_constraint: Optional[Fraction] = None,
    max_rounds: int = 200,
    step: int = 1,
) -> Tuple[BufferDistribution, ThroughputResult]:
    """Search a small buffer distribution for ``graph``.

    Phase 1 grows capacities from the structural lower bounds until the
    bounded graph is deadlock-free.  Phase 2 (when ``throughput_constraint``
    is given) is a monotone search over capacity: self-timed throughput
    never decreases when a buffer grows, so the smallest sufficient
    *uniform* growth is found by doubling probes plus binary search, and
    each edge is then independently trimmed back (binary search again)
    to the least capacity that still meets the constraint.  Every trial
    is one :class:`~repro.sdf.engine.ThroughputEngine` analysis of the
    in-place retuned bounded graph -- ``O(E * log(rounds))`` analyses
    instead of the historic per-edge-per-round resimulation
    (``O(E * rounds)``).

    Returns the distribution and the throughput analysis of the bounded
    graph.  Raises :class:`ThroughputConstraintError` when the constraint
    cannot be met within ``max_rounds`` uniform growth steps (e.g. it
    exceeds the processing bound of the actors).
    """
    distribution = _initial_distribution(graph)
    if not distribution.capacities:
        # Nothing to buffer (single actor / only self-edges).
        result = analyze_throughput(graph)
        return distribution, result

    # Warm path: build the bounded graph ONCE; every candidate after that
    # only retunes credit-edge initial tokens in place.  The engine below
    # is likewise built once -- its tiers re-read the mutated tokens per
    # analysis instead of rebuilding the analysis stack.
    bounded = add_buffer_edges(graph, distribution)

    def set_capacity(name: str, capacity: int) -> None:
        distribution.capacities[name] = capacity
        retune_buffer_capacity(bounded, name, capacity)

    # Phase 1: reach deadlock freedom.
    for _ in range(max_rounds):
        if is_deadlock_free(bounded):
            break
        for name in distribution.capacities:
            set_capacity(name, distribution.capacities[name] + step)
    else:
        raise ThroughputConstraintError(
            f"no deadlock-free buffer distribution for {graph.name!r} "
            f"within {max_rounds} rounds; the unbuffered graph likely "
            "deadlocks"
        )

    engine = ThroughputEngine(bounded)
    result = engine.analyze()

    if (
        throughput_constraint is None
        or result.throughput >= throughput_constraint
    ):
        return distribution, result

    # Phase 2: monotone capacity search.  Extra credit tokens can only
    # enable more firings, so every trial point (>= the phase-1
    # distribution everywhere) stays live and the untimed liveness
    # pre-check is skipped; for the same reason throughput is monotone
    # non-decreasing along the uniform-growth axis, which is what the
    # doubling probe and both binary searches rely on.
    base = dict(distribution.capacities)

    def try_uniform(extra: int) -> Fraction:
        for name, capacity in base.items():
            set_capacity(name, capacity + extra * step)
        return engine.analyze(check_deadlock=False).throughput

    # 2a: doubling probe for a sufficient uniform growth k <= max_rounds.
    k = 1
    while True:
        k = min(k, max_rounds)
        reached = try_uniform(k)
        if reached >= throughput_constraint:
            break
        if k >= max_rounds:
            raise ThroughputConstraintError(
                f"constraint {throughput_constraint} not met within "
                f"{max_rounds} rounds for {graph.name!r} "
                f"(reached {reached})"
            )
        k *= 2

    # 2b: binary search the smallest sufficient uniform growth in
    # (k/2, k] -- k/2 (and every smaller probe) is known insufficient.
    low, high = k // 2 + 1, k
    while low < high:
        mid = (low + high) // 2
        if try_uniform(mid) >= throughput_constraint:
            high = mid
        else:
            low = mid + 1
    for name, capacity in base.items():
        set_capacity(name, capacity + low * step)

    # 2c: trim each edge back independently (monotone in each edge's
    # capacity with the others held fixed at their current values).
    for name in base:
        trim_low, trim_high = 0, low
        while trim_low < trim_high:
            mid = (trim_low + trim_high) // 2
            set_capacity(name, base[name] + mid * step)
            trial = engine.analyze(check_deadlock=False).throughput
            if trial >= throughput_constraint:
                trim_high = mid
            else:
                trim_low = mid + 1
        set_capacity(name, base[name] + trim_low * step)

    result = engine.analyze()
    return distribution, result


def occupancy_based_capacities(
    graph: SDFGraph,
    max_tokens: Dict[str, int],
    slack: int = 0,
) -> BufferDistribution:
    """Capacities taken from observed channel occupancy plus slack.

    Used by the MAMPS memory sizing: running the *bounded* analysis graph
    records per-edge peaks; the platform allocates exactly those buffers.
    """
    capacities = {}
    for edge in bufferable_edges(graph):
        observed = max_tokens.get(edge.name, 0)
        capacities[edge.name] = max(
            minimal_capacity_bound(edge), observed + slack
        )
    return BufferDistribution(capacities)
