"""The on-disk platform project bundle."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

from repro.exceptions import GenerationError


@dataclass
class PlatformProject:
    """A generated MAMPS project: named text files plus metadata.

    ``files`` maps project-relative paths (e.g. ``"system.mhs"``,
    ``"src/tile0/main.c"``) to their content.  :meth:`write_to` materializes
    the bundle on disk, which is exactly what the real MAMPS hands to XPS.
    """

    name: str
    files: Dict[str, str] = field(default_factory=dict)

    def add(self, path: str, content: str) -> None:
        if path in self.files:
            raise GenerationError(
                f"project {self.name!r} already has a file {path!r}"
            )
        self.files[path] = content

    def file(self, path: str) -> str:
        try:
            return self.files[path]
        except KeyError:
            raise GenerationError(
                f"project {self.name!r} has no file {path!r}; present: "
                f"{sorted(self.files)}"
            ) from None

    def paths(self) -> List[str]:
        return sorted(self.files)

    def write_to(self, directory: Union[str, Path]) -> Path:
        """Write all files below ``directory``; returns the project root."""
        root = Path(directory) / self.name
        for rel_path, content in self.files.items():
            target = root / rel_path
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(content, encoding="utf-8")
        return root

    def total_bytes(self) -> int:
        return sum(len(c.encode("utf-8")) for c in self.files.values())
