"""The Fig. 4 parameterized communication model.

:func:`expand_channel` replaces a mapped SDF edge by the 8-actor model of
the paper (serialization ``s1 s2 s3`` on the sending tile, latency-rate
channel ``c1 c2`` on the interconnect, deserialization ``d1 d2 d3`` on the
receiving tile) plus the buffer-credit structure (``alpha_src``,
``alpha_dst``) and the in-flight/in-network word budget (``w + alpha_n``).

Concrete instantiation (granularity ``n = 1`` token per serialization
batch; all derived actors carry ``group=<edge name>``):

* ``asrc -> s1`` -- the source-side buffer; holds up to ``alpha_src``
  tokens, enforced by the credit back-edge ``s3 -> asrc``.
* ``s1`` serializes one token into ``N`` 32-bit words
  (execution time ``serialize_cycles(N)``).
* ``s2`` (0 time) pumps words one at a time into the network interface and
  signals ``s3``; ``s3`` (0 time) returns one source-buffer credit after
  all ``N`` words of a token have left the tile.
* ``c1`` models the rate of the connection (one firing per word, execution
  time = injection cycles per word); ``c2`` models its latency, with
  per-actor concurrency ``w`` so words pipeline.  ``alpha_n`` words of
  network buffering sit between ``s2`` and ``c1`` (the connection's FIFO);
  the in-flight budget ``w`` is enforced by a credit edge closed at ``d1``.
* ``d1`` (one firing per word) models per-word reception cost and returns
  the network credit (flow control); it only drains a word when the
  destination buffer has room for it (word-granular ``alpha_dst`` credits
  via ``d3``).  ``d2`` reassembles ``N`` words into a token (execution time
  = deserialize setup) and deposits it in the destination buffer.

Initial tokens of the original edge are placed in the *destination* buffer
(``d2 -> adst``), mirroring the generated communication-initialisation code
that pre-loads destination buffers before the schedule starts (Section 5.2),
and are subtracted from the destination credits.

Which tile resource executes ``s1``/``d1``/``d2`` depends on the
serialization model: PE-based serialization runs on the tile processor
(claiming cycles that "can not be spent on running actor code"), a CA runs
concurrently.  The expansion itself is purely structural; the mapping layer
binds these actors to resources (see
:func:`repro.mapping.bound_graph.build_bound_graph`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.comm.params import ChannelParameters, words_per_token
from repro.comm.serialization import SerializationModel
from repro.exceptions import ArchitectureError, GraphError
from repro.sdf.graph import SDFGraph


@dataclass(frozen=True)
class CommActorNames:
    """Names of the 8 actors (and the key edges) a channel expands into."""

    edge: str
    s1: str
    s2: str
    s3: str
    c1: str
    c2: str
    d1: str
    d2: str
    d3: str
    source_edge: str
    destination_edge: str

    @property
    def all_actors(self) -> tuple:
        return (
            self.s1, self.s2, self.s3, self.c1, self.c2,
            self.d1, self.d2, self.d3,
        )

    @property
    def serialization_actors(self) -> tuple:
        """Actors whose time is (de)serialization work of the tiles."""
        return (self.s1, self.d1, self.d2)


def expanded_names(edge_name: str) -> CommActorNames:
    """The deterministic naming scheme of :func:`expand_channel`."""
    return CommActorNames(
        edge=edge_name,
        s1=f"{edge_name}__s1",
        s2=f"{edge_name}__s2",
        s3=f"{edge_name}__s3",
        c1=f"{edge_name}__c1",
        c2=f"{edge_name}__c2",
        d1=f"{edge_name}__d1",
        d2=f"{edge_name}__d2",
        d3=f"{edge_name}__d3",
        source_edge=f"{edge_name}__src",
        destination_edge=f"{edge_name}__dst",
    )


def _validate_alphas(
    edge_name: str,
    p: int,
    q: int,
    d0: int,
    alpha_src: int,
    alpha_dst: int,
) -> None:
    """Shared buffer-size validation of :func:`expand_channel` and
    :func:`retune_channel_capacities` (one rule set, cold and warm path)."""
    if alpha_src < p:
        raise ArchitectureError(
            f"source buffer of {edge_name!r} ({alpha_src} tokens) cannot "
            f"hold one production burst of {p}"
        )
    if alpha_dst < q:
        raise ArchitectureError(
            f"destination buffer of {edge_name!r} ({alpha_dst} tokens) "
            f"cannot hold one consumption burst of {q}"
        )
    if alpha_dst < d0:
        raise ArchitectureError(
            f"destination buffer of {edge_name!r} ({alpha_dst} tokens) "
            f"cannot hold the {d0} initial token(s)"
        )


def _alpha_credit_tokens(
    alpha_src: int, alpha_dst: int, d0: int, n_words: int
) -> tuple:
    """Initial tokens of the ``__scredit`` / ``__dcredit`` edges for the
    given buffer sizes -- the one place the formulas live, so the warm
    path (:func:`retune_channel_capacities`) cannot drift from the
    expansion."""
    return alpha_src, (alpha_dst - d0) * n_words


def expand_channel(
    graph: SDFGraph,
    edge_name: str,
    channel: ChannelParameters,
    serialization: SerializationModel,
    alpha_src: int,
    alpha_dst: int,
    deserialization: Optional[SerializationModel] = None,
) -> CommActorNames:
    """Replace ``edge_name`` in ``graph`` (in place) by the Fig. 4 model.

    ``alpha_src`` / ``alpha_dst`` are the source/destination buffer
    capacities in tokens.  The edge must be an explicit inter-actor edge
    with a positive token size.  ``serialization`` models the sending tile;
    ``deserialization`` the receiving tile (defaults to the same model --
    pass a different one when the two tiles differ, e.g. CA on one side
    only).

    Returns the names of the added actors/edges.
    """
    if deserialization is None:
        deserialization = serialization
    edge = graph.edge(edge_name)
    if edge.is_self_edge or edge.implicit:
        raise GraphError(
            f"edge {edge_name!r} is implicit or a self-edge; only explicit "
            "inter-tile data edges cross the interconnect"
        )
    n_words = words_per_token(edge.token_size)
    p, q, d0 = edge.production, edge.consumption, edge.initial_tokens

    _validate_alphas(edge_name, p, q, d0, alpha_src, alpha_dst)
    scredit_tokens, dcredit_tokens = _alpha_credit_tokens(
        alpha_src, alpha_dst, d0, n_words
    )

    names = expanded_names(edge_name)
    tag = edge_name

    graph.remove_edge(edge_name)

    graph.add_actor(
        names.s1,
        execution_time=serialization.serialize_cycles(n_words),
        group=tag,
    )
    graph.add_actor(names.s2, execution_time=0, group=tag)
    graph.add_actor(names.s3, execution_time=0, group=tag)
    graph.add_actor(
        names.c1,
        execution_time=channel.injection_cycles_per_word,
        group=tag,
    )
    graph.add_actor(
        names.c2,
        execution_time=channel.channel_latency,
        group=tag,
        concurrency=channel.words_in_flight,
    )
    graph.add_actor(
        names.d1,
        execution_time=deserialization.deserialize_cycles_per_word,
        group=tag,
    )
    graph.add_actor(
        names.d2,
        execution_time=deserialization.deserialize_setup_cycles,
        group=tag,
    )
    graph.add_actor(names.d3, execution_time=0, group=tag)

    # --- source side -------------------------------------------------
    graph.add_edge(
        names.source_edge,
        edge.src,
        names.s1,
        production=p,
        consumption=1,
        token_size=edge.token_size,
    )
    graph.add_edge(
        f"{tag}__ser", names.s1, names.s2,
        production=n_words, consumption=1,
        token_size=4,
    )
    graph.add_edge(
        f"{tag}__sig", names.s2, names.s3,
        production=1, consumption=n_words,
        implicit=True,
    )
    graph.add_edge(
        f"{tag}__scredit", names.s3, edge.src,
        production=1, consumption=p,
        initial_tokens=scredit_tokens,
        implicit=True,
    )

    # --- interconnect ------------------------------------------------
    graph.add_edge(
        f"{tag}__inj", names.s2, names.c1,
        production=1, consumption=1,
        token_size=4,
    )
    # s2 (the PE/CA writing into the NI transmit port) blocks when the
    # connection's network buffering is exhausted -- alpha_n words (at
    # least one: the port register itself).  Credits return when c1
    # injects the word into the link.
    graph.add_edge(
        f"{tag}__txcredit", names.c1, names.s2,
        production=1, consumption=1,
        initial_tokens=max(1, channel.network_buffer_words),
        implicit=True,
    )
    graph.add_edge(
        f"{tag}__chan", names.c1, names.c2,
        production=1, consumption=1,
        token_size=4,
    )
    # At most w words are in simultaneous transmission (the paper's initial
    # token count on the interconnect back-edge); the credit returns when
    # d1 *drains* the word on the receiving tile, which is what propagates
    # backpressure (flow control, Section 5.3.1) all the way to the source.
    graph.add_edge(
        f"{tag}__ncredit", names.d1, names.c1,
        production=1, consumption=1,
        initial_tokens=channel.words_in_flight,
        implicit=True,
    )

    # --- destination side ---------------------------------------------
    graph.add_edge(
        f"{tag}__rcv", names.c2, names.d1,
        production=1, consumption=1,
        token_size=4,
    )
    graph.add_edge(
        f"{tag}__word", names.d1, names.d2,
        production=1, consumption=n_words,
        token_size=4,
    )
    graph.add_edge(
        names.destination_edge,
        names.d2,
        edge.dst,
        production=1,
        consumption=q,
        initial_tokens=d0,
        token_size=edge.token_size,
    )
    graph.add_edge(
        f"{tag}__dsig", edge.dst, names.d3,
        production=q, consumption=1,
        implicit=True,
    )
    # Destination-buffer credits are word-granular and gate d1: a word may
    # only leave the network when its token's slot in the destination
    # buffer has room (d1 writes words straight into the slot).  One token
    # slot = N word credits, returned by d3 when adst consumes a token.
    graph.add_edge(
        f"{tag}__dcredit", names.d3, names.d1,
        production=n_words, consumption=1,
        initial_tokens=dcredit_tokens,
        implicit=True,
    )
    return names


def retune_channel_capacities(
    graph: SDFGraph,
    edge_name: str,
    production: int,
    consumption: int,
    initial_tokens: int,
    token_size: int,
    alpha_src: int,
    alpha_dst: int,
) -> None:
    """Update the alpha-dependent credit tokens of an expanded channel.

    The warm path of the mapping flow's buffer-growth loop: growing
    ``alpha_src`` / ``alpha_dst`` changes only the initial token counts of
    the ``__scredit`` and ``__dcredit`` edges, never the structure of the
    expansion, so the bound graph can be mutated in place instead of
    rebuilt.  ``production`` / ``consumption`` / ``initial_tokens`` /
    ``token_size`` describe the *original* application edge (the expanded
    graph no longer contains it); validation matches
    :func:`expand_channel`.
    """
    p, q, d0 = production, consumption, initial_tokens
    _validate_alphas(edge_name, p, q, d0, alpha_src, alpha_dst)
    n_words = words_per_token(token_size)
    scredit, dcredit = _alpha_credit_tokens(alpha_src, alpha_dst, d0, n_words)
    graph.edge(f"{edge_name}__scredit").initial_tokens = scredit
    graph.edge(f"{edge_name}__dcredit").initial_tokens = dcredit
