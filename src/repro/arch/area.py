"""FPGA resource model (Virtex-6 flavoured).

The paper reports area only in derived terms -- most prominently that
adding flow control to the NoC "required approximately 12% more slices"
(Section 5.3.1).  This module provides a per-component slice/BRAM model so
that number (and platform-level utilisation in the examples) can be
computed.  The absolute constants are calibration points typical of
Virtex-6-era soft cores, not measurements of the original bitstreams; the
*relative* quantities (the 12 % surcharge, CA vs. NI library sizes) are the
reproduced facts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.interconnect import FSLInterconnect, Interconnect
from repro.arch.noc import SDMNoC
from repro.arch.platform import ArchitectureModel
from repro.arch.tile import Tile

#: Slices of one Microblaze soft core (area-optimised configuration).
MICROBLAZE_SLICES = 1400
#: Slices of the network-interface glue per tile.
NI_SLICES = 150
#: Slices of one peripheral controller.
PERIPHERAL_SLICES = 200
#: Slices of the communication assist of [13].
CA_SLICES = 450
#: Slices of one FSL FIFO link.
FSL_LINK_SLICES = 60
#: Slices of one SDM router *without* flow control (base design of [17]).
NOC_ROUTER_BASE_SLICES = 800
#: Flow-control surcharge the paper measured when integrating the NoC.
NOC_FLOW_CONTROL_OVERHEAD = 0.12
#: Bytes held by one 36 kbit block RAM.
BRAM_BYTES = 4608


@dataclass(frozen=True)
class AreaEstimate:
    """FPGA resources: logic slices and block RAMs."""

    slices: int
    brams: int

    def __add__(self, other: "AreaEstimate") -> "AreaEstimate":
        return AreaEstimate(
            self.slices + other.slices, self.brams + other.brams
        )


def memory_brams(capacity_bytes: int) -> int:
    """BRAMs needed for a memory of the given capacity."""
    return -(-capacity_bytes // BRAM_BYTES)  # ceil division


def tile_area(tile: Tile) -> AreaEstimate:
    """Area of one tile: PE + NI + memories + peripherals + optional CA."""
    slices = NI_SLICES
    if tile.processor is not None:
        slices += MICROBLAZE_SLICES
    slices += PERIPHERAL_SLICES * len(tile.peripherals)
    if tile.has_ca:
        slices += CA_SLICES
    brams = memory_brams(tile.instruction_memory.capacity_bytes)
    brams += memory_brams(tile.data_memory.capacity_bytes)
    return AreaEstimate(slices=slices, brams=brams)


def noc_router_slices(flow_control: bool = True) -> int:
    """Slices of one SDM router, with or without the flow-control logic
    the paper added (Section 5.3.1: ~12 % more slices)."""
    base = NOC_ROUTER_BASE_SLICES
    if flow_control:
        return round(base * (1.0 + NOC_FLOW_CONTROL_OVERHEAD))
    return base


def interconnect_area(interconnect: Interconnect) -> AreaEstimate:
    """Area of the interconnect as currently allocated/configured."""
    if isinstance(interconnect, FSLInterconnect):
        links = len(interconnect.allocated_connections())
        return AreaEstimate(slices=FSL_LINK_SLICES * max(links, 0), brams=0)
    if isinstance(interconnect, SDMNoC):
        per_router = noc_router_slices(interconnect.flow_control)
        return AreaEstimate(
            slices=per_router * interconnect.router_count(), brams=0
        )
    return AreaEstimate(slices=0, brams=0)


def platform_area(architecture: ArchitectureModel) -> AreaEstimate:
    """Total platform area: all tiles plus the interconnect."""
    total = AreaEstimate(slices=0, brams=0)
    for tile in architecture.tiles:
        total = total + tile_area(tile)
    if architecture.interconnect is not None:
        total = total + interconnect_area(architecture.interconnect)
    return total
