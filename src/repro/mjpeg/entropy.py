"""Entropy decoding shared by the reference decoder and the VLD actor.

Bit-serial canonical Huffman decoding -- deliberately the same algorithm a
software decoder on a Microblaze would run (read a bit, extend the code,
look it up), so the VLD cost model can charge per consumed bit and per
decoded coefficient.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import BitstreamError
from repro.mjpeg.bitstream import BitReader
from repro.mjpeg.tables import (
    AC_TABLE,
    DC_TABLE,
    EOB,
    HuffmanTable,
    ZRL,
    decode_magnitude,
)


def decode_symbol(reader: BitReader, table: HuffmanTable) -> int:
    """Decode one Huffman symbol bit-serially."""
    code = 0
    for length in range(1, table.max_length + 1):
        code = (code << 1) | reader.read_bit()
        symbol = table.decode_map.get((length, code))
        if symbol is not None:
            return symbol
    raise BitstreamError(
        f"invalid Huffman code 0b{code:b} after {table.max_length} bits"
    )


def decode_block(
    reader: BitReader, dc_predictor: int
) -> Tuple[np.ndarray, int, int]:
    """Decode one block.

    Returns ``(levels in zig-zag order (int32[64]), new DC predictor,
    coefficients decoded)``.  The coefficient count (DC + nonzero ACs)
    feeds the VLD cost model.
    """
    levels = np.zeros(64, dtype=np.int32)
    category = decode_symbol(reader, DC_TABLE)
    diff = decode_magnitude(reader.read(category), category) if category \
        else 0
    dc = dc_predictor + diff
    levels[0] = dc
    coefficients = 1

    index = 1
    while index < 64:
        symbol = decode_symbol(reader, AC_TABLE)
        if symbol == EOB:
            break
        if symbol == ZRL:
            index += 16
            continue
        run = symbol >> 4
        category = symbol & 0x0F
        index += run
        if index >= 64:
            raise BitstreamError(
                f"AC run overflows the block (index {index})"
            )
        levels[index] = decode_magnitude(
            reader.read(category), category
        )
        coefficients += 1
        index += 1
    return levels, dc, coefficients
