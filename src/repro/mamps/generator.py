"""Platform generation orchestration.

:func:`generate_platform` performs the MAMPS step of Fig. 1: it combines
the application model, the architecture model and the SDF3 mapping into a
complete project bundle (netlist, per-tile software, XPS script, plus a
mapping report).  :func:`synthesize` stands in for the Xilinx synthesis run:
it produces the executable artifact -- here a
:class:`~repro.sim.PlatformSimulator` wired to the same bound graph the
analysis used, which is precisely the property that makes the flow's
throughput bound carry over to the implementation.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.appmodel.model import ApplicationModel
from repro.arch.platform import ArchitectureModel
from repro.comm.serialization import SerializationModel
from repro.exceptions import GenerationError
from repro.mamps.hardware import generate_netlist
from repro.mamps.memory_map import compute_memory_maps
from repro.mamps.project import PlatformProject
from repro.mamps.software import generate_tile_main
from repro.mamps.xps import generate_project_file, generate_xps_script
from repro.mapping.bound_graph import BoundGraph, build_bound_graph
from repro.mapping.spec import Mapping, MappingResult
from repro.sim.platform_sim import PlatformSimulator


def generate_platform(
    app: ApplicationModel,
    arch: ArchitectureModel,
    result: MappingResult,
) -> PlatformProject:
    """Generate the complete MAMPS project for a mapping result."""
    mapping = result.mapping
    if mapping.application != app.name:
        raise GenerationError(
            f"mapping belongs to application {mapping.application!r}, "
            f"not {app.name!r}"
        )
    if mapping.architecture != arch.name:
        raise GenerationError(
            f"mapping targets architecture {mapping.architecture!r}, "
            f"not {arch.name!r}"
        )

    memory_maps = compute_memory_maps(app, arch, mapping)
    project = PlatformProject(name=f"{app.name}_on_{arch.name}")

    project.add(
        "system.mhs", generate_netlist(app, arch, mapping, memory_maps)
    )
    project.add("build.tcl", generate_xps_script(arch, mapping, project.name))
    project.add(
        f"{project.name}.xmp", generate_project_file(project.name)
    )
    for tile in mapping.used_tiles():
        if arch.tile(tile).processor is None:
            continue
        project.add(
            f"src/{tile}/main.c",
            generate_tile_main(app, mapping, memory_maps[tile], tile),
        )
    project.add("mapping.txt", mapping.describe() + "\n")
    project.add(
        "throughput.txt",
        (
            f"guaranteed throughput: {result.guaranteed_throughput} "
            f"iterations/cycle\n"
            f"({float(result.guaranteed_throughput * 1_000_000):.4f} "
            f"iterations per Mcycle)\n"
            f"constraint: {result.constraint}\n"
            f"constraint met: {result.constraint_met}\n"
        ),
    )
    return project


def synthesize(
    app: ApplicationModel,
    arch: ArchitectureModel,
    result: MappingResult,
    serialization_overrides: Optional[
        Dict[str, SerializationModel]
    ] = None,
    bound: Optional[BoundGraph] = None,
    record_trace: bool = False,
) -> PlatformSimulator:
    """'Synthesize' the generated platform into a runnable simulator.

    The real flow runs XPS down to a bit file; here the executable artifact
    is the platform simulator, constructed from the same mapping (and, when
    given, the same serialization overrides) that produced the guarantee.
    """
    mapping = result.mapping
    if bound is None:
        bound = build_bound_graph(
            app,
            arch,
            mapping.actor_binding,
            mapping.implementations,
            mapping.channels,
            serialization_overrides=serialization_overrides,
        )
    return PlatformSimulator(
        app=app,
        arch=arch,
        mapping=mapping,
        bound=bound,
        record_trace=record_trace,
    )
