"""The MJPEG decoder case study (paper Section 6).

A functional motion-JPEG codec built from scratch:

* :mod:`repro.mjpeg.tables` -- zig-zag order, quantization tables and the
  standard JPEG Huffman tables (canonical code construction);
* :mod:`repro.mjpeg.bitstream` -- MSB-first bit I/O;
* :mod:`repro.mjpeg.dct` -- 8x8 forward/inverse DCT and (de)quantization;
* :mod:`repro.mjpeg.encoder` -- the encoder that produces the test
  bitstreams (the role of the paper's input files);
* :mod:`repro.mjpeg.reference` -- a whole-frame numpy reference decoder
  used to verify the actor pipeline's output;
* :mod:`repro.mjpeg.sequences` -- the test content: five structured
  "real-life" sequences plus the synthetic random sequence;
* :mod:`repro.mjpeg.actors` -- the five SDF actors of Fig. 5 (VLD, IQZZ,
  IDCT, CC, Raster) with Microblaze-flavoured cycle-cost models and
  scenario-based WCETs;
* :mod:`repro.mjpeg.app` -- assembly of the Fig. 5 application model.
"""

from repro.mjpeg.encoder import EncodedSequence, encode_sequence
from repro.mjpeg.sequences import (
    SEQUENCE_BUILDERS,
    synthetic_sequence,
    test_set_sequences,
)
from repro.mjpeg.actors import MJPEGCostModel
from repro.mjpeg.app import build_mjpeg_application, mjpeg_graph
from repro.mjpeg.reference import decode_sequence

__all__ = [
    "EncodedSequence",
    "encode_sequence",
    "decode_sequence",
    "SEQUENCE_BUILDERS",
    "synthetic_sequence",
    "test_set_sequences",
    "MJPEGCostModel",
    "build_mjpeg_application",
    "mjpeg_graph",
]
