"""Architecture component library.

The building blocks of the template: processing-element types, memories,
peripherals, the network interface and the communication assist.  All sizes
are bytes, all times are cycles of the single system clock that the design
flow uses as its base time unit (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.exceptions import ArchitectureError


@dataclass(frozen=True)
class ProcessorType:
    """A processing-element type available in the template.

    ``name`` ties actor implementations (their ``pe_type``) to tiles.
    ``context_switch_cycles`` is the static-order scheduler's per-firing
    dispatch overhead (a table lookup plus a function call, Section 6.3:
    "reduces the scheduler to a lookup table").
    """

    name: str
    context_switch_cycles: int = 12

    def __post_init__(self) -> None:
        if not self.name:
            raise ArchitectureError("processor type needs a name")
        if self.context_switch_cycles < 0:
            raise ArchitectureError("context switch cycles must be >= 0")


#: The Xilinx Microblaze soft core used by the current MAMPS tile library.
MICROBLAZE = ProcessorType(name="microblaze", context_switch_cycles=12)


@dataclass(frozen=True)
class Memory:
    """A local tile memory (instruction or data side)."""

    capacity_bytes: int

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ArchitectureError("memory capacity must be positive")


@dataclass(frozen=True)
class NetworkInterface:
    """The standardized NI: 32-bit-word FSL-style streaming ports.

    ``fifo_depth_words`` is the depth of the NI's word FIFOs -- the source
    of the ``alpha_n`` buffering in the communication model.
    """

    fifo_depth_words: int = 16

    def __post_init__(self) -> None:
        if self.fifo_depth_words < 1:
            raise ArchitectureError("NI FIFO depth must be >= 1")


@dataclass(frozen=True)
class Peripheral:
    """A board peripheral (UART, timer, compact flash...).

    Peripherals are never shared between tiles -- predictability on the
    MAMPS platform "is guaranteed by avoiding the sharing of peripherals
    over tiles" (Section 4).
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ArchitectureError("peripheral needs a name")


@dataclass(frozen=True)
class CommunicationAssist:
    """Dedicated (de)serialization hardware (the CA of [13], Fig. 3 Tile 3).

    Modelled as announced future work in the paper (Section 7) and used by
    the Section 6.3 experiment: the CA streams a word per cycle after a
    short setup and frees the PE from serialization work.
    """

    setup_cycles: int = 8
    cycles_per_word: int = 1

    def __post_init__(self) -> None:
        if self.setup_cycles < 0 or self.cycles_per_word < 0:
            raise ArchitectureError("CA costs must be >= 0")
