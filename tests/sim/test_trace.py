"""Tests for trace analysis: utilization reports and Gantt rendering."""

import pytest

from repro.exceptions import SimulationError
from repro.sdf import SDFGraph, SelfTimedSimulator
from repro.sdf.simulation import Firing, SimulationTrace
from repro.sim.trace import gantt, utilization


@pytest.fixture
def recorded_trace():
    """Deterministic two-processor trace from a real simulation."""
    g = SDFGraph("g")
    g.add_actor("A", execution_time=10)
    g.add_actor("B", execution_time=30)
    g.add_edge("ab", "A", "B", token_size=4)
    sim = SelfTimedSimulator(
        g,
        processor_of={"A": "t0", "B": "t1"},
        record_trace=True,
    )
    sim.run(max_time=100)
    return sim.trace


class TestUtilization:
    def test_busy_cycles_counted_per_resource(self, recorded_trace):
        report = utilization(
            recorded_trace, {"A": "t0", "B": "t1"}, until=100
        )
        assert report.window_cycles == 100
        # A fires every 10 cycles continuously: ~full utilization.
        assert report.utilization_of("t0") >= 0.9
        # B starts at t=10 and then runs back to back.
        assert 0.8 <= report.utilization_of("t1") <= 0.91

    def test_unbound_actors_do_not_count(self, recorded_trace):
        report = utilization(recorded_trace, {"A": "t0"}, until=100)
        assert "t1" not in report.busy_cycles

    def test_bottleneck(self, recorded_trace):
        report = utilization(
            recorded_trace, {"A": "t0", "B": "t1"}, until=100
        )
        assert report.bottleneck() in ("t0", "t1")

    def test_as_table(self, recorded_trace):
        report = utilization(
            recorded_trace, {"A": "t0", "B": "t1"}, until=100
        )
        table = report.as_table()
        assert "t0" in table and "%" in table

    def test_empty_window(self):
        report = utilization(SimulationTrace(), {}, until=0)
        assert report.utilization_of("t0") == 0.0
        assert report.bottleneck() is None


class TestGantt:
    def test_rows_and_marks(self, recorded_trace):
        chart = gantt(recorded_trace, ["A", "B"], start=0, end=100)
        lines = chart.splitlines()
        assert len(lines) == 3  # header + 2 actors
        assert lines[1].startswith("A")
        assert "#" in lines[1]
        assert "#" in lines[2]

    def test_window_clipping(self, recorded_trace):
        # B has not started before t=10: its row is empty in [0, 10).
        chart = gantt(recorded_trace, ["B"], start=0, end=10, width=10)
        b_row = chart.splitlines()[1]
        assert "#" not in b_row

    def test_empty_window_rejected(self, recorded_trace):
        with pytest.raises(ValueError, match="empty window"):
            gantt(recorded_trace, ["A"], start=50, end=50)

    def test_synthetic_firings(self):
        trace = SimulationTrace(
            firings=[Firing("X", 0, 10), Firing("X", 20, 30)],
            max_tokens={},
            completed_count={},
        )
        chart = gantt(trace, ["X"], start=0, end=40, width=4)
        row = chart.splitlines()[1]
        cells = row.split("|")[1]
        assert cells == "# # "


class TestPlatformIntegration:
    def test_utilization_from_platform(self):
        from repro.arch import architecture_from_template
        from repro.mamps import synthesize
        from repro.mapping import map_application
        from repro.mjpeg import build_mjpeg_application, encode_sequence
        from repro.mjpeg.sequences import gradient_sequence

        encoded = encode_sequence(
            gradient_sequence(n_frames=1), quality=75
        )
        app = build_mjpeg_application(encoded)
        arch = architecture_from_template(5, "fsl")
        result = map_application(app, arch, fixed={"VLD": "tile0"})
        simulator = synthesize(
            app, arch, result, record_trace=True
        )
        simulator.run_iterations(8)
        report = simulator.utilization_report()
        # The IDCT tile is the bottleneck of this calibration.
        idct_tile = result.mapping.tile_of("IDCT")
        assert report.bottleneck() == idct_tile
        assert 0.0 < report.utilization_of(idct_tile) <= 1.0

    def test_trace_disabled_raises(self):
        from repro.arch import architecture_from_template
        from repro.mamps import synthesize
        from repro.mapping import map_application
        from repro.mjpeg import build_mjpeg_application, encode_sequence
        from repro.mjpeg.sequences import gradient_sequence

        encoded = encode_sequence(
            gradient_sequence(n_frames=1), quality=75
        )
        app = build_mjpeg_application(encoded)
        arch = architecture_from_template(2, "fsl")
        result = map_application(app, arch, fixed={"VLD": "tile0"})
        simulator = synthesize(app, arch, result)
        with pytest.raises(SimulationError, match="record_trace"):
            simulator.utilization_report()
