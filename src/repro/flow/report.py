"""Reporting helpers: Fig. 6 style comparisons and exploration reports.

A :class:`ThroughputComparison` holds, for one workload, the three values
Fig. 6 plots: the worst-case analysis bound, the *expected* throughput
(the same analysis fed with execution times measured on the workload) and
the *measured* throughput of the running platform.
:func:`format_exploration_report` and :func:`exploration_csv` render the
output of the design-space exploration engine (:mod:`repro.flow.dse`) for
humans and for downstream tooling respectively.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:
    from repro.flow.dse import ExplorationResult

from repro.appmodel.model import ApplicationModel
from repro.appmodel.wcet import MeasuredTimes
from repro.arch.platform import ArchitectureModel
from repro.mapping.bound_graph import build_bound_graph
from repro.mapping.spec import MappingResult
from repro.sdf.throughput import analyze_throughput


@dataclass(frozen=True)
class ThroughputComparison:
    """One Fig. 6 bar group (one workload on one platform)."""

    workload: str
    worst_case: Fraction
    expected: Fraction
    measured: Fraction

    def conservative(self) -> bool:
        """The guarantee must never exceed what the platform achieves."""
        return self.worst_case <= self.measured

    def expected_margin(self) -> float:
        """Relative gap |measured - expected| / expected -- the "margin of
        the used models" the paper quotes (<1% for synthetic data)."""
        if self.expected == 0:
            return float("inf")
        return abs(float(self.measured - self.expected)) / float(
            self.expected
        )


def expected_throughput(
    app: ApplicationModel,
    arch: ArchitectureModel,
    result: MappingResult,
    measured_times: MeasuredTimes,
    **bound_kwargs,
) -> Fraction:
    """The 'expected' prediction: the worst-case analysis re-run with the
    measured execution times of the test data (Section 6.1)."""
    bound = build_bound_graph(
        app,
        arch,
        result.mapping.actor_binding,
        result.mapping.implementations,
        result.mapping.channels,
        time_overrides=measured_times.measured_wcet(),
        **bound_kwargs,
    )
    analysis = analyze_throughput(
        bound.graph,
        processor_of=bound.processor_of,
        static_order=result.mapping.static_orders,
        reference_actor=bound.app_actors[0],
    )
    return analysis.throughput


def compare_throughput(
    workload: str,
    worst_case: Fraction,
    expected: Fraction,
    measured: Fraction,
) -> ThroughputComparison:
    return ThroughputComparison(
        workload=workload,
        worst_case=worst_case,
        expected=expected,
        measured=measured,
    )


def format_throughput_table(
    comparisons: List[ThroughputComparison],
    unit_scale: int = 1_000_000,
    unit_name: str = "iterations/Mcycle",
) -> str:
    """Fig. 6 as text: one row per workload, three value columns."""
    name_width = max(
        [len(c.workload) for c in comparisons] + [len("workload")]
    )
    header = (
        f"{'workload':<{name_width}}  {'worst-case':>10}  "
        f"{'expected':>10}  {'measured':>10}   [{unit_name}]"
    )
    lines = [header, "-" * len(header)]
    for c in comparisons:
        lines.append(
            f"{c.workload:<{name_width}}  "
            f"{float(c.worst_case * unit_scale):>10.4f}  "
            f"{float(c.expected * unit_scale):>10.4f}  "
            f"{float(c.measured * unit_scale):>10.4f}"
            + ("" if c.conservative() else "   ** BOUND VIOLATED **")
        )
    return "\n".join(lines)


def format_exploration_report(result: "ExplorationResult") -> str:
    """The full exploration report: point table, frontier summary, the
    recommended (smallest feasible) point, and engine statistics."""
    lines = [result.as_table(), ""]
    frontier = result.pareto_frontier()
    lines.append(
        f"Pareto frontier ({len(frontier)} of {len(result.points)} "
        "evaluated points):"
    )
    for point in frontier:
        line = (
            f"  {point.label}: "
            f"{float(point.throughput * 1e6):.4f}/Mcycle, "
            f"{point.area.slices} slices"
        )
        if point.energy is not None:
            line += f", {float(point.energy.total_nj):.2f} nJ/iter"
        if point.power is not None:
            line += f", {float(point.power.total_mw):.1f} mW peak"
        lines.append(line)
    best = result.best_meeting_constraint()
    if best is not None:
        lines.append(f"recommended (smallest feasible): {best.label}")
    elif any(not p.constraint_met for p in result.points):
        lines.append("no evaluated point meets the throughput constraint")
    stats_bits = [
        f"{len(result.points)} point(s) evaluated",
        f"{len(result.failures)} infeasible",
    ]
    if result.skipped:
        stats_bits.append(f"{result.skipped} skipped (early exit)")
    if result.cache_stats is not None and result.cache_stats.lookups:
        stats_bits.append(
            f"cache {result.cache_stats.hits}/{result.cache_stats.lookups} "
            f"hit(s) ({result.cache_stats.hit_rate():.0%})"
        )
    stats_bits.append(
        f"{result.elapsed_seconds:.2f} s with {result.jobs} job(s)"
    )
    lines.append("engine: " + ", ".join(stats_bits))
    return "\n".join(lines)


def exploration_csv(result: "ExplorationResult") -> str:
    """Machine-readable exploration dump, one evaluated point per row.

    Column names and values mirror the fields of the canonical
    ``design-point`` artifact payload (:mod:`repro.artifacts`), so the
    CSV is a flat projection of what ``explore --json`` and persisted
    artifacts carry -- one schema, three renderings.
    """
    frontier = {p.label for p in result.pareto_frontier()}
    rows = [
        "label,tiles,interconnect,with_ca,mix,effort,"
        "throughput_per_mcycle,slices,brams,constraint_met,pareto,"
        "power_mw,energy_nj_per_iter,strategy"
    ]
    for p in result.points:
        power = "" if p.power is None else f"{float(p.power.total_mw):.3f}"
        energy = (
            "" if p.energy is None else f"{float(p.energy.total_nj):.3f}"
        )
        rows.append(
            f"{p.label},{p.tiles},{p.interconnect},{int(p.with_ca)},"
            f"{p.mix},{p.effort},{float(p.throughput * 1e6):.6f},"
            f"{p.area.slices},{p.area.brams},{int(p.constraint_met)},"
            f"{int(p.label in frontier)},{power},{energy},"
            f"{p.strategy.short()}"
        )
    return "\n".join(rows)
