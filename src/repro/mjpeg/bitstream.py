"""MSB-first bit-level I/O for the MJPEG codec."""

from __future__ import annotations

from typing import List

from repro.exceptions import BitstreamError


class BitWriter:
    """Accumulates bits MSB-first into a byte string."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._accumulator = 0
        self._bit_count = 0

    def write(self, value: int, bits: int) -> None:
        """Append the ``bits`` least-significant bits of ``value``."""
        if bits < 0 or bits > 32:
            raise BitstreamError(f"bit count {bits} out of range")
        if bits == 0:
            return
        if value < 0 or value >= (1 << bits):
            raise BitstreamError(
                f"value {value} does not fit in {bits} bit(s)"
            )
        self._accumulator = (self._accumulator << bits) | value
        self._bit_count += bits
        while self._bit_count >= 8:
            self._bit_count -= 8
            self._bytes.append(
                (self._accumulator >> self._bit_count) & 0xFF
            )
        self._accumulator &= (1 << self._bit_count) - 1

    def align(self) -> None:
        """Pad with 1-bits to the next byte boundary (JPEG convention)."""
        if self._bit_count:
            pad = 8 - self._bit_count
            self.write((1 << pad) - 1, pad)

    def getvalue(self) -> bytes:
        """Byte string written so far (call :meth:`align` first to flush)."""
        if self._bit_count:
            raise BitstreamError(
                f"{self._bit_count} unflushed bit(s); call align() first"
            )
        return bytes(self._bytes)

    @property
    def bit_length(self) -> int:
        return len(self._bytes) * 8 + self._bit_count


class BitReader:
    """Reads bits MSB-first from a byte string.

    Tracks ``bits_consumed`` so the VLD cost model can charge per decoded
    bit, the dominant term of software Huffman decoding on a Microblaze.
    """

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._position = 0  # bit position
        self.bits_consumed = 0

    def read(self, bits: int) -> int:
        """Read ``bits`` bits as an unsigned integer."""
        if bits < 0 or bits > 32:
            raise BitstreamError(f"bit count {bits} out of range")
        if self._position + bits > len(self._data) * 8:
            raise BitstreamError(
                f"bitstream exhausted at bit {self._position} "
                f"(wanted {bits} more)"
            )
        value = 0
        position = self._position
        for _ in range(bits):
            byte = self._data[position >> 3]
            bit = (byte >> (7 - (position & 7))) & 1
            value = (value << 1) | bit
            position += 1
        self._position = position
        self.bits_consumed += bits
        return value

    def read_bit(self) -> int:
        return self.read(1)

    def align(self) -> None:
        """Skip to the next byte boundary."""
        remainder = self._position & 7
        if remainder:
            self.read(8 - remainder)

    def seek_bits(self, bit_position: int) -> None:
        if bit_position < 0 or bit_position > len(self._data) * 8:
            raise BitstreamError(f"seek to {bit_position} out of range")
        self._position = bit_position

    @property
    def position_bits(self) -> int:
        return self._position

    @property
    def exhausted(self) -> bool:
        return self._position >= len(self._data) * 8

    def remaining_bits(self) -> int:
        return len(self._data) * 8 - self._position
