"""The end-to-end mapping flow (the SDF3 box of Fig. 1).

``map_application`` chains binding, routing, buffer allocation, static-order
scheduling and throughput analysis, growing buffer capacities until the
application's throughput constraint is met (or the retry budget runs out).
The result carries the mapping -- the interchange object MAMPS consumes --
plus the throughput *guarantee* computed on the bound graph.

Since the pipeline redesign the actual stage chaining lives in
:mod:`repro.mapping.pipeline`; this module keeps the historic one-call
entry point (and the :class:`MappingEffort` presets, re-exported) as a
thin wrapper over the default :class:`~repro.mapping.pipeline.MappingPipeline`.
Every stage can be swapped by registry name -- see ``docs/mapping.md``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Optional, Union

from repro.appmodel.model import ApplicationModel
from repro.arch.platform import ArchitectureModel
from repro.comm.serialization import SerializationModel
from repro.mapping.costs import CostWeights
from repro.mapping.pipeline import (
    EFFORT_LEVELS,
    BindingStrategy,
    BufferPolicy,
    MappingEffort,
    MappingPipeline,
    RoutingStrategy,
    SchedulingStrategy,
)
from repro.mapping.spec import MappingResult

__all__ = [
    "EFFORT_LEVELS",
    "MappingEffort",
    "map_application",
]


def map_application(
    app: ApplicationModel,
    arch: ArchitectureModel,
    constraint: Optional[Fraction] = None,
    weights: Optional[CostWeights] = None,
    fixed: Optional[Dict[str, str]] = None,
    serialization_overrides: Optional[Dict[str, SerializationModel]] = None,
    max_buffer_rounds: Optional[int] = None,
    strict: bool = False,
    max_iterations: Optional[int] = None,
    effort: Union[str, MappingEffort] = "normal",
    binding: Union[str, BindingStrategy] = "greedy",
    routing: Union[str, RoutingStrategy] = "xy",
    buffer_policy: Union[str, BufferPolicy] = "linear",
    scheduling: Union[str, SchedulingStrategy] = "static-order",
    seed: Optional[int] = None,
    pipeline: Optional[MappingPipeline] = None,
) -> MappingResult:
    """Map ``app`` onto ``arch`` and compute the throughput guarantee.

    Parameters
    ----------
    constraint:
        Required iterations per cycle; defaults to the application's own
        ``throughput_constraint``.
    fixed:
        Pin actors to tiles (e.g. the file-reading actor to the master).
    serialization_overrides:
        Per-tile serialization model substitutions (Section 6.3).
    strict:
        Raise :class:`ThroughputConstraintError` when the constraint cannot
        be met; otherwise return the best mapping with
        ``constraint_met == False``.
    effort:
        A :class:`MappingEffort` (or preset name) supplying the retry
        budgets; explicit ``max_buffer_rounds`` / ``max_iterations``
        arguments override the preset's values.
    binding, routing, buffer_policy, scheduling, seed:
        Stage strategies by registry name (or instance) -- see
        :mod:`repro.mapping.pipeline`.  The defaults reproduce the
        paper's recipe; ``seed`` feeds randomized strategies (``ga``).
        Note that ``weights`` steers the generic cost functions of the
        *greedy* binder only (the GA uses them just for its greedy bias
        genome; the spiral binder optimizes locality, not the cost
        functions).
    pipeline:
        A prebuilt :class:`MappingPipeline`; overrides the per-stage
        arguments when given.

    Returns a :class:`MappingResult`.
    """
    if pipeline is None:
        pipeline = MappingPipeline(
            binding=binding,
            routing=routing,
            buffer_policy=buffer_policy,
            scheduling=scheduling,
            seed=seed,
        )
    return pipeline.run(
        app,
        arch,
        constraint=constraint,
        weights=weights,
        fixed=fixed,
        serialization_overrides=serialization_overrides,
        max_buffer_rounds=max_buffer_rounds,
        strict=strict,
        max_iterations=max_iterations,
        effort=effort,
    )
