"""Tests for the execution-backend abstraction (repro.flow.backend)."""

import os
import time

import pytest

from repro.flow.backend import (
    BACKENDS,
    BackendError,
    ExecutionBackend,
    ProcessBackend,
    ThreadBackend,
    WorkerPool,
    as_backend,
    backend_task,
    create_backend,
    run_task,
    task_named,
)


@backend_task("test.double")
def _double_task(payload):
    return {"value": payload["value"] * 2}


@backend_task("test.pid")
def _pid_task(payload):
    return {"pid": os.getpid()}


@backend_task("test.sleep")
def _sleep_task(payload):
    time.sleep(payload["seconds"])
    return {"slept": payload["seconds"]}


class TestTaskRegistry:
    def test_registered_task_resolves_by_name(self):
        task = task_named("test.double")
        assert task.name == "test.double"
        assert task.module == __name__
        assert task.fn({"value": 3}) == {"value": 6}

    def test_unknown_task_raises(self):
        with pytest.raises(BackendError, match="unknown backend task"):
            task_named("test.never-registered")

    def test_rebinding_a_name_across_modules_raises(self):
        decorator = backend_task("test.double")

        def imposter(payload):  # pragma: no cover - never called
            return payload

        imposter.__module__ = "somewhere.else"
        with pytest.raises(BackendError, match="already registered"):
            decorator(imposter)

    def test_run_task_reimports_and_dispatches(self):
        # the child-process entry point: resolve by (name, module)
        assert run_task("test.double", __name__, {"value": 5}) == {
            "value": 10
        }


class TestThreadBackend:
    def test_is_the_worker_pool(self):
        # the historic name keeps working for every existing caller
        assert WorkerPool is ThreadBackend

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            ThreadBackend(0)

    def test_serial_map_preserves_order(self):
        with ThreadBackend(1) as pool:
            assert list(pool.map_ordered(lambda x: x * x, [3, 1, 2])) == [
                9, 1, 4,
            ]

    def test_parallel_map_preserves_order(self):
        with ThreadBackend(3) as pool:
            assert list(
                pool.map_ordered(lambda x: x + 1, [5, 6, 7])
            ) == [6, 7, 8]

    def test_submit_runs_callables(self):
        with ThreadBackend(2) as pool:
            assert pool.submit(lambda: 41 + 1).result() == 42

    def test_task_api_matches_direct_calls(self):
        with ThreadBackend(2) as pool:
            future = pool.submit_task("test.double", {"value": 4})
            assert future.result() == {"value": 8}
            assert list(
                pool.run_tasks_ordered(
                    "test.double", [{"value": v} for v in (1, 2, 3)]
                )
            ) == [{"value": 2}, {"value": 4}, {"value": 6}]


class TestProcessBackend:
    def test_tasks_run_in_other_processes(self):
        with ProcessBackend(2) as pool:
            outcome = pool.submit_task("test.pid", {}).result()
        assert outcome["pid"] != os.getpid()

    def test_ordered_task_batches(self):
        with ProcessBackend(2) as pool:
            results = list(
                pool.run_tasks_ordered(
                    "test.double", [{"value": v} for v in (4, 5, 6)]
                )
            )
        assert results == [{"value": 8}, {"value": 10}, {"value": 12}]

    def test_map_ordered_refuses_bare_callables(self):
        with ProcessBackend(1) as pool:
            with pytest.raises(BackendError, match="registered tasks"):
                pool.map_ordered(lambda x: x, [1])

    def test_submit_runs_locally_for_unpicklable_work(self):
        state = {"hit": False}

        def bump():
            state["hit"] = True
            return os.getpid()

        with ProcessBackend(1) as pool:
            assert pool.submit(bump).result() == os.getpid()
        assert state["hit"]

    def test_close_without_wait_terminates_workers(self):
        pool = ProcessBackend(1)
        # park the single worker on a long sleep, then abandon it
        pool.submit_task("test.sleep", {"seconds": 60})
        # give the executor a beat to hand the task to the worker
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            pids = [p.pid for p in pool.worker_processes()]
            if pids:
                break
            time.sleep(0.05)
        started = time.monotonic()
        pool.close(wait=False)
        elapsed = time.monotonic() - started
        assert elapsed < 30.0, "close must not wait out the sleep"
        for pid in pids:
            assert not _pid_alive(pid), f"worker {pid} survived close"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, not ours
        return True
    return True


class TestFactories:
    def test_backends_constant(self):
        assert BACKENDS == ("thread", "process")

    def test_create_backend_by_name(self):
        thread = create_backend("thread", 2)
        process = create_backend("process", 2)
        try:
            assert isinstance(thread, ThreadBackend)
            assert isinstance(process, ProcessBackend)
            assert thread.jobs == process.jobs == 2
        finally:
            thread.close()
            process.close()

    def test_create_backend_rejects_unknown_names(self):
        with pytest.raises(BackendError, match="unknown backend"):
            create_backend("fiber", 1)

    def test_as_backend_passthrough_and_defaults(self):
        default = as_backend(None, jobs=3)
        named = as_backend("thread", jobs=2)
        try:
            assert isinstance(default, ThreadBackend)
            assert default.jobs == 3
            assert named.jobs == 2
            existing = ThreadBackend(1)
            assert as_backend(existing) is existing
            existing.close()
        finally:
            default.close()
            named.close()

    def test_backends_are_execution_backends(self):
        for name in BACKENDS:
            engine = create_backend(name, 1)
            assert isinstance(engine, ExecutionBackend)
            assert engine.name == name
            engine.close()
