"""Predictable TDM arbitration for shared resources (Section 7 future work).

The paper keeps the platform predictable "by avoiding the sharing of
peripherals over tiles" and points at Akesson's Predator controller [1] as
the way to share predictably: a time-division arbiter whose worst-case
access latency is a closed-form function of the slot table.  "Adding a
predictable arbiter could enable multiple tiles in accessing peripherals
while keeping a predictable system."

This module provides that arbiter model:

* a slot table assigning each requesting tile a number of TDM slots;
* exact worst-case latency/completion bounds per requester (the longest
  wait until the requester's next slot window, from any phase);
* an admission check used by the architecture model: a peripheral *may*
  be shared when every sharer holds at least one slot.

The bound follows the standard TDM argument: a request issued at the
worst phase waits for the longest gap between the requester's consecutive
slots, then occupies ``service_cycles`` per slot it owns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import ArchitectureError


@dataclass
class TDMArbiter:
    """A time-division-multiplexed arbiter over one shared resource.

    Parameters
    ----------
    resource:
        Name of the shared resource (e.g. ``"sdram"`` or ``"uart"``).
    slot_table:
        The TDM frame: a sequence of requester names, one per slot.  A
        requester may own several slots (more bandwidth, lower worst-case
        latency).
    slot_cycles:
        Length of one slot in clock cycles (service unit granted per slot).
    """

    resource: str
    slot_table: Tuple[str, ...]
    slot_cycles: int = 16

    def __post_init__(self) -> None:
        if not self.resource:
            raise ArchitectureError("arbiter needs a resource name")
        if not self.slot_table:
            raise ArchitectureError(
                f"arbiter for {self.resource!r} needs a non-empty slot table"
            )
        if self.slot_cycles < 1:
            raise ArchitectureError("slot length must be >= 1 cycle")
        self.slot_table = tuple(self.slot_table)

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def frame_cycles(self) -> int:
        """Length of one full TDM frame in cycles."""
        return len(self.slot_table) * self.slot_cycles

    def requesters(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for name in self.slot_table:
            if name not in seen:
                seen.append(name)
        return tuple(seen)

    def slots_of(self, requester: str) -> Tuple[int, ...]:
        """Slot indices owned by ``requester``."""
        return tuple(
            index for index, name in enumerate(self.slot_table)
            if name == requester
        )

    def bandwidth_share(self, requester: str) -> float:
        """Guaranteed fraction of the resource for ``requester``."""
        return len(self.slots_of(requester)) / len(self.slot_table)

    # ------------------------------------------------------------------
    # worst-case bounds
    # ------------------------------------------------------------------
    def worst_case_wait(self, requester: str) -> int:
        """Worst-case cycles until the requester's next slot *starts*.

        The request may arrive one cycle into its own slot (too late to
        use it), so the bound is the maximum gap between consecutive owned
        slots, measured start-to-start, minus nothing -- i.e. up to a full
        frame when the requester owns a single slot.
        """
        slots = self.slots_of(requester)
        if not slots:
            raise ArchitectureError(
                f"{requester!r} owns no slot on arbiter {self.resource!r}"
            )
        n = len(self.slot_table)
        worst_gap_slots = 0
        for index, slot in enumerate(slots):
            next_slot = slots[(index + 1) % len(slots)]
            gap = (next_slot - slot) % n
            if gap == 0:
                gap = n  # single slot: a full frame back to itself
            worst_gap_slots = max(worst_gap_slots, gap)
        return worst_gap_slots * self.slot_cycles

    def worst_case_access(self, requester: str,
                          service_slots: int = 1) -> int:
        """Worst-case completion time of a request needing
        ``service_slots`` slots of service.

        Wait for the worst-phase slot, then account the spacing between
        the requester's owned slots until enough service accumulated.
        """
        if service_slots < 1:
            raise ArchitectureError("a request needs >= 1 service slot")
        slots = self.slots_of(requester)
        if not slots:
            raise ArchitectureError(
                f"{requester!r} owns no slot on arbiter {self.resource!r}"
            )
        n = len(self.slot_table)
        worst = 0
        # Try every starting slot of the requester (the wait already
        # covers the arrival phase); walk service_slots owned slots.
        for start_position, start_slot in enumerate(slots):
            elapsed = self.slot_cycles  # the first service slot itself
            position = start_position
            current_slot = start_slot
            for _ in range(service_slots - 1):
                next_position = (position + 1) % len(slots)
                gap = (slots[next_position] - current_slot) % n
                if gap == 0:
                    gap = n
                elapsed += gap * self.slot_cycles
                position = next_position
                current_slot = slots[next_position]
            worst = max(worst, elapsed)
        return self.worst_case_wait(requester) + worst

    def describe(self) -> str:
        shares = ", ".join(
            f"{name}: {len(self.slots_of(name))}/{len(self.slot_table)}"
            for name in self.requesters()
        )
        return (
            f"TDM arbiter for {self.resource!r}: frame of "
            f"{len(self.slot_table)} x {self.slot_cycles} cycles ({shares})"
        )


def validate_shared_peripheral(
    peripheral: str,
    sharers: Sequence[str],
    arbiter: TDMArbiter,
) -> None:
    """Admission check: sharing is predictable iff every sharer owns at
    least one slot of the peripheral's arbiter."""
    if arbiter.resource != peripheral:
        raise ArchitectureError(
            f"arbiter serves {arbiter.resource!r}, not {peripheral!r}"
        )
    for tile in sharers:
        if not arbiter.slots_of(tile):
            raise ArchitectureError(
                f"tile {tile!r} shares peripheral {peripheral!r} but owns "
                f"no slot on its arbiter -- the access latency would be "
                "unbounded (Section 4's predictability argument)"
            )
