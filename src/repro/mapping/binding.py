"""Actor-to-tile binding.

Greedy list binding in decreasing workload order (heavy actors placed
first, when the platform is still empty enough to balance them), choosing
for each actor the feasible tile with the lowest
:func:`~repro.mapping.costs.binding_cost`.  Feasibility covers:

* the tile has a processor and an implementation exists for its PE type;
* instruction + data memory of the tile still fit all bound actors plus
  the scheduling/communication layer.

The binder also records the chosen implementation per actor, which is how
heterogeneous platforms automatically select "the correct implementation"
(Section 7).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.appmodel.implementation import ActorImplementation
from repro.appmodel.model import ApplicationModel
from repro.arch.platform import ArchitectureModel
from repro.exceptions import MappingError
from repro.mapping.costs import CostWeights, binding_cost
from repro.sdf.repetition import repetition_vector

#: Instruction-memory footprint of the generated scheduler + communication
#: libraries on every used tile (the "template project" of Section 5.2).
RUNTIME_INSTRUCTION_BYTES = 12 * 1024
#: Data-memory footprint of the same runtime layer (schedule table, NI
#: bookkeeping, stacks).
RUNTIME_DATA_BYTES = 4 * 1024


def _memory_fits(
    app: ApplicationModel,
    arch: ArchitectureModel,
    tile_name: str,
    actors: List[str],
    implementations: Dict[str, ActorImplementation],
) -> bool:
    tile = arch.tile(tile_name)
    instruction = RUNTIME_INSTRUCTION_BYTES
    data = RUNTIME_DATA_BYTES
    for actor in actors:
        memory = implementations[actor].metrics.memory
        instruction += memory.instruction_bytes
        data += memory.data_bytes
    return (
        instruction <= tile.instruction_memory.capacity_bytes
        and data <= tile.data_memory.capacity_bytes
    )


def bind_actors(
    app: ApplicationModel,
    arch: ArchitectureModel,
    weights: Optional[CostWeights] = None,
    fixed: Optional[Dict[str, str]] = None,
) -> Tuple[Dict[str, str], Dict[str, ActorImplementation]]:
    """Bind every actor of ``app`` to a tile of ``arch``.

    ``fixed`` pins selected actors to tiles up front (e.g. an actor that
    needs the master tile's peripherals for file I/O).

    Returns ``(actor -> tile name, actor -> chosen implementation)``.
    Raises :class:`MappingError` when some actor fits nowhere.
    """
    app.validate()
    arch.validate()
    q = repetition_vector(app.graph)

    # Heavy actors first: workload = q[a] * best-case WCET.
    def workload(actor_name: str) -> int:
        wcets = [i.wcet for i in app.implementations_of(actor_name)]
        return q[actor_name] * min(wcets)

    order = sorted(
        (a.name for a in app.graph), key=workload, reverse=True
    )
    # Pinned actors go first so their load influences later choices.
    if fixed:
        order.sort(key=lambda a: a not in fixed)

    binding: Dict[str, str] = {}
    implementations: Dict[str, ActorImplementation] = {}
    load: Dict[str, int] = {}
    memory_used: Dict[str, int] = {}

    for actor in order:
        candidates = []
        for tile in arch.processor_tiles():
            impl = app.implementation_for(actor, tile.pe_type)
            if impl is None:
                continue
            if fixed and actor in fixed and tile.name != fixed[actor]:
                continue
            trial_actors = list(
                a for a, t in binding.items() if t == tile.name
            ) + [actor]
            trial_impls = dict(implementations)
            trial_impls[actor] = impl
            if not _memory_fits(app, arch, tile.name, trial_actors,
                                trial_impls):
                continue
            cost = binding_cost(
                app, arch, actor, tile.name, tile.pe_type,
                binding, load, memory_used, weights,
            )
            candidates.append((cost, tile.name, impl))
        if not candidates:
            reason = (
                f"pinned to {fixed[actor]!r} but infeasible there"
                if fixed and actor in fixed
                else "no tile offers a matching PE type with enough memory"
            )
            raise MappingError(
                f"actor {actor!r} cannot be bound: {reason}"
            )
        candidates.sort(key=lambda item: (item[0], item[1]))
        cost, tile_name, impl = candidates[0]
        binding[actor] = tile_name
        implementations[actor] = impl
        load[tile_name] = load.get(tile_name, 0) + q[actor] * impl.wcet
        memory_used[tile_name] = (
            memory_used.get(tile_name, 0) + impl.metrics.memory.total_bytes
        )

    return binding, implementations


def tile_loads(
    app: ApplicationModel, binding: Dict[str, str],
    implementations: Dict[str, ActorImplementation],
) -> Dict[str, int]:
    """Cycles of actor work per graph iteration, per tile."""
    q = repetition_vector(app.graph)
    loads: Dict[str, int] = {}
    for actor, tile in binding.items():
        loads[tile] = loads.get(tile, 0) + (
            q[actor] * implementations[actor].wcet
        )
    return loads
