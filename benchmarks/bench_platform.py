"""Benchmark: run-time admission latency and platform churn throughput.

The run-time manager's pitch is that admission of a library-covered
application is *selection*, not *analysis*: scanning stored operating
points for one that relocates onto the free tiles.  This benchmark
quantifies the claim against the same applications admitted cold,
where the manager must fall back to a spiral mapping over the residual
platform -- and measures sustained churn (admit/depart sequences with
occasional migrations) against a warm library set.

Emits ``benchmarks/results/BENCH_platform.json`` (wired into CI's
bench-smoke job) and a human-readable table next to it.
"""

import json
import random
import time

from benchmarks.conftest import RESULTS_DIR, write_results
from repro.exceptions import AdmissionError
from repro.flow.spec import ArchSpec
from repro.runtime import PlatformManager, build_library
from repro.scenarios import generate_scenarios, scenario_flow_spec

#: The managed platform every sequence runs against.
ARCH = ArchSpec(tiles=4, interconnect="fsl")
#: Applications in the workload mix.
APPS = 4
#: Admit/depart transitions of the churn phase.
CHURN_OPS = 40


def test_platform_admission_and_churn(benchmark):
    # splitjoin scenarios parallelize, so their Pareto fronts hold
    # multi-tile points and the churn phase can exercise migration
    specs = [
        scenario_flow_spec(s, architecture=ARCH)
        for s in generate_scenarios("splitjoin", APPS, seed=3)
    ]
    builds = [(spec, build_library(spec)) for spec in specs]
    records = {}

    def run_all():
        # --- warm: library selection, zero analyses -------------------
        # each admission lands on an empty platform (admit, then
        # depart), so warm and cold time the same residual state
        manager = PlatformManager(ARCH)
        for _, build in builds:
            manager.register_library(build.key, build.library)
        start = time.perf_counter()
        for spec, _ in builds:
            manager.depart(manager.admit(spec)["app_id"])
        warm_s = time.perf_counter() - start
        assert manager.counters["analyses"] == 0

        # --- cold: no libraries, every admission analyzes -------------
        cold_manager = PlatformManager(ARCH)
        start = time.perf_counter()
        for spec, _ in builds:
            cold_manager.depart(cold_manager.admit(spec)["app_id"])
        cold_s = time.perf_counter() - start
        assert cold_manager.counters["analyses"] == len(builds)

        # --- churn: random admit/depart against warm libraries --------
        rng = random.Random(17)
        running = []
        transitions = rejections = 0
        start = time.perf_counter()
        while transitions < CHURN_OPS:
            if running and rng.random() < 0.45:
                app_id = running.pop(rng.randrange(len(running)))
                manager.depart(app_id, migrate=rng.random() < 0.5)
                transitions += 1
            else:
                spec, _ = builds[rng.randrange(len(builds))]
                try:
                    running.append(manager.admit(spec)["app_id"])
                    transitions += 1
                except AdmissionError:
                    rejections += 1
                    if not running:  # cannot happen; defensive
                        break
        churn_s = time.perf_counter() - start

        records.update(
            {
                "apps": len(builds),
                "library_points": sum(
                    len(b.library) for _, b in builds
                ),
                "warm_admit_s": warm_s,
                "warm_admit_ms_per_app": warm_s * 1e3 / len(builds),
                "cold_admit_s": cold_s,
                "cold_admit_ms_per_app": cold_s * 1e3 / len(builds),
                "cold_over_warm": cold_s / warm_s,
                "churn_transitions": transitions,
                "churn_rejections": rejections,
                "churn_s": churn_s,
                "churn_transitions_per_s": transitions / churn_s,
                "churn_migrations": manager.counters["migrations"],
            }
        )
        return records

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = "\n".join(
        [
            f"{'metric':<28} {'value':>14}",
            "-" * 43,
            f"{'warm admit [ms/app]':<28} "
            f"{records['warm_admit_ms_per_app']:>14.3f}",
            f"{'cold admit [ms/app]':<28} "
            f"{records['cold_admit_ms_per_app']:>14.3f}",
            f"{'cold / warm':<28} {records['cold_over_warm']:>13.1f}x",
            f"{'churn [transitions/s]':<28} "
            f"{records['churn_transitions_per_s']:>14.1f}",
            f"{'churn migrations':<28} "
            f"{records['churn_migrations']:>14}",
        ]
    )
    path = write_results("platform.txt", table)

    RESULTS_DIR.mkdir(exist_ok=True)
    json_path = RESULTS_DIR / "BENCH_platform.json"
    json_path.write_text(
        json.dumps(
            {
                "bench": "run-time platform manager: warm-library vs "
                         "cold-spiral admission latency + churn "
                         f"throughput over {CHURN_OPS} transitions",
                "unit": "seconds",
                "platform": {
                    "tiles": ARCH.tiles,
                    "interconnect": ARCH.interconnect,
                },
                "results": records,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    print(f"\n{table}\n-> {path}\n-> {json_path}")

    # the claim the subsystem exists for: warm admission is selection,
    # not analysis, so it must beat the cold path comfortably
    assert records["cold_over_warm"] > 2.0
    assert records["churn_transitions"] == CHURN_OPS
