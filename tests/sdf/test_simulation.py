"""Tests for the self-timed simulation engine."""

import pytest

from repro.exceptions import GraphError, SimulationError
from repro.sdf import SDFGraph, SelfTimedSimulator


def test_pipeline_executes_in_order(two_actor_pipeline):
    sim = SelfTimedSimulator(two_actor_pipeline, record_trace=True)
    sim.run(max_firings=4)
    firings = sim.trace.firings
    p_firings = [f for f in firings if f.actor == "P"]
    q_firings = [f for f in firings if f.actor == "Q"]
    # P has period 5, Q starts only after P's first completion.
    assert p_firings[0].start == 0 and p_firings[0].end == 5
    assert q_firings[0].start == 5 and q_firings[0].end == 12


def test_auto_concurrency_one_serializes_source(two_actor_pipeline):
    sim = SelfTimedSimulator(two_actor_pipeline, auto_concurrency=1,
                             record_trace=True)
    sim.run(max_time=25)
    p_firings = sim.trace.firings_of("P")
    for first, second in zip(p_firings, p_firings[1:]):
        assert second.start >= first.end


def test_auto_concurrency_two_overlaps_source(two_actor_pipeline):
    sim = SelfTimedSimulator(two_actor_pipeline, auto_concurrency=2,
                             record_trace=True)
    sim.run(max_time=25)
    p_firings = sim.trace.firings_of("P")
    overlapping = any(
        second.start < first.end
        for first, second in zip(p_firings, p_firings[1:])
    )
    assert overlapping


def test_unlimited_concurrency_requires_input_edges(two_actor_pipeline):
    with pytest.raises(GraphError, match="no input edges"):
        SelfTimedSimulator(two_actor_pipeline, auto_concurrency=None)


def test_unlimited_concurrency_with_self_edge():
    g = SDFGraph("g")
    g.add_actor("A", execution_time=3)
    g.add_actor("B", execution_time=1)
    g.add_edge("selfA", "A", "A", initial_tokens=2)
    g.add_edge("ab", "A", "B")
    sim = SelfTimedSimulator(g, auto_concurrency=None, record_trace=True)
    sim.run(max_time=3)
    # Two initial self-tokens allow exactly two concurrent firings of A.
    a_firings = [f for f in sim.trace.firings if f.actor == "A"]
    assert len([f for f in a_firings if f.start == 0]) == 2


def test_deadlocked_graph_quiesces():
    g = SDFGraph("cycle")
    g.add_actor("A", execution_time=1)
    g.add_actor("B", execution_time=1)
    g.add_edge("ab", "A", "B")
    g.add_edge("ba", "B", "A")
    sim = SelfTimedSimulator(g)
    trace = sim.run(max_time=100)
    assert sim.is_quiescent()
    assert trace.makespan() == 0
    assert sim.completed == {"A": 0, "B": 0}


def test_run_requires_a_bound(two_actor_pipeline):
    sim = SelfTimedSimulator(two_actor_pipeline)
    with pytest.raises(SimulationError, match="max_time"):
        sim.run()


def test_processor_exclusivity(two_actor_pipeline):
    """Two actors on one processor never overlap."""
    sim = SelfTimedSimulator(
        two_actor_pipeline,
        processor_of={"P": "tile0", "Q": "tile0"},
        record_trace=True,
    )
    sim.run(max_time=60)
    firings = sorted(sim.trace.firings, key=lambda f: f.start)
    for first, second in zip(firings, firings[1:]):
        assert second.start >= first.end


def test_static_order_is_followed(figure2_graph):
    order = ["A", "B", "B", "C"]
    sim = SelfTimedSimulator(
        figure2_graph,
        processor_of={"A": "t", "B": "t", "C": "t"},
        static_order={"t": order},
        record_trace=True,
    )
    sim.run(max_firings=8)
    names = [f.actor for f in sorted(sim.trace.firings,
                                     key=lambda f: (f.start, f.end))]
    assert names == ["A", "B", "B", "C", "A", "B", "B", "C"]


def test_actor_outside_order_runs_interleaved(figure2_graph):
    """Actors bound to a static-order processor but not listed in its order
    model communication-library work: they run when the PE is idle."""
    sim = SelfTimedSimulator(
        figure2_graph,
        processor_of={"A": "t", "B": "t"},
        static_order={"t": ["A"]},  # B interleaves
        record_trace=True,
    )
    sim.run(max_firings=6)
    assert sim.completed["B"] > 0
    # A and B still never overlap: same processor.
    firings = sorted(
        (f for f in sim.trace.firings if f.actor in "AB"),
        key=lambda f: f.start,
    )
    for first, second in zip(firings, firings[1:]):
        assert second.start >= first.end


def test_static_order_unknown_actor_rejected(figure2_graph):
    with pytest.raises(GraphError, match="unknown actor"):
        SelfTimedSimulator(
            figure2_graph,
            processor_of={"A": "t"},
            static_order={"t": ["A", "Zed"]},
        )


def test_static_order_requires_binding(figure2_graph):
    with pytest.raises(GraphError, match="not bound"):
        SelfTimedSimulator(
            figure2_graph,
            processor_of={"A": "other"},
            static_order={"t": ["A"]},
        )


def test_blocking_static_order_quiesces():
    """An order that demands a never-ready actor blocks the processor."""
    g = SDFGraph("g")
    g.add_actor("A", execution_time=1)
    g.add_actor("B", execution_time=1)
    g.add_edge("ab", "A", "B")
    sim = SelfTimedSimulator(
        g,
        processor_of={"A": "t", "B": "t"},
        static_order={"t": ["B", "A"]},  # B first, but B needs A's token
    )
    sim.run(max_time=10)
    assert sim.is_quiescent()
    assert sim.completed["B"] == 0


def test_max_token_tracking(figure2_graph):
    sim = SelfTimedSimulator(figure2_graph)
    sim.run(max_firings=40)
    # a2b receives 2 tokens per A firing and holds at least that many.
    assert sim.trace.max_tokens["a2b"] >= 2


def test_data_dependent_execution_times(two_actor_pipeline):
    durations = {"P": [3, 9, 3], "Q": [2, 2, 2]}

    def exec_time(actor, index):
        series = durations[actor]
        return series[index % len(series)]

    sim = SelfTimedSimulator(
        two_actor_pipeline, execution_time_of=exec_time, record_trace=True
    )
    sim.run(max_firings=6)
    p_firings = sim.trace.firings_of("P")
    assert p_firings[0].duration == 3
    assert p_firings[1].duration == 9


def test_state_key_is_time_invariant():
    """Keys taken at corresponding points of different periods match."""
    g = SDFGraph("steady")
    g.add_actor("P", execution_time=7)
    g.add_actor("Q", execution_time=5)
    g.add_edge("pq", "P", "Q")
    sim = SelfTimedSimulator(g)
    keys = {}
    for _ in range(60):
        sim.step()
        count = sim.completed["Q"]
        if count in (3, 5) and count not in keys:
            keys[count] = sim.state_key()
    # P is the bottleneck, so the execution is periodic with period 7 and
    # the time-normalized state recurs at every Q completion.
    assert keys[3] == keys[5]


def test_reset_restores_initial_state(figure2_graph):
    sim = SelfTimedSimulator(figure2_graph)
    sim.run(max_firings=10)
    assert sim.now > 0
    sim.reset()
    assert sim.now == 0
    assert sim.tokens["selfA"] == 1
    assert sim.completed == {"A": 0, "B": 0, "C": 0}
