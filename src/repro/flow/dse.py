"""Automated design-space exploration (paper Section 7, future work).

"For future work we would like to offer an improved automated design space
exploration" -- this module provides it as a proper subsystem rather than
a one-shot sweep:

* :class:`DesignSpace` enumerates candidate platforms over tile count,
  interconnect kind, communication-assist usage, heterogeneous tile
  memory mixes and mapping effort level;
* :class:`Evaluator` runs one candidate through the conservative mapping
  analysis (:func:`repro.mapping.flow.map_application`) behind a
  content-addressed :class:`EvaluationCache`, so repeated sweeps and
  overlapping multi-application studies never re-analyze the same point;
* :class:`ParallelExplorer` fans evaluations out over
  ``concurrent.futures`` workers with deterministic result ordering,
  optional early exit at the first constraint-satisfying point, and an
  incrementally maintained Pareto front.

Because every point costs one mapping run (sub-second), the whole space
of the template explores in seconds -- the "very fast design space
exploration" the conclusion promises -- and a cache-warm re-sweep costs
essentially nothing.

The one-call entry point :func:`explore_design_space` is kept for
compatibility; it now builds a space, evaluator and explorer under the
hood.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass
from fractions import Fraction
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.appmodel.model import ApplicationModel
from repro.flow.backend import (  # noqa: F401  (WorkerPool re-export)
    ExecutionBackend,
    WorkerPool,
    as_backend,
    backend_task,
)
from repro.arch.area import AreaEstimate, platform_area
from repro.arch.platform import ArchitectureModel
from repro.arch.template import architecture_from_template
from repro.exceptions import MappingError, PowerError, RoutingError
from repro.flow.fingerprint import (
    application_fingerprint,
    architecture_fingerprint,
    evaluation_key,
)
from repro.mapping.flow import MappingEffort, map_application
from repro.mapping.pipeline import DEFAULT_STRATEGIES, StrategyTuple
from repro.power import (
    EnergyEstimate,
    PowerEstimate,
    PowerModel,
    application_energy,
    platform_power,
)


# ----------------------------------------------------------------------
# the design space
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TileMix:
    """A (possibly heterogeneous) memory configuration of the tiles.

    The MAMPS template ships one master and N-1 slave tiles; a mix sets
    their modified-Harvard memory sizes independently, e.g. a big master
    for the file-reading actor next to lean slaves.  ``(instruction kB,
    data kB)`` pairs per role.
    """

    name: str
    master_kb: Tuple[int, int] = (128, 128)
    slave_kb: Tuple[int, int] = (128, 128)

    @property
    def heterogeneous(self) -> bool:
        return self.master_kb != self.slave_kb


#: All tiles at the template default of 128 kB + 128 kB.
UNIFORM_MIX = TileMix("uniform")
#: Heterogeneous: full-size master, half-size slaves (saves BRAMs when the
#: pinned master actor is the memory-hungry one).
COMPACT_MIX = TileMix("compact", master_kb=(128, 128), slave_kb=(64, 64))


@dataclass(frozen=True)
class CandidatePoint:
    """One not-yet-evaluated configuration of the template.

    ``strategy`` names the mapping-pipeline stages the evaluation should
    run (:class:`repro.mapping.pipeline.StrategyTuple`); the default is
    the paper's recipe, which keeps historic labels unchanged.
    """

    tiles: int
    interconnect: str
    with_ca: bool = False
    mix: TileMix = UNIFORM_MIX
    effort: str = "normal"
    strategy: StrategyTuple = DEFAULT_STRATEGIES

    @property
    def label(self) -> str:
        suffix = "+CA" if self.with_ca else ""
        if self.mix.name != "uniform":
            suffix += f"@{self.mix.name}"
        suffix += self.strategy.label_suffix()
        return f"{self.tiles}t/{self.interconnect}{suffix}"

    def build_architecture(self) -> ArchitectureModel:
        """Instantiate the template architecture this point describes."""
        name = f"mamps_{self.tiles}t_{self.interconnect}"
        if self.mix.name != "uniform":
            name += f"_{self.mix.name}"
        return architecture_from_template(
            self.tiles,
            self.interconnect,
            name=name,
            instruction_kb=self.mix.master_kb[0],
            data_kb=self.mix.master_kb[1],
            slave_instruction_kb=self.mix.slave_kb[0],
            slave_data_kb=self.mix.slave_kb[1],
            with_ca=self.with_ca,
        )


@dataclass(frozen=True)
class DesignSpace:
    """The sweep definition: the cartesian product of all axes, minus
    configurations that are physically identical.

    Single-tile platforms take no interconnect, so only the first
    interconnect kind is kept for them; likewise a mix whose slave sizes
    differ is meaningless with one tile and collapses onto the uniform
    variant.
    """

    tile_counts: Sequence[int] = (1, 2, 3, 4, 5)
    interconnects: Sequence[str] = ("fsl", "noc")
    ca_options: Sequence[bool] = (False,)
    mixes: Sequence[TileMix] = (UNIFORM_MIX,)
    effort: str = "normal"
    strategy: StrategyTuple = DEFAULT_STRATEGIES

    def points(self) -> Tuple[CandidatePoint, ...]:
        """All candidate points, in deterministic enumeration order."""
        out: List[CandidatePoint] = []
        seen: set = set()
        for tiles in self.tile_counts:
            for interconnect in self.interconnects:
                if tiles == 1 and interconnect != self.interconnects[0]:
                    continue  # single tile has no interconnect; dedupe
                for with_ca in self.ca_options:
                    for mix in self.mixes:
                        if tiles == 1 and mix.heterogeneous:
                            # no slaves to differentiate; collapse onto the
                            # master-only variant
                            name = (
                                "uniform"
                                if mix.master_kb == UNIFORM_MIX.master_kb
                                else mix.name
                            )
                            mix = TileMix(
                                name, mix.master_kb, mix.master_kb
                            )
                        candidate = CandidatePoint(
                            tiles=tiles,
                            interconnect=interconnect,
                            with_ca=with_ca,
                            mix=mix,
                            effort=self.effort,
                            strategy=self.strategy,
                        )
                        if candidate.label in seen:
                            continue
                        seen.add(candidate.label)
                        out.append(candidate)
        return tuple(out)

    def __len__(self) -> int:
        return len(self.points())

    def __iter__(self) -> Iterator[CandidatePoint]:
        return iter(self.points())


# ----------------------------------------------------------------------
# evaluated points, objectives, and the incremental Pareto front
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Objective:
    """One axis of Pareto dominance.

    ``extract`` pulls the objective's value from a
    :class:`DesignPoint`; returning ``None`` marks the objective as
    *inactive* for that point (e.g. energy on a sweep that never
    enabled power estimation), and an objective inactive on either side
    of a comparison is skipped rather than treated as zero.
    """

    name: str
    maximize: bool
    extract: Callable[["DesignPoint"], Optional[object]]


def _throughput_of(point: "DesignPoint") -> Fraction:
    return point.throughput


def _slices_of(point: "DesignPoint") -> int:
    return point.area.slices


def _energy_of(point: "DesignPoint") -> Optional[Fraction]:
    return None if point.energy is None else point.energy.total_pj


#: The flow's objective set: the paper's (throughput, area) pair plus
#: energy per iteration (active only when power estimation ran).
OBJECTIVES: Tuple[Objective, ...] = (
    Objective("throughput", True, _throughput_of),
    Objective("slices", False, _slices_of),
    Objective("energy", False, _energy_of),
)


def dominates(
    point: "DesignPoint",
    other: "DesignPoint",
    objectives: Sequence[Objective] = OBJECTIVES,
) -> bool:
    """N-objective Pareto dominance: no worse on every active
    objective, strictly better on at least one."""
    better = False
    for objective in objectives:
        ours = objective.extract(point)
        theirs = objective.extract(other)
        if ours is None or theirs is None:
            continue
        if ours == theirs:
            continue
        if (ours > theirs) == objective.maximize:
            better = True
        else:
            return False
    return better


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration of the template."""

    tiles: int
    interconnect: str
    with_ca: bool
    throughput: Fraction
    area: AreaEstimate
    constraint_met: bool
    mix: str = "uniform"
    effort: str = "normal"
    #: The mapping-pipeline strategies the evaluation ran under.
    strategy: StrategyTuple = DEFAULT_STRATEGIES
    #: The candidate this point evaluated; lets a chosen point be promoted
    #: to the full flow (``DesignFlow.from_design_point``).
    candidate: Optional[CandidatePoint] = None
    #: Peak platform power; ``None`` unless power estimation was enabled
    #: (a budget or explicit model), keeping historic artifacts intact.
    power: Optional[PowerEstimate] = None
    #: Energy per graph iteration under this point's mapping; ``None``
    #: unless power estimation was enabled.
    energy: Optional[EnergyEstimate] = None

    @property
    def label(self) -> str:
        suffix = "+CA" if self.with_ca else ""
        if self.mix != "uniform":
            suffix += f"@{self.mix}"
        suffix += self.strategy.label_suffix()
        return f"{self.tiles}t/{self.interconnect}{suffix}"

    def to_payload(self) -> Dict[str, object]:
        """Canonical versioned artifact payload (:mod:`repro.artifacts`)."""
        from repro.artifacts.schema import to_payload

        return to_payload(self)

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "DesignPoint":
        from repro.artifacts.schema import check_envelope, from_payload

        check_envelope(payload, "design-point")
        return from_payload(payload)

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance over :data:`OBJECTIVES`: throughput is
        maximized, slice count and energy (when present) minimized."""
        return dominates(self, other)


def _front_sort_key(point: DesignPoint) -> Tuple[int, int, Fraction]:
    """Deterministic report ordering: cheapest first, ties broken on
    BRAMs then descending throughput, so equal-area points never
    shuffle between runs."""
    return (point.area.slices, point.area.brams, -point.throughput)


class ParetoFront:
    """Incrementally maintained set of non-dominated points.

    Each :meth:`add` drops the newcomer if any member dominates it and
    evicts members the newcomer dominates -- O(front size) per insert
    instead of the O(n^2) post-hoc filter over every evaluated point.
    Dominance runs over ``objectives`` (default :data:`OBJECTIVES`).
    """

    def __init__(
        self, objectives: Sequence[Objective] = OBJECTIVES
    ) -> None:
        self._members: List[DesignPoint] = []
        self._objectives = tuple(objectives)

    def add(self, point: DesignPoint) -> bool:
        """Insert ``point``; returns True when it (already) is a member."""
        if point in self._members:
            return True
        if any(
            dominates(member, point, self._objectives)
            for member in self._members
        ):
            return False
        self._members = [
            member
            for member in self._members
            if not dominates(point, member, self._objectives)
        ]
        self._members.append(point)
        return True

    def points(self) -> List[DesignPoint]:
        """Front members sorted by area (cheapest first; ties broken on
        BRAMs, then descending throughput)."""
        return sorted(self._members, key=_front_sort_key)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, point: DesignPoint) -> bool:
        return point in self._members

    def __eq__(self, other: object) -> bool:
        """Same member *set* (insertion order is irrelevant to a front)."""
        if not isinstance(other, ParetoFront):
            return NotImplemented
        return len(self._members) == len(other._members) and all(
            member in other._members for member in self._members
        )

    __hash__ = None  # mutable


# ----------------------------------------------------------------------
# the cached evaluator
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EvaluationOutcome:
    """What evaluating one candidate produced: a point or a failure."""

    label: str
    point: Optional[DesignPoint] = None
    reason: Optional[str] = None

    @property
    def feasible(self) -> bool:
        return self.point is not None

    def rebrand(self, candidate: CandidatePoint) -> "EvaluationOutcome":
        """The same analysis content under ``candidate``'s identity.

        Cache keys address the *analysis problem* (fingerprints), which
        physically identical candidates share -- e.g. the single-tile
        platform regardless of the requested interconnect.  A cache hit
        must therefore be re-labeled for the candidate that asked, or a
        noc-only sweep could report points labeled ``1t/fsl``.
        """
        if self.point is None:
            return EvaluationOutcome(
                label=candidate.label, reason=self.reason
            )
        return EvaluationOutcome(
            label=candidate.label,
            point=DesignPoint(
                tiles=candidate.tiles,
                interconnect=candidate.interconnect,
                with_ca=candidate.with_ca,
                throughput=self.point.throughput,
                area=self.point.area,
                constraint_met=self.point.constraint_met,
                mix=candidate.mix.name,
                effort=candidate.effort,
                strategy=candidate.strategy,
                candidate=candidate,
                power=self.point.power,
                energy=self.point.energy,
            ),
        )


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class EvaluationCache:
    """Content-addressed store of evaluation outcomes.

    Keys are :func:`repro.flow.fingerprint.evaluation_key` digests --
    application fingerprint + architecture fingerprint + mapping knobs --
    so any two evaluations of the *same analysis problem* share an entry,
    regardless of which sweep, explorer or application object asked.
    Thread-safe: parallel workers share one instance.
    """

    def __init__(self) -> None:
        self._store: Dict[str, EvaluationOutcome] = {}
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def get(self, key: str) -> Optional[EvaluationOutcome]:
        with self._lock:
            outcome = self._store.get(key)
            if outcome is None:
                self.stats.misses += 1
            else:
                self.stats.hits += 1
            return outcome

    def put(self, key: str, outcome: EvaluationOutcome) -> None:
        with self._lock:
            self._store[key] = outcome

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._store)


class Evaluator:
    """Maps candidate points through the conservative analysis, memoized.

    One evaluator serves one application (its fingerprint is precomputed);
    the *cache* may be shared across evaluators -- keys embed the
    application fingerprint, so a multi-application study reuses whatever
    design points its applications have in common with earlier sweeps.
    """

    def __init__(
        self,
        app: ApplicationModel,
        constraint: Optional[Fraction] = None,
        fixed: Optional[Dict[str, str]] = None,
        cache: Optional[EvaluationCache] = None,
        power_budget: Optional[Fraction] = None,
        energy_budget: Optional[Fraction] = None,
        power_model: Optional[PowerModel] = None,
    ) -> None:
        self.app = app
        self.constraint = (
            constraint if constraint is not None
            else app.throughput_constraint
        )
        self.fixed = dict(fixed) if fixed else None
        self.cache = cache if cache is not None else EvaluationCache()
        self.power_budget = power_budget
        self.energy_budget = energy_budget
        if power_model is None and (
            power_budget is not None or energy_budget is not None
        ):
            power_model = PowerModel()
        #: ``None`` keeps power estimation off entirely -- evaluation
        #: keys and artifacts stay byte-identical to budget-less runs.
        self.power_model = power_model
        self._app_fingerprint = application_fingerprint(app)
        self.evaluations = 0  # cache misses that ran the full analysis
        self._count_lock = threading.Lock()

    def _budget_token(self) -> Optional[str]:
        """Cache-key part for the power configuration; ``None`` (and
        therefore absent from the key) when estimation is off."""
        if self.power_model is None:
            return None
        return (
            f"{self.power_model.cache_token()}"
            f",power={self.power_budget}"
            f",energy={self.energy_budget}"
        )

    def evaluate(self, candidate: CandidatePoint) -> EvaluationOutcome:
        """Analyze one candidate, consulting the cache first."""
        effort = MappingEffort.of(candidate.effort)
        arch = candidate.build_architecture()
        key = evaluation_key(
            self._app_fingerprint,
            architecture_fingerprint(arch),
            self.constraint,
            self.fixed,
            f"{effort.name}:{effort.max_buffer_rounds}"
            f":{effort.max_iterations}",
            strategy=candidate.strategy.cache_token(),
            budgets=self._budget_token(),
        )
        cached = self.cache.get(key)
        if cached is not None:
            return cached.rebrand(candidate)

        with self._count_lock:
            self.evaluations += 1
        try:
            result = map_application(
                self.app,
                arch,
                constraint=self.constraint,
                fixed=self.fixed,
                effort=effort,
                pipeline=candidate.strategy.build_pipeline(),
            )
        except (MappingError, RoutingError) as error:
            outcome = EvaluationOutcome(
                label=candidate.label, reason=str(error)
            )
        else:
            outcome = self._score(candidate, arch, result)
        self.cache.put(key, outcome)
        return outcome

    def _score(self, candidate, arch, result) -> EvaluationOutcome:
        """Fold a successful mapping into an outcome, estimating power
        and enforcing budgets when the model is on."""
        power = energy = None
        if self.power_model is not None:
            power = platform_power(arch, self.power_model)
            try:
                energy = application_energy(
                    self.app, result, arch, self.power_model
                )
            except PowerError as error:
                return EvaluationOutcome(
                    label=candidate.label, reason=str(error)
                )
            if not power.within_budget(self.power_budget):
                return EvaluationOutcome(
                    label=candidate.label,
                    reason=(
                        f"over power budget: "
                        f"{float(power.total_mw):.1f} mW > "
                        f"{float(self.power_budget):.1f} mW"
                    ),
                )
            if not energy.within_budget(self.energy_budget):
                return EvaluationOutcome(
                    label=candidate.label,
                    reason=(
                        f"over energy budget: "
                        f"{float(energy.total_nj):.2f} nJ/iter > "
                        f"{float(self.energy_budget):.2f} nJ/iter"
                    ),
                )
        return EvaluationOutcome(
            label=candidate.label,
            point=DesignPoint(
                tiles=candidate.tiles,
                interconnect=candidate.interconnect,
                with_ca=candidate.with_ca,
                throughput=result.guaranteed_throughput,
                area=platform_area(arch),
                constraint_met=result.constraint_met,
                mix=candidate.mix.name,
                effort=candidate.effort,
                strategy=candidate.strategy,
                candidate=candidate,
                power=power,
                energy=energy,
            ),
        )


class UseCaseEvaluator:
    """Evaluate candidates against *several* applications (use-cases).

    The MAMPS platform is shared by time-multiplexed use-cases
    (:mod:`repro.flow.usecases`): a candidate platform is only useful
    when **every** application maps onto it.  This evaluator runs one
    per-application :class:`Evaluator` against a shared cache and folds
    the outcomes:

    * infeasible for any application -> infeasible (reason names the
      application);
    * otherwise the combined point reports the *minimum* per-application
      throughput (the platform's bottleneck guarantee) and meets the
      constraint only when every application meets its own.

    Cache entries stay per-application, so overlapping studies and
    single-application sweeps reuse each other's work.  The union's
    physical-link feasibility (FSL port limits) is checked when a chosen
    point is promoted through :func:`repro.flow.usecases.map_use_cases`,
    not per candidate -- each per-application mapping is individually
    routable, which the per-candidate analysis already guarantees.
    """

    def __init__(
        self,
        apps: Sequence[ApplicationModel],
        constraints: Optional[Dict[str, Optional[Fraction]]] = None,
        fixed: Optional[Dict[str, Dict[str, str]]] = None,
        cache: Optional[EvaluationCache] = None,
        power_budget: Optional[Fraction] = None,
        energy_budget: Optional[Fraction] = None,
        power_model: Optional[PowerModel] = None,
    ) -> None:
        if not apps:
            raise ValueError("UseCaseEvaluator needs at least one app")
        names = [app.name for app in apps]
        if len(set(names)) != len(names):
            raise ValueError(
                f"use-case applications need distinct names, got {names}"
            )
        self.apps = tuple(apps)
        self.cache = cache if cache is not None else EvaluationCache()
        self._evaluators = [
            Evaluator(
                app,
                constraint=(constraints or {}).get(app.name),
                fixed=(fixed or {}).get(app.name),
                cache=self.cache,
                power_budget=power_budget,
                energy_budget=energy_budget,
                power_model=power_model,
            )
            for app in apps
        ]
        #: The binding constraint the explorer's early-exit logic checks;
        #: any application having one makes early exit meaningful.
        active = [
            e.constraint for e in self._evaluators
            if e.constraint is not None
        ]
        self.constraint: Optional[Fraction] = min(active) if active else None

    @property
    def evaluations(self) -> int:
        return sum(e.evaluations for e in self._evaluators)

    def evaluate(self, candidate: CandidatePoint) -> EvaluationOutcome:
        points: List[DesignPoint] = []
        for app, evaluator in zip(self.apps, self._evaluators):
            outcome = evaluator.evaluate(candidate)
            if outcome.point is None:
                return EvaluationOutcome(
                    label=candidate.label,
                    reason=f"{app.name}: {outcome.reason}",
                )
            points.append(outcome.point)
        bottleneck = min(points, key=lambda p: p.throughput)
        # the platform (and its peak power) is shared; energy reports
        # the worst per-application iteration cost, deterministically
        energy = None
        if all(p.energy is not None for p in points):
            energy = max(
                (p.energy for p in points), key=lambda e: e.total_pj
            )
        return EvaluationOutcome(
            label=candidate.label,
            point=DesignPoint(
                tiles=candidate.tiles,
                interconnect=candidate.interconnect,
                with_ca=candidate.with_ca,
                throughput=bottleneck.throughput,
                area=bottleneck.area,
                constraint_met=all(p.constraint_met for p in points),
                mix=candidate.mix.name,
                effort=candidate.effort,
                strategy=candidate.strategy,
                candidate=candidate,
                power=bottleneck.power,
                energy=energy,
            ),
        )


# ----------------------------------------------------------------------
# exploration results
# ----------------------------------------------------------------------
@dataclass
class ExplorationResult:
    """All evaluated points plus the Pareto frontier."""

    points: List[DesignPoint]
    failures: List[Tuple[str, str]]  # (label, reason)
    front: Optional[ParetoFront] = None
    cache_stats: Optional[CacheStats] = None
    elapsed_seconds: float = 0.0
    jobs: int = 1
    early_exit: bool = False
    skipped: int = 0  # candidates never evaluated due to early exit

    def to_payload(self) -> Dict[str, object]:
        """Canonical versioned artifact payload (:mod:`repro.artifacts`)."""
        from repro.artifacts.schema import to_payload

        return to_payload(self)

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "ExplorationResult":
        from repro.artifacts.schema import check_envelope, from_payload

        check_envelope(payload, "exploration-result")
        return from_payload(payload)

    def pareto_frontier(self) -> List[DesignPoint]:
        if self.front is not None:
            return self.front.points()
        # post-hoc fallback for hand-built results
        frontier = [
            p for p in self.points
            if not any(q.dominates(p) for q in self.points)
        ]
        return sorted(frontier, key=_front_sort_key)

    def best_meeting_constraint(self) -> Optional[DesignPoint]:
        """Smallest design point that meets the throughput constraint."""
        feasible = [p for p in self.points if p.constraint_met]
        if not feasible:
            return None
        return min(feasible, key=_front_sort_key)

    def as_table(self) -> str:
        width = max([len(p.label) for p in self.points] + [12])
        # the energy column appears only when estimation ran, keeping
        # budget-less renders identical to historic output
        with_energy = any(p.energy is not None for p in self.points)
        header = (
            f"{'point':<{width}} {'throughput/Mcycle':>18} {'slices':>8} "
            f"{'BRAMs':>6} {'meets':>6} {'pareto':>7}"
        )
        if with_energy:
            header += f" {'nJ/iter':>10}"
        frontier = set(p.label for p in self.pareto_frontier())
        lines = [header, "-" * len(header)]
        for p in sorted(
            self.points,
            key=lambda p: (p.tiles, p.interconnect, p.with_ca, p.mix),
        ):
            line = (
                f"{p.label:<{width}} {float(p.throughput * 1e6):>18.4f} "
                f"{p.area.slices:>8} {p.area.brams:>6} "
                f"{'yes' if p.constraint_met else 'no':>6} "
                f"{'*' if p.label in frontier else '':>7}"
            )
            if with_energy:
                energy = (
                    f"{float(p.energy.total_nj):.2f}"
                    if p.energy is not None
                    else "-"
                )
                line += f" {energy:>10}"
            lines.append(line)
        for label, reason in self.failures:
            lines.append(f"{label:<{width}} infeasible: {reason}")
        if self.skipped:
            lines.append(
                f"(early exit: {self.skipped} candidate(s) not evaluated)"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# the process-shippable evaluation task
# ----------------------------------------------------------------------
# Worker processes memoize one evaluator per sweep configuration: the
# config payload rides along with every candidate (workers are
# stateless across submissions by contract), but only the first
# candidate a worker sees actually builds the evaluator.
_CHILD_EVALUATORS: Dict[str, "Union[Evaluator, UseCaseEvaluator]"] = {}


def _sweep_config(
    evaluator: "Union[Evaluator, UseCaseEvaluator]",
) -> Dict[str, object]:
    """The JSON document a worker rebuilds this evaluator from."""
    from repro.artifacts.schema import to_payload

    def encode_power(ev: "Evaluator") -> Optional[Dict[str, object]]:
        if ev.power_model is None:
            return None
        return {
            "tech_nm": ev.power_model.tech_nm,
            "power_budget": (
                None if ev.power_budget is None else str(ev.power_budget)
            ),
            "energy_budget": (
                None
                if ev.energy_budget is None
                else str(ev.energy_budget)
            ),
        }

    if isinstance(evaluator, Evaluator):
        return {
            "multi": False,
            "apps": [to_payload(evaluator.app)],
            "constraints": {
                evaluator.app.name: (
                    None
                    if evaluator.constraint is None
                    else str(evaluator.constraint)
                )
            },
            "fixed": (
                {evaluator.app.name: evaluator.fixed}
                if evaluator.fixed
                else {}
            ),
            "power": encode_power(evaluator),
        }
    parts = evaluator._evaluators
    return {
        "multi": True,
        "apps": [to_payload(app) for app in evaluator.apps],
        "constraints": {
            app.name: (
                None if part.constraint is None else str(part.constraint)
            )
            for app, part in zip(evaluator.apps, parts)
        },
        "fixed": {
            app.name: part.fixed
            for app, part in zip(evaluator.apps, parts)
            if part.fixed
        },
        "power": encode_power(parts[0]),
    }


def _evaluator_from_config(
    config: Dict[str, object],
) -> "Union[Evaluator, UseCaseEvaluator]":
    import repro.artifacts.codecs  # noqa: F401  (registers the codecs)
    from repro.artifacts.schema import from_payload

    apps = [from_payload(payload) for payload in config["apps"]]
    constraints = {
        name: None if value is None else Fraction(value)
        for name, value in config["constraints"].items()
    }
    power = config["power"]
    power_kwargs: Dict[str, object] = {}
    if power is not None:
        power_kwargs = {
            "power_model": PowerModel(tech_nm=power["tech_nm"]),
            "power_budget": (
                None
                if power["power_budget"] is None
                else Fraction(power["power_budget"])
            ),
            "energy_budget": (
                None
                if power["energy_budget"] is None
                else Fraction(power["energy_budget"])
            ),
        }
    if not config["multi"]:
        app = apps[0]
        return Evaluator(
            app,
            constraint=constraints.get(app.name),
            fixed=config["fixed"].get(app.name),
            **power_kwargs,
        )
    return UseCaseEvaluator(
        apps,
        constraints=constraints,
        fixed=config["fixed"] or None,
        **power_kwargs,
    )


@backend_task("dse.evaluate-candidate")
def _evaluate_candidate_task(payload: Dict[str, object]) -> object:
    """Evaluate one candidate in a worker process.

    Payload: ``config`` (the sweep document of :func:`_sweep_config`),
    ``config_key`` (its digest, the memoization key) and ``candidate``
    (a canonical ``candidate-point`` payload).  Returns the canonical
    ``evaluation-outcome`` payload.  Each worker keeps a per-process
    evaluator (and evaluation cache) per config; results are a pure
    function of the inputs, so the parent's fold is byte-identical to
    a thread sweep.
    """
    import repro.artifacts.codecs  # noqa: F401  (registers the codecs)
    from repro.artifacts.schema import from_payload, to_payload

    key = payload["config_key"]
    evaluator = _CHILD_EVALUATORS.get(key)
    if evaluator is None:
        evaluator = _evaluator_from_config(payload["config"])
        _CHILD_EVALUATORS.clear()  # one sweep at a time per worker
        _CHILD_EVALUATORS[key] = evaluator
    candidate = from_payload(payload["candidate"])
    return to_payload(evaluator.evaluate(candidate))


# ----------------------------------------------------------------------
# the explorer
# ----------------------------------------------------------------------
class ParallelExplorer:
    """Sweeps a :class:`DesignSpace` through an :class:`Evaluator`.

    ``jobs > 1`` fans evaluations out over an execution backend
    (:mod:`repro.flow.backend`); results are collected in enumeration
    order, so the produced point list -- and therefore the Pareto front
    and the rendered table -- is byte-identical to a serial sweep.
    ``backend`` picks where evaluations run: ``"thread"`` (default)
    shares this process, ``"process"`` ships each candidate as a
    canonical payload to worker processes -- pure-Python analyses then
    scale with cores instead of contending on the GIL.  Process workers
    keep per-process evaluation caches, so the parent's ``cache_stats``
    only reflect its own (unused) cache.

    ``early_exit=True`` stops at the first candidate (in enumeration
    order) whose mapping meets the throughput constraint; later
    candidates are reported as ``skipped``.  With workers in flight some
    later points may already have been analyzed -- their results land in
    the cache for the next sweep but are *not* included in the result,
    keeping early-exit output independent of ``jobs``.
    """

    def __init__(
        self,
        evaluator: "Union[Evaluator, UseCaseEvaluator]",
        jobs: int = 1,
        backend: Union[None, str, ExecutionBackend] = None,
    ) -> None:
        self.evaluator = evaluator
        self.backend = as_backend(backend, jobs)
        self.jobs = self.backend.jobs

    def explore(
        self, space: DesignSpace, early_exit: bool = False
    ) -> ExplorationResult:
        if early_exit and self.evaluator.constraint is None:
            raise ValueError(
                "early_exit needs a throughput constraint; without one "
                "every point trivially satisfies it and the sweep would "
                "stop at the first candidate"
            )
        start = time.perf_counter()
        candidates = space.points()
        front = ParetoFront()
        points: List[DesignPoint] = []
        failures: List[Tuple[str, str]] = []
        skipped = 0
        stopped = threading.Event()

        def run(candidate: CandidatePoint) -> Optional[EvaluationOutcome]:
            if stopped.is_set():
                return None
            return self.evaluator.evaluate(candidate)

        fold = lambda outcomes: self._collect(  # noqa: E731
            candidates, outcomes, points, failures, front,
            early_exit, stopped,
        )
        if self.backend.name == "process":
            consumed = self.backend.run_tasks_ordered(
                "dse.evaluate-candidate",
                self._task_payloads(candidates),
                fold=lambda payloads: fold(
                    self._decode_outcomes(payloads)
                ),
            )
        else:
            consumed = self.backend.map_ordered(run, candidates, fold=fold)
        skipped = len(candidates) - consumed
        return ExplorationResult(
            points=points,
            failures=failures,
            front=front,
            cache_stats=self.evaluator.cache.stats,
            elapsed_seconds=time.perf_counter() - start,
            jobs=self.jobs,
            early_exit=early_exit,
            skipped=skipped,
        )

    def _task_payloads(
        self, candidates: Sequence[CandidatePoint]
    ) -> List[Dict[str, object]]:
        """One ``dse.evaluate-candidate`` payload per candidate."""
        from repro.artifacts.schema import to_payload

        config = _sweep_config(self.evaluator)
        config_key = hashlib.sha256(
            json.dumps(config, sort_keys=True).encode("utf-8")
        ).hexdigest()
        return [
            {
                "config": config,
                "config_key": config_key,
                "candidate": to_payload(candidate),
            }
            for candidate in candidates
        ]

    @staticmethod
    def _decode_outcomes(payloads) -> Iterator[EvaluationOutcome]:
        from repro.artifacts.schema import from_payload

        return (from_payload(payload) for payload in payloads)

    @staticmethod
    def _collect(
        candidates: Sequence[CandidatePoint],
        outcomes: Iterator[Optional[EvaluationOutcome]],
        points: List[DesignPoint],
        failures: List[Tuple[str, str]],
        front: ParetoFront,
        early_exit: bool,
        stopped: threading.Event,
    ) -> int:
        """Fold outcomes, in enumeration order, into the result lists.
        Returns how many candidates were consumed."""
        consumed = 0
        for candidate, outcome in zip(candidates, outcomes):
            if outcome is None:  # worker saw the stop flag first
                break
            consumed += 1
            if outcome.point is not None:
                points.append(outcome.point)
                front.add(outcome.point)
                if early_exit and outcome.point.constraint_met:
                    stopped.set()
                    break
            else:
                failures.append((outcome.label, outcome.reason or ""))
        return consumed


# ----------------------------------------------------------------------
# the one-call entry point
# ----------------------------------------------------------------------
def explore_design_space(
    app: Union[ApplicationModel, Sequence[ApplicationModel]],
    tile_counts: Sequence[int] = (1, 2, 3, 4, 5),
    interconnects: Sequence[str] = ("fsl", "noc"),
    ca_options: Sequence[bool] = (False,),
    constraint: Optional[Fraction] = None,
    fixed: Optional[Dict[str, str]] = None,
    mixes: Sequence[TileMix] = (UNIFORM_MIX,),
    effort: Union[str, MappingEffort] = "normal",
    jobs: int = 1,
    backend: Union[None, str, ExecutionBackend] = None,
    early_exit: bool = False,
    cache: Optional[EvaluationCache] = None,
    strategy: Optional[StrategyTuple] = None,
    binding: str = "greedy",
    routing: str = "xy",
    buffer_policy: str = "linear",
    scheduling: str = "static-order",
    seed: Optional[int] = None,
    power_budget: Optional[Fraction] = None,
    energy_budget: Optional[Fraction] = None,
    power_model: Optional[PowerModel] = None,
) -> ExplorationResult:
    """Evaluate every template configuration in the sweep.

    Points whose mapping fails (memory infeasible, unroutable) are
    recorded as failures rather than raising -- an exploration should
    report the whole space.  Pass a shared :class:`EvaluationCache` to
    reuse results across sweeps and applications, ``jobs`` to evaluate
    concurrently (``backend="process"`` moves evaluations onto worker
    processes; see :mod:`repro.flow.backend`), and ``early_exit=True``
    to stop at the first constraint-satisfying candidate.  The mapping-pipeline strategies
    can be set per stage (``binding``/``routing``/``buffer_policy``/
    ``scheduling``/``seed``) or wholesale via ``strategy``; cache keys
    embed the choice, so sweeping the same space under two strategies
    never produces a false cache hit.

    ``app`` may also be a *sequence* of applications with distinct
    names: the sweep then scores each candidate as a shared use-case
    platform through :class:`UseCaseEvaluator` (minimum per-application
    guarantee; feasible only when every application maps).  In that form
    ``constraint`` applies to every application (each application's own
    ``throughput_constraint`` is used where it is ``None``) and
    ``fixed`` pins actors *per application name*
    (``{app_name: {actor: tile}}``).

    Power estimation (and the energy objective) turns on when a
    ``power_budget`` (mW), ``energy_budget`` (nJ per iteration) or
    explicit ``power_model`` is supplied: every feasible point then
    carries :class:`~repro.power.PowerEstimate` /
    :class:`~repro.power.EnergyEstimate` values, over-budget points are
    recorded as failures, and the power configuration joins the cache
    keys.  Left at the defaults, keys, artifacts and reports are
    byte-identical to a pre-power run.
    """
    effort_name = MappingEffort.of(effort).name
    if strategy is None:
        strategy = StrategyTuple(
            binding=binding,
            routing=routing,
            buffer_policy=buffer_policy,
            scheduling=scheduling,
            seed=seed,
        )
    strategy.validate()
    space = DesignSpace(
        tile_counts=tile_counts,
        interconnects=interconnects,
        ca_options=ca_options,
        mixes=mixes,
        effort=effort_name,
        strategy=strategy,
    )
    if isinstance(app, ApplicationModel):
        evaluator: Union[Evaluator, UseCaseEvaluator] = Evaluator(
            app,
            constraint=constraint,
            fixed=fixed,
            cache=cache,
            power_budget=power_budget,
            energy_budget=energy_budget,
            power_model=power_model,
        )
    else:
        apps = list(app)
        evaluator = UseCaseEvaluator(
            apps,
            constraints=(
                None
                if constraint is None
                else {a.name: constraint for a in apps}
            ),
            fixed=fixed,
            cache=cache,
            power_budget=power_budget,
            energy_budget=energy_budget,
            power_model=power_model,
        )
    explorer = ParallelExplorer(evaluator, jobs=jobs, backend=backend)
    return explorer.explore(space, early_exit=early_exit)
