"""Tests for SDF -> HSDF conversion."""

from fractions import Fraction

from repro.sdf import SDFGraph, analyze_throughput, repetition_vector, to_hsdf
from repro.sdf.buffers import BufferDistribution, add_buffer_edges
from repro.sdf.hsdf import hsdf_copy_name
from repro.sdf.mcm import hsdf_throughput


def test_copy_counts_match_repetition_vector(figure2_graph):
    hsdf = to_hsdf(figure2_graph)
    q = repetition_vector(figure2_graph)
    for actor in figure2_graph:
        copies = [a for a in hsdf if a.group == actor.name]
        assert len(copies) == q[actor.name]


def test_hsdf_is_homogeneous(figure2_graph):
    hsdf = to_hsdf(figure2_graph)
    for edge in hsdf.edges:
        assert edge.production == 1
        assert edge.consumption == 1


def test_hsdf_repetition_vector_all_ones(figure2_graph):
    hsdf = to_hsdf(figure2_graph)
    assert all(v == 1 for v in repetition_vector(hsdf).values())


def test_execution_times_preserved(figure2_graph):
    hsdf = to_hsdf(figure2_graph)
    assert hsdf.actor(hsdf_copy_name("B", 0)).execution_time == 3
    assert hsdf.actor(hsdf_copy_name("B", 1)).execution_time == 3


def test_unit_rate_graph_unchanged_in_size(two_actor_pipeline):
    hsdf = to_hsdf(two_actor_pipeline)
    assert len(hsdf) == 2


def test_initial_tokens_become_iteration_delays():
    g = SDFGraph("ring")
    g.add_actor("A", execution_time=3)
    g.add_actor("B", execution_time=4)
    g.add_edge("ab", "A", "B", initial_tokens=1)
    g.add_edge("ba", "B", "A")
    hsdf = to_hsdf(g, sequential_actors=False)
    a0, b0 = hsdf_copy_name("A", 0), hsdf_copy_name("B", 0)
    delays = {(e.src, e.dst): e.initial_tokens for e in hsdf.edges}
    assert delays[(a0, b0)] == 1  # B consumes the token A produced last iter
    assert delays[(b0, a0)] == 0


def test_multirate_dependency_structure():
    """A -2-> B with c=1: B#0 and B#1 both depend on A#0's current firing."""
    g = SDFGraph("fanout")
    g.add_actor("A", execution_time=1)
    g.add_actor("B", execution_time=1)
    g.add_edge("ab", "A", "B", production=2, consumption=1)
    hsdf = to_hsdf(g, sequential_actors=False)
    a0 = hsdf_copy_name("A", 0)
    delays = {(e.src, e.dst): e.initial_tokens for e in hsdf.edges}
    assert delays[(a0, hsdf_copy_name("B", 0))] == 0
    assert delays[(a0, hsdf_copy_name("B", 1))] == 0


def test_sequential_chain_added():
    g = SDFGraph("fanout")
    g.add_actor("A", execution_time=1)
    g.add_actor("B", execution_time=1)
    g.add_edge("ab", "A", "B", production=2, consumption=1)
    hsdf = to_hsdf(g, sequential_actors=True)
    b0, b1 = hsdf_copy_name("B", 0), hsdf_copy_name("B", 1)
    delays = {(e.src, e.dst): e.initial_tokens for e in hsdf.edges}
    assert delays[(b0, b1)] == 0  # B#1 after B#0 in the same iteration
    assert delays[(b1, b0)] == 1  # next iteration's B#0 after B#1
    a0 = hsdf_copy_name("A", 0)
    assert delays[(a0, a0)] == 1  # single-copy actors get a self-loop


def test_hsdf_mcm_matches_state_space_throughput(figure2_graph):
    """The two independent throughput engines must agree."""
    distribution = BufferDistribution({"a2b": 4, "a2c": 2, "b2c": 4})
    g = add_buffer_edges(figure2_graph, distribution)
    state_space = analyze_throughput(g).throughput
    mcm_based = hsdf_throughput(to_hsdf(g))
    assert state_space == mcm_based == Fraction(1, 6)


def test_hsdf_mcm_matches_state_space_on_multirate_ring():
    g = SDFGraph("multi")
    g.add_actor("A", execution_time=2)
    g.add_actor("B", execution_time=3)
    g.add_edge("ab", "A", "B", production=2, consumption=3)
    g.add_edge("ba", "B", "A", production=3, consumption=2, initial_tokens=6)
    state_space = analyze_throughput(g).throughput
    mcm_based = hsdf_throughput(to_hsdf(g))
    assert state_space == mcm_based
