"""Benchmark: the power/energy model as a third exploration objective.

Two claims of the power subsystem (see docs/power.md), quantified on the
MJPEG case study:

* **Three objectives keep more of the design space.**  Adding energy to
  the Pareto dominance relation can only weaken it, so the
  (throughput, slices, energy) frontier is always a superset of the
  (throughput, slices) one -- the sweep measures by how much on the
  Fig. 6a/6b template space (tiles 1..5, FSL and NoC).
* **The energy-biased binder cuts communication energy.**  Placing
  chatty neighbours together (Marcon-style) must never spend more
  interconnect energy than the throughput-greedy binder on the same
  5-tile platforms.

Emits ``benchmarks/results/BENCH_power.json`` (wired into CI's
bench-smoke job) and a human-readable table next to it.
"""

import json
import time

from benchmarks.conftest import RESULTS_DIR, write_results
from repro.arch import architecture_from_template
from repro.flow.dse import explore_design_space
from repro.mapping import map_application
from repro.mjpeg import build_mjpeg_application
from repro.power import PowerModel, application_energy
from repro.sdf.repetition import repetition_vector

#: The Fig. 6a/6b platforms the binder comparison runs on.
BINDER_TILES = 5
#: Template sweep of the frontier comparison.
TILE_COUNTS = (1, 2, 3, 4, 5)


def _binder_energy(app, interconnect, binding, model):
    """Total and communication energy of one binder on one platform."""
    arch = architecture_from_template(BINDER_TILES, interconnect)
    result = map_application(
        app, arch, fixed={"VLD": "tile0"}, binding=binding
    )
    energy = application_energy(app, result, arch, model)
    return energy


def test_power_objective_and_energy_binder(benchmark, workloads):
    app = build_mjpeg_application(workloads["gradient"])
    # repetition_vector is cheap; calling it here keeps the fixture
    # cost out of the timed region below
    repetition_vector(app.graph)
    model = PowerModel()
    records = {}

    def run_all():
        # --- frontier growth: 2 vs 3 objectives -----------------------
        start = time.perf_counter()
        plain = explore_design_space(
            app,
            tile_counts=TILE_COUNTS,
            interconnects=("fsl", "noc"),
            fixed={"VLD": "tile0"},
        )
        plain_s = time.perf_counter() - start
        start = time.perf_counter()
        powered = explore_design_space(
            app,
            tile_counts=TILE_COUNTS,
            interconnects=("fsl", "noc"),
            fixed={"VLD": "tile0"},
            power_model=model,
        )
        powered_s = time.perf_counter() - start
        front_2obj = len(plain.pareto_frontier())
        front_3obj = len(powered.pareto_frontier())
        energies = [
            float(p.energy.total_nj) for p in powered.points
        ]

        # --- binder comparison: energy-biased vs greedy ---------------
        binder = {}
        for interconnect in ("fsl", "noc"):
            greedy = _binder_energy(app, interconnect, "greedy", model)
            energy = _binder_energy(app, interconnect, "energy", model)
            binder[interconnect] = {
                "greedy_comm_pj": float(greedy.communication_pj),
                "energy_comm_pj": float(energy.communication_pj),
                "greedy_total_nj": float(greedy.total_nj),
                "energy_total_nj": float(energy.total_nj),
                "comm_saved_pj": float(
                    greedy.communication_pj - energy.communication_pj
                ),
            }

        records.update(
            {
                "tech_nm": model.tech_nm,
                "points": len(powered.points),
                "front_2obj": front_2obj,
                "front_3obj": front_3obj,
                "explore_2obj_s": plain_s,
                "explore_3obj_s": powered_s,
                "power_overhead": powered_s / plain_s,
                "min_energy_nj": min(energies),
                "max_energy_nj": max(energies),
                "binder": binder,
            }
        )
        return records

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    binder = records["binder"]
    table = "\n".join(
        [
            f"{'metric':<34} {'value':>14}",
            "-" * 49,
            f"{'frontier (throughput, slices)':<34} "
            f"{records['front_2obj']:>14}",
            f"{'frontier (+ energy)':<34} "
            f"{records['front_3obj']:>14}",
            f"{'power-model sweep overhead':<34} "
            f"{records['power_overhead']:>13.2f}x",
            f"{'fsl comm energy saved [pJ]':<34} "
            f"{binder['fsl']['comm_saved_pj']:>14.1f}",
            f"{'noc comm energy saved [pJ]':<34} "
            f"{binder['noc']['comm_saved_pj']:>14.1f}",
        ]
    )
    path = write_results("power.txt", table)

    RESULTS_DIR.mkdir(exist_ok=True)
    json_path = RESULTS_DIR / "BENCH_power.json"
    json_path.write_text(
        json.dumps(
            {
                "bench": "power/energy model: 3-objective frontier "
                         "growth + energy-biased vs greedy binder "
                         f"on {BINDER_TILES}-tile Fig. 6 platforms",
                "unit": "seconds",
                "results": records,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    print(f"\n{table}\n-> {path}\n-> {json_path}")

    # Adding an objective weakens dominance: the 3-objective frontier
    # contains every 2-objective frontier point.
    assert records["front_3obj"] >= records["front_2obj"]
    # Every evaluated point carries a positive, finite energy.
    assert records["min_energy_nj"] > 0
    # The energy binder exists to cut communication energy; it must
    # never spend more on the interconnect than the greedy binder.
    for interconnect in ("fsl", "noc"):
        assert (
            binder[interconnect]["energy_comm_pj"]
            <= binder[interconnect]["greedy_comm_pj"]
        )
