"""The end-to-end design flow of Fig. 1.

:class:`~repro.flow.design_flow.DesignFlow` chains the whole pipeline --
application model + architecture -> SDF3 mapping -> MAMPS generation ->
synthesis (platform simulator) -> measurement -- and records the wall-clock
time of each automated step (the lower half of Table 1).
"""

from repro.flow.design_flow import DesignFlow, FlowResult
from repro.flow.effort import EffortReport, StepTiming, TABLE1_MANUAL_STEPS
from repro.flow.report import (
    ThroughputComparison,
    compare_throughput,
    exploration_csv,
    format_exploration_report,
    format_throughput_table,
)
from repro.flow.backend import (
    BACKENDS,
    BackendError,
    ExecutionBackend,
    ProcessBackend,
    ThreadBackend,
    backend_task,
    create_backend,
)
from repro.flow.dse import (
    COMPACT_MIX,
    CandidatePoint,
    DesignPoint,
    DesignSpace,
    EvaluationCache,
    Evaluator,
    ExplorationResult,
    ParallelExplorer,
    ParetoFront,
    TileMix,
    UNIFORM_MIX,
    UseCaseEvaluator,
    WorkerPool,
    explore_design_space,
)
from repro.flow.fingerprint import (
    application_fingerprint,
    architecture_fingerprint,
    flow_request_key,
)
from repro.flow.spec import (
    AppSpec,
    ArchSpec,
    FlowSpec,
    FlowSpecError,
    build_case_study_app,
    load_flow_spec,
)
from repro.mapping.pipeline import (
    DEFAULT_STRATEGIES,
    MappingPipeline,
    StrategyTuple,
)
from repro.flow.usecases import (
    UseCaseMapping,
    build_use_case_mapping,
    generate_use_case_platform,
    map_use_cases,
)
from repro.flow.session import (
    BatchEntry,
    BatchReport,
    FlowSession,
    SessionResult,
    StageRecord,
    execute_spec,
    execute_spec_on,
    run_batch,
)

__all__ = [
    "BACKENDS",
    "BackendError",
    "ExecutionBackend",
    "ProcessBackend",
    "ThreadBackend",
    "backend_task",
    "create_backend",
    "DesignFlow",
    "FlowResult",
    "EffortReport",
    "StepTiming",
    "TABLE1_MANUAL_STEPS",
    "ThroughputComparison",
    "compare_throughput",
    "exploration_csv",
    "format_exploration_report",
    "format_throughput_table",
    "CandidatePoint",
    "COMPACT_MIX",
    "DesignPoint",
    "DesignSpace",
    "EvaluationCache",
    "Evaluator",
    "ExplorationResult",
    "ParallelExplorer",
    "ParetoFront",
    "TileMix",
    "UNIFORM_MIX",
    "application_fingerprint",
    "architecture_fingerprint",
    "explore_design_space",
    "flow_request_key",
    "AppSpec",
    "ArchSpec",
    "DEFAULT_STRATEGIES",
    "FlowSpec",
    "FlowSpecError",
    "MappingPipeline",
    "StrategyTuple",
    "build_case_study_app",
    "load_flow_spec",
    "UseCaseEvaluator",
    "WorkerPool",
    "UseCaseMapping",
    "build_use_case_mapping",
    "map_use_cases",
    "generate_use_case_platform",
    "BatchEntry",
    "BatchReport",
    "FlowSession",
    "SessionResult",
    "StageRecord",
    "execute_spec",
    "execute_spec_on",
    "run_batch",
]
