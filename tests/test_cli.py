"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.sdf import SDFGraph
from repro.sdf.buffers import BufferDistribution, add_buffer_edges
from repro.sdf.io_sdf3 import save_graph


@pytest.fixture
def graph_file(tmp_path):
    g = SDFGraph("cli_demo")
    g.add_actor("A", execution_time=10)
    g.add_actor("B", execution_time=20)
    g.add_edge("ab", "A", "B", token_size=4)
    bounded = add_buffer_edges(g, BufferDistribution({"ab": 2}))
    path = tmp_path / "graph.xml"
    save_graph(bounded, path)
    return str(path)


class TestAnalyze:
    def test_reports_vector_and_throughput(self, graph_file, capsys):
        assert main(["analyze", graph_file]) == 0
        out = capsys.readouterr().out
        assert "repetition vector" in out
        assert "deadlock-free: yes" in out
        assert "throughput" in out

    def test_deadlocked_graph_reported(self, tmp_path, capsys):
        g = SDFGraph("dead")
        g.add_actor("A", execution_time=1)
        g.add_actor("B", execution_time=1)
        g.add_edge("ab", "A", "B")
        g.add_edge("ba", "B", "A")
        path = tmp_path / "dead.xml"
        save_graph(g, path)
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "deadlock-free: NO" in out

    def test_missing_file_fails_cleanly(self, tmp_path):
        with pytest.raises((FileNotFoundError, OSError)):
            main(["analyze", str(tmp_path / "nope.xml")])


class TestDemo:
    def test_runs_case_study(self, capsys, tmp_path):
        code = main(
            ["demo", "gradient", "--tiles", "3", "--iterations", "6",
             "--output", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "guaranteed" in out
        assert "measured" in out
        assert "project written" in out
        assert any(tmp_path.iterdir())

    def test_unknown_sequence_errors(self, capsys):
        assert main(["demo", "nonsense"]) == 1
        err = capsys.readouterr().err
        assert "unknown sequence" in err


class TestDSE:
    def test_prints_pareto_table(self, capsys):
        assert main(["dse", "gradient", "--max-tiles", "2"]) == 0
        out = capsys.readouterr().out
        assert "1t/fsl" in out
        assert "pareto" in out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
