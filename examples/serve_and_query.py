#!/usr/bin/env python3
"""Serving flows over HTTP: submit, poll, and query a Pareto front.

This example runs the whole ``repro.service`` stack in one process:

1. start the flow service (the same scheduler + HTTP API behind
   ``python -m repro serve``) on an ephemeral port over a fresh
   workspace;
2. submit three scenarios -- the same decoder on 2, 3 and 4 tiles --
   through the typed client and poll each job to completion;
3. resubmit one scenario to show the run-time fast path: the repeated
   request is served straight from the workspace artifacts, with zero
   re-analysis (watch the ``computed`` counter stand still);
4. assemble a small Pareto front over (tiles, guaranteed throughput)
   client-side, from nothing but the served JSON payloads.

Run:  python examples/serve_and_query.py
"""

import sys
import tempfile
import threading
from fractions import Fraction
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent
sys.path.insert(0, str(EXAMPLES.parent / "src"))

from repro.service import FlowServiceClient, serve  # noqa: E402


def scenario(tiles: int) -> dict:
    """One FlowSpec document: the gradient decoder on ``tiles`` tiles."""
    return {
        "name": f"decoder-{tiles}t",
        "app": {"sequence": "gradient", "frames": 1},
        "architecture": {"tiles": tiles},
        "mapping": {"fixed": {"VLD": "tile0"}},
    }


def main() -> None:
    workspace = Path(tempfile.mkdtemp(prefix="repro-serve-"))
    server = serve(workspace, port=0, jobs=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    print(f"flow service: {server.url}  (workspace {workspace})\n")

    client = FlowServiceClient(server.url)
    try:
        # -- submit and poll -------------------------------------------
        jobs = {}
        for tiles in (2, 3, 4):
            view = client.submit(scenario(tiles))
            print(f"submitted {view['spec_name']:<10} -> {view['id']} "
                  f"({view['status']})")
            jobs[tiles] = view["id"]
        points = {}
        for tiles, job_id in jobs.items():
            done = client.wait(job_id, timeout=300)
            payload = client.result(job_id)
            guarantee = Fraction(payload["guarantees"]["gradient"])
            points[tiles] = guarantee
            print(f"  {payload['spec_name']:<10} {done['source']:>9}: "
                  f"{float(guarantee) * 1e6:.4f} iterations/Mcycle")

        # -- the run-time fast path ------------------------------------
        before = client.health()["counters"]
        again = client.submit_and_wait(scenario(3))
        after = client.health()["counters"]
        print(f"\nresubmitted decoder-3t: source={again['source']}, "
              f"computed {before['computed']} -> {after['computed']} "
              "(zero re-analysis)")
        assert again["source"] == "artifacts"
        assert after["computed"] == before["computed"]

        # -- a client-side Pareto front --------------------------------
        # keep a point unless a cheaper platform guarantees at least as
        # much throughput
        front = [
            (tiles, guarantee)
            for tiles, guarantee in sorted(points.items())
            if not any(
                other <= tiles and points[other] >= guarantee
                for other in points
                if other != tiles
            )
        ]
        print("\nPareto front over (tiles, guaranteed throughput):")
        for tiles, guarantee in front:
            print(f"  {tiles} tile(s): {float(guarantee) * 1e6:.4f} "
                  "iterations/Mcycle")
    finally:
        server.shutdown()
        server.server_close()
        server.scheduler.close()
        thread.join(timeout=10)


if __name__ == "__main__":
    main()
