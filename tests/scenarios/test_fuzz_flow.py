"""Property-based fuzzing of the whole flow over generated scenarios.

Every seeded scenario must uphold four end-to-end properties:

1. **validity** -- the generated graph passes repetition-vector and
   deadlock validation (or generation fails with the typed
   :class:`ScenarioError`, never an exception from deeper layers);
2. **differential throughput** -- the incremental dirty-set simulator
   and the retained full-rescan reference agree on the *exact*
   ``Fraction`` throughput of the buffered graph;
3. **artifact round-trip** -- the mapping result re-encodes
   byte-identically after a decode/encode cycle, so persisted
   workspaces mean what they say;
4. **energy determinism** -- the mapped application's energy estimate
   (:mod:`repro.power`) is finite, positive, and byte-identical across
   repeated evaluations and artifact round-trips.

The sweep size scales with the ``FUZZ_SCENARIOS`` environment variable:
a small always-on sweep keeps the tier-1 suite fast, and CI's
fuzz-smoke job runs hundreds (see .github/workflows/ci.yml).
"""

import os

import pytest

from repro.artifacts import canonical_json, from_payload, to_payload
from repro.flow.session import execute_spec
from repro.mapping import map_application
from repro.scenarios import (
    ScenarioError,
    ScenarioSpec,
    build_scenario_graph,
    generate_scenarios,
    scenario_flow_spec,
)
from repro.sdf import check_well_formed
from repro.sdf.buffers import (
    BufferDistribution,
    add_buffer_edges,
    bufferable_edges,
    minimal_capacity_bound,
)
from repro.sdf.deadlock import is_deadlock_free
from repro.sdf.simulation_reference import reference_analyze_throughput
from repro.sdf.throughput import analyze_throughput

#: tier-1 default; CI sets FUZZ_SCENARIOS=200 in the fuzz-smoke job
SWEEP = max(5, int(os.environ.get("FUZZ_SCENARIOS", "25")))

SCENARIOS = generate_scenarios("all", SWEEP, seed=2024)
IDS = [spec.name for spec in SCENARIOS]


def _bounded(graph):
    """The analysis form: credit back-edges at the structural liveness
    bound plus headroom (mirrors buffer-sizing phase 1)."""
    capacities = {
        edge.name: minimal_capacity_bound(edge)
        + max(edge.production, edge.consumption)
        for edge in bufferable_edges(graph)
    }
    bounded = add_buffer_edges(graph, BufferDistribution(capacities))
    for _ in range(4):
        if is_deadlock_free(bounded):
            return bounded
        for name in capacities:
            edge = graph.edge(name)
            capacities[name] += max(edge.production, edge.consumption)
        bounded = add_buffer_edges(graph, BufferDistribution(capacities))
    return bounded


@pytest.mark.parametrize(
    "spec", SCENARIOS, ids=IDS
)
class TestSweep:
    def test_generated_graph_is_valid_or_typed_rejection(self, spec):
        try:
            graph = build_scenario_graph(spec)
        except ScenarioError:
            return  # the typed rejection is an acceptable outcome
        check_well_formed(graph)

    def test_incremental_matches_reference_exactly(self, spec):
        bounded = _bounded(build_scenario_graph(spec))
        # The vectorized tier promises bit-identical state-space fields;
        # the auto policy (possibly the analytic tier) promises the same
        # exact throughput value.
        fast = analyze_throughput(bounded, engine="vectorized")
        slow = reference_analyze_throughput(bounded)
        assert fast.throughput == slow.throughput
        assert fast.period == slow.period
        auto = analyze_throughput(bounded)
        assert auto.throughput == slow.throughput

    def test_mapping_result_round_trips_byte_identically(self, spec):
        flow_spec = scenario_flow_spec(spec)
        result = map_application(
            flow_spec.build_application(),
            flow_spec.build_architecture(),
            pipeline=flow_spec.strategies.build_pipeline(),
        )
        assert result.guaranteed_throughput is not None
        payload = to_payload(result)
        encoded = canonical_json(payload)
        clone = from_payload(payload)
        assert canonical_json(to_payload(clone)) == encoded

    def test_energy_estimate_is_positive_and_deterministic(self, spec):
        from repro.power import application_energy

        flow_spec = scenario_flow_spec(spec)
        app = flow_spec.build_application()
        arch = flow_spec.build_architecture()
        result = map_application(
            app, arch, pipeline=flow_spec.strategies.build_pipeline()
        )
        energy = application_energy(app, result, arch)
        # finite and positive: every mapped scenario burns compute and
        # leaks static power over its period
        assert energy.total_pj > 0
        assert energy.compute_pj > 0
        assert energy.static_pj > 0
        assert energy.communication_pj >= 0
        # byte-identical across repeated evaluations ...
        again = application_energy(app, result, arch)
        assert again == energy
        assert canonical_json(to_payload(again)) == canonical_json(
            to_payload(energy)
        )
        # ... and across an artifact round-trip
        payload = to_payload(energy)
        clone = from_payload(payload)
        assert canonical_json(to_payload(clone)) == canonical_json(
            payload
        )
        assert clone == energy


class TestEndToEnd:
    """A few scenarios through the persistent session machinery."""

    @pytest.mark.parametrize(
        "spec", SCENARIOS[:3], ids=IDS[:3]
    )
    def test_execute_and_resume(self, spec, tmp_path):
        flow_spec = scenario_flow_spec(spec)
        first = execute_spec(flow_spec, tmp_path)
        assert not first.resumed_stages
        assert first.guarantees()
        again = execute_spec(flow_spec, tmp_path)
        # every stage resumes from artifacts: the scenario's content
        # keys are stable across runs
        assert sorted(again.resumed_stages) == \
            sorted(record.stage for record in again.stages)
        assert again.guarantees() == first.guarantees()

    def test_invalid_scenario_surfaces_typed_error(self):
        with pytest.raises(ScenarioError):
            ScenarioSpec(family="chain", seed=1, actors=2000)
