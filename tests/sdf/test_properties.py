"""Property-based tests for the SDF analysis core.

Random consistent graphs are built *from* a random repetition vector, which
guarantees consistency by construction; rings carry one iteration's worth of
initial tokens, which guarantees liveness.  On these graphs the fundamental
invariants must hold: balance equations, minimality, agreement of the two
independent throughput engines, conservativeness of analysis vs. simulation,
and non-negativity of channel fills.
"""

from fractions import Fraction
from math import gcd

from hypothesis import given, settings, strategies as st

from repro.sdf import (
    SDFGraph,
    analyze_throughput,
    is_deadlock_free,
    repetition_vector,
    to_hsdf,
)
from repro.sdf.mcm import hsdf_throughput
from repro.sdf.simulation import SelfTimedSimulator


@st.composite
def consistent_ring_graphs(draw):
    """Strongly-connected consistent SDF graphs (a multirate ring plus
    optional chords), live by construction."""
    n = draw(st.integers(min_value=1, max_value=4))
    q = [draw(st.integers(min_value=1, max_value=3)) for _ in range(n)]
    times = [draw(st.integers(min_value=1, max_value=9)) for _ in range(n)]
    scale = [draw(st.integers(min_value=1, max_value=2)) for _ in range(n)]

    g = SDFGraph("random_ring")
    for i in range(n):
        g.add_actor(f"a{i}", execution_time=times[i])

    def add(name, src, dst, s, tokens_for_iteration):
        """Edge with rates consistent with q, optionally pre-loaded with one
        iteration of tokens."""
        shared = gcd(q[src], q[dst])
        production = q[dst] // shared * s
        consumption = q[src] // shared * s
        initial = q[dst] * consumption if tokens_for_iteration else 0
        g.add_edge(
            name,
            f"a{src}",
            f"a{dst}",
            production=production,
            consumption=consumption,
            initial_tokens=initial,
        )

    if n == 1:
        g.add_edge("self0", "a0", "a0", initial_tokens=1)
    else:
        for i in range(n):
            j = (i + 1) % n
            # Tokens only on the closing edge keep the ring a real cycle.
            add(f"ring{i}", i, j, scale[i], tokens_for_iteration=(j == 0))
        n_chords = draw(st.integers(min_value=0, max_value=2))
        for k in range(n_chords):
            src = draw(st.integers(min_value=0, max_value=n - 1))
            dst = draw(st.integers(min_value=0, max_value=n - 1))
            if src == dst:
                continue
            # Chords are forward shortcuts; give them a full iteration of
            # tokens so they never introduce deadlock.
            add(f"chord{k}", src, dst, 1, tokens_for_iteration=True)
    return g


@given(consistent_ring_graphs())
@settings(max_examples=60, deadline=None)
def test_repetition_vector_satisfies_balance_equations(graph):
    q = repetition_vector(graph)
    for edge in graph.edges:
        assert q[edge.src] * edge.production == q[edge.dst] * edge.consumption


@given(consistent_ring_graphs())
@settings(max_examples=60, deadline=None)
def test_repetition_vector_is_minimal(graph):
    q = repetition_vector(graph)
    overall = 0
    for value in q.values():
        overall = gcd(overall, value)
    assert overall == 1


@given(consistent_ring_graphs())
@settings(max_examples=40, deadline=None)
def test_ring_graphs_are_live(graph):
    assert is_deadlock_free(graph)


@given(consistent_ring_graphs())
@settings(max_examples=30, deadline=None)
def test_throughput_engines_agree(graph):
    """State-space analysis and HSDF/MCM analysis are independent
    implementations; they must give identical exact throughput."""
    state_space = analyze_throughput(graph, max_iterations=2000).throughput
    mcm_based = hsdf_throughput(to_hsdf(graph))
    assert mcm_based == state_space


@given(consistent_ring_graphs())
@settings(max_examples=30, deadline=None)
def test_hsdf_expansion_counts(graph):
    q = repetition_vector(graph)
    hsdf = to_hsdf(graph)
    assert len(hsdf) == sum(q.values())
    assert all(v == 1 for v in repetition_vector(hsdf).values())


@given(consistent_ring_graphs())
@settings(max_examples=40, deadline=None)
def test_tokens_never_negative_during_execution(graph):
    sim = SelfTimedSimulator(graph)
    for _ in range(200):
        if not sim.step():
            break
        assert all(v >= 0 for v in sim.tokens.values())


@given(consistent_ring_graphs())
@settings(max_examples=20, deadline=None)
def test_long_run_rate_matches_analysis(graph):
    """Simulated long-run iteration rate converges to the analyzed value."""
    result = analyze_throughput(graph, max_iterations=2000)
    q = repetition_vector(graph)
    ref = graph.actors[0].name
    sim = SelfTimedSimulator(graph)
    target_iterations = 50
    sim.run(stop_when=lambda s: s.completed[ref] >= target_iterations * q[ref])
    iterations = sim.completed[ref] // q[ref]
    measured = Fraction(iterations, sim.now)
    # The long-run average can only exceed the periodic rate via the
    # transient, and approaches it from above or below within 10%.
    assert abs(float(measured - result.throughput)) <= 0.1 * float(
        result.throughput
    )


@given(consistent_ring_graphs(), st.integers(min_value=2, max_value=4))
@settings(max_examples=20, deadline=None)
def test_slowdown_is_monotonic(graph, factor):
    """Scaling every execution time by a factor divides throughput by it."""
    base = analyze_throughput(graph, max_iterations=2000)
    scaled = graph.with_execution_times(
        {a.name: a.execution_time * factor for a in graph}
    )
    slowed = analyze_throughput(scaled, max_iterations=2000)
    assert slowed.throughput == base.throughput / factor
