"""Codecs: every public result type <-> its canonical artifact payload.

One codec per domain object, registered with
:func:`repro.artifacts.schema.register`.  Nested objects are encoded as
full (enveloped) payloads, so every sub-document is self-describing and
round-trips through the generic :func:`~repro.artifacts.schema.to_payload`
/ :func:`~repro.artifacts.schema.from_payload` pair on its own.

Two deliberate losses, both documented in ``docs/artifacts.md``:

* functional models (Python callables on
  :class:`~repro.appmodel.implementation.ActorImplementation`) are
  recorded by qualified name for provenance but decode to ``None`` --
  an artifact can be mapped and analyzed anywhere, but only the process
  that built the application can simulate it.  The mapping analysis
  never executes them, so fingerprints and mapping results are
  unaffected (see :mod:`repro.flow.fingerprint`).
* transient allocation state (interconnect reservations, live
  simulators) is excluded; decoded architectures come back with a clean
  interconnect, exactly like :meth:`ArchitectureModel.reset_interconnect`
  leaves them.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.appmodel.implementation import ActorImplementation
from repro.appmodel.metrics import ImplementationMetrics, MemoryRequirements
from repro.appmodel.model import ApplicationModel
from repro.arch.area import AreaEstimate
from repro.arch.components import (
    CommunicationAssist,
    Memory,
    NetworkInterface,
    Peripheral,
    ProcessorType,
)
from repro.arch.interconnect import FSLInterconnect
from repro.arch.noc import SDMNoC
from repro.arch.platform import ArchitectureModel
from repro.arch.tile import Tile
from repro.artifacts.schema import (
    decode_fraction,
    encode_fraction,
    from_payload,
    register,
    to_payload,
)
from repro.comm.params import ChannelParameters
from repro.flow.design_flow import FlowResult
from repro.flow.dse import (
    CacheStats,
    CandidatePoint,
    DesignPoint,
    EvaluationOutcome,
    ExplorationResult,
    ParetoFront,
    TileMix,
)
from repro.flow.effort import EffortReport, StepTiming
from repro.flow.usecases import UseCaseMapping
from repro.mamps.project import PlatformProject
from repro.mapping.pipeline import StrategyTuple
from repro.power import EnergyEstimate, PowerEstimate
from repro.mapping.spec import ChannelMapping, Mapping, MappingResult
from repro.sdf.graph import SDFGraph
from repro.sdf.throughput import ThroughputResult
from repro.sim.platform_sim import MeasuredThroughput


def _callable_ref(function: Optional[Any]) -> Optional[str]:
    """Provenance-only identifier of a functional model."""
    if function is None:
        return None
    return getattr(function, "__qualname__", repr(function))


def _maybe(payload: Optional[Dict[str, Any]]) -> Optional[Any]:
    return None if payload is None else from_payload(payload)


# ----------------------------------------------------------------------
# SDF graph
# ----------------------------------------------------------------------
def _encode_graph(graph: SDFGraph) -> Dict[str, Any]:
    return {
        "name": graph.name,
        "actors": [
            {
                "name": a.name,
                "execution_time": a.execution_time,
                "group": a.group,
                "concurrency": a.concurrency,
            }
            for a in graph.actors
        ],
        "edges": [
            {
                "name": e.name,
                "src": e.src,
                "dst": e.dst,
                "production": e.production,
                "consumption": e.consumption,
                "initial_tokens": e.initial_tokens,
                "token_size": e.token_size,
                "implicit": e.implicit,
            }
            for e in graph.edges
        ],
    }


def _decode_graph(payload: Dict[str, Any]) -> SDFGraph:
    graph = SDFGraph(payload["name"])
    for a in payload["actors"]:
        graph.add_actor(
            a["name"],
            execution_time=a["execution_time"],
            group=a.get("group"),
            concurrency=a.get("concurrency"),
        )
    for e in payload["edges"]:
        graph.add_edge(
            e["name"],
            e["src"],
            e["dst"],
            production=e["production"],
            consumption=e["consumption"],
            initial_tokens=e["initial_tokens"],
            token_size=e["token_size"],
            implicit=e["implicit"],
        )
    return graph


register("sdf-graph", SDFGraph, _encode_graph, _decode_graph)


# ----------------------------------------------------------------------
# application model
# ----------------------------------------------------------------------
def _encode_implementation(impl: ActorImplementation) -> Dict[str, Any]:
    return {
        "actor": impl.actor,
        "pe_type": impl.pe_type,
        "wcet": impl.metrics.wcet,
        "instruction_bytes": impl.metrics.memory.instruction_bytes,
        "data_bytes": impl.metrics.memory.data_bytes,
        "argument_order": list(impl.argument_order),
        "name": impl.name,
        "function": _callable_ref(impl.function),
        "init_function": _callable_ref(impl.init_function),
    }


def _decode_implementation(payload: Dict[str, Any]) -> ActorImplementation:
    return ActorImplementation(
        actor=payload["actor"],
        pe_type=payload["pe_type"],
        metrics=ImplementationMetrics(
            wcet=payload["wcet"],
            memory=MemoryRequirements(
                instruction_bytes=payload["instruction_bytes"],
                data_bytes=payload["data_bytes"],
            ),
        ),
        argument_order=list(payload["argument_order"]),
        name=payload["name"],
    )


register(
    "actor-implementation",
    ActorImplementation,
    _encode_implementation,
    _decode_implementation,
)


def _encode_application(app: ApplicationModel) -> Dict[str, Any]:
    return {
        "name": app.name,
        "constraint": encode_fraction(app.throughput_constraint),
        "graph": to_payload(app.graph),
        "implementations": [
            to_payload(impl) for impl in app.implementations
        ],
    }


def _decode_application(payload: Dict[str, Any]) -> ApplicationModel:
    return ApplicationModel(
        graph=from_payload(payload["graph"]),
        implementations=[
            from_payload(p) for p in payload["implementations"]
        ],
        throughput_constraint=decode_fraction(payload["constraint"]),
        name=payload["name"],
    )


register(
    "application", ApplicationModel, _encode_application,
    _decode_application,
)


# ----------------------------------------------------------------------
# architecture model (tiles, TileMix memories, FSL / NoC interconnect)
# ----------------------------------------------------------------------
def _encode_tile(tile: Tile) -> Dict[str, Any]:
    processor = None
    if tile.processor is not None:
        processor = {
            "name": tile.processor.name,
            "context_switch_cycles": tile.processor.context_switch_cycles,
        }
    ca = None
    if tile.communication_assist is not None:
        ca = {
            "setup_cycles": tile.communication_assist.setup_cycles,
            "cycles_per_word": tile.communication_assist.cycles_per_word,
        }
    return {
        "name": tile.name,
        "role": tile.role,
        "processor": processor,
        "instruction_bytes": tile.instruction_memory.capacity_bytes,
        "data_bytes": tile.data_memory.capacity_bytes,
        "ni_fifo_depth_words": tile.network_interface.fifo_depth_words,
        "peripherals": [p.name for p in tile.peripherals],
        "communication_assist": ca,
    }


def _decode_tile(payload: Dict[str, Any]) -> Tile:
    processor = payload["processor"]
    ca = payload["communication_assist"]
    return Tile(
        name=payload["name"],
        processor=(
            None
            if processor is None
            else ProcessorType(
                name=processor["name"],
                context_switch_cycles=processor["context_switch_cycles"],
            )
        ),
        instruction_memory=Memory(payload["instruction_bytes"]),
        data_memory=Memory(payload["data_bytes"]),
        network_interface=NetworkInterface(
            fifo_depth_words=payload["ni_fifo_depth_words"]
        ),
        peripherals=tuple(
            Peripheral(name) for name in payload["peripherals"]
        ),
        communication_assist=(
            None
            if ca is None
            else CommunicationAssist(
                setup_cycles=ca["setup_cycles"],
                cycles_per_word=ca["cycles_per_word"],
            )
        ),
        role=payload["role"],
    )


register("tile", Tile, _encode_tile, _decode_tile)


def _encode_fsl(fabric: FSLInterconnect) -> Dict[str, Any]:
    return {
        "fifo_depth_words": fabric.fifo_depth_words,
        "latency_cycles": fabric.latency_cycles,
        "max_links_per_tile": fabric.max_links_per_tile,
    }


def _decode_fsl(payload: Dict[str, Any]) -> FSLInterconnect:
    return FSLInterconnect(
        fifo_depth_words=payload["fifo_depth_words"],
        latency_cycles=payload["latency_cycles"],
        max_links_per_tile=payload["max_links_per_tile"],
    )


register("interconnect-fsl", FSLInterconnect, _encode_fsl, _decode_fsl)


def _encode_noc(fabric: SDMNoC) -> Dict[str, Any]:
    return {
        "tiles": list(fabric.tile_names),
        "wires_per_link": fabric.wires_per_link,
        "default_connection_wires": fabric.default_connection_wires,
        "router_latency": fabric.router_latency,
        "buffer_words_per_hop": fabric.buffer_words_per_hop,
        "flow_control": fabric.flow_control,
    }


def _decode_noc(payload: Dict[str, Any]) -> SDMNoC:
    return SDMNoC(
        payload["tiles"],
        wires_per_link=payload["wires_per_link"],
        default_connection_wires=payload["default_connection_wires"],
        router_latency=payload["router_latency"],
        buffer_words_per_hop=payload["buffer_words_per_hop"],
        flow_control=payload["flow_control"],
    )


register("interconnect-noc", SDMNoC, _encode_noc, _decode_noc)


def _encode_architecture(arch: ArchitectureModel) -> Dict[str, Any]:
    return {
        "name": arch.name,
        "tiles": [to_payload(tile) for tile in arch.tiles],
        "interconnect": (
            None
            if arch.interconnect is None
            else to_payload(arch.interconnect)
        ),
    }


def _decode_architecture(payload: Dict[str, Any]) -> ArchitectureModel:
    return ArchitectureModel(
        name=payload["name"],
        tiles=[from_payload(p) for p in payload["tiles"]],
        interconnect=_maybe(payload["interconnect"]),
    )


register(
    "architecture", ArchitectureModel, _encode_architecture,
    _decode_architecture,
)


# ----------------------------------------------------------------------
# mapping: channel parameters, channel mappings, the mapping, the result
# ----------------------------------------------------------------------
def _encode_channel_parameters(
    parameters: ChannelParameters,
) -> Dict[str, Any]:
    return {
        "words_in_flight": parameters.words_in_flight,
        "network_buffer_words": parameters.network_buffer_words,
        "injection_cycles_per_word": parameters.injection_cycles_per_word,
        "channel_latency": parameters.channel_latency,
    }


def _decode_channel_parameters(
    payload: Dict[str, Any],
) -> ChannelParameters:
    return ChannelParameters(
        words_in_flight=payload["words_in_flight"],
        network_buffer_words=payload["network_buffer_words"],
        injection_cycles_per_word=payload["injection_cycles_per_word"],
        channel_latency=payload["channel_latency"],
    )


register(
    "channel-parameters",
    ChannelParameters,
    _encode_channel_parameters,
    _decode_channel_parameters,
)


def _encode_channel_mapping(channel: ChannelMapping) -> Dict[str, Any]:
    return {
        "edge": channel.edge,
        "src_tile": channel.src_tile,
        "dst_tile": channel.dst_tile,
        "capacity": channel.capacity,
        "alpha_src": channel.alpha_src,
        "alpha_dst": channel.alpha_dst,
        "parameters": (
            None
            if channel.parameters is None
            else to_payload(channel.parameters)
        ),
    }


def _decode_channel_mapping(payload: Dict[str, Any]) -> ChannelMapping:
    return ChannelMapping(
        edge=payload["edge"],
        src_tile=payload["src_tile"],
        dst_tile=payload["dst_tile"],
        capacity=payload["capacity"],
        alpha_src=payload["alpha_src"],
        alpha_dst=payload["alpha_dst"],
        parameters=_maybe(payload["parameters"]),
    )


register(
    "channel-mapping",
    ChannelMapping,
    _encode_channel_mapping,
    _decode_channel_mapping,
)


def _encode_mapping(mapping: Mapping) -> Dict[str, Any]:
    return {
        "application": mapping.application,
        "architecture": mapping.architecture,
        "actor_binding": dict(mapping.actor_binding),
        "implementations": {
            actor: to_payload(impl)
            for actor, impl in mapping.implementations.items()
        },
        "channels": {
            name: to_payload(channel)
            for name, channel in mapping.channels.items()
        },
        "static_orders": {
            tile: list(order)
            for tile, order in mapping.static_orders.items()
        },
    }


def _decode_mapping(payload: Dict[str, Any]) -> Mapping:
    return Mapping(
        application=payload["application"],
        architecture=payload["architecture"],
        actor_binding=dict(payload["actor_binding"]),
        implementations={
            actor: from_payload(p)
            for actor, p in payload["implementations"].items()
        },
        channels={
            name: from_payload(p)
            for name, p in payload["channels"].items()
        },
        static_orders={
            tile: list(order)
            for tile, order in payload["static_orders"].items()
        },
    )


register("mapping", Mapping, _encode_mapping, _decode_mapping)


def _encode_throughput(result: ThroughputResult) -> Dict[str, Any]:
    return {
        "throughput": encode_fraction(result.throughput),
        "period": result.period,
        "iterations_per_period": result.iterations_per_period,
        "transient_iterations": result.transient_iterations,
        "tier": result.tier,
        "tier_reason": result.tier_reason,
    }


def _decode_throughput(payload: Dict[str, Any]) -> ThroughputResult:
    # tier/tier_reason default for payloads written before the tiered
    # engine existed (every historic analysis ran the reference tier).
    return ThroughputResult(
        throughput=decode_fraction(payload["throughput"]),
        period=payload["period"],
        iterations_per_period=payload["iterations_per_period"],
        transient_iterations=payload["transient_iterations"],
        tier=payload.get("tier", "reference"),
        tier_reason=payload.get("tier_reason"),
    )


register(
    "throughput-result", ThroughputResult, _encode_throughput,
    _decode_throughput,
)


def _encode_mapping_result(result: MappingResult) -> Dict[str, Any]:
    return {
        "mapping": to_payload(result.mapping),
        "throughput": to_payload(result.throughput),
        "constraint": encode_fraction(result.constraint),
        "buffer_growth_rounds": result.buffer_growth_rounds,
    }


def _decode_mapping_result(payload: Dict[str, Any]) -> MappingResult:
    return MappingResult(
        mapping=from_payload(payload["mapping"]),
        throughput=from_payload(payload["throughput"]),
        constraint=decode_fraction(payload["constraint"]),
        buffer_growth_rounds=payload["buffer_growth_rounds"],
    )


register(
    "mapping-result", MappingResult, _encode_mapping_result,
    _decode_mapping_result,
)


# ----------------------------------------------------------------------
# strategies and exploration
# ----------------------------------------------------------------------
def _encode_strategy(strategy: StrategyTuple) -> Dict[str, Any]:
    return {
        "binding": strategy.binding,
        "routing": strategy.routing,
        "buffer_policy": strategy.buffer_policy,
        "scheduling": strategy.scheduling,
        "seed": strategy.seed,
    }


def _decode_strategy(payload: Dict[str, Any]) -> StrategyTuple:
    return StrategyTuple(
        binding=payload["binding"],
        routing=payload["routing"],
        buffer_policy=payload["buffer_policy"],
        scheduling=payload["scheduling"],
        seed=payload["seed"],
    )


register(
    "strategy-tuple", StrategyTuple, _encode_strategy, _decode_strategy
)


def _encode_tile_mix(mix: TileMix) -> Dict[str, Any]:
    return {
        "name": mix.name,
        "master_kb": list(mix.master_kb),
        "slave_kb": list(mix.slave_kb),
    }


def _decode_tile_mix(payload: Dict[str, Any]) -> TileMix:
    return TileMix(
        name=payload["name"],
        master_kb=tuple(payload["master_kb"]),
        slave_kb=tuple(payload["slave_kb"]),
    )


register("tile-mix", TileMix, _encode_tile_mix, _decode_tile_mix)


def _encode_candidate(candidate: CandidatePoint) -> Dict[str, Any]:
    return {
        "tiles": candidate.tiles,
        "interconnect": candidate.interconnect,
        "with_ca": candidate.with_ca,
        "mix": to_payload(candidate.mix),
        "effort": candidate.effort,
        "strategy": to_payload(candidate.strategy),
    }


def _decode_candidate(payload: Dict[str, Any]) -> CandidatePoint:
    return CandidatePoint(
        tiles=payload["tiles"],
        interconnect=payload["interconnect"],
        with_ca=payload["with_ca"],
        mix=from_payload(payload["mix"]),
        effort=payload["effort"],
        strategy=from_payload(payload["strategy"]),
    )


register(
    "candidate-point", CandidatePoint, _encode_candidate,
    _decode_candidate,
)


def _encode_area(area: AreaEstimate) -> Dict[str, Any]:
    return {"slices": area.slices, "brams": area.brams}


def _decode_area(payload: Dict[str, Any]) -> AreaEstimate:
    return AreaEstimate(slices=payload["slices"], brams=payload["brams"])


register("area-estimate", AreaEstimate, _encode_area, _decode_area)


def _encode_power_estimate(power: PowerEstimate) -> Dict[str, Any]:
    return {
        "static_mw": encode_fraction(power.static_mw),
        "dynamic_mw": encode_fraction(power.dynamic_mw),
        "tech_nm": power.tech_nm,
    }


def _decode_power_estimate(payload: Dict[str, Any]) -> PowerEstimate:
    return PowerEstimate(
        static_mw=decode_fraction(payload["static_mw"]),
        dynamic_mw=decode_fraction(payload["dynamic_mw"]),
        tech_nm=payload["tech_nm"],
    )


register(
    "power-estimate", PowerEstimate, _encode_power_estimate,
    _decode_power_estimate,
)


def _encode_energy_estimate(energy: EnergyEstimate) -> Dict[str, Any]:
    return {
        "compute_pj": encode_fraction(energy.compute_pj),
        "communication_pj": encode_fraction(energy.communication_pj),
        "static_pj": encode_fraction(energy.static_pj),
        "tech_nm": energy.tech_nm,
    }


def _decode_energy_estimate(payload: Dict[str, Any]) -> EnergyEstimate:
    return EnergyEstimate(
        compute_pj=decode_fraction(payload["compute_pj"]),
        communication_pj=decode_fraction(payload["communication_pj"]),
        static_pj=decode_fraction(payload["static_pj"]),
        tech_nm=payload["tech_nm"],
    )


register(
    "energy-estimate", EnergyEstimate, _encode_energy_estimate,
    _decode_energy_estimate,
)


def _encode_design_point(point: DesignPoint) -> Dict[str, Any]:
    payload = {
        "label": point.label,  # derived; kept for downstream tooling
        "tiles": point.tiles,
        "interconnect": point.interconnect,
        "with_ca": point.with_ca,
        "throughput": encode_fraction(point.throughput),
        "area": to_payload(point.area),
        "constraint_met": point.constraint_met,
        "mix": point.mix,
        "effort": point.effort,
        "strategy": to_payload(point.strategy),
        "candidate": (
            None
            if point.candidate is None
            else to_payload(point.candidate)
        ),
    }
    # Power/energy keys are *omitted* (not null) when estimation was
    # off, so budget-less runs stay byte-identical to historic payloads.
    if point.power is not None:
        payload["power"] = to_payload(point.power)
    if point.energy is not None:
        payload["energy"] = to_payload(point.energy)
    return payload


def _decode_design_point(payload: Dict[str, Any]) -> DesignPoint:
    return DesignPoint(
        tiles=payload["tiles"],
        interconnect=payload["interconnect"],
        with_ca=payload["with_ca"],
        throughput=decode_fraction(payload["throughput"]),
        area=from_payload(payload["area"]),
        constraint_met=payload["constraint_met"],
        mix=payload["mix"],
        effort=payload["effort"],
        strategy=from_payload(payload["strategy"]),
        candidate=_maybe(payload["candidate"]),
        power=_maybe(payload.get("power")),
        energy=_maybe(payload.get("energy")),
    )


register(
    "design-point", DesignPoint, _encode_design_point,
    _decode_design_point,
)


def _encode_front(front: ParetoFront) -> Dict[str, Any]:
    return {"points": [to_payload(p) for p in front.points()]}


def _decode_front(payload: Dict[str, Any]) -> ParetoFront:
    front = ParetoFront()
    for p in payload["points"]:
        front.add(from_payload(p))
    return front


register("pareto-front", ParetoFront, _encode_front, _decode_front)


def _encode_cache_stats(stats: CacheStats) -> Dict[str, Any]:
    return {"hits": stats.hits, "misses": stats.misses}


def _decode_cache_stats(payload: Dict[str, Any]) -> CacheStats:
    return CacheStats(hits=payload["hits"], misses=payload["misses"])


register(
    "cache-stats", CacheStats, _encode_cache_stats, _decode_cache_stats
)


def _encode_outcome(outcome: EvaluationOutcome) -> Dict[str, Any]:
    return {
        "label": outcome.label,
        "point": (
            None if outcome.point is None else to_payload(outcome.point)
        ),
        "reason": outcome.reason,
    }


def _decode_outcome(payload: Dict[str, Any]) -> EvaluationOutcome:
    return EvaluationOutcome(
        label=payload["label"],
        point=_maybe(payload["point"]),
        reason=payload["reason"],
    )


register(
    "evaluation-outcome", EvaluationOutcome, _encode_outcome,
    _decode_outcome,
)


def _encode_exploration(result: ExplorationResult) -> Dict[str, Any]:
    return {
        "points": [to_payload(p) for p in result.points],
        "failures": [list(pair) for pair in result.failures],
        "front": None if result.front is None else to_payload(result.front),
        "cache_stats": (
            None
            if result.cache_stats is None
            else to_payload(result.cache_stats)
        ),
        "elapsed_seconds": result.elapsed_seconds,
        "jobs": result.jobs,
        "early_exit": result.early_exit,
        "skipped": result.skipped,
    }


def _decode_exploration(payload: Dict[str, Any]) -> ExplorationResult:
    return ExplorationResult(
        points=[from_payload(p) for p in payload["points"]],
        failures=[tuple(pair) for pair in payload["failures"]],
        front=_maybe(payload["front"]),
        cache_stats=_maybe(payload["cache_stats"]),
        elapsed_seconds=payload["elapsed_seconds"],
        jobs=payload["jobs"],
        early_exit=payload["early_exit"],
        skipped=payload["skipped"],
    )


register(
    "exploration-result", ExplorationResult, _encode_exploration,
    _decode_exploration,
)


# ----------------------------------------------------------------------
# flow results: effort, measurement, project, flow, use-cases
# ----------------------------------------------------------------------
def _encode_effort(report: EffortReport) -> Dict[str, Any]:
    return {
        "timings": [
            {"name": t.name, "seconds": t.seconds} for t in report.timings
        ],
        "engine_tiers": dict(report.engine_tiers),
    }


def _decode_effort(payload: Dict[str, Any]) -> EffortReport:
    return EffortReport(
        timings=[
            StepTiming(name=t["name"], seconds=t["seconds"])
            for t in payload["timings"]
        ],
        engine_tiers=dict(payload.get("engine_tiers", {})),
    )


register("effort-report", EffortReport, _encode_effort, _decode_effort)


def _encode_measured(measured: MeasuredThroughput) -> Dict[str, Any]:
    return {
        "throughput": encode_fraction(measured.throughput),
        "iterations": measured.iterations,
        "cycles": measured.cycles,
        "warmup_iterations": measured.warmup_iterations,
    }


def _decode_measured(payload: Dict[str, Any]) -> MeasuredThroughput:
    return MeasuredThroughput(
        throughput=decode_fraction(payload["throughput"]),
        iterations=payload["iterations"],
        cycles=payload["cycles"],
        warmup_iterations=payload["warmup_iterations"],
    )


register(
    "measured-throughput", MeasuredThroughput, _encode_measured,
    _decode_measured,
)


def _encode_project(project: PlatformProject) -> Dict[str, Any]:
    return {"name": project.name, "files": dict(project.files)}


def _decode_project(payload: Dict[str, Any]) -> PlatformProject:
    return PlatformProject(
        name=payload["name"], files=dict(payload["files"])
    )


register(
    "platform-project", PlatformProject, _encode_project, _decode_project
)


def _encode_flow_result(result: FlowResult) -> Dict[str, Any]:
    # The simulator is a live process object; it is deliberately not
    # part of the artifact (decoded results carry simulator=None).
    return {
        "mapping_result": to_payload(result.mapping_result),
        "project": to_payload(result.project),
        "measured": (
            None if result.measured is None else to_payload(result.measured)
        ),
        "effort": to_payload(result.effort),
    }


def _decode_flow_result(payload: Dict[str, Any]) -> FlowResult:
    return FlowResult(
        mapping_result=from_payload(payload["mapping_result"]),
        project=from_payload(payload["project"]),
        simulator=None,
        measured=_maybe(payload["measured"]),
        effort=from_payload(payload["effort"]),
    )


register(
    "flow-result", FlowResult, _encode_flow_result, _decode_flow_result
)


def _encode_use_cases(mapping: UseCaseMapping) -> Dict[str, Any]:
    return {
        "results": {
            name: to_payload(result)
            for name, result in mapping.results.items()
        },
        "link_pairs": [list(pair) for pair in mapping.link_pairs],
        "tiles_used": list(mapping.tiles_used),
    }


def _decode_use_cases(payload: Dict[str, Any]) -> UseCaseMapping:
    return UseCaseMapping(
        results={
            name: from_payload(p)
            for name, p in payload["results"].items()
        },
        link_pairs=tuple(
            tuple(pair) for pair in payload["link_pairs"]
        ),
        tiles_used=tuple(payload["tiles_used"]),
    )


register(
    "use-case-mapping", UseCaseMapping, _encode_use_cases,
    _decode_use_cases,
)
