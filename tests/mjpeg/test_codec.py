"""Tests for DCT, entropy coding and the encoder/reference-decoder pair."""

import numpy as np
import pytest

from repro.exceptions import BitstreamError
from repro.mjpeg.bitstream import BitReader, BitWriter
from repro.mjpeg.dct import (
    dequantize,
    forward_dct,
    idct_samples,
    inverse_dct,
    quantize,
)
from repro.mjpeg.encoder import (
    EncodedSequence,
    HEADER_BYTES,
    _encode_block,
    encode_sequence,
    parse_header,
)
from repro.mjpeg.entropy import decode_block
from repro.mjpeg.reference import decode_sequence, psnr
from repro.mjpeg.sequences import (
    gradient_sequence,
    synthetic_sequence,
    test_set_sequences as build_test_set,
)
from repro.mjpeg.tables import ZIGZAG


class TestDCT:
    def test_inverse_of_forward(self):
        rng = np.random.default_rng(1)
        block = rng.uniform(-128, 127, size=(8, 8))
        roundtrip = inverse_dct(forward_dct(block))
        assert np.allclose(roundtrip, block, atol=1e-9)

    def test_dc_coefficient_is_scaled_mean(self):
        block = np.full((8, 8), 10.0)
        coefficients = forward_dct(block)
        assert coefficients[0, 0] == pytest.approx(80.0)  # 8 * mean
        assert np.allclose(coefficients.ravel()[1:], 0.0, atol=1e-9)

    def test_quantize_dequantize(self):
        rng = np.random.default_rng(2)
        coefficients = rng.uniform(-500, 500, size=(8, 8))
        table = np.full((8, 8), 16, dtype=np.int32)
        levels = quantize(coefficients, table)
        restored = dequantize(levels, table)
        assert np.abs(restored - coefficients).max() <= 8  # half a step

    def test_idct_samples_clamped(self):
        coefficients = np.zeros((8, 8), dtype=np.int32)
        coefficients[0, 0] = 3000  # far beyond the clamp
        samples = idct_samples(coefficients)
        assert samples.max() == 255
        coefficients[0, 0] = -3000
        assert idct_samples(coefficients).min() == 0


class TestBlockEntropyRoundtrip:
    def roundtrip(self, levels_natural):
        zigzag = np.array(ZIGZAG)
        writer = BitWriter()
        dc = _encode_block(writer, levels_natural.ravel()[zigzag], 0)
        writer.align()
        reader = BitReader(writer.getvalue())
        decoded, new_dc, count = decode_block(reader, 0)
        # decoded is in zig-zag scan order; undo the permutation
        natural = np.zeros(64, dtype=np.int32)
        natural[zigzag] = decoded
        return natural.reshape(8, 8), count

    def test_sparse_block(self):
        levels = np.zeros((8, 8), dtype=np.int32)
        levels[0, 0] = 12
        levels[0, 1] = -3
        levels[2, 2] = 7
        decoded, count = self.roundtrip(levels)
        assert np.array_equal(decoded, levels)
        assert count == 3

    def test_dense_block(self):
        rng = np.random.default_rng(3)
        levels = rng.integers(-40, 40, size=(8, 8)).astype(np.int32)
        decoded, _ = self.roundtrip(levels)
        assert np.array_equal(decoded, levels)

    def test_long_zero_runs(self):
        levels = np.zeros((8, 8), dtype=np.int32)
        levels.ravel()[ZIGZAG[63]] = 0  # keep zero
        natural = np.zeros(64, dtype=np.int32)
        natural[ZIGZAG[0]] = 5
        natural[ZIGZAG[40]] = -2  # forces a ZRL run of >16
        decoded, _ = self.roundtrip(natural.reshape(8, 8))
        assert np.array_equal(decoded, natural.reshape(8, 8))

    def test_all_zero_block(self):
        levels = np.zeros((8, 8), dtype=np.int32)
        decoded, count = self.roundtrip(levels)
        assert np.array_equal(decoded, levels)
        assert count == 1  # just the DC


class TestEncoder:
    def test_header_roundtrip(self):
        frames = gradient_sequence(n_frames=3, width=32, height=32)
        encoded = encode_sequence(frames, quality=60, h=2, v=2)
        info = parse_header(encoded.data)
        assert info.width == 32 and info.height == 32
        assert info.h == 2 and info.v == 2
        assert info.quality == 60
        assert info.n_frames == 3
        assert info.color

    def test_geometry_properties(self):
        frames = gradient_sequence(n_frames=1, width=64, height=32)
        encoded = encode_sequence(frames, h=2, v=2)
        assert encoded.mcu_width == 16 and encoded.mcu_height == 16
        assert encoded.mcus_x == 4 and encoded.mcus_y == 2
        assert encoded.mcus_per_frame == 8
        assert encoded.blocks_per_mcu == 6

    def test_ten_block_limit_enforced(self):
        frames = gradient_sequence(n_frames=1, width=64, height=64)
        with pytest.raises(BitstreamError, match="blocks per MCU"):
            encode_sequence(frames, h=4, v=4)

    def test_eight_plus_two_blocks_allowed(self):
        frames = gradient_sequence(n_frames=1, width=64, height=32)
        encoded = encode_sequence(frames, h=4, v=2)
        assert encoded.blocks_per_mcu == 10  # the paper's maximum

    def test_misaligned_frame_rejected(self):
        frames = gradient_sequence(n_frames=1, width=60, height=60)
        with pytest.raises(BitstreamError, match="multiple"):
            encode_sequence(frames, h=2, v=2)

    def test_grayscale_mode(self):
        frames = gradient_sequence(n_frames=1, width=32, height=32)
        encoded = encode_sequence(frames, color=False, h=1, v=1)
        assert encoded.blocks_per_mcu == 1
        decoded = decode_sequence(encoded)
        assert decoded[0].shape == (32, 32, 3)

    def test_bad_magic_rejected(self):
        with pytest.raises(BitstreamError, match="magic"):
            parse_header(b"NOPE" + b"\x00" * 20)


class TestEndToEnd:
    @pytest.mark.parametrize("name", [
        "gradient", "photo", "checkerboard", "text", "blobs",
    ])
    def test_sequences_decode_with_reasonable_quality(self, name):
        frames = build_test_set(n_frames=2)[name]
        encoded = encode_sequence(frames, quality=75)
        decoded = decode_sequence(encoded)
        assert len(decoded) == 2
        for original, restored in zip(frames, decoded):
            assert psnr(original, restored) > 20.0

    def test_smooth_content_high_psnr(self):
        frames = gradient_sequence(n_frames=1)
        encoded = encode_sequence(frames, quality=90)
        decoded = decode_sequence(encoded)
        assert psnr(frames[0], decoded[0]) > 35.0

    def test_higher_quality_improves_psnr(self):
        frames = build_test_set(n_frames=1)["photo"]
        low = decode_sequence(encode_sequence(frames, quality=30))
        high = decode_sequence(encode_sequence(frames, quality=90))
        assert psnr(frames[0], high[0]) > psnr(frames[0], low[0])

    def test_synthetic_compresses_poorly(self):
        """Random noise needs far more bits per MCU than structured
        content -- the property that drives it toward the WCET."""
        structured = encode_sequence(
            gradient_sequence(n_frames=1), quality=75
        )
        noise = encode_sequence(synthetic_sequence(n_frames=1), quality=75)
        assert len(noise.data) > 3 * len(structured.data)

    def test_multi_frame_stream_decodes_every_frame(self):
        frames = build_test_set(n_frames=4)["blobs"]
        encoded = encode_sequence(frames, quality=75)
        decoded = decode_sequence(encoded)
        assert len(decoded) == 4
        # Frames differ (the blobs move) and each decodes acceptably.
        assert not np.array_equal(decoded[0], decoded[3])
        for original, restored in zip(frames, decoded):
            assert psnr(original, restored) > 20.0

    def test_psnr_identical_is_infinite(self):
        image = gradient_sequence(n_frames=1)[0]
        assert psnr(image, image) == float("inf")
