#!/usr/bin/env python3
"""Fast design-space exploration (the Section 7 use case).

The paper's pitch: because every step is automated and the throughput
analysis is conservative, "designers [can] perform a very fast design space
exploration for real-time embedded systems".  This example drives the
exploration *engine* (:mod:`repro.flow.dse`) rather than a hand-rolled
loop:

1. a :class:`DesignSpace` declares the sweep -- tile counts, both
   interconnects, and a heterogeneous tile mix with half-size slave
   memories;
2. an :class:`Evaluator` runs each candidate through the conservative
   mapping analysis behind a content-addressed cache;
3. a :class:`ParallelExplorer` fans the evaluations out over worker
   threads and maintains the Pareto front incrementally.

The second sweep at the end re-explores the same space and costs almost
nothing: every point is a cache hit.

Run:  python examples/design_space_exploration.py
"""

import time

from repro.flow import (
    COMPACT_MIX,
    DesignSpace,
    Evaluator,
    ParallelExplorer,
    UNIFORM_MIX,
    format_exploration_report,
)
from repro.mjpeg import (
    build_mjpeg_application,
    encode_sequence,
    test_set_sequences,
)


def main() -> None:
    frames = test_set_sequences(n_frames=2)["photo"]
    encoded = encode_sequence(frames, quality=75)
    app = build_mjpeg_application(encoded)

    # The sweep: 1-5 tiles x {FSL, NoC} x {uniform, compact memories}.
    # Physically identical configurations (single-tile NoC, single-tile
    # compact) are deduplicated by the space itself.
    space = DesignSpace(
        tile_counts=(1, 2, 3, 4, 5),
        interconnects=("fsl", "noc"),
        mixes=(UNIFORM_MIX, COMPACT_MIX),
    )
    print(f"design space: {len(space)} candidate platforms")

    # The evaluator pins the file-reading actor to the master tile (it
    # owns the peripherals) exactly like the paper's case study.
    evaluator = Evaluator(app, fixed={"VLD": "tile0"})
    explorer = ParallelExplorer(evaluator, jobs=4)

    start = time.perf_counter()
    result = explorer.explore(space)
    cold = time.perf_counter() - start
    print(format_exploration_report(result))

    # A repeated sweep -- say, after editing an unrelated part of a build
    # script -- is content-addressed into pure cache hits.
    start = time.perf_counter()
    explorer.explore(space)
    warm = time.perf_counter() - start
    print(
        f"\ncold sweep: {cold:.2f} s, cache-warm re-sweep: {warm*1000:.1f} "
        f"ms ({cold / warm:.0f}x faster)"
    )
    print(
        "note: every data point above came from the conservative analysis "
        "alone -- no platform was simulated or synthesized"
    )


if __name__ == "__main__":
    main()
