"""Tests for the synthetic-workload generator (repro.scenarios)."""

import pytest

from repro.artifacts import canonical_json, from_payload, to_payload
from repro.flow.spec import FlowSpec, FlowSpecError, load_flow_spec
from repro.scenarios import (
    FAMILIES,
    ScenarioError,
    ScenarioSpec,
    build_scenario_application,
    build_scenario_graph,
    generate_scenarios,
    render_flow_spec_toml,
    scenario_architecture,
    scenario_flow_spec,
    scenario_strategies,
)
from repro.sdf import (
    check_well_formed,
    is_deadlock_free,
    repetition_vector,
)


class TestDeterminism:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_equal_specs_build_equal_graphs(self, family):
        spec = ScenarioSpec(family=family, seed=42, actors=8)
        again = ScenarioSpec(family=family, seed=42, actors=8)
        assert build_scenario_graph(spec) == build_scenario_graph(again)

    def test_different_seeds_differ(self):
        a = build_scenario_graph(ScenarioSpec(family="chain", seed=1))
        b = build_scenario_graph(ScenarioSpec(family="chain", seed=2))
        assert a != b

    def test_application_is_deterministic(self):
        spec = ScenarioSpec(family="mixed", seed=9, actors=10)
        one = build_scenario_application(spec)
        two = build_scenario_application(spec)
        assert one.graph == two.graph
        assert one.implementations == two.implementations

    def test_architecture_and_strategies_are_deterministic(self):
        spec = ScenarioSpec(family="splitjoin", seed=3)
        assert scenario_architecture(spec) == scenario_architecture(spec)
        assert scenario_strategies(spec) == scenario_strategies(spec)

    def test_batch_is_deterministic(self):
        assert generate_scenarios("all", 10, seed=5) == \
            generate_scenarios("all", 10, seed=5)

    def test_batch_names_are_unique(self):
        names = [s.name for s in generate_scenarios("all", 25, seed=1)]
        assert len(set(names)) == len(names)


class TestFamilies:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("seed", range(3))
    def test_generated_graphs_are_well_formed(self, family, seed):
        graph = build_scenario_graph(
            ScenarioSpec(family=family, seed=seed, actors=8)
        )
        check_well_formed(graph)
        assert repetition_vector(graph)
        assert is_deadlock_free(graph)

    def test_cyclic_family_has_a_cycle(self):
        graph = build_scenario_graph(
            ScenarioSpec(family="cyclic", seed=4, actors=6)
        )
        assert graph.edge("back").initial_tokens > 0

    def test_splitjoin_shape(self):
        graph = build_scenario_graph(
            ScenarioSpec(family="splitjoin", seed=4, actors=7)
        )
        q = repetition_vector(graph)
        assert q["src"] == q["snk"]

    def test_wcet_profile_bounds_execution_times(self):
        graph = build_scenario_graph(
            ScenarioSpec(
                family="chain", seed=8, actors=10,
                wcet_profile="uniform",
            )
        )
        for actor in graph:
            assert 20 <= actor.execution_time <= 40


class TestTypedErrors:
    def test_unknown_family(self):
        with pytest.raises(ScenarioError, match="unknown scenario family"):
            ScenarioSpec(family="torus", seed=1)

    def test_bad_seed(self):
        with pytest.raises(ScenarioError, match="seed"):
            ScenarioSpec(family="chain", seed=-1)

    def test_bad_actor_count(self):
        with pytest.raises(ScenarioError, match="actors"):
            ScenarioSpec(family="chain", seed=1, actors=1)

    def test_bad_profile(self):
        with pytest.raises(ScenarioError, match="wcet_profile"):
            ScenarioSpec(family="chain", seed=1, wcet_profile="spiky")

    def test_unknown_table_key_rejected(self):
        with pytest.raises(ScenarioError, match="unknown scenario key"):
            ScenarioSpec.from_table(
                {"family": "chain", "seed": 1, "actor": 5}
            )

    def test_batch_rejects_bad_family_and_count(self):
        with pytest.raises(ScenarioError, match="unknown scenario family"):
            generate_scenarios("torus", 3, seed=1)
        with pytest.raises(ScenarioError, match="count"):
            generate_scenarios("chain", 0, seed=1)


class TestSpecRoundTrip:
    def test_table_round_trip(self):
        spec = ScenarioSpec(
            family="diamond", seed=77, actors=12, max_rate=4,
            wcet_profile="wide", token_bytes=64, name="d77",
        )
        assert ScenarioSpec.from_table(spec.to_table()) == spec

    def test_artifact_round_trip_is_byte_identical(self):
        spec = ScenarioSpec(family="cyclic", seed=123, actors=5)
        payload = to_payload(spec)
        assert payload["kind"] == "scenario"
        clone = from_payload(payload)
        assert clone == spec
        assert canonical_json(to_payload(clone)) == \
            canonical_json(payload)


class TestFlowSpecBridge:
    def test_flow_spec_toml_round_trip(self, tmp_path):
        spec = ScenarioSpec(family="mixed", seed=31, actors=9)
        flow_spec = scenario_flow_spec(spec)
        path = tmp_path / "scenario.toml"
        path.write_text(render_flow_spec_toml(flow_spec))
        assert load_flow_spec(path) == flow_spec

    def test_document_round_trip(self):
        flow_spec = scenario_flow_spec(
            ScenarioSpec(family="chain", seed=2, actors=4)
        )
        assert FlowSpec.from_dict(flow_spec.to_document()) == flow_spec

    def test_build_application_dispatches_to_generator(self):
        spec = ScenarioSpec(family="splitjoin", seed=6, actors=6)
        flow_spec = scenario_flow_spec(spec)
        app = flow_spec.build_application()
        assert app.graph == build_scenario_graph(spec)
        assert app.name == spec.effective_name

    def test_scenario_and_sequence_are_mutually_exclusive(self):
        with pytest.raises(FlowSpecError, match="either generated"):
            FlowSpec.from_dict(
                {
                    "app": {
                        "sequence": "gradient",
                        "scenario": {"family": "chain", "seed": 1},
                    }
                }
            )

    def test_bad_scenario_table_is_a_spec_error(self):
        with pytest.raises(FlowSpecError, match="scenario"):
            FlowSpec.from_dict(
                {"app": {"scenario": {"family": "nope", "seed": 1}}}
            )

    def test_interconnect_knobs_reach_the_platform(self):
        flow_spec = FlowSpec.from_dict(
            {
                "app": {"scenario": {"family": "chain", "seed": 1}},
                "architecture": {
                    "tiles": 2, "interconnect": "fsl",
                    "fsl_fifo_depth": 32,
                },
            }
        )
        arch = flow_spec.build_architecture()
        assert arch.interconnect.fifo_depth_words == 32

    def test_noc_knobs_reach_the_platform(self):
        flow_spec = FlowSpec.from_dict(
            {
                "app": {"scenario": {"family": "chain", "seed": 1}},
                "architecture": {
                    "tiles": 4, "interconnect": "noc",
                    "noc_wires_per_link": 64,
                    "noc_connection_wires": 4,
                },
            }
        )
        arch = flow_spec.build_architecture()
        assert arch.interconnect.wires_per_link == 64
        assert arch.interconnect.default_connection_wires == 4


class TestCLI:
    def test_generate_is_byte_identical_across_runs(self, tmp_path):
        from repro.cli import main

        out_a, out_b = tmp_path / "a", tmp_path / "b"
        for out in (out_a, out_b):
            assert main(
                [
                    "scenarios", "generate", "--seed", "7",
                    "--family", "all", "--count", "5",
                    "--out", str(out),
                ]
            ) == 0
        files_a = sorted(p.name for p in out_a.iterdir())
        files_b = sorted(p.name for p in out_b.iterdir())
        assert files_a == files_b and len(files_a) == 5
        for name in files_a:
            assert (out_a / name).read_bytes() == \
                (out_b / name).read_bytes()

    def test_generated_files_load_and_describe(self, tmp_path, capsys):
        from repro.cli import main

        assert main(
            [
                "scenarios", "generate", "--seed", "3",
                "--family", "diamond", "--count", "2",
                "--out", str(tmp_path),
            ]
        ) == 0
        capsys.readouterr()
        for path in tmp_path.iterdir():
            spec = load_flow_spec(path)
            assert spec.app.scenario is not None
            assert "generated diamond scenario" in spec.describe()

    def test_families_listing(self, capsys):
        from repro.cli import main

        assert main(["scenarios", "families"]) == 0
        out = capsys.readouterr().out.split()
        assert out == list(FAMILIES)
