"""Round-trip tests: ``from_payload(to_payload(x)) == x`` for every
public result type, plus canonical-encoding and envelope guarantees."""

import json
from fractions import Fraction

import pytest

from repro.appmodel import (
    ActorImplementation,
    ApplicationModel,
    ImplementationMetrics,
    MemoryRequirements,
)
from repro.arch import architecture_from_template
from repro.arch.area import AreaEstimate
from repro.artifacts import (
    ArtifactError,
    SCHEMA_VERSION,
    artifact_digest,
    canonical_json,
    from_payload,
    kind_of,
    registered_kinds,
    to_payload,
)
from repro.flow import (
    COMPACT_MIX,
    CandidatePoint,
    DesignFlow,
    DesignSpace,
    Evaluator,
    ParallelExplorer,
    StrategyTuple,
)
from repro.flow.dse import EvaluationOutcome, TileMix
from repro.flow.effort import EffortReport, StepTiming
from repro.flow.usecases import map_use_cases
from repro.mamps.project import PlatformProject
from repro.mapping import map_application
from repro.sdf import SDFGraph
from repro.sim.platform_sim import MeasuredThroughput


def make_app(name="rt_app", wcets=(400, 700, 300)):
    """A timing-only chain application (no callables -> exact round-trip)."""
    g = SDFGraph(name)
    names = [f"{name}_a{i}" for i in range(len(wcets))]
    for actor, t in zip(names, wcets):
        g.add_actor(actor, execution_time=t)
    for src, dst in zip(names, names[1:]):
        g.add_edge(f"{src}2{dst}", src, dst, token_size=16)
    return ApplicationModel(
        graph=g,
        implementations=[
            ActorImplementation(
                actor=actor, pe_type="microblaze",
                metrics=ImplementationMetrics(
                    wcet=t, memory=MemoryRequirements(4096, 2048)
                ),
            )
            for actor, t in zip(names, wcets)
        ],
        throughput_constraint=Fraction(1, 9000),
    )


def roundtrip(obj):
    payload = to_payload(obj)
    # payloads must be canonically JSON-encodable and re-parseable
    clone = from_payload(json.loads(canonical_json(payload)))
    return payload, clone


class TestGraphAndApplication:
    def test_graph_roundtrips_every_field(self):
        g = SDFGraph("rich")
        g.add_actor("A", execution_time=10)
        g.add_actor("B", execution_time=0, group="chan", concurrency=3)
        g.add_edge("ab", "A", "B", production=2, consumption=3,
                   initial_tokens=1, token_size=12)
        g.add_edge("selfA", "A", "A", initial_tokens=1, implicit=True)
        payload, clone = roundtrip(g)
        assert clone == g
        assert clone.actor("B").concurrency == 3
        assert clone.actor("B").group == "chan"
        assert payload["kind"] == "sdf-graph"

    def test_graph_method_shortcuts(self):
        g = SDFGraph("m")
        g.add_actor("A")
        assert SDFGraph.from_payload(g.to_payload()) == g

    def test_application_roundtrips(self):
        app = make_app()
        payload, clone = roundtrip(app)
        assert clone == app
        assert clone.throughput_constraint == Fraction(1, 9000)
        assert payload["schema_version"] == SCHEMA_VERSION

    def test_functional_models_decode_timing_only(self):
        app = make_app()
        impl = app.implementations[0]
        impl.function = lambda ctx: None
        payload = to_payload(app)
        recorded = payload["implementations"][0]["function"]
        assert recorded and "lambda" in recorded
        clone = from_payload(payload)
        assert clone.implementations[0].function is None
        assert not clone.is_functional()


class TestArchitecture:
    @pytest.mark.parametrize("interconnect", ["fsl", "noc"])
    def test_template_roundtrips(self, interconnect):
        arch = architecture_from_template(
            4, interconnect, with_ca=True, slave_data_kb=64
        )
        payload, clone = roundtrip(arch)
        assert clone == arch
        clone.validate()  # decoded platforms are valid platforms

    def test_single_tile_has_null_interconnect(self):
        arch = architecture_from_template(1, "fsl")
        payload, clone = roundtrip(arch)
        assert payload["interconnect"] is None
        assert clone == arch

    def test_noc_placement_order_is_preserved(self):
        arch = architecture_from_template(5, "noc")
        clone = from_payload(to_payload(arch))
        assert clone.interconnect.tile_names == \
            arch.interconnect.tile_names
        assert clone.interconnect.position_of("tile3") == \
            arch.interconnect.position_of("tile3")


class TestMappingResults:
    @pytest.fixture
    def result(self):
        app = make_app()
        arch = architecture_from_template(3, "noc")
        return map_application(app, arch)

    def test_mapping_result_roundtrips(self, result):
        payload, clone = roundtrip(result)
        assert clone == result
        assert clone.guaranteed_throughput == \
            result.guaranteed_throughput
        assert clone.constraint_met == result.constraint_met

    def test_mapping_roundtrips(self, result):
        payload, clone = roundtrip(result.mapping)
        assert clone == result.mapping
        assert clone.static_orders == result.mapping.static_orders

    def test_channel_parameters_survive(self, result):
        clone = from_payload(to_payload(result))
        for name, channel in result.mapping.channels.items():
            assert clone.mapping.channels[name].parameters == \
                channel.parameters

    def test_throughput_is_exact_fraction(self, result):
        clone = from_payload(to_payload(result.throughput))
        assert clone == result.throughput
        assert isinstance(clone.throughput, Fraction)


class TestExplorationTypes:
    def test_strategy_tile_mix_candidate(self):
        strategy = StrategyTuple(binding="spiral",
                                 buffer_policy="exponential", seed=9)
        candidate = CandidatePoint(
            tiles=3, interconnect="noc", with_ca=True,
            mix=COMPACT_MIX, effort="low", strategy=strategy,
        )
        for obj in (strategy, COMPACT_MIX, TileMix("x", (64, 64)),
                    candidate, AreaEstimate(10, 2)):
            payload, clone = roundtrip(obj)
            assert clone == obj

    def test_exploration_result_roundtrips(self):
        app = make_app()
        space = DesignSpace(tile_counts=(1, 2), interconnects=("fsl",))
        result = ParallelExplorer(Evaluator(app)).explore(space)
        payload, clone = roundtrip(result)
        assert clone == result
        assert clone.pareto_frontier() == result.pareto_frontier()
        assert clone.as_table() == result.as_table()
        # the promoted candidate survives, so a decoded point can still
        # seed the full flow
        point = clone.best_meeting_constraint()
        assert point is not None and point.candidate is not None
        DesignFlow.from_design_point(app, point)

    def test_evaluation_outcome_roundtrips(self):
        ok = EvaluationOutcome(
            label="2t/fsl",
            point=None,
            reason="memory infeasible",
        )
        payload, clone = roundtrip(ok)
        assert clone == ok


class TestFlowResults:
    def test_effort_report_roundtrips(self):
        report = EffortReport(timings=[
            StepTiming("Mapping the design (SDF3)", 0.123456789),
            StepTiming("Synthesis of the system", 2.5),
        ])
        payload, clone = roundtrip(report)
        assert clone == report
        assert clone.as_table() == report.as_table()

    def test_measured_throughput_roundtrips(self):
        measured = MeasuredThroughput(
            throughput=Fraction(3, 70000), iterations=30,
            cycles=700000, warmup_iterations=4,
        )
        payload, clone = roundtrip(measured)
        assert clone == measured

    def test_platform_project_roundtrips(self):
        project = PlatformProject("proj")
        project.add("system.mhs", "PORT a\n")
        project.add("src/tile0/main.c", "int main(void){return 0;}\n")
        payload, clone = roundtrip(project)
        assert clone == project

    def test_flow_result_roundtrips(self):
        app = make_app()
        arch = architecture_from_template(2, "fsl")
        result = DesignFlow(app, arch).run(measure=False)
        assert result.simulator is None  # timing-only app
        payload, clone = roundtrip(result)
        assert clone == result
        assert clone.summary() == result.summary()

    def test_use_case_mapping_roundtrips(self):
        apps = [make_app("uc_video"), make_app("uc_audio", (150, 250))]
        arch = architecture_from_template(3, "fsl")
        mapping = map_use_cases(apps, arch)
        payload, clone = roundtrip(mapping)
        assert clone == mapping
        assert clone.as_table() == mapping.as_table()


class TestEnvelope:
    def test_canonical_encoding_is_sorted_and_stable(self):
        app = make_app()
        text = canonical_json(to_payload(app))
        assert text == canonical_json(to_payload(make_app()))
        parsed = json.loads(text)
        assert list(parsed) == sorted(parsed)

    def test_digest_is_content_addressed(self):
        a = artifact_digest(to_payload(make_app()))
        b = artifact_digest(to_payload(make_app()))
        c = artifact_digest(to_payload(make_app(wcets=(400, 700, 301))))
        assert a == b != c

    def test_kind_of(self):
        assert kind_of(make_app()) == "application"
        with pytest.raises(ArtifactError, match="no artifact codec"):
            kind_of(object())

    def test_unknown_kind_rejected(self):
        with pytest.raises(ArtifactError, match="unknown artifact kind"):
            from_payload({"schema_version": 1, "kind": "wormhole"})

    def test_newer_schema_version_rejected(self):
        payload = to_payload(make_app())
        payload["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(ArtifactError, match="upgrade"):
            from_payload(payload)

    def test_missing_envelope_rejected(self):
        with pytest.raises(ArtifactError, match="schema_version"):
            from_payload({"kind": "application"})
        with pytest.raises(ArtifactError, match="object"):
            from_payload(["not", "an", "object"])

    def test_malformed_body_reported_with_kind(self):
        payload = to_payload(make_app())
        del payload["graph"]
        with pytest.raises(ArtifactError, match="application"):
            from_payload(payload)

    def test_every_registered_kind_is_kebab_case(self):
        for kind in registered_kinds():
            assert kind == kind.lower()
            assert " " not in kind
