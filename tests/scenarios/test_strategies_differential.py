"""Differential strategy tests over generated heterogeneous scenarios.

Every binding strategy must produce a *feasible* mapping for every
conservative generated workload -- spiral and GA are alternative
heuristics, not partial ones -- and no two distinct evaluations may
ever share a cache key (a collision would silently serve one strategy's
result as another's from the DSE cache or the flow service).
"""

import pytest

from repro.flow.fingerprint import (
    application_fingerprint,
    architecture_fingerprint,
    evaluation_key,
    flow_request_key,
)
from repro.flow.spec import ArchSpec
from repro.mapping import map_application
from repro.mapping.pipeline import StrategyTuple
from repro.scenarios import (
    generate_scenarios,
    scenario_flow_spec,
)

BINDINGS = ("greedy", "spiral", "ga")

SCENARIOS = generate_scenarios("all", 10, seed=99)
IDS = [spec.name for spec in SCENARIOS]

#: heterogeneous platform: full-size master, half-size slave memories
HETEROGENEOUS = ArchSpec(
    tiles=4,
    interconnect="fsl",
    instruction_kb=128,
    data_kb=128,
    slave_instruction_kb=64,
    slave_data_kb=64,
)


def _strategies(binding: str) -> StrategyTuple:
    return StrategyTuple(
        binding=binding, seed=7 if binding == "ga" else None
    )


@pytest.mark.parametrize("spec", SCENARIOS, ids=IDS)
def test_every_binding_strategy_is_feasible(spec):
    flow_spec = scenario_flow_spec(spec, architecture=HETEROGENEOUS)
    app = flow_spec.build_application()
    arch = flow_spec.build_architecture()
    guarantees = {}
    for binding in BINDINGS:
        result = map_application(
            app, arch,
            pipeline=_strategies(binding).build_pipeline(),
        )
        assert result.guaranteed_throughput is not None, (
            f"{binding} produced no throughput guarantee on {spec.name}"
        )
        assert result.guaranteed_throughput > 0
        guarantees[binding] = result.guaranteed_throughput
    # heuristics may differ in quality, never in feasibility
    assert len(guarantees) == len(BINDINGS)


def test_evaluation_keys_never_collide_across_strategies():
    keys = {}
    for spec in SCENARIOS:
        flow_spec = scenario_flow_spec(spec, architecture=HETEROGENEOUS)
        app_fp = application_fingerprint(flow_spec.build_application())
        arch_fp = architecture_fingerprint(flow_spec.build_architecture())
        for binding in BINDINGS:
            key = evaluation_key(
                app_fp, arch_fp, None, None, "normal",
                _strategies(binding).cache_token(),
            )
            assert key not in keys, (
                f"evaluation key collision: ({spec.name}, {binding}) vs "
                f"{keys[key]}"
            )
            keys[key] = (spec.name, binding)
    assert len(keys) == len(SCENARIOS) * len(BINDINGS)


def test_flow_request_keys_never_collide():
    keys = {}
    for spec in SCENARIOS:
        for binding in BINDINGS:
            flow_spec = scenario_flow_spec(
                spec,
                architecture=HETEROGENEOUS,
                strategies=_strategies(binding),
            )
            key = flow_request_key(flow_spec)
            assert key not in keys, (
                f"request key collision: ({spec.name}, {binding}) vs "
                f"{keys[key]}"
            )
            keys[key] = (spec.name, binding)
    assert len(keys) == len(SCENARIOS) * len(BINDINGS)


def test_scenario_and_case_study_requests_never_collide():
    """A generated app and an MJPEG app must have distinct identities
    even when every other knob matches."""
    from repro.flow.spec import AppSpec, FlowSpec

    spec = SCENARIOS[0]
    generated = scenario_flow_spec(
        spec, architecture=HETEROGENEOUS, name="same-name"
    )
    case_study = FlowSpec(
        name="same-name",
        apps=(AppSpec(name=spec.effective_name),),
        architecture=HETEROGENEOUS,
        strategies=generated.strategies,
    )
    assert flow_request_key(generated) != flow_request_key(case_study)
