"""Property-based fuzzing of the run-time platform manager.

Seeded random admit/depart/migrate sequences over scenario-generated
applications must uphold three invariants, checked from first
principles (never through the manager's own bookkeeping):

1. **no over-commitment** -- re-deriving every placed application's
   resource usage from its placement (XY routes on the NoC, port
   counts on FSL, per-tile memory sums) never exceeds any tile, link,
   or port capacity, and always agrees with the residual snapshot;
2. **guarantees are real** -- re-running the full mapping analysis
   with every actor pinned to its placed tile reproduces at least the
   admitted throughput guarantee;
3. **restart is byte-identical** -- replaying the journal into a fresh
   manager yields the same ``state_digest()`` as the live one.
"""

import random

import pytest

from repro.arch.interconnect import FSLInterconnect
from repro.arch.noc import SDMNoC, xy_route
from repro.artifacts import ArtifactStore
from repro.exceptions import AdmissionError
from repro.mapping.flow import MappingEffort, map_application
from repro.runtime import PlatformManager, build_library
from repro.runtime.residual import mesh_links

from tests.runtime.conftest import ARCH_FSL, ARCH_NOC, flow_specs

ARCHES = {"fsl": ARCH_FSL, "noc": ARCH_NOC}


@pytest.fixture(scope="module")
def corpora():
    """Per-interconnect scenario specs + libraries (built once)."""
    out = {}
    for kind, arch in ARCHES.items():
        specs = flow_specs("all", 4, 11, arch)
        out[kind] = [(spec, build_library(spec)) for spec in specs]
    return out


def assert_never_overcommitted(manager):
    """Invariant 1, re-derived from placements alone."""
    arch = manager.arch
    fabric = arch.interconnect
    placed = manager.apps()

    # tiles: exclusive ownership, free list is exactly the complement
    owned = [tile for app in placed for tile in app.claim.tiles]
    assert len(owned) == len(set(owned)), "two apps share a tile"
    assert set(manager.residual.free_tiles()) == \
        set(arch.tile_names()) - set(owned)

    # memory: per placed tile, the point's footprint fits the tile
    for app in placed:
        for canonical, real in app.placement.items():
            need = app.point.tile_memory.get(canonical, (0, 0))
            tile = arch.tile(real)
            assert need[0] <= tile.instruction_memory.capacity_bytes
            assert need[1] <= tile.data_memory.capacity_bytes

    if isinstance(fabric, SDMNoC):
        used = {
            link: 0 for link in mesh_links(fabric.columns, fabric.rows)
        }
        for app in placed:
            for channel in app.point.channels:
                src = app.placement[channel.src]
                dst = app.placement[channel.dst]
                # relocation preserved the analyzed hop count
                assert fabric.hop_distance(src, dst) == channel.hops
                path = xy_route(
                    fabric.position_of(src), fabric.position_of(dst)
                )
                for link in zip(path, path[1:]):
                    used[link] += channel.wires
        for link, wires in used.items():
            assert wires <= fabric.wires_per_link
            assert manager.residual._free_wires[link] == \
                fabric.wires_per_link - wires
    elif isinstance(fabric, FSLInterconnect):
        out_ports, in_ports = {}, {}
        for app in placed:
            for channel in app.point.channels:
                src = app.placement[channel.src]
                dst = app.placement[channel.dst]
                out_ports[src] = out_ports.get(src, 0) + 1
                in_ports[dst] = in_ports.get(dst, 0) + 1
        for tile, count in out_ports.items():
            assert count <= fabric.max_links_per_tile
        for tile, count in in_ports.items():
            assert count <= fabric.max_links_per_tile


def assert_guarantee_is_real(manager, spec, app):
    """Invariant 2: one full re-analysis with the placement pinned."""
    binding = app.point.result.mapping.actor_binding
    fixed = {
        actor: app.placement[tile] for actor, tile in binding.items()
    }
    result = map_application(
        spec.build_app(spec.app),
        manager.arch,
        constraint=app.constraint,
        fixed=fixed,
        effort=MappingEffort.of(spec.effort),
        pipeline=spec.strategies.build_pipeline(),
    )
    assert result.guaranteed_throughput >= app.guarantee


@pytest.mark.parametrize("kind", sorted(ARCHES))
def test_random_churn_never_overcommits(kind, corpora, tmp_path):
    builds = corpora[kind]
    store = ArtifactStore(tmp_path / "artifacts")
    manager = PlatformManager(ARCHES[kind], store=store)
    for _, build in builds:
        manager.register_library(build.key, build.library)

    rng = random.Random(20110314)
    by_id = {}  # app_id -> spec
    rejections = 0
    for _ in range(30):
        if by_id and rng.random() < 0.4:
            app_id = rng.choice(sorted(by_id))
            manager.depart(app_id, migrate=rng.random() < 0.5)
            del by_id[app_id]
        else:
            spec, _ = rng.choice(builds)
            try:
                decision = manager.admit(spec)
                by_id[decision["app_id"]] = spec
            except AdmissionError:
                rejections += 1
        assert_never_overcommitted(manager)
    assert manager.counters["rejections"] == rejections

    # invariant 2 on whatever survived the churn (bounded for speed)
    for app in manager.apps()[:2]:
        assert_guarantee_is_real(manager, by_id[app.app_id], app)

    # invariant 3: the journaled history replays byte-identically
    replayed = PlatformManager.open(store=store)
    assert replayed.state_digest() == manager.state_digest()


@pytest.mark.parametrize("kind", sorted(ARCHES))
def test_constrained_admissions_pick_satisfying_points(
    kind, corpora, tmp_path
):
    """Constraint-carrying libraries only ever admit meeting points."""
    base = corpora[kind][0][0]
    build0 = corpora[kind][0][1]
    throughputs = [p.throughput for p in build0.library.points]
    best = max(throughputs)
    if best <= throughputs[0]:
        pytest.skip("one-point front: no constraint can discriminate")
    constraint = (throughputs[0] + best) / 2
    spec = flow_specs(
        "all", 4, 11, ARCHES[kind], constraint=constraint
    )[0]
    assert spec.name == base.name
    build = build_library(spec)

    manager = PlatformManager(ARCHES[kind])
    manager.register_library(build.key, build.library)
    decision = manager.admit(spec)
    app = manager.apps()[0]
    assert app.point.constraint_met
    assert app.guarantee >= constraint
    assert decision["analyses"] == 0
    assert_never_overcommitted(manager)
