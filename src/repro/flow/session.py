"""FlowSession: persistable, resumable, batch-servable flow runs.

A :class:`FlowSession` executes a :class:`~repro.flow.spec.FlowSpec`
inside a *workspace* directory.  Every stage -- building each
application model, instantiating the architecture, mapping each
use-case, folding the use-case union -- persists its result as a
canonical artifact (:mod:`repro.artifacts`) keyed by the content hashes
of :mod:`repro.flow.fingerprint`.  On a re-run, any stage whose input
fingerprints are unchanged is *resumed*: the artifact is loaded instead
of recomputed, and the stage record says so.  Nothing in the session is
keyed by wall-clock or process identity, so resume works across
processes and machines sharing a workspace.

Workspace layout::

    <workspace>/
      artifacts/<kind>/<key>.json   canonical artifacts (content-keyed)
      sessions/<spec-name>.json     last session report per scenario
      batch-report.json             last `repro batch` report

:func:`run_batch` executes many specs against one shared workspace,
fanning sessions out over the same deterministic execution backend
(:mod:`repro.flow.backend` -- threads or worker processes) plumbing
the exploration engine uses.  Artifacts are canonical and
content-keyed, so a concurrent batch
writes a byte-identical ``artifacts/`` tree to a sequential one (the
session and batch reports embed wall-clock timings and necessarily
differ), and a second batch over the same specs resumes nearly
everything.

The design-time/run-time split of Weichslgartner et al. (PAPERS.md) is
the template: mapping artifacts are computed once at design time and
consumed later -- here by resumed sessions, shared evaluation caches
(:class:`~repro.artifacts.store.PersistentEvaluationCache`) and batch
reports.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from fractions import Fraction
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, \
    Union

import repro.artifacts.codecs  # noqa: F401  (registers the codecs)
from repro.artifacts.schema import (
    artifact_digest,
    canonical_json,
    from_payload,
    register,
    to_payload,
)
from repro.artifacts.store import (
    ArtifactStore,
    PersistentEvaluationCache,
    atomic_write_text,
)
from repro.exceptions import ReproError
from repro.flow.backend import (
    ExecutionBackend,
    as_backend,
    backend_task,
)
from repro.flow.fingerprint import (
    application_fingerprint,
    architecture_fingerprint,
    evaluation_key,
)
from repro.flow.spec import AppSpec, FlowSpec, load_flow_spec
from repro.flow.usecases import UseCaseMapping, build_use_case_mapping
from repro.mapping.flow import MappingEffort, map_application
from repro.mapping.spec import MappingResult

#: Status of a stage that ran its computation.
COMPUTED = "computed"
#: Status of a stage satisfied by an existing artifact.
RESUMED = "resumed"

#: Stage progress observer: called as ``progress("start", stage, None)``
#: when a stage begins and ``progress("finish", stage, record)`` when it
#: completes (``record`` is the finished :class:`StageRecord`, so the
#: observer sees whether the stage computed or resumed and how long it
#: took).  Observers run on the session's thread; exceptions propagate
#: and abort the run.  This is how the flow service reports per-stage
#: status for in-flight jobs.
ProgressCallback = Callable[[str, str, Optional["StageRecord"]], None]


def _filename_safe(name: str) -> str:
    """Spec names come from user documents; flatten anything that could
    escape the workspace (separators, leading dots) before using one as
    a report file name."""
    cleaned = "".join(
        c if c.isalnum() or c in "._-" else "_" for c in name
    )
    return cleaned.lstrip(".") or "scenario"


@dataclass
class StageRecord:
    """One stage of a session: what ran (or resumed), where, how long."""

    stage: str
    kind: str
    key: str
    status: str
    seconds: float
    path: str

    @property
    def resumed(self) -> bool:
        return self.status == RESUMED


@dataclass
class SessionResult:
    """Everything one FlowSession run produced (or resumed)."""

    spec_name: str
    workspace: str
    stages: List[StageRecord] = field(default_factory=list)
    mappings: Dict[str, MappingResult] = field(default_factory=dict)
    use_cases: Optional[UseCaseMapping] = None

    # ------------------------------------------------------------------
    # resume accounting (the counters the acceptance tests assert on)
    # ------------------------------------------------------------------
    @property
    def computed_stages(self) -> Tuple[str, ...]:
        return tuple(s.stage for s in self.stages if not s.resumed)

    @property
    def resumed_stages(self) -> Tuple[str, ...]:
        return tuple(s.stage for s in self.stages if s.resumed)

    def resume_rate(self) -> float:
        if not self.stages:
            return 0.0
        return len(self.resumed_stages) / len(self.stages)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def guarantee_of(self, use_case: str) -> Fraction:
        return self.mappings[use_case].guaranteed_throughput

    def guarantees(self) -> Dict[str, Fraction]:
        return {
            name: result.guaranteed_throughput
            for name, result in self.mappings.items()
        }

    def constraints_met(self) -> bool:
        return all(r.constraint_met for r in self.mappings.values())

    def summary(self) -> str:
        width = max([len(s.stage) for s in self.stages] + [len("stage")])
        lines = [
            f"session {self.spec_name!r} "
            f"({len(self.resumed_stages)}/{len(self.stages)} stage(s) "
            "resumed):"
        ]
        for record in self.stages:
            lines.append(
                f"  {record.stage:<{width}}  {record.status:<8} "
                f"{record.seconds * 1000:8.1f} ms"
            )
        for name, result in sorted(self.mappings.items()):
            met = "" if result.constraint_met else "  (constraint MISSED)"
            lines.append(
                f"  {name}: guaranteed "
                f"{float(result.guaranteed_throughput * 1e6):.4f} "
                f"iterations/Mcycle{met}"
            )
        return "\n".join(lines)


class FlowSession:
    """Runs one FlowSpec inside a workspace, resuming unchanged stages."""

    def __init__(
        self,
        workspace: Union[str, Path],
        spec: Union[FlowSpec, str, Path],
        store: Optional[ArtifactStore] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        if not isinstance(spec, FlowSpec):
            spec = load_flow_spec(spec)
        self.spec = spec
        self.workspace = Path(workspace)
        self.store = (
            store
            if store is not None
            else ArtifactStore(self.workspace / "artifacts")
        )
        self.progress = progress

    # ------------------------------------------------------------------
    # durable DSE cache sharing the session's workspace
    # ------------------------------------------------------------------
    def evaluation_cache(self) -> PersistentEvaluationCache:
        """A process-durable cache for exploration over this workspace.

        Hand it to :class:`repro.flow.dse.Evaluator` /
        :func:`repro.flow.dse.explore_design_space`; outcomes persist as
        ``evaluation-outcome`` artifacts, so a cold process re-sweeping
        the same design space performs zero mapping analyses.
        """
        return PersistentEvaluationCache(self.store)

    # ------------------------------------------------------------------
    # the run
    # ------------------------------------------------------------------
    def run(self) -> SessionResult:
        """Execute (or resume) every stage; writes the session report."""
        result = SessionResult(
            spec_name=self.spec.name, workspace=str(self.workspace)
        )

        apps = []
        for app_spec in self.spec.apps:
            app = self._stage(
                result,
                stage=f"application:{app_spec.effective_name}",
                kind="application",
                key=self._app_key(app_spec),
                compute=lambda app_spec=app_spec: self.spec.build_app(
                    app_spec
                ),
            )
            apps.append(app)

        arch = self._stage(
            result,
            stage="architecture",
            kind="architecture",
            key=self._arch_key(),
            compute=self.spec.build_architecture,
        )

        effort = MappingEffort.of(self.spec.effort)
        strategy = self.spec.strategies
        arch_fp = architecture_fingerprint(arch)
        mapping_keys: List[str] = []
        for app_spec, app in zip(self.spec.apps, apps):
            constraint = self.spec.constraint_for(app_spec)
            fixed = self.spec.fixed_for(app_spec)
            key = evaluation_key(
                application_fingerprint(app),
                arch_fp,
                constraint,
                fixed,
                f"{effort.name}:{effort.max_buffer_rounds}"
                f":{effort.max_iterations}",
                strategy=strategy.cache_token(),
            )
            mapping_keys.append(key)
            mapping_result = self._stage(
                result,
                stage=f"mapping:{app_spec.effective_name}",
                kind="mapping-result",
                key=key,
                compute=lambda app=app, constraint=constraint,
                fixed=fixed: map_application(
                    app,
                    arch,
                    constraint=constraint,
                    fixed=fixed,
                    effort=effort,
                    pipeline=strategy.build_pipeline(),
                ),
            )
            result.mappings[app_spec.effective_name] = mapping_result

        if self.spec.multi:
            union_key = artifact_digest(
                {
                    "kind": "use-case-union-key",
                    "architecture": arch_fp,
                    "mappings": sorted(mapping_keys),
                }
            )
            result.use_cases = self._stage(
                result,
                stage="use-cases",
                kind="use-case-mapping",
                key=union_key,
                compute=lambda: build_use_case_mapping(
                    arch, dict(result.mappings)
                ),
            )

        self._write_report(result)
        return result

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _stage(
        self,
        result: SessionResult,
        stage: str,
        kind: str,
        key: str,
        compute: Callable[[], Any],
    ) -> Any:
        """Load the stage artifact if present, else compute and persist.

        Computed results are normalized through their own payload, so a
        session always returns exactly what the artifact stores -- a
        computed stage and a resumed stage are indistinguishable to the
        caller (functional models, which artifacts do not carry, are
        dropped either way; sessions are analysis-side by design).
        """
        if self.progress is not None:
            self.progress("start", stage, None)
        start = time.perf_counter()
        path = self.store.path_for(kind, key)
        payload = self.store.get(kind, key)
        if payload is not None:
            status = RESUMED
        else:
            payload = to_payload(compute())
            path = self.store.put(kind, key, payload)
            status = COMPUTED
        obj = from_payload(payload)
        record = StageRecord(
            stage=stage,
            kind=kind,
            key=key,
            status=status,
            seconds=time.perf_counter() - start,
            path=str(path.relative_to(self.workspace)),
        )
        result.stages.append(record)
        if self.progress is not None:
            self.progress("finish", stage, record)
        return obj

    def _app_key(self, app_spec: AppSpec) -> str:
        """Content key of the application-build stage: the app spec."""
        key = {
            "kind": "app-stage-key",
            "sequence": app_spec.sequence,
            "quality": app_spec.quality,
            "frames": app_spec.frames,
            "name": app_spec.effective_name if self.spec.multi
            or app_spec.name else "",
        }
        if app_spec.scenario is not None:
            # a generated workload's build identity is its scenario
            # table; omitted for case-study apps so their stage keys
            # (and resumable workspaces) are unchanged
            key["scenario"] = app_spec.scenario.to_table()
        return artifact_digest(key)

    def _arch_key(self) -> str:
        # asdict covers every ArchSpec field (canonical encoding sorts
        # keys, so the digest matches the hand-rolled original); a new
        # template knob cannot be left out of the stage identity
        return artifact_digest(
            {
                "kind": "arch-stage-key",
                **dataclasses.asdict(self.spec.architecture),
            }
        )

    def _write_report(self, result: SessionResult) -> None:
        directory = self.workspace / "sessions"
        directory.mkdir(parents=True, exist_ok=True)
        target = directory / f"{_filename_safe(self.spec.name)}.json"
        atomic_write_text(
            target, canonical_json(to_payload(result)) + "\n"
        )


def execute_spec(
    spec: Union[FlowSpec, str, Path],
    workspace: Union[str, Path],
    store: Optional[ArtifactStore] = None,
    progress: Optional[ProgressCallback] = None,
) -> SessionResult:
    """Run (or resume) one FlowSpec as a session over ``workspace``.

    The single execution entry point shared by ``repro run
    --workspace``, the batch runner and the flow service scheduler
    (:mod:`repro.service`): parse the spec if needed, run every stage
    against the workspace's :class:`~repro.artifacts.store.ArtifactStore`
    (pass ``store`` to share one instance across callers) and report
    stage-level progress through ``progress``.
    """
    session = FlowSession(workspace, spec, store=store, progress=progress)
    return session.run()


# ----------------------------------------------------------------------
# batch execution
# ----------------------------------------------------------------------
@dataclass
class BatchEntry:
    """Outcome of one spec within a batch."""

    spec: str
    name: str
    ok: bool
    error: Optional[str] = None
    stages_total: int = 0
    stages_resumed: int = 0
    elapsed_seconds: float = 0.0
    guarantees: Dict[str, str] = field(default_factory=dict)
    constraints_met: Optional[bool] = None


@dataclass
class BatchReport:
    """Machine-readable outcome of one ``repro batch`` invocation."""

    entries: List[BatchEntry] = field(default_factory=list)
    jobs: int = 1
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return all(entry.ok for entry in self.entries)

    @property
    def stages_total(self) -> int:
        return sum(entry.stages_total for entry in self.entries)

    @property
    def stages_resumed(self) -> int:
        return sum(entry.stages_resumed for entry in self.entries)

    def resume_rate(self) -> float:
        total = self.stages_total
        return self.stages_resumed / total if total else 0.0

    def as_table(self) -> str:
        width = max([len(e.name) for e in self.entries] + [len("scenario")])
        header = (
            f"{'scenario':<{width}} {'status':>8} {'stages':>7} "
            f"{'resumed':>8} {'elapsed':>9}"
        )
        lines = [header, "-" * len(header)]
        for e in self.entries:
            status = "ok" if e.ok else "FAILED"
            lines.append(
                f"{e.name:<{width}} {status:>8} {e.stages_total:>7} "
                f"{e.stages_resumed:>8} {e.elapsed_seconds:>8.2f}s"
            )
            if e.error:
                lines.append(f"  error: {e.error}")
        lines.append(
            f"batch: {self.stages_resumed}/{self.stages_total} stage(s) "
            f"resumed ({self.resume_rate():.0%}), "
            f"{self.elapsed_seconds:.2f} s with {self.jobs} job(s)"
        )
        return "\n".join(lines)


def _batch_entry(
    item: Union[FlowSpec, str, Path],
    workspace: Path,
    store: Optional[ArtifactStore] = None,
) -> BatchEntry:
    """Run one spec of a batch; failures land in the entry."""
    source = item.name if isinstance(item, FlowSpec) else str(item)
    begin = time.perf_counter()
    try:
        outcome = execute_spec(item, workspace, store=store)
    except Exception as error:  # noqa: BLE001 - a bad spec must be
        # reported in its entry, never abort the sibling sessions
        detail = str(error) if isinstance(error, ReproError) else \
            f"{type(error).__name__}: {error}"
        return BatchEntry(
            spec=source,
            name=source,
            ok=False,
            error=detail,
            elapsed_seconds=time.perf_counter() - begin,
        )
    return BatchEntry(
        spec=source,
        name=outcome.spec_name,
        ok=True,
        stages_total=len(outcome.stages),
        stages_resumed=len(outcome.resumed_stages),
        elapsed_seconds=time.perf_counter() - begin,
        guarantees={
            name: str(value)
            for name, value in sorted(outcome.guarantees().items())
        },
        constraints_met=outcome.constraints_met(),
    )


@backend_task("flow.batch-entry")
def _batch_entry_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-process side of one batch spec.

    The spec crosses the process boundary as its
    :meth:`~repro.flow.spec.FlowSpec.to_document` document (or as the
    path the caller named); the entry comes back as its canonical
    payload.  Artifacts land in the shared workspace -- idempotent
    content-addressed writes, so concurrent workers need no
    coordination.
    """
    if "spec_path" in payload:
        item: Union[FlowSpec, str] = payload["spec_path"]
    else:
        item = FlowSpec.from_dict(payload["document"])
    entry = _batch_entry(item, Path(payload["workspace"]))
    return to_payload(entry)


@backend_task("flow.execute-spec")
def _execute_spec_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker-process side of one ``repro run --workspace`` session."""
    spec = FlowSpec.from_dict(payload["document"])
    result = execute_spec(spec, payload["workspace"])
    return to_payload(result)


def execute_spec_on(
    spec: Union[FlowSpec, str, Path],
    workspace: Union[str, Path],
    backend: Union[None, str, ExecutionBackend] = None,
) -> SessionResult:
    """Run one spec as a session on an execution backend.

    ``"thread"`` (or ``None``) is :func:`execute_spec` in this
    process.  ``"process"`` ships the spec document to a worker
    process and reassembles the :class:`SessionResult` from the
    returned canonical payload; the artifacts land in the shared
    workspace either way, byte-identical across backends.  A backend
    given by name is owned (and closed) here; an
    :class:`~repro.flow.backend.ExecutionBackend` instance stays the
    caller's to close.
    """
    owned = not isinstance(backend, ExecutionBackend)
    engine = as_backend(backend)
    try:
        if engine.name != "process":
            return execute_spec(spec, workspace)
        if not isinstance(spec, FlowSpec):
            spec = load_flow_spec(spec)
        payload = {
            "document": spec.to_document(),
            "workspace": str(Path(workspace)),
        }
        future = engine.submit_task("flow.execute-spec", payload)
        return from_payload(future.result())
    finally:
        if owned:
            engine.close()


def run_batch(
    specs: Sequence[Union[FlowSpec, str, Path]],
    workspace: Union[str, Path],
    jobs: int = 1,
    backend: Union[None, str, ExecutionBackend] = None,
) -> BatchReport:
    """Run many FlowSpec scenarios against one shared workspace.

    Sessions fan out over an execution backend
    (:mod:`repro.flow.backend`; ``jobs == 1`` on the default thread
    backend is strictly serial).  ``backend="process"`` runs each
    session in a worker process -- pure-Python analyses then scale
    with cores -- shipping specs as documents and entries as canonical
    payloads.  All sessions share one workspace; concurrent writers of
    the same content-keyed artifact are safe (atomic rename, identical
    canonical bytes), so the workspace is byte-identical however and
    wherever the batch is scheduled.  A failing spec is reported in
    its entry rather than aborting the batch.  The report is also
    written to ``<workspace>/batch-report.json``.
    """
    if not specs:
        raise ReproError("batch needs at least one flow spec")
    workspace = Path(workspace)
    store = ArtifactStore(workspace / "artifacts")
    start = time.perf_counter()

    owned = not isinstance(backend, ExecutionBackend)
    engine = as_backend(backend, jobs)
    try:
        if engine.name == "process":
            payloads: List[Dict[str, Any]] = []
            for item in specs:
                if isinstance(item, FlowSpec):
                    payloads.append(
                        {
                            "document": item.to_document(),
                            "workspace": str(workspace),
                        }
                    )
                else:
                    payloads.append(
                        {
                            "spec_path": str(item),
                            "workspace": str(workspace),
                        }
                    )
            entries = [
                from_payload(payload)
                for payload in engine.run_tasks_ordered(
                    "flow.batch-entry", payloads
                )
            ]
        else:
            entries = engine.map_ordered(
                lambda item: _batch_entry(item, workspace, store=store),
                list(specs),
            )
    finally:
        if owned:
            engine.close()
    report = BatchReport(
        entries=entries,
        jobs=engine.jobs,
        elapsed_seconds=time.perf_counter() - start,
    )
    atomic_write_text(
        workspace / "batch-report.json",
        canonical_json(to_payload(report)) + "\n",
    )
    return report


# ----------------------------------------------------------------------
# codecs for the session/batch result types
# ----------------------------------------------------------------------
def _encode_stage(record: StageRecord) -> Dict[str, Any]:
    return {
        "stage": record.stage,
        "artifact_kind": record.kind,  # "kind" is the envelope's key
        "key": record.key,
        "status": record.status,
        "seconds": record.seconds,
        "path": record.path,
    }


def _decode_stage(payload: Dict[str, Any]) -> StageRecord:
    return StageRecord(
        stage=payload["stage"],
        kind=payload["artifact_kind"],
        key=payload["key"],
        status=payload["status"],
        seconds=payload["seconds"],
        path=payload["path"],
    )


register("stage-record", StageRecord, _encode_stage, _decode_stage)


def _encode_session(result: SessionResult) -> Dict[str, Any]:
    return {
        "spec_name": result.spec_name,
        "workspace": result.workspace,
        "stages": [to_payload(s) for s in result.stages],
        "mappings": {
            name: to_payload(mapping)
            for name, mapping in result.mappings.items()
        },
        "use_cases": (
            None
            if result.use_cases is None
            else to_payload(result.use_cases)
        ),
    }


def _decode_session(payload: Dict[str, Any]) -> SessionResult:
    return SessionResult(
        spec_name=payload["spec_name"],
        workspace=payload["workspace"],
        stages=[from_payload(p) for p in payload["stages"]],
        mappings={
            name: from_payload(p)
            for name, p in payload["mappings"].items()
        },
        use_cases=(
            None
            if payload["use_cases"] is None
            else from_payload(payload["use_cases"])
        ),
    )


register(
    "session-result", SessionResult, _encode_session, _decode_session
)


def _encode_batch_entry(entry: BatchEntry) -> Dict[str, Any]:
    return {
        "spec": entry.spec,
        "name": entry.name,
        "ok": entry.ok,
        "error": entry.error,
        "stages_total": entry.stages_total,
        "stages_resumed": entry.stages_resumed,
        "elapsed_seconds": entry.elapsed_seconds,
        "guarantees": dict(entry.guarantees),
        "constraints_met": entry.constraints_met,
    }


def _decode_batch_entry(payload: Dict[str, Any]) -> BatchEntry:
    return BatchEntry(
        spec=payload["spec"],
        name=payload["name"],
        ok=payload["ok"],
        error=payload["error"],
        stages_total=payload["stages_total"],
        stages_resumed=payload["stages_resumed"],
        elapsed_seconds=payload["elapsed_seconds"],
        guarantees=dict(payload["guarantees"]),
        constraints_met=payload["constraints_met"],
    )


register(
    "batch-entry", BatchEntry, _encode_batch_entry, _decode_batch_entry
)


def _encode_batch(report: BatchReport) -> Dict[str, Any]:
    return {
        "entries": [to_payload(e) for e in report.entries],
        "jobs": report.jobs,
        "elapsed_seconds": report.elapsed_seconds,
        "ok": report.ok,
        "stages_total": report.stages_total,
        "stages_resumed": report.stages_resumed,
        "resume_rate": report.resume_rate(),
    }


def _decode_batch(payload: Dict[str, Any]) -> BatchReport:
    return BatchReport(
        entries=[from_payload(p) for p in payload["entries"]],
        jobs=payload["jobs"],
        elapsed_seconds=payload["elapsed_seconds"],
    )


register("batch-report", BatchReport, _encode_batch, _decode_batch)
