"""Generic binding cost functions.

Section 5.1: "SDF3 uses generic cost functions to steer the binding of the
application to the architecture based on; processing, memory usage,
communication, and latency."  :func:`binding_cost` scores placing one actor
on one tile given the partial binding built so far; the binder greedily
minimizes it.  All terms are normalized to comparable magnitudes so the
default weights behave sensibly; weights allow callers to bias the search
(e.g. memory-tight platforms).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.appmodel.model import ApplicationModel
from repro.arch.platform import ArchitectureModel
from repro.arch.noc import SDMNoC
from repro.sdf.repetition import repetition_vector


@dataclass(frozen=True)
class CostWeights:
    """Relative importance of the four cost dimensions."""

    processing: float = 1.0
    memory: float = 0.3
    communication: float = 1.0
    latency: float = 0.3


def _processing_term(
    app: ApplicationModel,
    q: Dict[str, int],
    actor: str,
    tile_name: str,
    pe_type: str,
    load: Dict[str, int],
) -> float:
    """Projected tile load (cycles per graph iteration) after placing the
    actor, normalized by the heaviest single actor workload."""
    wcet = app.wcet(actor, pe_type)
    new_load = load.get(tile_name, 0) + q[actor] * wcet
    heaviest = max(
        q[a.name] * impl.wcet
        for a in app.graph
        for impl in app.implementations_of(a.name)
    )
    return new_load / max(heaviest, 1)


def _memory_term(
    app: ApplicationModel,
    arch: ArchitectureModel,
    actor: str,
    tile_name: str,
    pe_type: str,
    memory_used: Dict[str, int],
) -> float:
    """Projected memory utilisation of the tile (0..1+)."""
    impl = app.implementation_for(actor, pe_type)
    tile = arch.tile(tile_name)
    used = memory_used.get(tile_name, 0) + impl.metrics.memory.total_bytes
    return used / max(tile.memory_capacity, 1)


def _communication_term(
    app: ApplicationModel,
    q: Dict[str, int],
    actor: str,
    tile_name: str,
    binding: Dict[str, str],
) -> float:
    """Bytes per iteration that would cross the interconnect, relative to
    the actor's total traffic (0 = all neighbours co-located)."""
    crossing = 0
    total = 0
    for edge in app.graph.explicit_edges():
        if actor not in (edge.src, edge.dst):
            continue
        other = edge.dst if edge.src == actor else edge.src
        bytes_per_iteration = (
            q[edge.src] * edge.production * edge.token_size
        )
        total += bytes_per_iteration
        other_tile = binding.get(other)
        if other_tile is not None and other_tile != tile_name:
            crossing += bytes_per_iteration
    if total == 0:
        return 0.0
    return crossing / total


def _latency_term(
    arch: ArchitectureModel,
    app: ApplicationModel,
    actor: str,
    tile_name: str,
    binding: Dict[str, str],
) -> float:
    """Average hop distance to already-bound communication partners
    (NoC only; FSL links are distance-independent)."""
    noc = arch.interconnect if isinstance(arch.interconnect, SDMNoC) else None
    if noc is None:
        return 0.0
    distances = []
    for edge in app.graph.explicit_edges():
        if actor not in (edge.src, edge.dst):
            continue
        other = edge.dst if edge.src == actor else edge.src
        other_tile = binding.get(other)
        if other_tile is not None and other_tile != tile_name:
            distances.append(noc.hop_distance(tile_name, other_tile))
    if not distances:
        return 0.0
    diameter = max(noc.columns + noc.rows - 2, 1)
    return (sum(distances) / len(distances)) / diameter


def binding_cost(
    app: ApplicationModel,
    arch: ArchitectureModel,
    actor: str,
    tile_name: str,
    pe_type: str,
    binding: Dict[str, str],
    load: Dict[str, int],
    memory_used: Dict[str, int],
    weights: Optional[CostWeights] = None,
) -> float:
    """Cost of binding ``actor`` to ``tile_name`` given the partial state.

    ``binding`` maps already-placed actors to tiles; ``load`` and
    ``memory_used`` track per-tile cycles-per-iteration and bytes.
    """
    w = weights or CostWeights()
    q = repetition_vector(app.graph)
    return (
        w.processing
        * _processing_term(app, q, actor, tile_name, pe_type, load)
        + w.memory
        * _memory_term(app, arch, actor, tile_name, pe_type, memory_used)
        + w.communication
        * _communication_term(app, q, actor, tile_name, binding)
        + w.latency * _latency_term(arch, app, actor, tile_name, binding)
    )
