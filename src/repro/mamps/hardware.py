"""Hardware netlist generation (MHS-style).

MAMPS emits a Xilinx Platform Studio hardware description; this module
generates the equivalent text: one instance block per component (processor,
memories, NI, peripherals, CA) and the interconnect instances (one FSL FIFO
per connection, or the NoC routers with their per-connection wire
programming).  The format intentionally mimics the MHS "BEGIN/PARAMETER/
PORT/END" shape so the artifact is recognizable, and it doubles as the
platform's authoritative structural record: :func:`parse_netlist` reads the
instances back for verification.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.appmodel.model import ApplicationModel
from repro.arch.interconnect import FSLInterconnect
from repro.arch.noc import SDMNoC
from repro.arch.platform import ArchitectureModel
from repro.mamps.memory_map import TileMemoryMap
from repro.mapping.spec import Mapping


def _instance(kind: str, name: str, parameters: Dict[str, object],
              ports: Dict[str, str]) -> str:
    lines = [f"BEGIN {kind}", f" PARAMETER INSTANCE = {name}"]
    for key, value in parameters.items():
        lines.append(f" PARAMETER {key} = {value}")
    for port, net in ports.items():
        lines.append(f" PORT {port} = {net}")
    lines.append("END")
    return "\n".join(lines)


def generate_netlist(
    app: ApplicationModel,
    arch: ArchitectureModel,
    mapping: Mapping,
    memory_maps: Dict[str, TileMemoryMap],
) -> str:
    """Generate the MHS-style netlist for the mapped platform.

    Only tiles that actually host actors are instantiated ("Template
    components are instantiated and connected as required by the
    application", Section 5.2).
    """
    blocks: List[str] = [
        f"# MAMPS platform netlist for application '{app.name}'",
        f"# architecture template: {arch.name}",
        "",
        _instance(
            "clock_generator", "sys_clk",
            {"C_CLK_FREQ": 100_000_000}, {"CLKOUT0": "clk_100"},
        ),
    ]

    for tile_name in mapping.used_tiles():
        tile = arch.tile(tile_name)
        memory_map = memory_maps[tile_name]
        if tile.processor is not None:
            blocks.append(
                _instance(
                    tile.processor.name, f"{tile_name}_pe",
                    {
                        "HW_VER": "8.00.a",
                        "C_ROLE": tile.role,
                    },
                    {"CLK": "clk_100"},
                )
            )
        blocks.append(
            _instance(
                "lmb_bram", f"{tile_name}_imem",
                {
                    "C_SIZE_BYTES": tile.instruction_memory.capacity_bytes,
                    "C_USED_BYTES": memory_map.instruction_bytes,
                },
                {"LMB": f"{tile_name}_ilmb"},
            )
        )
        blocks.append(
            _instance(
                "lmb_bram", f"{tile_name}_dmem",
                {
                    "C_SIZE_BYTES": tile.data_memory.capacity_bytes,
                    "C_USED_BYTES": memory_map.data_bytes,
                },
                {"LMB": f"{tile_name}_dlmb"},
            )
        )
        blocks.append(
            _instance(
                "network_interface", f"{tile_name}_ni",
                {"C_FIFO_DEPTH": tile.network_interface.fifo_depth_words},
                {"FSL": f"{tile_name}_fsl"},
            )
        )
        if tile.has_ca:
            blocks.append(
                _instance(
                    "communication_assist", f"{tile_name}_ca",
                    {
                        "C_SETUP_CYCLES":
                            tile.communication_assist.setup_cycles,
                        "C_CYCLES_PER_WORD":
                            tile.communication_assist.cycles_per_word,
                    },
                    {"MEM": f"{tile_name}_dlmb", "NI": f"{tile_name}_fsl"},
                )
            )
        for peripheral in tile.peripherals:
            blocks.append(
                _instance(
                    f"xps_{peripheral.name}", f"{tile_name}_{peripheral.name}",
                    {}, {"BUS": f"{tile_name}_plb"},
                )
            )

    interconnect = arch.interconnect
    if isinstance(interconnect, FSLInterconnect):
        for connection in interconnect.allocated_connections():
            blocks.append(
                _instance(
                    "fsl_v20", f"link_{connection.name}",
                    {"C_FSL_DEPTH": interconnect.fifo_depth_words},
                    {
                        "FSL_M": f"{connection.src_tile}_fsl",
                        "FSL_S": f"{connection.dst_tile}_fsl",
                    },
                )
            )
    elif isinstance(interconnect, SDMNoC):
        for x in range(interconnect.columns):
            for y in range(interconnect.rows):
                blocks.append(
                    _instance(
                        "sdm_router", f"router_{x}_{y}",
                        {
                            "C_WIRES_PER_LINK": interconnect.wires_per_link,
                            "C_FLOW_CONTROL": int(interconnect.flow_control),
                        },
                        {"NI": f"router_{x}_{y}_ni"},
                    )
                )
        for allocation in interconnect.allocations():
            path = "->".join(f"({x},{y})" for x, y in allocation.path)
            blocks.append(
                _instance(
                    "sdm_connection",
                    f"conn_{allocation.connection.name}",
                    {
                        "C_WIRES": allocation.wires,
                        "C_PATH": f'"{path}"',
                    },
                    {},
                )
            )

    return "\n\n".join(blocks) + "\n"


def parse_netlist(text: str) -> List[Tuple[str, str]]:
    """Parse instance (kind, name) pairs back out of a generated netlist."""
    instances: List[Tuple[str, str]] = []
    kind = None
    for line in text.splitlines():
        line = line.strip()
        if line.startswith("BEGIN "):
            kind = line[len("BEGIN "):]
        elif line.startswith("PARAMETER INSTANCE = ") and kind is not None:
            instances.append((kind, line[len("PARAMETER INSTANCE = "):]))
            kind = None
    return instances
