"""Tests for the platform simulator (the FPGA stand-in).

The central property, tested here on a functional pipeline and reproduced
at scale by the Fig. 6 benchmarks: measured throughput is always at least
the analyzed worst-case guarantee, and approaches it when actors run at
their WCET.
"""

import pytest

from repro.appmodel import (
    ActorImplementation,
    ApplicationModel,
    FiringOutput,
    ImplementationMetrics,
    MemoryRequirements,
)
from repro.arch import architecture_from_template
from repro.exceptions import SimulationError
from repro.mamps import synthesize
from repro.mapping import map_application
from repro.sdf import SDFGraph

@pytest.fixture
def functional_app():
    """Same pipeline as tests/mamps/conftest.py, built locally."""
    g = SDFGraph("squares")
    g.add_actor("P", execution_time=400)
    g.add_actor("Q", execution_time=600)
    g.add_actor("R", execution_time=300)
    g.add_edge("pq", "P", "Q", token_size=4)
    g.add_edge("qr", "Q", "R", token_size=4)

    def p_fn(ctx):
        value = ctx.firing_index % 17
        return FiringOutput(outputs={"pq": [value]}, cycles=250 + value * 8)

    def q_fn(ctx):
        value = ctx.single("pq")
        return FiringOutput(outputs={"qr": [value * value]},
                            cycles=450 + (value % 5) * 10)

    def r_fn(ctx):
        ctx.state["sum"] = ctx.state.get("sum", 0) + ctx.single("qr")
        return FiringOutput(outputs={}, cycles=280)

    def impl(actor, wcet, fn):
        return ActorImplementation(
            actor=actor, pe_type="microblaze",
            metrics=ImplementationMetrics(
                wcet=wcet,
                memory=MemoryRequirements(2048, 1024),
            ),
            function=fn,
        )

    return ApplicationModel(
        graph=g,
        implementations=[
            impl("P", 400, p_fn), impl("Q", 600, q_fn), impl("R", 300, r_fn)
        ],
    )


def build_platform(app, tiles=3, interconnect="fsl", **map_kwargs):
    arch = architecture_from_template(tiles, interconnect)
    result = map_application(app, arch, **map_kwargs)
    simulator = synthesize(app, arch, result)
    return arch, result, simulator


class TestMeasurement:
    def test_measured_at_least_guaranteed(self, functional_app):
        _, result, simulator = build_platform(functional_app)
        measured = simulator.measure_throughput(iterations=40)
        assert measured.throughput >= result.guaranteed_throughput

    def test_measured_close_when_running_at_wcet(self, functional_app):
        """Force every firing to its WCET: measurement should sit within a
        few percent of the guarantee (the paper reports <1% margin for
        synthetic data; the residue is transient effects)."""
        for impl in functional_app.implementations:
            wcet = impl.wcet
            original = impl.function

            def at_wcet(ctx, original=original, wcet=wcet):
                output = original(ctx)
                return FiringOutput(outputs=output.outputs, cycles=wcet)

            impl.function = at_wcet
        _, result, simulator = build_platform(functional_app)
        measured = simulator.measure_throughput(iterations=40)
        assert measured.throughput >= result.guaranteed_throughput
        margin = float(
            measured.throughput / result.guaranteed_throughput - 1
        )
        assert margin < 0.05

    def test_noc_platform_runs(self, functional_app):
        _, result, simulator = build_platform(
            functional_app, tiles=3, interconnect="noc"
        )
        measured = simulator.measure_throughput(iterations=20)
        assert measured.throughput >= result.guaranteed_throughput

    def test_single_tile_platform_runs(self, functional_app):
        _, result, simulator = build_platform(functional_app, tiles=1)
        measured = simulator.measure_throughput(iterations=20)
        assert measured.throughput >= result.guaranteed_throughput

    def test_per_mega_cycle_unit(self, functional_app):
        _, _, simulator = build_platform(functional_app)
        measured = simulator.measure_throughput(iterations=10)
        assert measured.per_mega_cycle() == pytest.approx(
            float(measured.throughput) * 1e6
        )

    def test_warmup_excluded(self, functional_app):
        _, _, simulator = build_platform(functional_app)
        measured = simulator.measure_throughput(
            iterations=10, warmup_iterations=3
        )
        assert measured.warmup_iterations == 3
        assert measured.iterations == 10
        assert simulator.completed_iterations() >= 13


class TestFunctionalCorrectness:
    def test_token_values_computed_correctly(self, functional_app):
        """R accumulates squares of P's outputs, across the interconnect."""
        _, _, simulator = build_platform(functional_app)
        simulator.run_iterations(17)
        state_sum = simulator._states["R"].get("sum")
        fired = len(simulator.execution_time_records()["R"])
        assert fired >= 17
        expected = sum((i % 17) ** 2 for i in range(fired))
        assert state_sum == expected

    def test_execution_time_records(self, functional_app):
        _, _, simulator = build_platform(functional_app)
        simulator.run_iterations(5)
        records = simulator.execution_time_records()
        assert len(records["P"]) >= 5
        assert all(c <= 400 for c in records["P"])
        assert records["P"][0] == 250  # firing 0: value 0

    def test_traffic_accounting(self, functional_app):
        _, result, simulator = build_platform(functional_app)
        simulator.run_iterations(10)
        traffic = simulator.traffic()
        inter = [c.edge for c in result.mapping.inter_tile_channels()]
        for edge in inter:
            assert traffic.bytes_by_channel[edge] > 0
        assert traffic.total_bytes() >= 10 * 4 * len(inter) - 8 * len(inter)

    def test_reset_restarts_cleanly(self, functional_app):
        _, _, simulator = build_platform(functional_app)
        simulator.run_iterations(5)
        simulator.reset()
        assert simulator.now == 0
        simulator.run_iterations(3)
        assert simulator.completed_iterations() >= 3


class TestSoundnessChecks:
    def test_wcet_violation_caught(self, functional_app):
        functional_app.implementations[0].function = lambda ctx: FiringOutput(
            outputs={"pq": [1]}, cycles=1000  # above WCET 400
        )
        _, _, simulator = build_platform(functional_app)
        with pytest.raises(SimulationError, match="WCET"):
            simulator.run_iterations(2)

    def test_wrong_token_count_caught(self, functional_app):
        functional_app.implementations[0].function = lambda ctx: FiringOutput(
            outputs={"pq": [1, 2]}, cycles=100
        )
        _, _, simulator = build_platform(functional_app)
        with pytest.raises(SimulationError, match="produced"):
            simulator.run_iterations(2)

    def test_non_functional_app_rejected(self, functional_app):
        for impl in functional_app.implementations:
            impl.function = None
        arch = architecture_from_template(2)
        result = map_application(functional_app, arch)
        with pytest.raises(SimulationError, match="functional"):
            synthesize(functional_app, arch, result)
