#!/usr/bin/env python3
"""The paper's case study: the MJPEG decoder on a 5-tile MPSoC (Section 6).

Encodes a test sequence with the bundled MJPEG encoder, builds the Fig. 5
application model, runs the automated flow for both interconnects (FSL and
the SDM NoC), writes the generated MAMPS projects to ./generated/, and
prints the Fig. 6-style worst-case / expected / measured comparison plus
the Table 1 effort report.

Run:  python examples/mjpeg_flow.py [sequence]
      sequence in {gradient, photo, checkerboard, text, blobs, synthetic}
"""

import sys

from repro.appmodel import measure_execution_times
from repro.arch import architecture_from_template
from repro.flow import DesignFlow, compare_throughput, format_throughput_table
from repro.flow.report import expected_throughput
from repro.mjpeg import (
    build_mjpeg_application,
    encode_sequence,
    synthetic_sequence,
    test_set_sequences,
)


def load_sequence(name: str):
    if name == "synthetic":
        return synthetic_sequence(n_frames=2), 90
    sequences = test_set_sequences(n_frames=2)
    if name not in sequences:
        raise SystemExit(
            f"unknown sequence {name!r}; pick from "
            f"{sorted(sequences) + ['synthetic']}"
        )
    return sequences[name], 75


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "gradient"
    frames, quality = load_sequence(name)
    encoded = encode_sequence(frames, quality=quality)
    print(
        f"sequence {name!r}: {encoded.n_frames} frame(s) of "
        f"{encoded.width}x{encoded.height}, {encoded.blocks_per_mcu} real "
        f"blocks per MCU, {len(encoded.data)} bytes encoded"
    )

    app = build_mjpeg_application(encoded)
    # Measured execution times on this sequence feed the 'expected' model.
    measured_times = measure_execution_times(
        app, iterations=encoded.total_mcus
    )

    comparisons = []
    for interconnect in ("fsl", "noc"):
        arch = architecture_from_template(5, interconnect)
        # VLD reads the input stream -> pin it to the master tile, which
        # owns the board peripherals (Section 4).
        flow = DesignFlow(app, arch, fixed={"VLD": "tile0"})
        result = flow.run(iterations=24, warmup_iterations=4)
        expected = expected_throughput(
            app, arch, result.mapping_result, measured_times
        )
        comparisons.append(
            compare_throughput(
                f"{name} ({interconnect})",
                worst_case=result.guaranteed_throughput,
                expected=expected,
                measured=result.measured_throughput,
            )
        )
        root = result.project.write_to("generated")
        print(f"  {interconnect}: project written to {root}")

    print()
    print("=== Fig. 6-style comparison (MCUs per Mcycle) ===")
    print(format_throughput_table(comparisons, unit_name="MCU/Mcycle"))
    print()
    for comparison in comparisons:
        assert comparison.conservative(), "guarantee violated!"
    print("worst-case bound is conservative on both platforms")


if __name__ == "__main__":
    main()
