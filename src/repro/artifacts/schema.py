"""The versioned artifact envelope and the codec registry.

Every result the flow produces can leave the Python process as an
*artifact*: a JSON document wrapped in a small versioned envelope::

    {"schema_version": 1, "kind": "mapping-result", ...body...}

The envelope carries exactly two reserved keys.  ``schema_version`` is
the compatibility contract: a reader refuses documents written by a
*newer* schema (it cannot know what it would silently drop) and accepts
equal versions; when the schema evolves incompatibly the version is
bumped and the old decoder kept for one release (see
``docs/artifacts.md`` for the policy).  ``kind`` names the codec that
produced the body, so :func:`from_payload` can reconstruct the domain
object without the caller knowing its type.

Encoding is *canonical*: :func:`canonical_json` sorts keys, uses compact
separators and forbids NaN, so the same domain object always serializes
to the same bytes.  That property is what makes artifacts
content-addressable -- :func:`artifact_digest` over the canonical bytes
is a stable identity -- and what lets ``repro batch`` guarantee
byte-identical workspaces regardless of worker count or scheduling.

Codecs register themselves with :func:`register` (see
:mod:`repro.artifacts.codecs`); :func:`to_payload` dispatches on the
object's exact type and :func:`from_payload` on the envelope's ``kind``.
"""

from __future__ import annotations

import hashlib
import json
from fractions import Fraction
from typing import Any, Callable, Dict, Optional, Tuple, Type

from repro.exceptions import ReproError

#: Version of the artifact schema this build reads and writes.
SCHEMA_VERSION = 1

#: Envelope keys no codec body may use.
RESERVED_KEYS = ("schema_version", "kind")


class ArtifactError(ReproError):
    """Raised for unserializable objects and malformed/foreign payloads."""


# ----------------------------------------------------------------------
# canonical encoding
# ----------------------------------------------------------------------
def canonical_json(payload: Dict[str, Any]) -> str:
    """Deterministic JSON text: sorted keys, compact, no NaN.

    Two payloads describing the same content always render to the same
    bytes, so equal artifacts can be compared (and deduplicated) without
    parsing.
    """
    try:
        return json.dumps(
            payload,
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=False,
            allow_nan=False,
        )
    except (TypeError, ValueError) as error:
        raise ArtifactError(
            f"payload is not canonically JSON-encodable: {error}"
        ) from None


def artifact_digest(payload: Dict[str, Any]) -> str:
    """Content address of a payload: SHA-256 of its canonical bytes."""
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")
    ).hexdigest()


# ----------------------------------------------------------------------
# the envelope
# ----------------------------------------------------------------------
def envelope(kind: str, body: Dict[str, Any]) -> Dict[str, Any]:
    """Wrap a codec body in the versioned envelope."""
    for key in RESERVED_KEYS:
        if key in body:
            raise ArtifactError(
                f"codec body for kind {kind!r} uses reserved key {key!r}"
            )
    payload = {"schema_version": SCHEMA_VERSION, "kind": kind}
    payload.update(body)
    return payload


def check_envelope(
    payload: Any, kind: Optional[str] = None, lenient: bool = False
) -> Optional[Dict[str, Any]]:
    """Validate the envelope; returns the payload for chaining.

    ``kind`` pins the expected kind (pass ``None`` to accept any
    registered one).  Documents written by a newer schema version are
    rejected -- this reader cannot know what it would misinterpret.

    ``lenient=True`` downgrades a *malformed* envelope (not an object,
    missing/mistyped ``schema_version`` or ``kind``) to a ``None``
    return instead of raising -- the classification the store uses to
    treat corrupt files as cache misses.  A newer ``schema_version``
    (healthy document, reader too old) and a ``kind`` mismatch (an
    addressing bug) raise either way.
    """
    if not isinstance(payload, dict):
        if lenient:
            return None
        raise ArtifactError(
            f"artifact payload must be an object, got "
            f"{type(payload).__name__}"
        )
    version = payload.get("schema_version")
    if not isinstance(version, int) or isinstance(version, bool):
        if lenient:
            return None
        raise ArtifactError(
            "artifact payload has no integer 'schema_version'"
        )
    if version > SCHEMA_VERSION:
        raise ArtifactError(
            f"artifact has schema_version {version}, this build reads "
            f"up to {SCHEMA_VERSION}; upgrade to consume it"
        )
    found = payload.get("kind")
    if not isinstance(found, str) or not found:
        if lenient:
            return None
        raise ArtifactError("artifact payload has no 'kind'")
    if kind is not None and found != kind:
        raise ArtifactError(
            f"expected artifact kind {kind!r}, got {found!r}"
        )
    return payload


# ----------------------------------------------------------------------
# fraction helpers (shared by many codecs)
# ----------------------------------------------------------------------
def encode_fraction(value: Optional[Fraction]) -> Optional[str]:
    """``Fraction`` -> exact string form (``None`` passes through)."""
    return None if value is None else str(value)


def decode_fraction(value: Optional[str]) -> Optional[Fraction]:
    if value is None:
        return None
    try:
        return Fraction(value)
    except (ValueError, ZeroDivisionError, TypeError):
        raise ArtifactError(
            f"invalid fraction {value!r} in artifact payload"
        ) from None


# ----------------------------------------------------------------------
# the codec registry
# ----------------------------------------------------------------------
Encoder = Callable[[Any], Dict[str, Any]]
Decoder = Callable[[Dict[str, Any]], Any]

_ENCODERS: Dict[Type, Tuple[str, Encoder]] = {}
_DECODERS: Dict[str, Decoder] = {}


def register(kind: str, cls: Type, encode: Encoder, decode: Decoder) -> None:
    """Register a codec: ``encode(obj) -> body``, ``decode(payload) -> obj``.

    ``encode`` returns the *body* only (the envelope is added here);
    ``decode`` receives the full validated payload.
    """
    if kind in _DECODERS:
        raise ArtifactError(f"artifact kind {kind!r} already registered")
    if cls in _ENCODERS:
        raise ArtifactError(
            f"type {cls.__name__} already has an artifact codec "
            f"({_ENCODERS[cls][0]!r})"
        )
    _ENCODERS[cls] = (kind, encode)
    _DECODERS[kind] = decode


def registered_kinds() -> Tuple[str, ...]:
    return tuple(sorted(_DECODERS))


def kind_of(obj: Any) -> str:
    """The artifact kind an object serializes as."""
    try:
        return _ENCODERS[type(obj)][0]
    except KeyError:
        raise ArtifactError(
            f"no artifact codec for type {type(obj).__name__}"
        ) from None


def to_payload(obj: Any) -> Dict[str, Any]:
    """Serialize a domain object into its enveloped canonical payload."""
    try:
        kind, encode = _ENCODERS[type(obj)]
    except KeyError:
        raise ArtifactError(
            f"no artifact codec for type {type(obj).__name__}; "
            f"registered kinds: {', '.join(registered_kinds())}"
        ) from None
    return envelope(kind, encode(obj))


def from_payload(payload: Dict[str, Any]) -> Any:
    """Reconstruct the domain object an artifact payload describes."""
    check_envelope(payload)
    kind = payload["kind"]
    try:
        decode = _DECODERS[kind]
    except KeyError:
        raise ArtifactError(
            f"unknown artifact kind {kind!r}; registered kinds: "
            f"{', '.join(registered_kinds())}"
        ) from None
    try:
        return decode(payload)
    except (KeyError, IndexError, TypeError, ValueError) as error:
        raise ArtifactError(
            f"malformed {kind!r} artifact payload: {error!r}"
        ) from None
