"""The flow-serving subsystem: a long-running front end for the flow.

``repro.service`` turns the one-shot design-time tool into a
multi-tenant server, following the design-time/run-time split of
Weichslgartner et al. (PAPERS.md): sessions *compute* mapping artifacts
once, the service *serves* them cheaply ever after.

Three layers, each usable on its own:

* :class:`FlowScheduler` (:mod:`repro.service.scheduler`) -- the
  asyncio core: accepts FlowSpec submissions from any thread,
  deduplicates and coalesces identical in-flight requests by
  :func:`~repro.flow.fingerprint.flow_request_key`, runs sessions on a
  bounded :class:`~repro.flow.backend.ExecutionBackend` (threads, or
  worker processes with ``backend="process"``), and answers repeated
  requests straight from the workspace
  :class:`~repro.artifacts.store.ArtifactStore` with zero re-analysis.
* :class:`FlowServiceServer` / :func:`serve`
  (:mod:`repro.service.http`) -- the stdlib HTTP JSON API
  (``POST /v1/flows``, ``GET /v1/flows/{id}[/result]``,
  ``GET /v1/artifacts/{kind}/{key}``, ``GET /v1/healthz``, plus the
  run-time platform surface ``POST /v1/platform/apps``,
  ``POST /v1/platform/apps/{id}/depart`` and ``GET /v1/platform``
  backed by :class:`repro.runtime.PlatformManager`), started from the
  CLI as ``python -m repro serve``.
* :class:`FlowServiceClient` (:mod:`repro.service.client`) -- the typed
  client used by tests, examples and CI.

See ``docs/service.md`` for the API reference, the dedup/coalescing
semantics and the byte-identity guarantee.
"""

from repro.service.client import FlowServiceClient, ServiceClientError
from repro.service.http import FlowRequestHandler, FlowServiceServer, serve
from repro.service.scheduler import (
    DONE,
    FAILED,
    QUEUED,
    RESPONSE_KIND,
    RUNNING,
    SOURCE_ARTIFACTS,
    SOURCE_COMPUTED,
    FlowResponse,
    FlowScheduler,
    FlowServiceError,
    QueueFullError,
    ServiceCounters,
    UnknownJobError,
)

__all__ = [
    "DONE",
    "FAILED",
    "QUEUED",
    "RESPONSE_KIND",
    "RUNNING",
    "SOURCE_ARTIFACTS",
    "SOURCE_COMPUTED",
    "FlowRequestHandler",
    "FlowResponse",
    "FlowScheduler",
    "FlowServiceClient",
    "FlowServiceError",
    "FlowServiceServer",
    "QueueFullError",
    "ServiceClientError",
    "ServiceCounters",
    "UnknownJobError",
    "serve",
]
