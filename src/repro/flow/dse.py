"""Automated design-space exploration (paper Section 7, future work).

"For future work we would like to offer an improved automated design space
exploration" -- this module provides it: sweep the architecture template
over tile counts, interconnect kinds and CA usage, evaluate each point
with the conservative mapping analysis (no synthesis, no simulation), and
return the Pareto-optimal set over (guaranteed throughput, FPGA area).

Because every point costs one mapping run (sub-second), the whole space
of the template explores in seconds -- the "very fast design space
exploration" the conclusion promises.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.appmodel.model import ApplicationModel
from repro.arch.area import AreaEstimate, platform_area
from repro.arch.template import architecture_from_template
from repro.exceptions import MappingError, ReproError, RoutingError
from repro.mapping.flow import map_application


@dataclass(frozen=True)
class DesignPoint:
    """One evaluated configuration of the template."""

    tiles: int
    interconnect: str
    with_ca: bool
    throughput: Fraction
    area: AreaEstimate
    constraint_met: bool

    @property
    def label(self) -> str:
        suffix = "+CA" if self.with_ca else ""
        return f"{self.tiles}t/{self.interconnect}{suffix}"

    def dominates(self, other: "DesignPoint") -> bool:
        """Pareto dominance: no worse in both objectives, better in one.
        Throughput is maximized, slice count minimized."""
        no_worse = (
            self.throughput >= other.throughput
            and self.area.slices <= other.area.slices
        )
        better = (
            self.throughput > other.throughput
            or self.area.slices < other.area.slices
        )
        return no_worse and better


@dataclass
class ExplorationResult:
    """All evaluated points plus the Pareto frontier."""

    points: List[DesignPoint]
    failures: List[Tuple[str, str]]  # (label, reason)

    def pareto_frontier(self) -> List[DesignPoint]:
        frontier = [
            p for p in self.points
            if not any(q.dominates(p) for q in self.points)
        ]
        return sorted(frontier, key=lambda p: p.area.slices)

    def best_meeting_constraint(self) -> Optional[DesignPoint]:
        """Smallest design point that meets the throughput constraint."""
        feasible = [p for p in self.points if p.constraint_met]
        if not feasible:
            return None
        return min(feasible, key=lambda p: (p.area.slices, -p.throughput))

    def as_table(self) -> str:
        header = (
            f"{'point':<12} {'throughput/Mcycle':>18} {'slices':>8} "
            f"{'BRAMs':>6} {'meets':>6} {'pareto':>7}"
        )
        frontier = set(p.label for p in self.pareto_frontier())
        lines = [header, "-" * len(header)]
        for p in sorted(self.points,
                        key=lambda p: (p.tiles, p.interconnect, p.with_ca)):
            lines.append(
                f"{p.label:<12} {float(p.throughput * 1e6):>18.4f} "
                f"{p.area.slices:>8} {p.area.brams:>6} "
                f"{'yes' if p.constraint_met else 'no':>6} "
                f"{'*' if p.label in frontier else '':>7}"
            )
        for label, reason in self.failures:
            lines.append(f"{label:<12} infeasible: {reason}")
        return "\n".join(lines)


def explore_design_space(
    app: ApplicationModel,
    tile_counts: Sequence[int] = (1, 2, 3, 4, 5),
    interconnects: Sequence[str] = ("fsl", "noc"),
    ca_options: Sequence[bool] = (False,),
    constraint: Optional[Fraction] = None,
    fixed: Optional[Dict[str, str]] = None,
) -> ExplorationResult:
    """Evaluate every template configuration in the sweep.

    Points whose mapping fails (memory infeasible, unroutable) are
    recorded as failures rather than raising -- an exploration should
    report the whole space.
    """
    points: List[DesignPoint] = []
    failures: List[Tuple[str, str]] = []
    for tiles in tile_counts:
        for interconnect in interconnects:
            if tiles == 1 and interconnect != interconnects[0]:
                continue  # single tile has no interconnect; dedupe
            for with_ca in ca_options:
                label = (
                    f"{tiles}t/{interconnect}{'+CA' if with_ca else ''}"
                )
                try:
                    arch = architecture_from_template(
                        tiles, interconnect, with_ca=with_ca
                    )
                    result = map_application(
                        app, arch, constraint=constraint, fixed=fixed
                    )
                except (MappingError, RoutingError) as error:
                    failures.append((label, str(error)))
                    continue
                points.append(
                    DesignPoint(
                        tiles=tiles,
                        interconnect=interconnect,
                        with_ca=with_ca,
                        throughput=result.guaranteed_throughput,
                        area=platform_area(arch),
                        constraint_met=result.constraint_met,
                    )
                )
    return ExplorationResult(points=points, failures=failures)
