"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.sdf import SDFGraph
from repro.sdf.buffers import BufferDistribution, add_buffer_edges
from repro.sdf.io_sdf3 import save_graph


@pytest.fixture
def graph_file(tmp_path):
    g = SDFGraph("cli_demo")
    g.add_actor("A", execution_time=10)
    g.add_actor("B", execution_time=20)
    g.add_edge("ab", "A", "B", token_size=4)
    bounded = add_buffer_edges(g, BufferDistribution({"ab": 2}))
    path = tmp_path / "graph.xml"
    save_graph(bounded, path)
    return str(path)


class TestAnalyze:
    def test_reports_vector_and_throughput(self, graph_file, capsys):
        assert main(["analyze", graph_file]) == 0
        out = capsys.readouterr().out
        assert "repetition vector" in out
        assert "deadlock-free: yes" in out
        assert "throughput" in out

    def test_deadlocked_graph_reported(self, tmp_path, capsys):
        g = SDFGraph("dead")
        g.add_actor("A", execution_time=1)
        g.add_actor("B", execution_time=1)
        g.add_edge("ab", "A", "B")
        g.add_edge("ba", "B", "A")
        path = tmp_path / "dead.xml"
        save_graph(g, path)
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "deadlock-free: NO" in out

    def test_missing_file_fails_cleanly(self, tmp_path):
        with pytest.raises((FileNotFoundError, OSError)):
            main(["analyze", str(tmp_path / "nope.xml")])

    def test_json_output_includes_mapping_result(self, graph_file, capsys):
        from fractions import Fraction

        assert main(
            ["analyze", graph_file, "--json", "--tiles", "2"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["deadlock_free"] is True
        assert payload["repetition_vector"] == {"A": 1, "B": 1}
        assert payload["throughput"]["period_cycles"] > 0
        mapping = payload["mapping"]
        assert mapping["kind"] == "mapping-result"
        assert set(mapping["mapping"]["actor_binding"]) == {"A", "B"}
        assert Fraction(mapping["throughput"]["throughput"]) > 0
        for channel in mapping["mapping"]["channels"].values():
            total = (
                channel["capacity"]
                + channel["alpha_src"] + channel["alpha_dst"]
            )
            assert total > 0

    def test_json_mapping_handles_pre_bounded_graphs(self, tmp_path,
                                                     capsys):
        """Graphs saved with buffer back-edges must still map: the CLI
        strips the ``buf__`` credit edges (the mapping flow allocates
        its own capacities) instead of colliding with the bound graph's
        modeling edges on intra-tile placements."""
        g = SDFGraph("bounded3")
        for name, t in (("A", 10), ("B", 20), ("C", 15)):
            g.add_actor(name, execution_time=t)
        g.add_edge("ab", "A", "B", token_size=4)
        g.add_edge("bc", "B", "C", token_size=4)
        bounded = add_buffer_edges(
            g, BufferDistribution({"ab": 2, "bc": 2})
        )
        path = tmp_path / "bounded.xml"
        save_graph(bounded, path)
        assert main(["analyze", str(path), "--json", "--tiles", "1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        mapping = payload["mapping"]
        assert "error" not in mapping
        assert set(mapping["mapping"]["actor_binding"]) == {"A", "B", "C"}
        assert set(mapping["mapping"]["channels"]) == {"ab", "bc"}

    def test_json_output_for_deadlocked_graph(self, tmp_path, capsys):
        g = SDFGraph("dead")
        g.add_actor("A", execution_time=1)
        g.add_actor("B", execution_time=1)
        g.add_edge("ab", "A", "B")
        g.add_edge("ba", "B", "A")
        path = tmp_path / "dead.xml"
        save_graph(g, path)
        assert main(["analyze", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["deadlock_free"] is False
        assert "throughput" not in payload
        assert "mapping" not in payload


class TestDemo:
    def test_runs_case_study(self, capsys, tmp_path):
        code = main(
            ["demo", "gradient", "--tiles", "3", "--iterations", "6",
             "--output", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "guaranteed" in out
        assert "measured" in out
        assert "project written" in out
        assert any(tmp_path.iterdir())

    def test_unknown_sequence_errors(self, capsys):
        assert main(["demo", "nonsense"]) == 1
        err = capsys.readouterr().err
        assert "unknown sequence" in err


class TestRunSpec:
    def test_runs_toml_scenario(self, tmp_path, capsys):
        spec = tmp_path / "scenario.toml"
        spec.write_text(
            "\n".join(
                [
                    'name = "cli-spec"',
                    "[architecture]",
                    "tiles = 2",
                    "[mapping]",
                    'binding = "spiral"',
                    'buffer_policy = "exponential"',
                    "[mapping.fixed]",
                    'VLD = "tile0"',
                ]
            ),
            encoding="utf-8",
        )
        code = main(["run", "--spec", str(spec), "--iterations", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cli-spec" in out
        assert "binding=spiral" in out
        assert "guaranteed" in out
        assert "measured" in out

    def test_bad_spec_fails_cleanly(self, tmp_path, capsys):
        spec = tmp_path / "scenario.toml"
        spec.write_text('[mapping]\nbinding = "quantum"\n',
                        encoding="utf-8")
        assert main(["run", "--spec", str(spec)]) == 1
        err = capsys.readouterr().err
        assert "quantum" in err

    def test_missing_spec_fails_cleanly(self, tmp_path, capsys):
        assert main(["run", "--spec", str(tmp_path / "none.toml")]) == 1
        assert "cannot read" in capsys.readouterr().err


class TestDSE:
    def test_prints_pareto_table(self, capsys):
        assert main(["dse", "gradient", "--max-tiles", "2"]) == 0
        out = capsys.readouterr().out
        assert "1t/fsl" in out
        assert "pareto" in out

    def test_strategy_flags(self, capsys):
        code = main(
            ["explore", "gradient", "--max-tiles", "2",
             "--binding", "spiral", "--buffer-policy", "exponential",
             "--effort", "low"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "binding=spiral" in out

    def test_unknown_binding_rejected(self):
        with pytest.raises(SystemExit):
            main(["explore", "--binding", "quantum"])


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


class TestMaxIterationsPlumbing:
    def test_analyze_accepts_budget(self, graph_file, capsys):
        assert main(
            ["analyze", graph_file, "--max-iterations", "50000"]
        ) == 0
        assert "throughput:" in capsys.readouterr().out

    def test_analyze_rejects_nonpositive_budget(self, graph_file, capsys):
        assert main(["analyze", graph_file, "--max-iterations", "0"]) == 1
        assert "--max-iterations" in capsys.readouterr().err

    def test_analyze_json_carries_budget_into_mapping(self, graph_file,
                                                      capsys):
        assert main(
            ["analyze", graph_file, "--json", "--max-iterations", "20000"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "error" not in payload["mapping"]

    def test_analyze_json_reports_engine_tier(self, graph_file, capsys):
        assert main(["analyze", graph_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["throughput"]["engine_tier"] in (
            "analytic", "vectorized"
        )

    def test_analyze_engine_pin(self, graph_file, capsys):
        assert main(
            ["analyze", graph_file, "--json", "--engine", "reference"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["throughput"]["engine_tier"] == "reference"

    def test_analyze_rejects_unknown_engine(self, graph_file):
        with pytest.raises(SystemExit):
            main(["analyze", graph_file, "--engine", "turbo"])

    def test_explore_engine_pin(self, capsys):
        code = main(
            ["explore", "gradient", "--max-tiles", "1",
             "--effort", "low", "--engine", "vectorized"]
        )
        assert code == 0

    def test_explore_budget_override(self, capsys):
        code = main(
            ["explore", "gradient", "--max-tiles", "1",
             "--effort", "low", "--max-iterations", "20000"]
        )
        assert code == 0

    def test_explore_rejects_nonpositive_budget(self, capsys):
        code = main(
            ["explore", "gradient", "--max-tiles", "1",
             "--max-iterations", "-3"]
        )
        assert code == 1
        assert "--max-iterations" in capsys.readouterr().err


class TestEffortIterationSuffix:
    def test_of_parses_override(self):
        from repro.mapping.flow import MappingEffort

        effort = MappingEffort.of("low+it12345")
        assert effort.max_iterations == 12345
        assert effort.max_buffer_rounds == (
            MappingEffort.of("low").max_buffer_rounds
        )
        # the derived name round-trips through string plumbing
        assert MappingEffort.of(effort.name) == effort

    def test_with_iterations_is_stable(self):
        from repro.mapping.flow import MappingEffort

        base = MappingEffort.of("normal")
        assert base.with_iterations(base.max_iterations) is base
        derived = base.with_iterations(99)
        assert derived.with_iterations(77).name == "normal+it77"

    def test_bad_overrides_rejected(self):
        from repro.mapping.flow import MappingEffort

        with pytest.raises(ValueError, match="positive integer"):
            MappingEffort.of("low+itxyz")
        with pytest.raises(ValueError, match="unknown mapping effort"):
            MappingEffort.of("turbo+it5")
        with pytest.raises(ValueError, match=">= 1"):
            MappingEffort.of("low").with_iterations(0)


class TestEffortEngineSuffix:
    def test_of_parses_engine_pin(self):
        from repro.mapping.flow import MappingEffort

        effort = MappingEffort.of("normal+engreference")
        assert effort.engine == "reference"
        assert effort.max_iterations == (
            MappingEffort.of("normal").max_iterations
        )
        assert MappingEffort.of(effort.name) == effort

    def test_suffixes_combine_in_either_order(self):
        from repro.mapping.flow import MappingEffort

        a = MappingEffort.of("low+it5000+engvectorized")
        b = MappingEffort.of("low+engvectorized+it5000")
        assert a == b
        assert a.max_iterations == 5000
        assert a.engine == "vectorized"
        # canonical derived name: iterations before engine
        assert a.name == "low+it5000+engvectorized"

    def test_with_engine_round_trips(self):
        from repro.mapping.flow import MappingEffort

        base = MappingEffort.of("high")
        pinned = base.with_engine("analytic")
        assert pinned.name == "high+enganalytic"
        assert MappingEffort.of(pinned.name) == pinned
        # auto is the default: pinning it back erases the suffix, so
        # cache keys derived from the name stay byte-identical
        assert pinned.with_engine("auto").name == "high"
        assert base.with_engine("auto") is base

    def test_with_iterations_preserves_engine_pin(self):
        from repro.mapping.flow import MappingEffort

        pinned = MappingEffort.of("normal+engreference")
        derived = pinned.with_iterations(77)
        assert derived.engine == "reference"
        assert derived.name == "normal+it77+engreference"
        assert MappingEffort.of(derived.name) == derived

    def test_bad_engine_suffix_rejected(self):
        from repro.mapping.flow import MappingEffort

        with pytest.raises(ValueError, match="invalid engine override"):
            MappingEffort.of("low+engturbo")
        with pytest.raises(ValueError, match="unknown suffix"):
            MappingEffort.of("low+zz5")
        with pytest.raises(ValueError, match="unknown throughput engine"):
            MappingEffort.of("low").with_engine("turbo")


class TestCanonicalPayloads:
    def test_analyze_json_embeds_canonical_mapping_artifact(
        self, graph_file, capsys
    ):
        assert main(["analyze", graph_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        mapping = payload["mapping"]
        # the canonical envelope...
        assert mapping["kind"] == "mapping-result"
        assert mapping["schema_version"] >= 1
        assert mapping["mapping"]["kind"] == "mapping"
        assert mapping["throughput"]["kind"] == "throughput-result"
        # ...decodes back to a full MappingResult
        from repro.artifacts import from_payload
        from repro.mapping.spec import MappingResult

        result = from_payload(mapping)
        assert isinstance(result, MappingResult)
        assert set(result.mapping.actor_binding) == {"A", "B"}
        # ...and the pre-schema flat aliases (deprecated in the release
        # that introduced the envelope) are gone for good
        for alias in (
            "architecture", "binding", "static_orders", "channels",
            "guaranteed_throughput", "guaranteed_per_mega_cycle",
            "constraint_met",
        ):
            assert alias not in mapping

    def test_explore_json_emits_exploration_artifact(self, capsys):
        code = main(
            ["explore", "gradient", "--max-tiles", "2", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "exploration-result"
        from repro.artifacts import from_payload
        from repro.flow import ExplorationResult

        result = from_payload(payload)
        assert isinstance(result, ExplorationResult)
        assert result.points

    def test_explore_csv_matches_canonical_payload(self, capsys):
        assert main(
            ["explore", "gradient", "--max-tiles", "2", "--csv"]
        ) == 0
        rows = capsys.readouterr().out.strip().splitlines()
        header = rows[0].split(",")
        assert header[0] == "label"
        assert main(
            ["explore", "gradient", "--max-tiles", "2", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        labels = [p["label"] for p in payload["points"]]
        assert [r.split(",")[0] for r in rows[1:]] == labels

    def test_run_json_emits_flow_result_artifact(self, tmp_path, capsys):
        spec = tmp_path / "scenario.toml"
        spec.write_text(
            "\n".join([
                'name = "json-run"',
                "[app]",
                "frames = 1",
                "[architecture]",
                "tiles = 2",
                "[mapping.fixed]",
                'VLD = "tile0"',
            ]),
            encoding="utf-8",
        )
        assert main(
            ["run", "--spec", str(spec), "--iterations", "4", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "flow-result"
        from repro.artifacts import from_payload

        result = from_payload(payload)
        assert result.measured is not None
        assert result.project.files


class TestRunWorkspace:
    def test_run_with_workspace_resumes(self, tmp_path, capsys):
        spec = tmp_path / "scenario.toml"
        spec.write_text(
            "\n".join([
                'name = "ws-run"',
                "[app]",
                "frames = 1",
                "[architecture]",
                "tiles = 2",
                "[mapping.fixed]",
                'VLD = "tile0"',
            ]),
            encoding="utf-8",
        )
        ws = tmp_path / "ws"
        assert main(["run", "--spec", str(spec),
                     "--workspace", str(ws)]) == 0
        first = capsys.readouterr().out
        assert "0/3 stage(s) resumed" in first
        assert main(["run", "--spec", str(spec),
                     "--workspace", str(ws)]) == 0
        second = capsys.readouterr().out
        assert "3/3 stage(s) resumed" in second

    def test_multi_app_spec_requires_workspace(self, tmp_path, capsys):
        spec = tmp_path / "multi.toml"
        spec.write_text(
            "\n".join([
                "[[apps]]",
                'sequence = "gradient"',
                "frames = 1",
                "[[apps]]",
                'sequence = "checkerboard"',
                "frames = 1",
                "[architecture]",
                "tiles = 4",
            ]),
            encoding="utf-8",
        )
        assert main(["run", "--spec", str(spec)]) == 1
        assert "--workspace" in capsys.readouterr().err


class TestBatch:
    def write_specs(self, tmp_path):
        a = tmp_path / "a.toml"
        a.write_text(
            "\n".join([
                'name = "batch-a"',
                "[app]",
                "frames = 1",
                "[architecture]",
                "tiles = 2",
                "[mapping.fixed]",
                'VLD = "tile0"',
            ]),
            encoding="utf-8",
        )
        b = tmp_path / "b.toml"
        b.write_text(
            "\n".join([
                'name = "batch-b"',
                "[[apps]]",
                'name = "decoder"',
                'sequence = "gradient"',
                "frames = 1",
                "[[apps]]",
                'name = "osd"',
                'sequence = "checkerboard"',
                "frames = 1",
                "[architecture]",
                "tiles = 4",
            ]),
            encoding="utf-8",
        )
        return a, b

    def test_batch_reports_json_and_resumes(self, tmp_path, capsys):
        a, b = self.write_specs(tmp_path)
        ws = tmp_path / "ws"
        code = main(["batch", str(a), str(b),
                     "--workspace", str(ws), "--jobs", "2"])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["kind"] == "batch-report"
        assert report["ok"] is True
        assert report["resume_rate"] == 0.0
        assert len(report["entries"]) == 2
        # second run over the same workspace resumes everything
        assert main(["batch", str(a), str(b),
                     "--workspace", str(ws)]) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["resume_rate"] == 1.0
        assert (ws / "batch-report.json").exists()

    def test_batch_table_output(self, tmp_path, capsys):
        a, _ = self.write_specs(tmp_path)
        assert main(["batch", str(a), "--workspace",
                     str(tmp_path / "ws"), "--table"]) == 0
        out = capsys.readouterr().out
        assert "batch-a" in out
        assert "resumed" in out

    def test_failing_spec_fails_the_batch_exit_code(self, tmp_path,
                                                    capsys):
        a, _ = self.write_specs(tmp_path)
        broken = tmp_path / "broken.toml"
        broken.write_text('[mapping]\nbinding = "quantum"\n',
                          encoding="utf-8")
        code = main(["batch", str(a), str(broken),
                     "--workspace", str(tmp_path / "ws")])
        assert code == 1
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False
        failed = [e for e in report["entries"] if not e["ok"]]
        assert failed and "quantum" in failed[0]["error"]


class TestServe:
    def test_rejects_bad_bounds(self, tmp_path, capsys):
        ws = str(tmp_path / "ws")
        assert main(["serve", "--workspace", ws, "--jobs", "0"]) == 1
        assert "--jobs" in capsys.readouterr().err
        assert main(["serve", "--workspace", ws, "--max-queue", "0"]) == 1
        assert "--max-queue" in capsys.readouterr().err
        # nothing was bound or created before validation failed
        assert not (tmp_path / "ws").exists()


class TestRunFlagCompatibility:
    def write_spec(self, tmp_path):
        spec = tmp_path / "s.toml"
        spec.write_text(
            "\n".join([
                "[app]", "frames = 1",
                "[architecture]", "tiles = 2",
                "[mapping.fixed]", 'VLD = "tile0"',
            ]),
            encoding="utf-8",
        )
        return spec

    def test_json_with_output_keeps_stdout_parseable(self, tmp_path,
                                                     capsys):
        spec = self.write_spec(tmp_path)
        assert main(["run", "--spec", str(spec), "--iterations", "4",
                     "--json", "--output", str(tmp_path / "proj")]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)  # a single JSON document
        assert payload["kind"] == "flow-result"
        assert "project written" in captured.err
        assert any((tmp_path / "proj").iterdir())

    def test_workspace_rejects_full_flow_flags(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path)
        ws = str(tmp_path / "ws")
        assert main(["run", "--spec", str(spec), "--workspace", ws,
                     "--output", str(tmp_path / "proj")]) == 1
        assert "--output" in capsys.readouterr().err
        assert main(["run", "--spec", str(spec), "--workspace", ws,
                     "--iterations", "8"]) == 1
        assert "--iterations" in capsys.readouterr().err

    def test_workspace_collision_with_file_errors_cleanly(self, tmp_path,
                                                          capsys):
        spec = self.write_spec(tmp_path)
        blocker = tmp_path / "blocked"
        blocker.write_text("", encoding="utf-8")
        assert main(["run", "--spec", str(spec),
                     "--workspace", str(blocker)]) == 1
        assert "cannot create artifact workspace" in \
            capsys.readouterr().err


class TestPowerFlags:
    def test_analyze_reports_power_and_energy(self, graph_file, capsys):
        assert main(
            ["analyze", graph_file, "--power-budget", "400",
             "--energy-budget", "50", "--tech-node", "22"]
        ) == 0
        out = capsys.readouterr().out
        assert "power:" in out and "22 nm" in out
        assert "energy:" in out and "nJ/iteration" in out
        assert "within power budget (400.0 mW):" in out
        assert "within energy budget (50.00 nJ/iter):" in out

    def test_analyze_without_flags_has_no_power_lines(self, graph_file,
                                                      capsys):
        assert main(["analyze", graph_file]) == 0
        out = capsys.readouterr().out
        assert "power" not in out and "energy" not in out

    def test_analyze_json_power_section_is_opt_in(self, graph_file,
                                                  capsys):
        assert main(["analyze", graph_file, "--json"]) == 0
        assert "power" not in json.loads(capsys.readouterr().out)
        assert main(
            ["analyze", graph_file, "--json", "--tech-node", "45",
             "--power-budget", "1000"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        section = payload["power"]
        assert section["platform"]["kind"] == "power-estimate"
        assert section["application"]["kind"] == "energy-estimate"
        assert section["within_power_budget"] is True
        assert "within_energy_budget" not in section  # not requested

    def test_invalid_budget_rejected(self, graph_file, capsys):
        assert main(
            ["analyze", graph_file, "--power-budget", "lots"]
        ) == 1
        assert "--power-budget" in capsys.readouterr().err
        assert main(
            ["analyze", graph_file, "--energy-budget", "-5"]
        ) == 1
        assert "--energy-budget" in capsys.readouterr().err

    def test_unknown_tech_node_rejected(self, graph_file):
        with pytest.raises(SystemExit):
            main(["analyze", graph_file, "--tech-node", "7"])

    def test_explore_power_budget_prunes(self, capsys):
        assert main(
            ["explore", "gradient", "--max-tiles", "3",
             "--effort", "low", "--power-budget", "300"]
        ) == 0
        out = capsys.readouterr().out
        assert "over power budget" in out
        assert "nJ/iter" in out

    def test_explore_energy_binding_is_selectable(self, capsys):
        assert main(
            ["explore", "gradient", "--max-tiles", "2",
             "--effort", "low", "--binding", "energy",
             "--tech-node", "32"]
        ) == 0
        out = capsys.readouterr().out
        assert "nJ/iter" in out


class TestBackendFlags:
    def write_spec(self, tmp_path):
        path = tmp_path / "spec.toml"
        path.write_text(
            "\n".join([
                'name = "backend-cli"',
                "[app]",
                "frames = 1",
                "[architecture]",
                "tiles = 2",
                "[mapping.fixed]",
                'VLD = "tile0"',
            ]),
            encoding="utf-8",
        )
        return path

    def test_run_process_backend_needs_workspace(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path)
        assert main(
            ["run", "--spec", str(spec), "--backend", "process"]
        ) == 1
        assert "--workspace" in capsys.readouterr().err

    def test_run_process_backend_matches_thread_run(self, tmp_path,
                                                    capsys):
        spec = self.write_spec(tmp_path)
        assert main(
            ["run", "--spec", str(spec), "--json",
             "--workspace", str(tmp_path / "t")]
        ) == 0
        thread = json.loads(capsys.readouterr().out)
        assert main(
            ["run", "--spec", str(spec), "--json",
             "--workspace", str(tmp_path / "p"),
             "--backend", "process"]
        ) == 0
        process = json.loads(capsys.readouterr().out)
        assert process["kind"] == thread["kind"] == "session-result"
        assert process["spec_name"] == thread["spec_name"]
        assert [s["stage"] for s in process["stages"]] == [
            s["stage"] for s in thread["stages"]
        ]

    def test_batch_process_backend(self, tmp_path, capsys):
        spec = self.write_spec(tmp_path)
        assert main(
            ["batch", str(spec), "--workspace", str(tmp_path / "ws"),
             "--jobs", "2", "--backend", "process"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["jobs"] == 2

    def test_explore_process_backend_matches_thread(self, capsys):
        argv = ["explore", "gradient", "--max-tiles", "2",
                "--effort", "low", "--csv"]
        assert main(argv) == 0
        thread = capsys.readouterr().out
        assert main(argv + ["--backend", "process", "--jobs", "2"]) == 0
        process = capsys.readouterr().out
        assert process == thread


class TestLoadtest:
    @pytest.fixture
    def live_server(self, tmp_path):
        import threading

        from repro.service import serve

        server = serve(tmp_path / "ws", port=0, jobs=2,
                       replica="cli-lg")
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        yield server
        server.shutdown()
        server.server_close()
        server.scheduler.close()

    def test_summary_and_bench_report(self, live_server, tmp_path,
                                      capsys):
        out_file = tmp_path / "BENCH_service.json"
        assert main(
            ["loadtest", "--url", live_server.url,
             "--family", "chain", "--unique", "2", "--requests", "8",
             "--rps", "50", "--seed", "3", "--actors", "4",
             "--out", str(out_file)]
        ) == 0
        out = capsys.readouterr().out
        assert "sustained" in out
        assert "cli-lg" in out
        document = json.loads(out_file.read_text(encoding="utf-8"))
        assert document["results"]["completed"] == 8

    def test_gate_failure_sets_exit_code(self, live_server, capsys):
        assert main(
            ["loadtest", "--url", live_server.url,
             "--family", "chain", "--unique", "1", "--requests", "4",
             "--rps", "50", "--seed", "3", "--actors", "4",
             "--min-rps", "100000"]
        ) == 1
        assert "gate failed" in capsys.readouterr().err

    def test_json_report_output(self, live_server, capsys):
        assert main(
            ["loadtest", "--url", live_server.url,
             "--family", "chain", "--unique", "1", "--requests", "4",
             "--rps", "50", "--seed", "3", "--actors", "4", "--json"]
        ) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["results"]["completed"] == 4
        assert document["config"]["requests"] == 4

    def test_unreachable_service_fails_cleanly(self, capsys):
        assert main(
            ["loadtest", "--url", "http://127.0.0.1:1",
             "--requests", "1", "--timeout", "2"]
        ) == 1
        assert "cannot reach" in capsys.readouterr().err
