#!/usr/bin/env python3
"""Scenario sweep: generate a workload family, batch-map it, tabulate.

Generates a seeded batch of synthetic scenarios (one graph family per
``--family``, or a rotation over all of them), bridges each to a full
FlowSpec, runs the batch through a shared resumable workspace -- the
exact machinery behind ``repro batch`` -- and prints a feasibility /
throughput table.  Running it twice shows every stage resuming from
artifacts: equal seeds mean equal content keys.

Run:  python examples/scenario_sweep.py [--family mixed] [--count 10]
"""

import argparse
import tempfile

from repro.flow.session import execute_spec
from repro.scenarios import generate_scenarios, scenario_flow_spec


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--family",
        choices=("chain", "splitjoin", "diamond", "cyclic", "mixed",
                 "all"),
        default="all",
    )
    parser.add_argument("--count", type=int, default=10)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    specs = generate_scenarios(args.family, args.count, seed=args.seed)
    print(
        f"== {len(specs)} generated scenario(s) "
        f"(family {args.family}, seed {args.seed}) =="
    )

    header = (
        f"{'scenario':<22} {'family':<10} {'actors':>6} {'tiles':>5} "
        f"{'ic':<4} {'binding':<7} {'thr/Mcycle':>11} {'resumed':>8}"
    )
    print(header)
    print("-" * len(header))

    with tempfile.TemporaryDirectory() as workspace:
        for spec in specs:
            flow_spec = scenario_flow_spec(spec)
            result = execute_spec(flow_spec, workspace)
            throughput = result.guarantee_of(spec.effective_name)
            print(
                f"{spec.name:<22} {spec.family:<10} {spec.actors:>6} "
                f"{flow_spec.architecture.tiles:>5} "
                f"{flow_spec.architecture.interconnect:<4} "
                f"{flow_spec.strategies.binding:<7} "
                f"{float(throughput * 10**6):>11.4f} "
                f"{len(result.resumed_stages):>3}/{len(result.stages)}"
            )

        print()
        print("== second pass over the same workspace (all resumed) ==")
        resumed = total = 0
        for spec in specs:
            result = execute_spec(
                scenario_flow_spec(spec), workspace
            )
            resumed += len(result.resumed_stages)
            total += len(result.stages)
        print(f"  {resumed}/{total} stage(s) served from artifacts")


if __name__ == "__main__":
    main()
