"""Building the bound analysis graph.

The bound graph merges the application graph with everything the mapping
decided: WCETs of the chosen implementations, bounded buffers for
intra-tile channels, the Fig. 4 communication model for every inter-tile
channel, and the processor binding (including the (de)serialization actors,
which run on the tile PE -- or on its communication assist when present).

Its throughput, computed under the static-order schedules, *is* the flow's
guarantee: MAMPS implements exactly this structure, so the FPGA (here: the
platform simulator) can only be as fast or faster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.appmodel.implementation import ActorImplementation
from repro.appmodel.model import ApplicationModel
from repro.arch.platform import ArchitectureModel
from repro.comm.model import (
    CommActorNames,
    expand_channel,
    retune_channel_capacities,
)
from repro.comm.serialization import (
    CASerialization,
    PESerialization,
    SerializationModel,
)
from repro.exceptions import MappingError
from repro.mapping.spec import ChannelMapping
from repro.sdf.buffers import BUFFER_EDGE_PREFIX
from repro.sdf.graph import SDFGraph


def ca_resource_name(tile: str) -> str:
    """Resource name of a tile's communication assist."""
    return f"{tile}__ca"


def serialization_model_for(arch: ArchitectureModel,
                            tile_name: str) -> SerializationModel:
    """The (de)serialization model a tile uses: its CA when present,
    otherwise the software NI library on the PE."""
    tile = arch.tile(tile_name)
    if tile.has_ca:
        ca = tile.communication_assist
        return CASerialization(
            setup_cycles=ca.setup_cycles,
            cycles_per_word=ca.cycles_per_word,
        )
    return PESerialization()


@dataclass
class BoundGraph:
    """The analysis graph plus its resource binding."""

    graph: SDFGraph
    processor_of: Dict[str, str]
    app_actors: Tuple[str, ...]
    comm_names: Dict[str, CommActorNames] = field(default_factory=dict)

    def app_actors_on(self, tile: str) -> Tuple[str, ...]:
        return tuple(
            a for a in self.app_actors if self.processor_of.get(a) == tile
        )

    def tiles(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for actor in self.app_actors:
            tile = self.processor_of[actor]
            if tile not in seen:
                seen.append(tile)
        return tuple(seen)


def _intra_tile_credit_tokens(edge, channel: ChannelMapping) -> int:
    """Initial tokens of an intra-tile channel's ``buf__`` back-edge --
    shared (with validation) by :func:`build_bound_graph` and
    :func:`apply_buffer_capacities` so the warm path cannot drift."""
    if channel.capacity < max(edge.production, edge.consumption,
                              edge.initial_tokens):
        raise MappingError(
            f"intra-tile channel {edge.name!r} has unusable "
            f"capacity {channel.capacity}"
        )
    return channel.capacity - edge.initial_tokens


def build_bound_graph(
    app: ApplicationModel,
    arch: ArchitectureModel,
    binding: Dict[str, str],
    implementations: Dict[str, ActorImplementation],
    channels: Dict[str, ChannelMapping],
    serialization_overrides: Optional[Dict[str, SerializationModel]] = None,
    time_overrides: Optional[Dict[str, int]] = None,
) -> BoundGraph:
    """Construct the bound graph for a mapping.

    ``serialization_overrides`` substitutes a tile's (de)serialization
    model without touching the architecture -- the instrument of the
    Section 6.3 experiment ("the worst-case execution time of the
    (de-)serialization functions was replaced with the execution time of
    the communication assist").

    ``time_overrides`` replaces per-actor execution times (actor name ->
    cycles, *without* the dispatch overhead, which is always added).  This
    is how the "expected" prediction of Fig. 6 is computed: the same bound
    graph, but with execution times measured on the test data instead of
    the WCETs.

    Every application actor's time additionally includes the tile
    scheduler's per-firing dispatch overhead (the static-order lookup +
    wrapper call), so the analysis and the platform simulator charge the
    processor identically.
    """
    overrides = serialization_overrides or {}

    times = {}
    for actor in app.graph:
        impl = implementations.get(actor.name)
        if impl is None:
            raise MappingError(
                f"no implementation chosen for actor {actor.name!r}"
            )
        tile = arch.tile(binding[actor.name])
        dispatch = (
            tile.processor.context_switch_cycles if tile.processor else 0
        )
        base = impl.wcet
        if time_overrides and actor.name in time_overrides:
            base = time_overrides[actor.name]
        times[actor.name] = base + dispatch
    graph = app.graph.with_execution_times(
        times, name=f"{app.graph.name}_bound"
    )

    processor_of: Dict[str, str] = {}
    for actor_name, tile_name in binding.items():
        processor_of[actor_name] = tile_name

    comm_names: Dict[str, CommActorNames] = {}
    for edge in app.graph.explicit_edges():
        channel = channels.get(edge.name)
        if channel is None:
            raise MappingError(f"channel {edge.name!r} was never routed")
        if channel.intra_tile:
            graph.add_edge(
                f"{BUFFER_EDGE_PREFIX}{edge.name}",
                edge.dst,
                edge.src,
                production=edge.consumption,
                consumption=edge.production,
                initial_tokens=_intra_tile_credit_tokens(edge, channel),
                implicit=True,
            )
            continue

        if channel.parameters is None:
            raise MappingError(
                f"inter-tile channel {edge.name!r} has no interconnect "
                "parameters (routing incomplete)"
            )
        src_model = overrides.get(
            channel.src_tile, serialization_model_for(arch, channel.src_tile)
        )
        dst_model = overrides.get(
            channel.dst_tile, serialization_model_for(arch, channel.dst_tile)
        )
        names = expand_channel(
            graph,
            edge.name,
            channel.parameters,
            src_model,
            alpha_src=channel.alpha_src,
            alpha_dst=channel.alpha_dst,
            deserialization=dst_model,
        )
        comm_names[edge.name] = names

        # Bind serialization work to the resource that executes it.
        if src_model.occupies_pe:
            processor_of[names.s1] = channel.src_tile
        else:
            processor_of[names.s1] = ca_resource_name(channel.src_tile)
        dst_resource = (
            channel.dst_tile
            if dst_model.occupies_pe
            else ca_resource_name(channel.dst_tile)
        )
        processor_of[names.d1] = dst_resource
        processor_of[names.d2] = dst_resource

    return BoundGraph(
        graph=graph,
        processor_of=processor_of,
        app_actors=tuple(a.name for a in app.graph),
        comm_names=comm_names,
    )


def apply_buffer_capacities(
    bound: BoundGraph,
    app: ApplicationModel,
    channels: Dict[str, ChannelMapping],
) -> None:
    """Re-point ``bound`` at the channels' current capacities, in place.

    Growing buffers only changes initial token counts -- the capacity of an
    intra-tile channel lives on its ``buf__`` credit back-edge, the alphas
    of an inter-tile channel on the expansion's ``__scredit`` /
    ``__dcredit`` edges -- never the structure of the bound graph.  The
    mapping flow's constraint loop therefore builds the bound graph once
    and calls this per buffer-growth round instead of rebuilding it, and
    the throughput analyzer picks the new counts up on its next reset.
    Capacity validation matches :func:`build_bound_graph`.
    """
    graph = bound.graph
    for edge in app.graph.explicit_edges():
        channel = channels.get(edge.name)
        if channel is None:
            raise MappingError(f"channel {edge.name!r} was never routed")
        if channel.intra_tile:
            graph.edge(
                f"{BUFFER_EDGE_PREFIX}{edge.name}"
            ).initial_tokens = _intra_tile_credit_tokens(edge, channel)
        else:
            retune_channel_capacities(
                graph,
                edge.name,
                production=edge.production,
                consumption=edge.consumption,
                initial_tokens=edge.initial_tokens,
                token_size=edge.token_size,
                alpha_src=channel.alpha_src,
                alpha_dst=channel.alpha_dst,
            )
