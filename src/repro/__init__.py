"""repro -- reproduction of Jordans et al., "An Automated Flow to Map
Throughput Constrained Applications to a MPSoC" (PPES 2011).

The package mirrors the paper's flow (Fig. 1):

* :mod:`repro.sdf` -- SDF graph analysis (the SDF3 substrate): consistency,
  deadlock, state-space throughput, MCM, buffer sizing.
* :mod:`repro.appmodel` -- application model: actor implementations with
  WCET / memory / token-size metrics, multiple implementations per actor.
* :mod:`repro.arch` -- MAMPS architecture template: tiles, FSL links,
  SDM mesh NoC, FPGA area model.
* :mod:`repro.comm` -- the parameterized interconnect communication model of
  Fig. 4 (token serialization, latency-rate channel, deserialization).
* :mod:`repro.mapping` -- the SDF3-style mapping flow: binding, routing,
  static-order scheduling, buffer allocation, throughput guarantee.
* :mod:`repro.mamps` -- platform generation: netlist, per-tile software,
  XPS-style project bundle, and "synthesis" into a simulator platform.
* :mod:`repro.sim` -- cycle-level platform simulator (the FPGA stand-in).
* :mod:`repro.mjpeg` -- the MJPEG decoder case study of Section 6.
* :mod:`repro.flow` -- the end-to-end design flow driver and reporting.

Quickstart::

    from repro.flow import DesignFlow
    from repro.mjpeg import build_mjpeg_application
    from repro.arch import architecture_from_template

    app = build_mjpeg_application()
    arch = architecture_from_template(tiles=5, interconnect="fsl")
    flow = DesignFlow(app, arch)
    result = flow.run()
    print(result.guaranteed_throughput, result.measured_throughput)
"""

__version__ = "1.0.0"

from repro.exceptions import (
    ArchitectureError,
    BitstreamError,
    DeadlockError,
    GenerationError,
    GraphError,
    InconsistentGraphError,
    MappingError,
    ReproError,
    RoutingError,
    SimulationError,
    ThroughputConstraintError,
)

__all__ = [
    "__version__",
    "ReproError",
    "GraphError",
    "InconsistentGraphError",
    "DeadlockError",
    "ArchitectureError",
    "RoutingError",
    "MappingError",
    "ThroughputConstraintError",
    "GenerationError",
    "SimulationError",
    "BitstreamError",
]
