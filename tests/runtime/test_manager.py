"""PlatformManager: admission, departure, migration, replay."""

import dataclasses

import pytest

import repro.runtime.manager as manager_module
from repro.artifacts import ArtifactStore
from repro.artifacts.schema import decode_fraction
from repro.exceptions import AdmissionError, UnknownAppError
from repro.flow.spec import ArchSpec
from repro.runtime import MigrationPolicy, PlatformManager

from tests.runtime.conftest import ARCH_FSL, flow_specs


def managed(builds, store=None, policy=None):
    manager = PlatformManager(ARCH_FSL, store=store, policy=policy)
    for _, build in builds:
        manager.register_library(build.key, build.library)
    return manager


class TestAdmission:
    def test_library_admission_runs_zero_analyses(
        self, fsl_builds, monkeypatch
    ):
        # the acceptance criterion: admitting a library-covered app
        # must never re-analyze -- make any analysis attempt fatal
        def forbidden(*args, **kwargs):
            raise AssertionError(
                "admission of a library-covered app ran an analysis"
            )

        monkeypatch.setattr(
            manager_module, "map_application", forbidden
        )
        manager = managed(fsl_builds)
        for spec, _ in fsl_builds:
            decision = manager.admit(spec)
            assert decision["source"] == "library"
            assert decision["analyses"] == 0
        assert manager.counters["analyses"] == 0
        assert manager.counters["admissions"] == len(fsl_builds)

    def test_admissions_occupy_disjoint_tiles(self, fsl_builds):
        manager = managed(fsl_builds)
        seen = set()
        for spec, _ in fsl_builds:
            tiles = set(manager.admit(spec)["tiles"])
            assert not tiles & seen
            seen |= tiles

    def test_spiral_fallback_covers_unknown_apps(self, fsl_builds):
        manager = PlatformManager(ARCH_FSL)  # no libraries at all
        spec, _ = fsl_builds[0]
        decision = manager.admit(spec)
        assert decision["source"] == "spiral"
        assert decision["analyses"] == 1
        assert manager.counters["analyses"] == 1

    def test_full_platform_rejects_without_degrading_survivors(
        self, fsl_builds
    ):
        tiny = ArchSpec(tiles=1, interconnect="fsl")
        specs = flow_specs("splitjoin", 2, 3, tiny)
        manager = PlatformManager(tiny)
        first = manager.admit(specs[0])
        digest = manager.state_digest()
        with pytest.raises(AdmissionError):
            manager.admit(specs[1])
        # the rejection left the platform byte-identical
        assert manager.state_digest() == digest
        assert manager.counters["rejections"] == 1
        assert manager._apps[first["app_id"]].guarantee is not None

    def test_architecture_mismatch_is_rejected(self, fsl_builds):
        spec, _ = fsl_builds[0]
        other = PlatformManager(
            dataclasses.replace(ARCH_FSL, tiles=2)
        )
        with pytest.raises(AdmissionError, match="targets"):
            other.admit(spec)


class TestDeparture:
    def test_departure_releases_exactly_what_admission_claimed(
        self, fsl_builds
    ):
        manager = managed(fsl_builds)
        before = manager.residual.snapshot()
        admitted = [manager.admit(spec) for spec, _ in fsl_builds]
        for decision in admitted:
            outcome = manager.depart(decision["app_id"])
            assert outcome["freed_tiles"] == decision["tiles"]
        assert manager.residual.snapshot() == before
        assert manager.apps() == ()

    def test_unknown_app_raises_typed_error(self, fsl_builds):
        manager = managed(fsl_builds)
        with pytest.raises(UnknownAppError):
            manager.depart("app-999999")

    def test_departure_migrates_survivor_to_a_better_point(
        self, fsl_builds
    ):
        manager = managed(fsl_builds)
        first = manager.admit(fsl_builds[0][0])
        second = manager.admit(fsl_builds[1][0])
        outcome = manager.depart(first["app_id"], migrate=True)
        assert len(outcome["migrations"]) == 1
        moved = outcome["migrations"][0]
        assert moved["app_id"] == second["app_id"]
        # strictly better throughput, with the downtime accounted
        survivor = manager._apps[second["app_id"]]
        assert survivor.guarantee > decode_fraction(second["guarantee"])
        assert moved["downtime_cycles"] > 0
        assert manager.counters["migrations"] == 1

    def test_migration_policy_can_veto_every_move(self, fsl_builds):
        manager = managed(
            fsl_builds, policy=MigrationPolicy(enabled=False)
        )
        first = manager.admit(fsl_builds[0][0])
        manager.admit(fsl_builds[1][0])
        outcome = manager.depart(first["app_id"], migrate=True)
        assert outcome["migrations"] == []
        assert manager.counters["migrations"] == 0


class TestReplay:
    def test_journal_replays_to_byte_identical_state(
        self, fsl_builds, tmp_path
    ):
        store = ArtifactStore(tmp_path / "artifacts")
        manager = managed(fsl_builds, store=store)
        first = manager.admit(fsl_builds[0][0])
        manager.admit(fsl_builds[1][0])
        manager.admit(fsl_builds[0][0])
        manager.depart(first["app_id"], migrate=True)

        replayed = PlatformManager.open(store=store)
        assert replayed is not None
        assert replayed.state_digest() == manager.state_digest()
        # journaled transitions replay; rejections are not state
        for counter in ("admissions", "departures", "migrations"):
            assert replayed.counters[counter] == \
                manager.counters[counter]

    def test_open_without_configuration_returns_none(self, tmp_path):
        assert PlatformManager.open(store=None) is None
        store = ArtifactStore(tmp_path / "artifacts")
        assert PlatformManager.open(store=store) is None

    def test_open_rejects_a_conflicting_architecture(
        self, fsl_builds, tmp_path
    ):
        store = ArtifactStore(tmp_path / "artifacts")
        PlatformManager(ARCH_FSL, store=store)
        with pytest.raises(AdmissionError, match="different"):
            PlatformManager.open(
                store=store,
                arch_spec=dataclasses.replace(ARCH_FSL, tiles=2),
            )

    def test_open_resumes_app_id_allocation(
        self, fsl_builds, tmp_path
    ):
        store = ArtifactStore(tmp_path / "artifacts")
        manager = managed(fsl_builds, store=store)
        first = manager.admit(fsl_builds[0][0])
        replayed = PlatformManager.open(store=store)
        for _, build in fsl_builds:
            replayed.register_library(build.key, build.library)
        second = replayed.admit(fsl_builds[1][0])
        assert second["app_id"] != first["app_id"]
