"""Reusable actor-subgraph templates.

The ``mixed`` family (and the structured families' bodies) are composed
from small reusable subgraphs -- the "litex-style" composition of the
roadmap: each template appends a few actors and internal edges to a
growing graph and reports its *entry* and *exit* ports, and the composer
chains templates by connecting ``exit -> entry`` bridges.  Bridges are
tree edges (they never close a cycle), so the composer may pick
arbitrary rates for them without breaking consistency; cycles only occur
*inside* the ``loop`` template, which carries its own initial tokens and
is live by construction.

Every template draws its sizes from the caller's ``random.Random``, so a
scenario seed fully determines the composed graph.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.sdf.graph import SDFGraph

#: instantiate(graph, prefix, rng, wcet_of, token_size_of) -> (entry, exit)
Instantiator = Callable[
    [SDFGraph, str, random.Random, Callable[[], int], Callable[[], int]],
    Tuple[str, str],
]


@dataclass(frozen=True)
class SubgraphTemplate:
    """One reusable subgraph shape.

    ``actors_min``/``actors_max`` bound how many actors an instance
    adds; the composer uses them to respect the scenario's actor budget.
    """

    name: str
    actors_min: int
    actors_max: int
    instantiate: Instantiator


def _stage(graph, prefix, rng, wcet_of, token_size_of):
    name = f"{prefix}s0"
    graph.add_actor(name, execution_time=wcet_of())
    return name, name


def _pipeline(graph, prefix, rng, wcet_of, token_size_of):
    length = rng.randint(2, 3)
    names = [f"{prefix}p{i}" for i in range(length)]
    for name in names:
        graph.add_actor(name, execution_time=wcet_of())
    for i in range(length - 1):
        graph.add_edge(
            f"{prefix}pe{i}", names[i], names[i + 1],
            token_size=token_size_of(),
        )
    return names[0], names[-1]


def _splitjoin(graph, prefix, rng, wcet_of, token_size_of):
    branches = rng.randint(2, 3)
    src, snk = f"{prefix}src", f"{prefix}snk"
    graph.add_actor(src, execution_time=wcet_of())
    graph.add_actor(snk, execution_time=wcet_of())
    for b in range(branches):
        branch = f"{prefix}b{b}"
        graph.add_actor(branch, execution_time=wcet_of())
        repeat = rng.randint(1, 3)
        graph.add_edge(
            f"{prefix}sp{b}", src, branch,
            production=repeat, consumption=1,
            token_size=token_size_of(),
        )
        graph.add_edge(
            f"{prefix}jn{b}", branch, snk,
            production=1, consumption=repeat,
            token_size=token_size_of(),
        )
    return src, snk


def _diamond(graph, prefix, rng, wcet_of, token_size_of):
    top, bottom = f"{prefix}top", f"{prefix}bot"
    graph.add_actor(top, execution_time=wcet_of())
    graph.add_actor(bottom, execution_time=wcet_of())
    for arm in ("l", "r"):
        actor = f"{prefix}{arm}"
        graph.add_actor(actor, execution_time=wcet_of())
        repeat = rng.randint(1, 3)
        graph.add_edge(
            f"{prefix}f{arm}", top, actor,
            production=repeat, consumption=1,
            token_size=token_size_of(),
        )
        graph.add_edge(
            f"{prefix}j{arm}", actor, bottom,
            production=1, consumption=repeat,
            token_size=token_size_of(),
        )
    return top, bottom


def _loop(graph, prefix, rng, wcet_of, token_size_of):
    """A 2-3 actor cycle carrying its own tokens (locally live)."""
    length = rng.randint(2, 3)
    names = [f"{prefix}l{i}" for i in range(length)]
    for name in names:
        graph.add_actor(name, execution_time=wcet_of())
    for i in range(length - 1):
        graph.add_edge(
            f"{prefix}le{i}", names[i], names[i + 1],
            token_size=token_size_of(),
        )
    graph.add_edge(
        f"{prefix}lback", names[-1], names[0],
        initial_tokens=rng.randint(1, 2),
        token_size=token_size_of(),
    )
    return names[0], names[-1]


TEMPLATES: Dict[str, SubgraphTemplate] = {
    template.name: template
    for template in (
        SubgraphTemplate("stage", 1, 1, _stage),
        SubgraphTemplate("pipeline", 2, 3, _pipeline),
        SubgraphTemplate("splitjoin", 4, 5, _splitjoin),
        SubgraphTemplate("diamond", 4, 4, _diamond),
        SubgraphTemplate("loop", 2, 3, _loop),
    )
}
