"""Figure 6b: measured vs. predicted worst-case throughput, SDM NoC.

Same experiment as Fig. 6a on the NoC-interconnect platform.  Additional
shape check: the NoC's higher latency and lower per-connection bandwidth
never *increase* the throughput guarantee relative to FSL (Section 5.3.1:
"more flexibility at the cost of a larger implementation and a higher
latency").
"""

from benchmarks.conftest import write_results
from repro.arch import architecture_from_template
from repro.flow import format_throughput_table
from repro.mapping import map_application
from repro.mjpeg import build_mjpeg_application


def test_figure6b_noc(benchmark, figure6_runner, workloads):
    comparisons = benchmark.pedantic(
        lambda: figure6_runner("noc"), rounds=1, iterations=1
    )

    table = format_throughput_table(comparisons, unit_name="MCU/Mcycle")
    path = write_results("fig6b_noc.txt", table)
    print("\n" + table + f"\n-> {path}")

    for comparison in comparisons:
        assert comparison.conservative(), (
            f"worst-case bound violated on {comparison.workload!r}"
        )

    # Cross-interconnect shape: guaranteed throughput on the NoC never
    # beats the FSL guarantee for the same application.
    app = build_mjpeg_application(workloads["synthetic"])
    fsl = map_application(
        app, architecture_from_template(5, "fsl"), fixed={"VLD": "tile0"}
    ).guaranteed_throughput
    noc = map_application(
        app, architecture_from_template(5, "noc"), fixed={"VLD": "tile0"}
    ).guaranteed_throughput
    assert noc <= fsl
