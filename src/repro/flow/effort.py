"""Designer-effort accounting (Table 1).

The top half of Table 1 is human work (parallelizing the code, creating
the SDF graph, gathering metrics, writing the application model) -- those
entries are constants quoted from the paper.  The bottom half is what the
tool flow automates; :class:`EffortReport` collects measured wall-clock
timings for those steps so the benchmark can regenerate the table.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

#: The manual steps of Table 1 with the paper's reported effort.
TABLE1_MANUAL_STEPS: Tuple[Tuple[str, str], ...] = (
    ("Parallelizing the MJPEG code", "< 3 days"),
    ("Creating the SDF graph", "5 minutes"),
    ("Gathering required actor metrics", "1 day"),
    ("Creating application model", "1 hour"),
)

#: The automated steps of Table 1, in flow order.
TABLE1_AUTOMATED_STEPS: Tuple[str, ...] = (
    "Generating architecture model",
    "Mapping the design (SDF3)",
    "Generating Xilinx project (MAMPS)",
    "Synthesis of the system",
)


@dataclass
class StepTiming:
    """One automated step's measured duration."""

    name: str
    seconds: float

    def human(self) -> str:
        if self.seconds < 1.0:
            return f"{self.seconds * 1000:.0f} ms"
        if self.seconds < 120.0:
            return f"{self.seconds:.1f} s"
        return f"{self.seconds / 60.0:.1f} min"


@dataclass
class EffortReport:
    """Timings of the automated flow steps (Table 1, bottom half).

    ``engine_tiers`` counts the throughput-engine tiers exercised while
    the flow ran (``{"analytic": n, "vectorized": m, "reference": k}``,
    zero entries elided) -- it shows how often the analytic fast path
    actually engaged during mapping and buffer sizing.
    """

    timings: List[StepTiming] = field(default_factory=list)
    engine_tiers: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def step(self, name: str) -> Iterator[None]:
        """Context manager measuring one named step."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.timings.append(
                StepTiming(name=name, seconds=time.perf_counter() - start)
            )

    def seconds_of(self, name: str) -> float:
        for timing in self.timings:
            if timing.name == name:
                return timing.seconds
        raise KeyError(f"no timing recorded for step {name!r}")

    def total_automated_seconds(self) -> float:
        return sum(t.seconds for t in self.timings)

    def as_table(self) -> str:
        """Render the full Table 1: manual rows (paper constants) then the
        measured automated rows."""
        width = max(
            [len(name) for name, _ in TABLE1_MANUAL_STEPS]
            + [len(t.name) for t in self.timings]
        )
        lines = [f"{'Step':<{width}}  Time spent"]
        lines.append("-" * (width + 14))
        for name, effort in TABLE1_MANUAL_STEPS:
            lines.append(f"{name:<{width}}  {effort}")
        for timing in self.timings:
            lines.append(
                f"{timing.name:<{width}}  {timing.human()} (automated)"
            )
        if self.engine_tiers:
            counts = ", ".join(
                f"{tier}={count}"
                for tier, count in sorted(self.engine_tiers.items())
                if count
            )
            lines.append(f"throughput engine calls: {counts}")
        return "\n".join(lines)
