"""Tests for the seeded traffic planner (repro.loadgen.traffic)."""

import pytest

from repro.loadgen import (
    LoadgenError,
    arrival_offsets,
    build_traffic,
    request_pool,
    request_sequence,
)


class TestRequestPool:
    def test_same_seed_same_documents(self):
        assert request_pool("chain", 3, seed=5) == request_pool(
            "chain", 3, seed=5
        )

    def test_documents_are_distinct_flow_specs(self):
        pool = request_pool("mixed", 4, seed=9)
        assert len(pool) == 4
        names = [doc["name"] for doc in pool]
        assert len(set(names)) == 4
        # each entry is a parseable FlowSpec document
        from repro.flow.spec import FlowSpec

        for doc in pool:
            assert FlowSpec.from_dict(doc).name == doc["name"]

    def test_rejects_empty_pool(self):
        with pytest.raises(LoadgenError, match="unique must be >= 1"):
            request_pool("chain", 0, seed=1)


class TestRequestSequence:
    def test_deterministic_and_in_range(self):
        first = request_sequence(3, 50, seed=2)
        assert first == request_sequence(3, 50, seed=2)
        assert len(first) == 50
        assert set(first) <= {0, 1, 2}

    def test_duplicates_occur(self):
        # duplicate-heavy by design: far more requests than documents
        assert len(set(request_sequence(2, 40, seed=3))) <= 2

    def test_validation(self):
        with pytest.raises(LoadgenError, match="pool_size"):
            request_sequence(0, 10, seed=1)
        with pytest.raises(LoadgenError, match="requests"):
            request_sequence(2, 0, seed=1)


class TestArrivalOffsets:
    def test_strictly_increasing_and_deterministic(self):
        offsets = arrival_offsets(100, rps=50.0, seed=4)
        assert offsets == arrival_offsets(100, rps=50.0, seed=4)
        assert all(b > a for a, b in zip(offsets, offsets[1:]))

    def test_mean_gap_tracks_the_rate(self):
        offsets = arrival_offsets(2000, rps=40.0, seed=8)
        mean_gap = offsets[-1] / len(offsets)
        assert 1 / 40.0 * 0.8 < mean_gap < 1 / 40.0 * 1.2

    def test_validation(self):
        with pytest.raises(LoadgenError, match="rps must be > 0"):
            arrival_offsets(10, rps=0.0, seed=1)
        with pytest.raises(LoadgenError, match="requests"):
            arrival_offsets(0, rps=1.0, seed=1)


class TestBuildTraffic:
    def test_plan_is_fully_deterministic(self):
        kwargs = dict(
            family="mixed", unique=3, requests=20, rps=25.0, seed=6,
            replicas=2,
        )
        assert build_traffic(**kwargs) == build_traffic(**kwargs)

    def test_round_robin_replica_fanout(self):
        plan = build_traffic(
            "chain", unique=2, requests=10, rps=10.0, seed=1,
            replicas=3,
        )
        assert [r.replica_index for r in plan] == [
            i % 3 for i in range(10)
        ]

    def test_documents_come_from_the_pool(self):
        plan = build_traffic(
            "chain", unique=2, requests=12, rps=10.0, seed=1,
        )
        pool = request_pool("chain", 2, seed=1)
        for request in plan:
            assert request.document == pool[request.pool_index]
            assert request.spec_name == request.document["name"]

    def test_rejects_bad_replica_count(self):
        with pytest.raises(LoadgenError, match="replicas"):
            build_traffic("chain", requests=5, rps=1.0, seed=1,
                          replicas=0)
