"""Actor implementations.

Listing 1 of the paper shows the C shape of an actor: one implementation
function whose parameters correspond one-to-one to the actor's *explicit*
edges, plus an optional initialization function that produces the initial
tokens on output edges (the ``actor_A_init`` example).  Implicit edges
(state self-edges, buffer back-edges, static-order edges) get no parameter;
actor state lives in static variables.

The Python equivalents:

* the implementation function receives a :class:`FiringContext` -- consumed
  token values per explicit input edge plus a ``state`` dict standing in for
  the C static variables -- and returns a :class:`FiringOutput` with the
  produced token values per explicit output edge and the firing's cycle
  count;
* the init function receives the ``state`` dict and returns initial token
  values for the output edges that carry initial tokens.

Implementations are typed by processing element (``pe_type``); an actor may
carry several, "where actor implementations for different processing
elements are likely to have different metrics" (Section 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.appmodel.metrics import ImplementationMetrics
from repro.exceptions import GraphError


@dataclass
class FiringContext:
    """Inputs of one firing.

    Attributes
    ----------
    inputs:
        Explicit input edge name -> list of exactly ``consumption`` token
        values, in FIFO order.
    state:
        Mutable per-actor-instance dict; the stand-in for C static
        variables (Listing 1's ``local_variable_A``).
    firing_index:
        Zero-based count of this actor's firings, handy for data-dependent
        cost models.
    """

    inputs: Dict[str, List[object]] = field(default_factory=dict)
    state: Dict[str, object] = field(default_factory=dict)
    firing_index: int = 0

    def single(self, edge_name: str) -> object:
        """The sole token on an edge with consumption rate 1."""
        tokens = self.inputs[edge_name]
        if len(tokens) != 1:
            raise GraphError(
                f"edge {edge_name!r} delivered {len(tokens)} tokens; "
                "single() expects a consumption rate of 1"
            )
        return tokens[0]


@dataclass
class FiringOutput:
    """Result of one firing.

    Attributes
    ----------
    outputs:
        Explicit output edge name -> list of exactly ``production`` token
        values.
    cycles:
        Execution time of this firing in PE clock cycles.  Must never
        exceed the implementation's WCET metric; the platform simulator
        checks this invariant at run time.
    """

    outputs: Dict[str, List[object]] = field(default_factory=dict)
    cycles: int = 0


ActorFunction = Callable[[FiringContext], FiringOutput]
InitFunction = Callable[[Dict[str, object]], Dict[str, List[object]]]


@dataclass
class ActorImplementation:
    """One implementation of an actor for one processing-element type.

    Parameters
    ----------
    actor:
        Name of the SDF actor this implements.
    pe_type:
        Processing-element type the implementation targets (must match a
        PE type in the architecture template, e.g. ``"microblaze"``).
    metrics:
        WCET and memory metrics on that PE type.
    function:
        Optional functional model; ``None`` gives a timing-only actor
        (the simulator then busy-waits for the WCET and moves opaque
        tokens).
    init_function:
        Optional initializer producing the initial token *values* for
        output edges that carry initial tokens (Listing 1's
        ``actor_A_init``).
    argument_order:
        Explicit edge names in the order of the C function's parameters --
        the "relation between the function arguments of the implementation
        and the edges of the graph".  Used by the MAMPS code generator to
        emit the wrapper call.
    name:
        Identifier of the implementation; defaults to
        ``"{actor}_{pe_type}"``.
    """

    actor: str
    pe_type: str
    metrics: ImplementationMetrics
    function: Optional[ActorFunction] = None
    init_function: Optional[InitFunction] = None
    argument_order: List[str] = field(default_factory=list)
    name: str = ""

    def __post_init__(self) -> None:
        if not self.actor:
            raise GraphError("implementation must name its actor")
        if not self.pe_type:
            raise GraphError(
                f"implementation for {self.actor!r} must name a PE type"
            )
        if not self.name:
            self.name = f"{self.actor}_{self.pe_type}"

    @property
    def wcet(self) -> int:
        return self.metrics.wcet

    def fire(self, context: FiringContext) -> FiringOutput:
        """Execute the functional model (requires ``function``)."""
        if self.function is None:
            raise GraphError(
                f"implementation {self.name!r} has no functional model"
            )
        return self.function(context)
