#!/usr/bin/env python3
"""Batch-serving flows from one shared artifact workspace.

This example demonstrates the whole persistable-flow story end to end:

1. ``run_batch`` executes two scenarios -- the two-application use-case
   spec and the spiral-NoC scenario -- concurrently against one shared
   workspace, persisting every stage as a canonical artifact;
2. a second batch over the same workspace resumes *every* stage (the
   fingerprint-keyed artifacts are unchanged), which is what makes the
   flow servable: answering a repeated scenario costs a file read;
3. the artifacts are plain canonical JSON, so the decoded mapping of the
   two-application spec is inspected straight from the workspace.

Run:  python examples/batch_use_cases.py
"""

import sys
import tempfile
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent
sys.path.insert(0, str(EXAMPLES.parent / "src"))

from repro.artifacts import ArtifactStore, from_payload  # noqa: E402
from repro.flow import run_batch  # noqa: E402

SPECS = [
    EXAMPLES / "use_cases_two_apps.toml",
    EXAMPLES / "scenario_spiral_noc.toml",
]


def main() -> None:
    workspace = Path(tempfile.mkdtemp(prefix="repro-batch-"))
    print(f"workspace: {workspace}\n")

    print("=== first batch (cold: every stage computes) ===")
    first = run_batch(SPECS, workspace, jobs=2)
    print(first.as_table())

    print("\n=== second batch (warm: every stage resumes) ===")
    second = run_batch(SPECS, workspace, jobs=2)
    print(second.as_table())
    assert second.resume_rate() == 1.0

    # artifacts are plain canonical JSON: read the use-case union back
    store = ArtifactStore(workspace / "artifacts")
    (key,) = store.keys("use-case-mapping")
    union = from_payload(store.get("use-case-mapping", key))
    print("\n=== use-case union, decoded from the workspace ===")
    print(union.as_table())
    for name in sorted(union.results):
        met = union.results[name].constraint_met
        print(f"  {name}: constraint {'met' if met else 'MISSED'}")


if __name__ == "__main__":
    main()
