"""Tests for actor binding and cost functions."""

import pytest

from repro.arch import architecture_from_template
from repro.exceptions import MappingError
from repro.mapping import CostWeights, bind_actors
from repro.mapping.binding import tile_loads
from repro.mapping.costs import binding_cost

from tests.mapping.conftest import make_impl


class TestBindActors:
    def test_every_actor_bound(self, small_app):
        arch = architecture_from_template(3)
        binding, impls = bind_actors(small_app, arch)
        assert set(binding) == {"A", "B", "C"}
        assert set(impls) == {"A", "B", "C"}
        for tile in binding.values():
            assert tile in arch.tile_names()

    def test_spreads_over_tiles(self, small_app):
        """With 3 tiles and balanced work, the binder uses all of them."""
        arch = architecture_from_template(3)
        binding, _ = bind_actors(small_app, arch)
        assert len(set(binding.values())) == 3

    def test_single_tile_accepts_all(self, small_app):
        arch = architecture_from_template(1)
        binding, _ = bind_actors(small_app, arch)
        assert set(binding.values()) == {"tile0"}

    def test_fixed_binding_respected(self, small_app):
        arch = architecture_from_template(3)
        binding, _ = bind_actors(small_app, arch, fixed={"A": "tile2"})
        assert binding["A"] == "tile2"

    def test_memory_pressure_forces_spread(self, chain_app):
        """Actors whose data barely fits one per tile must spread."""
        big = [
            make_impl(a, w, instr=100 * 1024, data=100 * 1024)
            for a, w in (("P", 500), ("Q", 700), ("R", 300))
        ]
        chain_app.implementations = big
        chain_app.__post_init__()
        arch = architecture_from_template(3)
        binding, _ = bind_actors(chain_app, arch)
        assert len(set(binding.values())) == 3

    def test_unbindable_when_memory_too_small(self, chain_app):
        huge = [
            make_impl(a, w, instr=130 * 1024, data=100 * 1024)
            for a, w in (("P", 500), ("Q", 700), ("R", 300))
        ]
        chain_app.implementations = huge
        chain_app.__post_init__()
        arch = architecture_from_template(3)
        with pytest.raises(MappingError, match="cannot be bound"):
            bind_actors(chain_app, arch)

    def test_missing_pe_type_unbindable(self, chain_app):
        odd = [make_impl("P", 500, pe_type="dsp"),
               make_impl("Q", 700), make_impl("R", 300)]
        chain_app.implementations = odd
        chain_app.__post_init__()
        arch = architecture_from_template(2)
        with pytest.raises(MappingError, match="cannot be bound"):
            bind_actors(chain_app, arch)

    def test_heterogeneous_selects_matching_implementation(self, chain_app):
        """Heterogeneous platform: the binder picks the implementation
        matching each tile's PE type automatically (Section 7)."""
        from repro.arch import ArchitectureModel, FSLInterconnect, Tile
        from repro.arch.components import ProcessorType
        from repro.arch.tile import Memory

        dsp = ProcessorType(name="dsp")
        arch = ArchitectureModel(
            name="hetero",
            tiles=[
                Tile(name="mb0", role="master"),
                Tile(name="dsp0", processor=dsp, role="slave"),
            ],
            interconnect=FSLInterconnect(),
        )
        # Q is 4x faster on the DSP.
        chain_app.implementations = [
            make_impl("P", 500),
            make_impl("Q", 700),
            make_impl("Q", 175, pe_type="dsp"),
            make_impl("R", 300),
        ]
        chain_app.__post_init__()
        binding, impls = bind_actors(chain_app, arch)
        assert binding["Q"] == "dsp0"
        assert impls["Q"].pe_type == "dsp"

    def test_tile_loads(self, small_app):
        arch = architecture_from_template(1)
        binding, impls = bind_actors(small_app, arch)
        loads = tile_loads(small_app, binding, impls)
        # 1*400 + 2*300 + 1*200
        assert loads == {"tile0": 1200}


class TestCosts:
    def test_communication_term_prefers_colocation(self, chain_app):
        arch = architecture_from_template(2)
        binding = {"P": "tile0"}
        same = binding_cost(
            chain_app, arch, "Q", "tile0", "microblaze",
            binding, {"tile0": 500}, {"tile0": 6144},
            CostWeights(processing=0, memory=0, communication=1, latency=0),
        )
        other = binding_cost(
            chain_app, arch, "Q", "tile1", "microblaze",
            binding, {"tile0": 500}, {"tile0": 6144},
            CostWeights(processing=0, memory=0, communication=1, latency=0),
        )
        assert same < other

    def test_processing_term_prefers_idle_tile(self, chain_app):
        arch = architecture_from_template(2)
        weights = CostWeights(processing=1, memory=0, communication=0,
                              latency=0)
        busy = binding_cost(
            chain_app, arch, "Q", "tile0", "microblaze",
            {"P": "tile0"}, {"tile0": 500}, {}, weights,
        )
        idle = binding_cost(
            chain_app, arch, "Q", "tile1", "microblaze",
            {"P": "tile0"}, {"tile0": 500}, {}, weights,
        )
        assert idle < busy

    def test_latency_term_prefers_near_tiles_on_noc(self, chain_app):
        arch = architecture_from_template(9, "noc")  # 3x3 mesh
        weights = CostWeights(processing=0, memory=0, communication=0,
                              latency=1)
        near = binding_cost(
            chain_app, arch, "Q", "tile1", "microblaze",
            {"P": "tile0"}, {}, {}, weights,
        )
        far = binding_cost(
            chain_app, arch, "Q", "tile8", "microblaze",
            {"P": "tile0"}, {}, {}, weights,
        )
        assert near < far

    def test_memory_term_scales_with_usage(self, chain_app):
        arch = architecture_from_template(2)
        weights = CostWeights(processing=0, memory=1, communication=0,
                              latency=0)
        empty = binding_cost(
            chain_app, arch, "Q", "tile0", "microblaze", {}, {}, {}, weights
        )
        crowded = binding_cost(
            chain_app, arch, "Q", "tile0", "microblaze",
            {}, {}, {"tile0": 100 * 1024}, weights,
        )
        assert crowded > empty
