"""On-disk artifact workspace: content-keyed, atomic, thread-safe.

An :class:`ArtifactStore` lays artifacts out as
``<root>/<kind>/<key>.json`` with canonical encoding, so a workspace
directory is diffable, rsync-able and byte-identical for identical
content regardless of which process, thread or batch worker wrote it.
Writes go through a temporary file in the target directory followed by
an atomic rename, which makes concurrent writers of the *same* key safe:
the loser overwrites the winner with identical bytes.

:class:`PersistentEvaluationCache` plugs the store under the
design-space exploration engine's in-memory
:class:`~repro.flow.dse.EvaluationCache`, making evaluation outcomes
durable across processes: a cold process re-running a sweep against the
same workspace performs zero mapping analyses.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.artifacts.schema import (
    ArtifactError,
    canonical_json,
    check_envelope,
    from_payload,
    to_payload,
)
from repro.flow.dse import EvaluationCache, EvaluationOutcome

_SAFE_KEY_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_."
)


def _check_component(value: str, what: str) -> str:
    if not value or not set(value) <= _SAFE_KEY_CHARS or value[0] == ".":
        raise ArtifactError(
            f"unsafe artifact {what} {value!r}; use "
            "[A-Za-z0-9._-] and no leading dot"
        )
    return value


def atomic_write_text(target: Path, text: str) -> None:
    """Write ``text`` to ``target`` via tmpfile + atomic rename.

    Concurrent writers of the same path are safe: readers only ever see
    a complete document, and the last writer wins.  Shared by the store
    and the session/batch report writers.
    """
    try:
        fd, tmp_name = tempfile.mkstemp(
            prefix=".tmp-", suffix=".json", dir=str(target.parent)
        )
    except OSError as error:
        raise ArtifactError(
            f"cannot write {target}: {error}"
        ) from None
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class ArtifactStore:
    """A directory of canonical artifacts, addressed by (kind, key)."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise ArtifactError(
                f"cannot create artifact workspace {self.root}: {error}"
            ) from None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------
    def path_for(self, kind: str, key: str) -> Path:
        return (
            self.root
            / _check_component(kind, "kind")
            / f"{_check_component(key, 'key')}.json"
        )

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------
    def put(self, kind: str, key: str, payload: Dict[str, Any]) -> Path:
        """Write one artifact atomically; returns its path.

        The payload must already be enveloped (``schema_version`` +
        ``kind``); the envelope kind must match the addressed kind so a
        store can never hand back an object of an unexpected type.
        """
        check_envelope(payload, kind)
        target = self.path_for(kind, key)
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise ArtifactError(
                f"cannot write artifact {target}: {error}"
            ) from None
        atomic_write_text(target, canonical_json(payload) + "\n")
        return target

    def get(self, kind: str, key: str) -> Optional[Dict[str, Any]]:
        """Read one artifact payload, or ``None`` when absent.

        Corrupt documents -- truncated or otherwise unparseable JSON, or
        a missing envelope -- also read as *absent*: store writes are
        atomic, so a corrupt file can only come from outside (a torn
        copy, a filled disk, a crashed foreign writer), and the safe
        response is a cache miss that recomputes and atomically rewrites
        the entry rather than an exception that wedges every consumer of
        the workspace.  Two failure modes still raise deliberately: a
        *newer* ``schema_version`` (the file is healthy; this build is
        too old to read it) and an envelope ``kind`` mismatch (an
        addressing bug in the caller, not data corruption).
        """
        document = self._read_document(kind, key)
        return None if document is None else document[1]

    def get_text(self, kind: str, key: str) -> Optional[str]:
        """The exact on-disk text of one artifact, or ``None``.

        The flow service's read-through: the document is validated (it
        must parse and carry the right envelope; corrupt files read as
        absent, exactly like :meth:`get`) but served verbatim, so a
        response built from ``get_text`` is byte-identical to the stored
        canonical artifact.
        """
        document = self._read_document(kind, key)
        return None if document is None else document[0]

    def _read_document(
        self, kind: str, key: str
    ) -> Optional[Tuple[str, Dict[str, Any]]]:
        """(text, validated payload) of one artifact; absent/corrupt -> None."""
        target = self.path_for(kind, key)
        try:
            text = target.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError as error:
            raise ArtifactError(
                f"cannot read artifact {target}: {error}"
            ) from None
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            return None  # corrupt: treated as a miss (see get())
        checked = check_envelope(payload, kind, lenient=True)
        if checked is None:
            return None  # envelope missing/mangled: also corrupt
        return text, checked

    def has(self, kind: str, key: str) -> bool:
        return self.path_for(kind, key).exists()

    def put_object(self, key: str, obj: Any) -> Path:
        """Serialize a domain object under its own kind."""
        payload = to_payload(obj)
        return self.put(payload["kind"], key, payload)

    def get_object(self, kind: str, key: str) -> Optional[Any]:
        """Read and decode one artifact, or ``None`` when absent."""
        payload = self.get(kind, key)
        return None if payload is None else from_payload(payload)

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------
    def kinds(self) -> Tuple[str, ...]:
        if not self.root.exists():
            return ()
        return tuple(
            sorted(p.name for p in self.root.iterdir() if p.is_dir())
        )

    def keys(self, kind: str) -> Tuple[str, ...]:
        directory = self.root / _check_component(kind, "kind")
        if not directory.exists():
            return ()
        return tuple(
            sorted(
                p.stem
                for p in directory.glob("*.json")
                if not p.name.startswith(".")
            )
        )

    def __len__(self) -> int:
        return sum(len(self.keys(kind)) for kind in self.kinds())


class PersistentEvaluationCache(EvaluationCache):
    """An :class:`EvaluationCache` write-through-backed by a store.

    Lookups hit the in-memory map first, then the workspace; misses that
    later complete are written to both.  Because keys are the content
    addresses of :func:`repro.flow.fingerprint.evaluation_key`, any
    process pointing at the same workspace shares the cache -- the
    "durable across processes" half of the FlowSession resume story.
    Disk hits count as cache hits in :attr:`stats`.
    """

    KIND = "evaluation-outcome"

    def __init__(self, store: ArtifactStore) -> None:
        super().__init__()
        self.artifacts = store

    def get(self, key: str) -> Optional[EvaluationOutcome]:
        with self._lock:
            outcome = self._store.get(key)
            if outcome is not None:
                self.stats.hits += 1
                return outcome
        payload = self.artifacts.get(self.KIND, key)
        if payload is not None:
            outcome = from_payload(payload)
            with self._lock:
                self._store[key] = outcome
                self.stats.hits += 1
            return outcome
        with self._lock:
            self.stats.misses += 1
        return None

    def put(self, key: str, outcome: EvaluationOutcome) -> None:
        super().put(key, outcome)
        self.artifacts.put(self.KIND, key, to_payload(outcome))
