"""Self-timed execution of SDF graphs.

*Self-timed* execution fires every actor as soon as it is ready (and, when
resource constraints are given, as soon as its processor is free and the
static-order schedule designates it).  For consistent, deadlock-free SDF
graphs self-timed execution reaches a periodic regime whose rate equals the
maximal achievable throughput [Ghamarian et al. 2006]; the state-space
throughput analysis in :mod:`repro.sdf.throughput` is built directly on this
engine, as are deadlock detection, static-order schedule construction
(:mod:`repro.mapping.scheduling`) and buffer sizing.

Semantics follow SDF3: tokens are consumed at firing *start* and produced at
firing *end*.  Concurrent firings of one actor ("auto-concurrency") are
limited by ``auto_concurrency`` (default 1, matching a software actor bound
to a processor); pass ``None`` for the unlimited theoretical semantics, in
which case every actor must have at least one input edge.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import GraphError, SimulationError
from repro.sdf.graph import SDFGraph


@dataclass(frozen=True)
class Firing:
    """One completed (or ongoing) actor firing."""

    actor: str
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass
class SimulationTrace:
    """Recorded execution: firings plus per-edge occupancy statistics."""

    firings: List[Firing] = field(default_factory=list)
    max_tokens: Dict[str, int] = field(default_factory=dict)
    completed_count: Dict[str, int] = field(default_factory=dict)

    def firings_of(self, actor: str) -> List[Firing]:
        return [f for f in self.firings if f.actor == actor]

    def makespan(self) -> int:
        return max((f.end for f in self.firings), default=0)


class SelfTimedSimulator:
    """Discrete-event self-timed executor for an SDF graph.

    Parameters
    ----------
    graph:
        The graph to execute.
    auto_concurrency:
        Maximum simultaneous firings per actor; ``None`` for unlimited.
    processor_of:
        Optional binding of actor name to processor name.  Actors bound to
        the same processor exclude one another in time.
    static_order:
        Optional per-processor cyclic firing order (actor names).  When
        given for a processor, that processor only starts the next actor in
        its order (blocking until it is ready), exactly like the lookup-table
        scheduler MAMPS generates (Section 6.3).  Actors bound to the
        processor but absent from its order are *interleaved work*: they may
        run whenever the processor is idle (the model of the communication
        library's (de)serialization calls, which happen inside the actor
        wrappers rather than as scheduled entities).  Interleaved actors get
        priority over the order head when both are ready, mirroring the
        wrapper servicing communication before dispatching the next actor.
    execution_time_of:
        Optional override returning the duration of the *k*-th firing of an
        actor (k counts from 0).  Defaults to the actor's static
        ``execution_time``.  The platform simulator uses this hook to feed
        measured, data-dependent execution times through the same engine.
    record_trace:
        Keep a full firing list (memory-heavy for long runs).
    """

    def __init__(
        self,
        graph: SDFGraph,
        auto_concurrency: Optional[int] = 1,
        processor_of: Optional[Dict[str, str]] = None,
        static_order: Optional[Dict[str, Sequence[str]]] = None,
        execution_time_of: Optional[Callable[[str, int], int]] = None,
        on_finish: Optional[Callable[[str, int], None]] = None,
        record_trace: bool = False,
    ) -> None:
        if auto_concurrency is not None and auto_concurrency < 1:
            raise GraphError("auto_concurrency must be >= 1 or None")
        self.graph = graph
        self.auto_concurrency = auto_concurrency
        self.processor_of = dict(processor_of or {})
        self.static_order = {
            proc: list(order) for proc, order in (static_order or {}).items()
        }
        self._execution_time_of = execution_time_of
        self._on_finish = on_finish
        self.record_trace = record_trace

        for proc, order in self.static_order.items():
            if not order:
                raise GraphError(f"static order for {proc!r} is empty")
            for actor in order:
                if actor not in graph:
                    raise GraphError(
                        f"static order for {proc!r} names unknown actor "
                        f"{actor!r}"
                    )
                if self.processor_of.get(actor) != proc:
                    raise GraphError(
                        f"actor {actor!r} appears in the static order of "
                        f"{proc!r} but is not bound to it"
                    )
        # Actors bound to a static-order processor but not listed in its
        # order run interleaved (communication-library work).
        in_some_order = {
            a for order in self.static_order.values() for a in order
        }
        self._interleaved: Dict[str, List[str]] = {}
        for actor, proc in self.processor_of.items():
            if proc in self.static_order and actor not in in_some_order:
                self._interleaved.setdefault(proc, []).append(actor)

        for actor in graph:
            cap = (
                actor.concurrency
                if actor.concurrency is not None
                else auto_concurrency
            )
            if cap is None and not graph.in_edges(actor.name):
                raise GraphError(
                    f"actor {actor.name!r} has no input edges; unlimited "
                    "auto-concurrency would fire it infinitely often at "
                    "time 0 (add a self-edge or set a concurrency cap)"
                )

        self.reset()

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Return to the graph's initial state at time 0."""
        self.now = 0
        self.tokens: Dict[str, int] = {
            e.name: e.initial_tokens for e in self.graph.edges
        }
        self._ongoing: Dict[str, int] = {a.name: 0 for a in self.graph}
        self._completed: Dict[str, int] = {a.name: 0 for a in self.graph}
        self._started: Dict[str, int] = {a.name: 0 for a in self.graph}
        self._queue: List[Tuple[int, int, str, int]] = []  # (end, seq, actor, start)
        self._seq = 0
        self._proc_busy_until: Dict[str, int] = {}
        self._order_pos: Dict[str, int] = {
            proc: 0 for proc in self.static_order
        }
        self.trace = SimulationTrace(
            max_tokens={e.name: e.initial_tokens for e in self.graph.edges},
            completed_count=self._completed,
        )

    @property
    def completed(self) -> Dict[str, int]:
        """Completed firing counts per actor."""
        return dict(self._completed)

    @property
    def started(self) -> Dict[str, int]:
        """Started firing counts per actor (>= completed)."""
        return dict(self._started)

    def ongoing_firings(self) -> List[Tuple[str, int]]:
        """(actor, remaining cycles) for every firing in flight, sorted.

        Remaining time is relative to :attr:`now`, which makes the tuple a
        time-shift-invariant component of the execution state -- exactly
        what recurrent-state detection needs.
        """
        return sorted(
            (actor, end - self.now) for end, _seq, actor, _start in self._queue
        )

    def state_key(self) -> Tuple:
        """Hashable, time-normalized execution state.

        Two equal keys mean the executions will evolve identically from this
        point on, which is the foundation of the periodic-phase detection in
        :mod:`repro.sdf.throughput`.
        """
        token_part = tuple(sorted(self.tokens.items()))
        firing_part = tuple(self.ongoing_firings())
        order_part = tuple(
            sorted(
                (proc, pos % len(self.static_order[proc]))
                for proc, pos in self._order_pos.items()
            )
        )
        return (token_part, firing_part, order_part)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _duration(self, actor: str) -> int:
        index = self._started[actor]
        if self._execution_time_of is not None:
            duration = self._execution_time_of(actor, index)
        else:
            duration = self.graph.actor(actor).execution_time
        if duration < 0:
            raise SimulationError(
                f"negative execution time for firing {index} of {actor!r}"
            )
        return duration

    def _concurrency_cap(self, actor: str) -> Optional[int]:
        """Per-actor concurrency limit: the actor's own setting wins over
        the simulator-wide default."""
        per_actor = self.graph.actor(actor).concurrency
        if per_actor is not None:
            return per_actor
        return self.auto_concurrency

    def _is_ready(self, actor: str) -> bool:
        cap = self._concurrency_cap(actor)
        if cap is not None and self._ongoing[actor] >= cap:
            return False
        for edge in self.graph.in_edges(actor):
            if self.tokens[edge.name] < edge.consumption:
                return False
        return True

    def _proc_free(self, proc: str) -> bool:
        return self._proc_busy_until.get(proc, 0) <= self.now

    def _start_firing(self, actor: str) -> None:
        for edge in self.graph.in_edges(actor):
            self.tokens[edge.name] -= edge.consumption
        duration = self._duration(actor)
        end = self.now + duration
        self._started[actor] += 1
        self._ongoing[actor] += 1
        heapq.heappush(self._queue, (end, self._seq, actor, self.now))
        self._seq += 1
        proc = self.processor_of.get(actor)
        if proc is not None:
            self._proc_busy_until[proc] = end

    def _finish_firing(self, actor: str, start: int) -> None:
        for edge in self.graph.out_edges(actor):
            self.tokens[edge.name] += edge.production
            if self.tokens[edge.name] > self.trace.max_tokens[edge.name]:
                self.trace.max_tokens[edge.name] = self.tokens[edge.name]
        self._ongoing[actor] -= 1
        completed_index = self._completed[actor]
        self._completed[actor] += 1
        if self.record_trace:
            self.trace.firings.append(Firing(actor, start, self.now))
        if self._on_finish is not None:
            # Called after token production, before any dependent firing
            # can start -- the hook point for value transport in the
            # platform simulator.
            self._on_finish(actor, completed_index)

    def _start_all_ready(self) -> List[str]:
        """Start every firing allowed right now; returns started actor names."""
        started: List[str] = []
        progress = True
        while progress:
            progress = False
            # Static-order processors: interleaved (communication-library)
            # work first, then the lookup-table head.
            for proc, order in self.static_order.items():
                while self._proc_free(proc):
                    interleaved = next(
                        (
                            a
                            for a in self._interleaved.get(proc, ())
                            if self._is_ready(a)
                        ),
                        None,
                    )
                    if interleaved is not None:
                        self._start_firing(interleaved)
                        started.append(interleaved)
                        progress = True
                        continue
                    actor = order[self._order_pos[proc] % len(order)]
                    if not self._is_ready(actor):
                        break
                    self._start_firing(actor)
                    self._order_pos[proc] += 1
                    started.append(actor)
                    progress = True
            # Unordered processors and unbound actors: greedy.
            for actor in self.graph:
                name = actor.name
                proc = self.processor_of.get(name)
                if proc is not None and proc in self.static_order:
                    continue  # handled above
                while self._is_ready(name) and (
                    proc is None or self._proc_free(proc)
                ):
                    self._start_firing(name)
                    started.append(name)
                    progress = True
        return started

    def step(self) -> List[Tuple[str, int]]:
        """Advance to the next completion instant.

        Starts any firings enabled at the current time first, then jumps to
        the earliest completion, finishes every firing ending then, and
        starts newly enabled firings.  Returns the list of (actor, end_time)
        completions, or an empty list when the execution is quiescent
        (deadlocked or finished).
        """
        self._start_all_ready()
        if not self._queue:
            return []
        end = self._queue[0][0]
        self.now = end
        finished: List[Tuple[str, int]] = []
        while self._queue and self._queue[0][0] == end:
            _end, _seq, actor, start = heapq.heappop(self._queue)
            self._finish_firing(actor, start)
            finished.append((actor, end))
        self._start_all_ready()
        return finished

    def run(
        self,
        max_time: Optional[int] = None,
        max_firings: Optional[int] = None,
        stop_when: Optional[Callable[["SelfTimedSimulator"], bool]] = None,
    ) -> SimulationTrace:
        """Run until quiescence or until a stop condition triggers.

        ``max_time`` bounds simulated time; ``max_firings`` bounds the total
        number of completed firings; ``stop_when`` is checked after every
        step.  At least one bound (or a graph that quiesces) is required,
        otherwise the call would not terminate.
        """
        if max_time is None and max_firings is None and stop_when is None:
            raise SimulationError(
                "run() needs max_time, max_firings or stop_when; self-timed "
                "execution of a live graph never quiesces on its own"
            )
        while True:
            finished = self.step()
            if not finished:
                return self.trace
            if max_time is not None and self.now >= max_time:
                return self.trace
            if max_firings is not None and (
                sum(self._completed.values()) >= max_firings
            ):
                return self.trace
            if stop_when is not None and stop_when(self):
                return self.trace

    def is_quiescent(self) -> bool:
        """True when nothing is running and nothing can start."""
        if self._queue:
            return False
        for actor in self.graph:
            name = actor.name
            proc = self.processor_of.get(name)
            if proc is not None and proc in self.static_order:
                order = self.static_order[proc]
                next_actor = order[self._order_pos[proc] % len(order)]
                is_interleaved = name in self._interleaved.get(proc, ())
                if (next_actor == name or is_interleaved) and self._is_ready(
                    name
                ):
                    return False
            elif self._is_ready(name) and (
                proc is None or self._proc_free(proc)
            ):
                return False
        return True
