"""Tests for the self-timed simulation engine."""

import pytest

from repro.exceptions import GraphError, SimulationError
from repro.sdf import SDFGraph, SelfTimedSimulator


def test_pipeline_executes_in_order(two_actor_pipeline):
    sim = SelfTimedSimulator(two_actor_pipeline, record_trace=True)
    sim.run(max_firings=4)
    firings = sim.trace.firings
    p_firings = [f for f in firings if f.actor == "P"]
    q_firings = [f for f in firings if f.actor == "Q"]
    # P has period 5, Q starts only after P's first completion.
    assert p_firings[0].start == 0 and p_firings[0].end == 5
    assert q_firings[0].start == 5 and q_firings[0].end == 12


def test_auto_concurrency_one_serializes_source(two_actor_pipeline):
    sim = SelfTimedSimulator(two_actor_pipeline, auto_concurrency=1,
                             record_trace=True)
    sim.run(max_time=25)
    p_firings = sim.trace.firings_of("P")
    for first, second in zip(p_firings, p_firings[1:]):
        assert second.start >= first.end


def test_auto_concurrency_two_overlaps_source(two_actor_pipeline):
    sim = SelfTimedSimulator(two_actor_pipeline, auto_concurrency=2,
                             record_trace=True)
    sim.run(max_time=25)
    p_firings = sim.trace.firings_of("P")
    overlapping = any(
        second.start < first.end
        for first, second in zip(p_firings, p_firings[1:])
    )
    assert overlapping


def test_unlimited_concurrency_requires_input_edges(two_actor_pipeline):
    with pytest.raises(GraphError, match="no input edges"):
        SelfTimedSimulator(two_actor_pipeline, auto_concurrency=None)


def test_unlimited_concurrency_with_self_edge():
    g = SDFGraph("g")
    g.add_actor("A", execution_time=3)
    g.add_actor("B", execution_time=1)
    g.add_edge("selfA", "A", "A", initial_tokens=2)
    g.add_edge("ab", "A", "B")
    sim = SelfTimedSimulator(g, auto_concurrency=None, record_trace=True)
    sim.run(max_time=3)
    # Two initial self-tokens allow exactly two concurrent firings of A.
    a_firings = [f for f in sim.trace.firings if f.actor == "A"]
    assert len([f for f in a_firings if f.start == 0]) == 2


def test_deadlocked_graph_quiesces():
    g = SDFGraph("cycle")
    g.add_actor("A", execution_time=1)
    g.add_actor("B", execution_time=1)
    g.add_edge("ab", "A", "B")
    g.add_edge("ba", "B", "A")
    sim = SelfTimedSimulator(g)
    trace = sim.run(max_time=100)
    assert sim.is_quiescent()
    assert trace.makespan() == 0
    assert sim.completed == {"A": 0, "B": 0}


def test_run_requires_a_bound(two_actor_pipeline):
    sim = SelfTimedSimulator(two_actor_pipeline)
    with pytest.raises(SimulationError, match="max_time"):
        sim.run()


def test_processor_exclusivity(two_actor_pipeline):
    """Two actors on one processor never overlap."""
    sim = SelfTimedSimulator(
        two_actor_pipeline,
        processor_of={"P": "tile0", "Q": "tile0"},
        record_trace=True,
    )
    sim.run(max_time=60)
    firings = sorted(sim.trace.firings, key=lambda f: f.start)
    for first, second in zip(firings, firings[1:]):
        assert second.start >= first.end


def test_static_order_is_followed(figure2_graph):
    order = ["A", "B", "B", "C"]
    sim = SelfTimedSimulator(
        figure2_graph,
        processor_of={"A": "t", "B": "t", "C": "t"},
        static_order={"t": order},
        record_trace=True,
    )
    sim.run(max_firings=8)
    names = [f.actor for f in sorted(sim.trace.firings,
                                     key=lambda f: (f.start, f.end))]
    assert names == ["A", "B", "B", "C", "A", "B", "B", "C"]


def test_actor_outside_order_runs_interleaved(figure2_graph):
    """Actors bound to a static-order processor but not listed in its order
    model communication-library work: they run when the PE is idle."""
    sim = SelfTimedSimulator(
        figure2_graph,
        processor_of={"A": "t", "B": "t"},
        static_order={"t": ["A"]},  # B interleaves
        record_trace=True,
    )
    sim.run(max_firings=6)
    assert sim.completed["B"] > 0
    # A and B still never overlap: same processor.
    firings = sorted(
        (f for f in sim.trace.firings if f.actor in "AB"),
        key=lambda f: f.start,
    )
    for first, second in zip(firings, firings[1:]):
        assert second.start >= first.end


def test_static_order_unknown_actor_rejected(figure2_graph):
    with pytest.raises(GraphError, match="unknown actor"):
        SelfTimedSimulator(
            figure2_graph,
            processor_of={"A": "t"},
            static_order={"t": ["A", "Zed"]},
        )


def test_static_order_requires_binding(figure2_graph):
    with pytest.raises(GraphError, match="not bound"):
        SelfTimedSimulator(
            figure2_graph,
            processor_of={"A": "other"},
            static_order={"t": ["A"]},
        )


def test_blocking_static_order_quiesces():
    """An order that demands a never-ready actor blocks the processor."""
    g = SDFGraph("g")
    g.add_actor("A", execution_time=1)
    g.add_actor("B", execution_time=1)
    g.add_edge("ab", "A", "B")
    sim = SelfTimedSimulator(
        g,
        processor_of={"A": "t", "B": "t"},
        static_order={"t": ["B", "A"]},  # B first, but B needs A's token
    )
    sim.run(max_time=10)
    assert sim.is_quiescent()
    assert sim.completed["B"] == 0


def test_max_token_tracking(figure2_graph):
    sim = SelfTimedSimulator(figure2_graph)
    sim.run(max_firings=40)
    # a2b receives 2 tokens per A firing and holds at least that many.
    assert sim.trace.max_tokens["a2b"] >= 2


def test_data_dependent_execution_times(two_actor_pipeline):
    durations = {"P": [3, 9, 3], "Q": [2, 2, 2]}

    def exec_time(actor, index):
        series = durations[actor]
        return series[index % len(series)]

    sim = SelfTimedSimulator(
        two_actor_pipeline, execution_time_of=exec_time, record_trace=True
    )
    sim.run(max_firings=6)
    p_firings = sim.trace.firings_of("P")
    assert p_firings[0].duration == 3
    assert p_firings[1].duration == 9


def test_state_key_is_time_invariant():
    """Keys taken at corresponding points of different periods match."""
    g = SDFGraph("steady")
    g.add_actor("P", execution_time=7)
    g.add_actor("Q", execution_time=5)
    g.add_edge("pq", "P", "Q")
    sim = SelfTimedSimulator(g)
    keys = {}
    for _ in range(60):
        sim.step()
        count = sim.completed["Q"]
        if count in (3, 5) and count not in keys:
            keys[count] = sim.state_key()
    # P is the bottleneck, so the execution is periodic with period 7 and
    # the time-normalized state recurs at every Q completion.
    assert keys[3] == keys[5]


def test_reset_restores_initial_state(figure2_graph):
    sim = SelfTimedSimulator(figure2_graph)
    sim.run(max_firings=10)
    assert sim.now > 0
    sim.reset()
    assert sim.now == 0
    assert sim.tokens["selfA"] == 1
    assert sim.completed == {"A": 0, "B": 0, "C": 0}


def test_trace_completed_count_is_a_snapshot(two_actor_pipeline):
    """A trace returned by run() must not mutate retroactively when the
    simulator keeps stepping (regression: completed_count aliased the
    simulator's live dict)."""
    sim = SelfTimedSimulator(two_actor_pipeline)
    trace = sim.run(max_firings=2)
    snapshot = dict(trace.completed_count)
    assert sum(snapshot.values()) >= 2
    for _ in range(5):
        sim.step()
    assert sim.completed != snapshot  # the simulator did advance...
    assert trace.completed_count == snapshot  # ...but the trace stood still


def test_trace_completed_count_updates_on_next_run(two_actor_pipeline):
    sim = SelfTimedSimulator(two_actor_pipeline)
    first = dict(sim.run(max_firings=2).completed_count)
    second = dict(sim.run(max_firings=6).completed_count)
    assert sum(second.values()) > sum(first.values())
    assert second == sim.completed


def test_reset_rereads_mutated_initial_tokens(two_actor_pipeline):
    """The buffer-sizing warm path mutates initial tokens in place; the
    simulator must pick the new counts up on reset."""
    sim = SelfTimedSimulator(two_actor_pipeline)
    assert sim.tokens["p2q"] == 0
    two_actor_pipeline.edge("p2q").initial_tokens = 3
    sim.reset()
    assert sim.tokens["p2q"] == 3
    assert sim.trace.max_tokens["p2q"] == 3


def test_completed_of_and_started_of(two_actor_pipeline):
    sim = SelfTimedSimulator(two_actor_pipeline)
    sim.run(max_firings=4)
    assert sim.completed_of("P") == sim.completed["P"]
    assert sim.started_of("P") == sim.started["P"]


def test_trace_property_reflects_step_driven_progress(two_actor_pipeline):
    """Callers that drive step() directly (the platform simulator) read
    the trace via the property; its completed_count must be current even
    though run() never finalized it."""
    sim = SelfTimedSimulator(two_actor_pipeline)
    for _ in range(4):
        sim.step()
    assert sum(sim.completed.values()) > 0
    assert sim.trace.completed_count == sim.completed


def test_earlier_trace_survives_later_finalization(two_actor_pipeline):
    """Re-finalizing (second run(), trace property access) must not rewrite
    a trace handed out earlier -- every handout owns its snapshot."""
    sim = SelfTimedSimulator(two_actor_pipeline)
    first = sim.run(max_firings=2)
    snapshot = dict(first.completed_count)
    for _ in range(5):
        sim.step()
    _ = sim.trace                 # property access re-finalizes
    _ = sim.run(max_firings=20)   # and so does a second run()
    assert first.completed_count == snapshot
