"""Design-time builder of per-application operating-point libraries.

For an application and a platform template, sweep the platform size
``k = 1 .. tiles`` (the same axis :func:`repro.flow.dse.
explore_design_space` walks), map the application onto each canonical
prefix platform, and keep the Pareto front over (guaranteed throughput,
area).  Front members become :class:`~repro.runtime.points.
OperatingPoint`\\ s; the front is persisted as one
``operating-point-library`` artifact keyed by application fingerprint +
architecture spec + constraint + effort + strategy.

Every per-size mapping reuses the *exact* ``mapping-result`` artifact
keying of :class:`repro.flow.session.FlowSession`, so a workspace that
already ran the flow (or a previous library build) resumes every
analysis from the store: a warm library build performs **zero**
throughput analyses, the same guarantee the run-time admission path
gives.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.arch.area import platform_area
from repro.arch.template import architecture_from_template
from repro.artifacts.schema import (
    artifact_digest,
    encode_fraction,
    from_payload,
    to_payload,
)
from repro.artifacts.store import ArtifactStore
from repro.exceptions import MappingError, RoutingError
from repro.flow.dse import DesignPoint, ParetoFront
from repro.flow.fingerprint import (
    application_fingerprint,
    architecture_fingerprint,
    evaluation_key,
)
from repro.flow.spec import AppSpec, FlowSpec
from repro.mapping.flow import MappingEffort, map_application
from repro.runtime.points import (
    LIBRARY_KIND,
    OperatingPointLibrary,
    operating_point_from_result,
)


def effort_token(effort: MappingEffort) -> str:
    """The effort identity used by FlowSession mapping-result keys."""
    return (
        f"{effort.name}:{effort.max_buffer_rounds}:{effort.max_iterations}"
    )


def library_key(
    app_fingerprint: str,
    architecture: Dict[str, Any],
    constraint: Optional[Any],
    effort: str,
    strategy: str,
    fixed: Optional[Dict[str, str]] = None,
) -> str:
    """Content address of one library: everything its build consumed.

    ``architecture`` is the ``dataclasses.asdict`` of the
    :class:`~repro.flow.spec.ArchSpec` the library sweeps prefixes of --
    the *template*, not one concrete platform, because the library
    covers every prefix size of it.
    """
    return artifact_digest(
        {
            "kind": "operating-point-library-key",
            "application": app_fingerprint,
            "architecture": architecture,
            "constraint": encode_fraction(constraint),
            "fixed": dict(sorted(fixed.items())) if fixed else None,
            "effort": effort,
            "strategy": strategy,
        }
    )


def library_key_for(
    spec: FlowSpec, app_spec: Optional[AppSpec] = None
) -> str:
    """The library key an admission of ``spec`` will look up."""
    app_spec = app_spec if app_spec is not None else spec.app
    app = spec.build_app(app_spec)
    effort = MappingEffort.of(spec.effort)
    return library_key(
        application_fingerprint(app),
        dataclasses.asdict(spec.architecture),
        spec.constraint_for(app_spec),
        effort_token(effort),
        spec.strategies.cache_token(),
        fixed=spec.fixed_for(app_spec),
    )


@dataclass
class LibraryBuild:
    """Outcome of one :func:`build_library` call."""

    key: str
    library: OperatingPointLibrary
    #: Throughput analyses actually executed (0 on a warm workspace).
    analyses: int = 0
    #: Per-size mappings loaded from stored ``mapping-result`` artifacts.
    resumed: int = 0
    #: Platform sizes where mapping was infeasible (skipped, not fatal).
    infeasible: List[int] = field(default_factory=list)

    def summary(self) -> Dict[str, Any]:
        return {
            "app": self.library.app_name,
            "key": self.key,
            "points": [p.label for p in self.library.points],
            "analyses": self.analyses,
            "resumed": self.resumed,
            "infeasible": self.infeasible,
        }


def build_library(
    spec: FlowSpec,
    store: Optional[ArtifactStore] = None,
    app_spec: Optional[AppSpec] = None,
    max_tiles: Optional[int] = None,
) -> LibraryBuild:
    """Build (or resume) the operating-point library for one app.

    Sweeps canonical prefix platforms ``tiles = 1 .. spec.architecture.
    tiles`` (capped by ``max_tiles``), mapping the application onto each
    with the spec's strategies and effort.  With a ``store``, per-size
    results resume from / persist to ``mapping-result`` artifacts under
    the FlowSession keying, and the finished library is persisted under
    :func:`library_key`.
    """
    app_spec = app_spec if app_spec is not None else spec.app
    app = spec.build_app(app_spec)
    app_fp = application_fingerprint(app)
    constraint = spec.constraint_for(app_spec)
    fixed = spec.fixed_for(app_spec)
    effort = MappingEffort.of(spec.effort)
    strategies = spec.strategies
    arch_spec = spec.architecture

    key = library_key(
        app_fp,
        dataclasses.asdict(arch_spec),
        constraint,
        effort_token(effort),
        strategies.cache_token(),
        fixed=fixed,
    )
    if store is not None:
        stored = store.get(LIBRARY_KIND, key)
        if stored is not None:
            return LibraryBuild(
                key=key, library=from_payload(stored), resumed=0
            )

    sizes = range(1, (max_tiles or arch_spec.tiles) + 1)
    front = ParetoFront()
    results_by_tiles: Dict[int, Any] = {}
    analyses = resumed = 0
    infeasible: List[int] = []
    for tiles in sizes:
        arch = _prefix_architecture(arch_spec, tiles)
        result_key = evaluation_key(
            app_fp,
            architecture_fingerprint(arch),
            constraint,
            fixed,
            effort_token(effort),
            strategy=strategies.cache_token(),
        )
        result = None
        if store is not None:
            payload = store.get("mapping-result", result_key)
            if payload is not None:
                result = from_payload(payload)
                resumed += 1
        if result is None:
            try:
                result = map_application(
                    app,
                    arch,
                    constraint=constraint,
                    fixed=fixed,
                    effort=effort,
                    pipeline=strategies.build_pipeline(),
                )
            except (MappingError, RoutingError):
                infeasible.append(tiles)
                continue
            finally:
                analyses += 1
            if store is not None:
                store.put(
                    "mapping-result", result_key, to_payload(result)
                )
        results_by_tiles[tiles] = result
        front.add(
            DesignPoint(
                tiles=tiles,
                interconnect=arch_spec.interconnect,
                with_ca=arch_spec.with_ca,
                throughput=result.guaranteed_throughput,
                area=platform_area(arch),
                constraint_met=result.constraint_met,
                effort=effort.name,
                strategy=strategies,
            )
        )

    library = OperatingPointLibrary(
        app_name=app_spec.effective_name or app.name,
        app_fingerprint=app_fp,
        constraint=constraint,
    )
    for point in front.points():
        result = results_by_tiles[point.tiles]
        arch = _prefix_architecture(arch_spec, point.tiles)
        library.points.append(
            operating_point_from_result(
                point.label, result, arch, point.area.slices
            )
        )

    if store is not None:
        store.put(LIBRARY_KIND, key, to_payload(library))
    return LibraryBuild(
        key=key,
        library=library,
        analyses=analyses,
        resumed=resumed,
        infeasible=infeasible,
    )


def _prefix_architecture(arch_spec, tiles: int):
    """The canonical ``tiles``-sized prefix of the spec's template."""
    return architecture_from_template(
        tiles,
        interconnect=arch_spec.interconnect,
        with_ca=arch_spec.with_ca,
        instruction_kb=arch_spec.instruction_kb,
        data_kb=arch_spec.data_kb,
        slave_instruction_kb=arch_spec.slave_instruction_kb,
        slave_data_kb=arch_spec.slave_data_kb,
        fsl_fifo_depth=arch_spec.fsl_fifo_depth,
        noc_wires_per_link=arch_spec.noc_wires_per_link,
        noc_connection_wires=arch_spec.noc_connection_wires,
    )
