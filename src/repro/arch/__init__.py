"""MAMPS architecture template (paper Section 4 and 5.3).

An architecture is a set of *tiles* connected by an *interconnect* through a
standardized network interface (NI).  Tiles contain a processing element
(PE), local instruction/data memories (modified Harvard, up to 256 kB),
optional peripherals (master tiles only) and optionally a communication
assist (CA).  Two interconnects are modelled, matching Section 5.3.1:
point-to-point Xilinx FSL links and the SDM mesh NoC of [17] (with the
flow-control extension the paper adds).

:func:`architecture_from_template` is the automated "Generating
architecture model" step of Table 1.
"""

from repro.arch.components import (
    CommunicationAssist,
    Memory,
    NetworkInterface,
    Peripheral,
    ProcessorType,
    MICROBLAZE,
)
from repro.arch.tile import Tile, ip_tile, master_tile, slave_tile
from repro.arch.interconnect import FSLInterconnect, Interconnect
from repro.arch.noc import SDMNoC, mesh_dimensions
from repro.arch.platform import ArchitectureModel
from repro.arch.template import architecture_from_template
from repro.arch.area import (
    AreaEstimate,
    interconnect_area,
    platform_area,
    tile_area,
)
from repro.arch.arbiter import TDMArbiter, validate_shared_peripheral

__all__ = [
    "ProcessorType",
    "MICROBLAZE",
    "Memory",
    "NetworkInterface",
    "Peripheral",
    "CommunicationAssist",
    "Tile",
    "master_tile",
    "slave_tile",
    "ip_tile",
    "Interconnect",
    "FSLInterconnect",
    "SDMNoC",
    "mesh_dimensions",
    "ArchitectureModel",
    "architecture_from_template",
    "AreaEstimate",
    "tile_area",
    "interconnect_area",
    "platform_area",
    "TDMArbiter",
    "validate_shared_peripheral",
]
