"""Tests for the HTTP JSON API and the typed client."""

import json
import threading

import pytest

from repro.service import FlowServiceClient, ServiceClientError, serve

SOLO = {
    "name": "solo",
    "app": {"sequence": "gradient", "frames": 1},
    "architecture": {"tiles": 2},
    "mapping": {"fixed": {"VLD": "tile0"}},
}


@pytest.fixture
def service(tmp_path):
    server = serve(tmp_path / "ws", port=0, jobs=2, max_queue=8)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    server.scheduler.close()
    thread.join(timeout=10)


@pytest.fixture
def client(service):
    return FlowServiceClient(service.url, timeout=30.0)


class TestFlowEndpoints:
    def test_submit_poll_fetch(self, client):
        view = client.submit(SOLO)
        assert view["status"] in ("queued", "running")
        assert view["id"].startswith("job-")
        done = client.wait(view["id"], timeout=120)
        assert done["status"] == "done"
        assert done["source"] == "computed"
        assert [s["status"] for s in done["stages"]] == ["computed"] * 3
        payload = client.result(done["id"])
        assert payload["kind"] == "flow-response"
        assert payload["guarantees"]["gradient"]
        # the status view stays slim; /result delivers the document
        assert "result" not in client.job(view["id"])

    def test_second_post_served_from_artifacts(self, client):
        first = client.submit_and_wait(SOLO, timeout=120)
        second = client.submit(SOLO)
        assert second["status"] == "done"
        assert second["source"] == "artifacts"
        # an artifact hit carries the document in the submit response
        # (no follow-up round trip, no eviction race)
        assert second["result"] == client.result(first["id"])
        assert client.result_text(first["id"]) == \
            client.result_text(second["id"])
        counters = client.health()["counters"]
        assert counters["computed"] == 1
        assert counters["artifact_hits"] == 1

    def test_pending_result_answers_202(self, client, service,
                                        monkeypatch):
        from repro.service.scheduler import FlowScheduler

        release = threading.Event()
        original = FlowScheduler._compute

        def blocked(self, job):
            assert release.wait(timeout=60)
            return original(self, job)

        monkeypatch.setattr(FlowScheduler, "_compute", blocked)
        view = client.submit(SOLO)
        with pytest.raises(ServiceClientError) as outcome:
            client.result_text(view["id"])
        assert outcome.value.status == 202
        release.set()
        assert client.wait(view["id"], timeout=120)["status"] == "done"

    def test_failed_flow_surfaces_the_error(self, client):
        bad = dict(SOLO, name="bad", mapping={"fixed": {"VLD": "tile7"}})
        with pytest.raises(ServiceClientError, match="failed"):
            client.submit_and_wait(bad, timeout=120)

    def test_malformed_spec_answers_400(self, client):
        with pytest.raises(ServiceClientError) as outcome:
            client.submit({"nonsense": True})
        assert outcome.value.status == 400

    def test_unknown_job_answers_404(self, client):
        with pytest.raises(ServiceClientError) as outcome:
            client.job("job-999999")
        assert outcome.value.status == 404

    def test_eviction_between_lookup_and_result_answers_404(
        self, client, service, monkeypatch
    ):
        """Regression: a done job evicted from the bounded history
        between the handler's status lookup and its result fetch must
        answer 404, not abort the connection."""
        from repro.service.scheduler import FlowScheduler, UnknownJobError

        view = client.submit_and_wait(SOLO, timeout=120)

        def evicted(self, job_id):
            raise UnknownJobError(f"unknown job {job_id!r}")

        monkeypatch.setattr(FlowScheduler, "result_text", evicted)
        with pytest.raises(ServiceClientError) as outcome:
            client.result_text(view["id"])
        assert outcome.value.status == 404


class TestArtifactEndpoint:
    def test_serves_exact_workspace_bytes(self, client, service):
        done = client.submit_and_wait(SOLO, timeout=120)
        store = service.scheduler.store
        for kind in store.kinds():
            for key in store.keys(kind):
                text = client.artifact_text(kind, key)
                assert text == store.path_for(kind, key).read_text(
                    encoding="utf-8"
                )
        # the response document itself is addressable as an artifact
        assert client.artifact_text(
            "flow-response", done["request_key"]
        ) == client.result_text(done["id"])

    def test_missing_artifact_answers_404(self, client):
        with pytest.raises(ServiceClientError) as outcome:
            client.artifact("mapping-result", "0" * 64)
        assert outcome.value.status == 404

    def test_unsafe_component_answers_400(self, client):
        with pytest.raises(ServiceClientError) as outcome:
            client.artifact("mapping-result", "..")
        assert outcome.value.status == 400


class TestServiceMeta:
    def test_healthz_reports_shape(self, client, service):
        health = client.health()
        assert health["status"] == "ok"
        assert health["worker_slots"] == 2
        assert health["max_queue"] == 8
        assert health["queue_depth"] == 0
        assert set(health["counters"]) == {
            "submitted", "coalesced", "artifact_hits", "computed",
            "failed",
        }
        assert set(health["engine"]) == {
            "analytic", "vectorized", "reference",
        }

    def test_unknown_routes_answer_404(self, client):
        for method, path in (
            ("GET", "/v2/flows/x"),
            ("GET", "/v1/nothing"),
            ("POST", "/v1/artifacts/a/b"),
        ):
            with pytest.raises(ServiceClientError) as outcome:
                client._json(method, path, body={} if method == "POST"
                             else None)
            assert outcome.value.status == 404

    def test_unreachable_service_fails_cleanly(self):
        client = FlowServiceClient("http://127.0.0.1:9", timeout=2.0)
        with pytest.raises(ServiceClientError, match="cannot reach"):
            client.health()

    def test_rejected_post_does_not_poison_keepalive(self, service):
        """A POST whose body the server never reads must not leave the
        body bytes on a reused connection to be parsed as the next
        request (regression: unknown-route POSTs poisoned HTTP/1.1
        keep-alive)."""
        import http.client

        host, port = service.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.request(
                "POST", "/v1/nothing", body=b'{"x": 1}',
                headers={"Content-Type": "application/json"},
            )
            first = connection.getresponse()
            assert first.status == 404
            first.read()
            # the same connection object: reconnects if the server
            # closed it, reuses it otherwise -- either way the next
            # request must parse cleanly
            connection.request("GET", "/v1/healthz")
            second = connection.getresponse()
            assert second.status == 200
            assert json.loads(second.read())["status"] == "ok"
        finally:
            connection.close()

    def test_bind_failure_reports_a_clean_cli_error(self, service,
                                                    tmp_path, capsys):
        from repro.cli import main

        host, port = service.server_address[:2]
        code = main([
            "serve", "--workspace", str(tmp_path / "ws2"),
            "--host", host, "--port", str(port),
        ])
        assert code == 1
        assert "cannot bind" in capsys.readouterr().err
