"""Latency analysis of SDF graphs.

Besides throughput, SDF3 reports latency, and the binder's generic cost
functions weigh it (Section 5.1).  Two notions are provided:

* :func:`first_iteration_latency` -- the makespan of the very first graph
  iteration from a cold start (start-up latency of the platform);
* :func:`source_to_sink_latency` -- in the periodic regime, the time from
  the *start* of iteration *i*'s first source firing to the *end* of the
  same iteration's last sink firing (how long one input takes to flow
  through the pipeline, accounting for pipelining overlap).

Both execute the same self-timed semantics as the throughput analysis, so
latency numbers are consistent with the throughput guarantee when run on
the bound graph with its static orders.

The module-level functions are one-shot conveniences; repeated scans of
one graph structure should go through the latency methods of
:class:`repro.sdf.engine.ThroughputEngine`, which reuse the built
simulator (reset re-reads initial tokens) instead of reconstructing the
analysis stack per call.  The ``run_*`` helpers here hold the actual
measurement loops, shared by both paths.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.exceptions import DeadlockError, SimulationError
from repro.sdf.engine import build_simulator
from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import repetition_vector
from repro.sdf.simulation import SelfTimedSimulator


def run_first_iteration(
    sim: SelfTimedSimulator,
    graph: SDFGraph,
    q: Dict[str, int],
    max_firings: int,
) -> int:
    """Drive ``sim`` (fresh or reset) to the end of the first iteration."""

    def iteration_done(s: SelfTimedSimulator) -> bool:
        completed = s.completed
        return all(completed[a] >= q[a] for a in completed)

    sim.run(stop_when=iteration_done, max_firings=max_firings)
    if not iteration_done(sim):
        raise DeadlockError(
            f"graph {graph.name!r} never completes its first iteration"
        )
    return sim.now


def run_source_to_sink(
    sim: SelfTimedSimulator,
    graph: SDFGraph,
    q: Dict[str, int],
    source: str,
    sink: str,
    iterations: int,
    warmup: int,
    max_firings: int,
) -> int:
    """Drive a trace-recording ``sim`` (fresh or reset) through
    ``warmup + iterations`` iterations and scan per-iteration latency."""
    if source not in graph or sink not in graph:
        raise SimulationError(
            f"source {source!r} or sink {sink!r} not in graph"
        )
    total = warmup + iterations

    def enough(s: SelfTimedSimulator) -> bool:
        return (
            s.completed_of(source) >= total * q[source]
            and s.completed_of(sink) >= total * q[sink]
        )

    sim.run(stop_when=enough, max_firings=max_firings)
    if not enough(sim):
        raise DeadlockError(
            f"graph {graph.name!r} stalled before completing "
            f"{total} iterations"
        )

    source_starts: List[int] = sorted(
        f.start for f in sim.trace.firings if f.actor == source
    )
    sink_ends: List[int] = sorted(
        f.end for f in sim.trace.firings if f.actor == sink
    )
    worst = 0
    for i in range(warmup, total):
        begin = source_starts[i * q[source]]
        end = sink_ends[(i + 1) * q[sink] - 1]
        worst = max(worst, end - begin)
    return worst


def first_iteration_latency(
    graph: SDFGraph,
    auto_concurrency: Optional[int] = 1,
    processor_of: Optional[Dict[str, str]] = None,
    static_order: Optional[Dict[str, Sequence[str]]] = None,
    max_firings: int = 100_000,
) -> int:
    """Completion time of the first full iteration, from time 0."""
    q = repetition_vector(graph)
    sim = build_simulator(
        graph,
        auto_concurrency=auto_concurrency,
        processor_of=processor_of,
        static_order=static_order,
    )
    return run_first_iteration(sim, graph, q, max_firings)


def source_to_sink_latency(
    graph: SDFGraph,
    source: str,
    sink: str,
    iterations: int = 10,
    warmup: int = 3,
    auto_concurrency: Optional[int] = 1,
    processor_of: Optional[Dict[str, str]] = None,
    static_order: Optional[Dict[str, Sequence[str]]] = None,
    max_firings: int = 500_000,
) -> int:
    """Worst observed iteration latency in the periodic regime.

    Iteration *i*'s latency = (end of sink firing ``(i+1)*q[sink]-1``)
    minus (start of source firing ``i*q[source]``).  The first ``warmup``
    iterations are skipped; the maximum over the next ``iterations`` is
    returned -- in the periodic regime this is the steady per-input
    latency.
    """
    q = repetition_vector(graph)
    sim = build_simulator(
        graph,
        auto_concurrency=auto_concurrency,
        processor_of=processor_of,
        static_order=static_order,
        record_trace=True,
    )
    return run_source_to_sink(
        sim, graph, q, source, sink,
        iterations=iterations, warmup=warmup, max_firings=max_firings,
    )
