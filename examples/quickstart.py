#!/usr/bin/env python3
"""Quickstart: the Fig. 2 example graph through the complete flow.

Builds the three-actor SDF graph of the paper's Fig. 2 (including actor A's
state self-edge), gives each actor a tiny functional implementation, maps
it onto a 3-tile FSL platform, generates the MAMPS project and measures the
synthesized platform against the SDF3 worst-case guarantee.

Run:  python examples/quickstart.py
"""

from repro.appmodel import (
    ActorImplementation,
    ApplicationModel,
    FiringOutput,
    ImplementationMetrics,
    MemoryRequirements,
)
from repro.arch import architecture_from_template
from repro.flow import DesignFlow
from repro.sdf import SDFGraph
from repro.sdf.visualize import to_dot


def build_graph() -> SDFGraph:
    """The Fig. 2 graph: A fires once per iteration, B twice, C once."""
    g = SDFGraph("figure2")
    g.add_actor("A", execution_time=400)
    g.add_actor("B", execution_time=300)
    g.add_actor("C", execution_time=200)
    g.add_edge("a2b", "A", "B", production=2, consumption=1, token_size=8)
    g.add_edge("a2c", "A", "C", production=1, consumption=1, token_size=4)
    g.add_edge("b2c", "B", "C", production=1, consumption=2, token_size=4)
    # A keeps state (Listing 1's static variable) -> explicit self-edge.
    g.add_edge("selfA", "A", "A", initial_tokens=1, implicit=True)
    return g


def build_application() -> ApplicationModel:
    graph = build_graph()

    # Functional models: A produces counter values (2 tokens to B, 1 to C),
    # B doubles, C sums everything.  Cycle counts vary below the WCETs.
    def actor_a(ctx):
        ctx.state["count"] = ctx.state.get("count", 0) + 1
        base = ctx.state["count"]
        return FiringOutput(
            outputs={"a2b": [base, base + 1], "a2c": [base]},
            cycles=350 + (base % 3) * 10,
        )

    def actor_b(ctx):
        value = ctx.single("a2b")
        return FiringOutput(outputs={"b2c": [2 * value]}, cycles=260)

    def actor_c(ctx):
        total = sum(ctx.inputs["b2c"]) + ctx.single("a2c")
        ctx.state["sum"] = ctx.state.get("sum", 0) + total
        return FiringOutput(outputs={}, cycles=180)

    def implementation(actor, wcet, fn):
        return ActorImplementation(
            actor=actor,
            pe_type="microblaze",
            metrics=ImplementationMetrics(
                wcet=wcet,
                memory=MemoryRequirements(
                    instruction_bytes=4096, data_bytes=2048
                ),
            ),
            function=fn,
        )

    return ApplicationModel(
        graph=graph,
        implementations=[
            implementation("A", 400, actor_a),
            implementation("B", 300, actor_b),
            implementation("C", 200, actor_c),
        ],
    )


def main() -> None:
    app = build_application()
    print("=== application graph (DOT) ===")
    print(to_dot(app.graph))
    print()

    arch = architecture_from_template(tiles=3, interconnect="fsl")
    print("=== architecture ===")
    print(arch.describe())
    print()

    flow = DesignFlow(app, arch)
    result = flow.run(iterations=40)

    print("=== mapping ===")
    print(result.mapping_result.mapping.describe())
    print()

    print("=== generated project files ===")
    for path in result.project.paths():
        print(f"  {path}")
    print()

    print("=== throughput ===")
    print(
        f"worst-case guarantee: "
        f"{float(result.guaranteed_throughput * 1e6):.3f} iterations/Mcycle"
    )
    print(
        f"measured on platform: "
        f"{result.measured.per_mega_cycle():.3f} iterations/Mcycle"
    )
    assert result.measured_throughput >= result.guaranteed_throughput
    print("the guarantee is conservative, as promised by the flow")
    print()

    print("=== designer effort (Table 1 shape) ===")
    print(result.effort.as_table())


if __name__ == "__main__":
    main()
