"""Buffer-capacity allocation.

Chooses token capacities for every explicit channel: a single buffer for
intra-tile channels, a source/destination pair (``alpha_src`` /
``alpha_dst``) for inter-tile channels.  Starting capacities come from the
structural liveness bound plus one extra production/consumption burst for
pipelining; the mapping flow grows them iteratively while the throughput
constraint is unmet (the practical equivalent of SDF3's buffer-throughput
trade-off exploration).
"""

from __future__ import annotations

from typing import Dict

from repro.appmodel.model import ApplicationModel
from repro.mapping.spec import ChannelMapping
from repro.sdf.buffers import minimal_capacity_bound


def allocate_buffers(
    app: ApplicationModel,
    channels: Dict[str, ChannelMapping],
    slack_bursts: int = 1,
) -> None:
    """Fill in the buffer fields of ``channels`` (in place).

    ``slack_bursts`` adds that many extra bursts beyond the liveness bound
    so pipelined execution does not start buffer-starved.
    """
    for edge in app.graph.explicit_edges():
        channel = channels[edge.name]
        bound = minimal_capacity_bound(edge)
        if channel.intra_tile:
            channel.capacity = bound + slack_bursts * max(
                edge.production, edge.consumption
            )
        else:
            channel.alpha_src = (
                max(edge.production, bound - edge.initial_tokens)
                + slack_bursts * edge.production
            )
            channel.alpha_dst = (
                max(edge.consumption, edge.initial_tokens)
                + slack_bursts * edge.consumption
            )


def grow_buffers(channels: Dict[str, ChannelMapping], factor_step: int = 1
                 ) -> None:
    """Grow every channel's capacities by one burst-ish step (used by the
    flow's constraint loop)."""
    for channel in channels.values():
        if channel.intra_tile:
            channel.capacity += max(1, factor_step)
        else:
            channel.alpha_src += max(1, factor_step)
            channel.alpha_dst += max(1, factor_step)


def buffer_bytes_on_tile(
    app: ApplicationModel,
    channels: Dict[str, ChannelMapping],
    tile: str,
) -> int:
    """Data-memory bytes the channel buffers claim on one tile."""
    total = 0
    for channel in channels.values():
        edge = app.graph.edge(channel.edge)
        if channel.intra_tile:
            if channel.src_tile == tile:
                total += channel.capacity * edge.token_size
        else:
            if channel.src_tile == tile:
                total += channel.alpha_src * edge.token_size
            if channel.dst_tile == tile:
                total += channel.alpha_dst * edge.token_size
    return total
