"""Tests for the Fig. 4 communication-model expansion."""

from fractions import Fraction

import pytest

from repro.comm import (
    CASerialization,
    ChannelParameters,
    PESerialization,
    expand_channel,
    expanded_names,
    words_per_token,
)
from repro.exceptions import ArchitectureError, GraphError
from repro.sdf import SDFGraph, analyze_throughput, is_deadlock_free
from repro.sdf.repetition import repetition_vector


def pipeline(token_size=8, initial_tokens=0, p=1, q=1):
    g = SDFGraph("pipe")
    g.add_actor("P", execution_time=50)
    g.add_actor("Q", execution_time=50)
    g.add_edge(
        "pq", "P", "Q",
        production=p, consumption=q,
        token_size=token_size, initial_tokens=initial_tokens,
    )
    return g


FSL_PARAMS = ChannelParameters(
    words_in_flight=2,
    network_buffer_words=16,
    injection_cycles_per_word=1,
    channel_latency=2,
)


class TestWordsPerToken:
    def test_exact_multiple(self):
        assert words_per_token(8) == 2

    def test_rounds_up(self):
        assert words_per_token(5) == 2
        assert words_per_token(1) == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ArchitectureError):
            words_per_token(0)


class TestExpansionStructure:
    def test_eight_actors_added(self):
        g = pipeline()
        names = expand_channel(
            g, "pq", FSL_PARAMS, PESerialization(), alpha_src=2, alpha_dst=2
        )
        for actor_name in names.all_actors:
            assert g.has_actor(actor_name)
        assert len(names.all_actors) == 8

    def test_original_edge_removed(self):
        g = pipeline()
        expand_channel(
            g, "pq", FSL_PARAMS, PESerialization(), alpha_src=2, alpha_dst=2
        )
        assert not g.has_edge("pq")

    def test_expansion_is_consistent(self):
        g = pipeline(token_size=10, p=2, q=4)
        expand_channel(
            g, "pq", FSL_PARAMS, PESerialization(), alpha_src=4, alpha_dst=8
        )
        q = repetition_vector(g)
        names = expanded_names("pq")
        n_words = words_per_token(10)
        # s1 fires once per token, s2/c1/c2/d1 once per word.
        assert q[names.s1] == q["P"] * 2
        assert q[names.s2] == q[names.s1] * n_words
        assert q[names.c1] == q[names.s2]
        assert q[names.d1] == q[names.s2]
        assert q[names.d2] == q[names.s1]

    def test_expansion_is_live(self):
        g = pipeline()
        expand_channel(
            g, "pq", FSL_PARAMS, PESerialization(), alpha_src=2, alpha_dst=2
        )
        assert is_deadlock_free(g)

    def test_initial_tokens_moved_to_destination_buffer(self):
        g = pipeline(initial_tokens=1, token_size=4)
        names = expand_channel(
            g, "pq", FSL_PARAMS, PESerialization(), alpha_src=2, alpha_dst=3
        )
        assert g.edge(names.destination_edge).initial_tokens == 1
        assert g.edge("pq__dcredit").initial_tokens == 2  # alpha_dst - 1

    def test_serialization_times_applied(self):
        g = pipeline(token_size=16)  # 4 words
        ser = PESerialization(setup_cycles=40, cycles_per_word=6)
        names = expand_channel(
            g, "pq", FSL_PARAMS, ser, alpha_src=2, alpha_dst=2
        )
        assert g.actor(names.s1).execution_time == 40 + 6 * 4
        assert g.actor(names.d1).execution_time == 6
        assert g.actor(names.d2).execution_time == 40
        assert g.actor(names.s2).execution_time == 0
        assert g.actor(names.s3).execution_time == 0
        assert g.actor(names.d3).execution_time == 0

    def test_channel_times_applied(self):
        g = pipeline()
        names = expand_channel(
            g, "pq", FSL_PARAMS, PESerialization(), alpha_src=2, alpha_dst=2
        )
        assert g.actor(names.c1).execution_time == 1
        assert g.actor(names.c2).execution_time == 2
        assert g.actor(names.c2).concurrency == 2  # w words in flight
        assert g.edge("pq__txcredit").initial_tokens == 16  # alpha_n
        assert g.edge("pq__ncredit").initial_tokens == 2  # w

    def test_actors_tagged_with_edge_group(self):
        g = pipeline()
        names = expand_channel(
            g, "pq", FSL_PARAMS, PESerialization(), alpha_src=2, alpha_dst=2
        )
        for actor_name in names.all_actors:
            assert g.actor(actor_name).group == "pq"


class TestExpansionValidation:
    def test_small_source_buffer_rejected(self):
        g = pipeline(p=3)
        with pytest.raises(ArchitectureError, match="source buffer"):
            expand_channel(
                g, "pq", FSL_PARAMS, PESerialization(),
                alpha_src=2, alpha_dst=4,
            )

    def test_small_destination_buffer_rejected(self):
        g = pipeline(q=3)
        with pytest.raises(ArchitectureError, match="destination buffer"):
            expand_channel(
                g, "pq", FSL_PARAMS, PESerialization(),
                alpha_src=3, alpha_dst=2,
            )

    def test_destination_buffer_must_hold_initial_tokens(self):
        g = pipeline(initial_tokens=4)
        with pytest.raises(ArchitectureError, match="initial token"):
            expand_channel(
                g, "pq", FSL_PARAMS, PESerialization(),
                alpha_src=2, alpha_dst=3,
            )

    def test_self_edge_rejected(self):
        g = SDFGraph("g")
        g.add_actor("A", execution_time=1)
        g.add_edge("selfA", "A", "A", initial_tokens=1, token_size=4)
        with pytest.raises(GraphError, match="self-edge"):
            expand_channel(
                g, "selfA", FSL_PARAMS, PESerialization(),
                alpha_src=2, alpha_dst=2,
            )


class TestExpandedThroughput:
    def test_throughput_analyzable_and_conservative(self):
        g = pipeline(token_size=8)
        expand_channel(
            g, "pq", FSL_PARAMS, PESerialization(), alpha_src=2, alpha_dst=2
        )
        result = analyze_throughput(g)
        # One iteration moves one token; actor time alone is 50 cycles, so
        # with communication the period must exceed that.
        assert result.throughput < Fraction(1, 50)
        assert result.throughput > 0

    def test_bigger_tokens_are_slower(self):
        def throughput_for(size):
            g = pipeline(token_size=size)
            expand_channel(
                g, "pq", FSL_PARAMS, PESerialization(),
                alpha_src=2, alpha_dst=2,
            )
            return analyze_throughput(g).throughput

        assert throughput_for(64) < throughput_for(4)

    def test_ca_beats_pe_serialization(self):
        """The Section 6.3 effect in miniature: offloading serialization
        raises throughput."""

        def throughput_for(ser):
            g = pipeline(token_size=128)
            expand_channel(
                g, "pq", FSL_PARAMS, ser, alpha_src=2, alpha_dst=2
            )
            return analyze_throughput(g).throughput

        assert throughput_for(CASerialization()) > throughput_for(
            PESerialization()
        )

    def test_pipelining_with_more_buffer(self):
        def throughput_for(alpha):
            g = pipeline(token_size=8)
            expand_channel(
                g, "pq", FSL_PARAMS, PESerialization(),
                alpha_src=alpha, alpha_dst=alpha,
            )
            return analyze_throughput(g).throughput

        assert throughput_for(4) >= throughput_for(1)


class TestChannelParameters:
    def test_word_transfer_cycles(self):
        assert FSL_PARAMS.word_transfer_cycles(10) == 12
        assert FSL_PARAMS.word_transfer_cycles(0) == 0

    def test_validation(self):
        with pytest.raises(ArchitectureError):
            ChannelParameters(0, 0, 1, 1)
        with pytest.raises(ArchitectureError):
            ChannelParameters(1, -1, 1, 1)


class TestSerializationModels:
    def test_pe_cycles(self):
        ser = PESerialization(setup_cycles=40, cycles_per_word=6)
        assert ser.serialize_cycles(4) == 64
        assert ser.deserialize_cycles(4) == 64
        assert ser.occupies_pe

    def test_ca_cycles(self):
        ca = CASerialization(setup_cycles=8, cycles_per_word=1)
        assert ca.serialize_cycles(32) == 40
        assert not ca.occupies_pe

    def test_ca_is_cheaper(self):
        n = words_per_token(128)
        assert CASerialization().serialize_cycles(n) < (
            PESerialization().serialize_cycles(n)
        )

    def test_zero_words_rejected(self):
        with pytest.raises(ArchitectureError):
            PESerialization().serialize_cycles(0)
