"""The pluggable mapping pipeline (the SDF3 box of Fig. 1, opened up).

The paper's flow fixes one mapping recipe -- greedy load-balanced binding,
XY routing, uniform buffer growth, static-order scheduling -- but the
surrounding literature swaps these heuristics freely: Benhaoua et al.
place communicating tasks along an outward spiral from the master tile
(arXiv:1312.5764), and Quan & Pimentel's bias-elitist genetic algorithm
beats greedy mappers on heterogeneous MPSoCs (arXiv:1406.7539).  This
module turns each stage of :func:`repro.mapping.flow.map_application`
into a *strategy* behind a small protocol, keyed by name in a registry:

* :class:`BindingStrategy` -- actors -> tiles (``greedy``, ``spiral``,
  ``ga``, ``energy``);
* :class:`RoutingStrategy` -- inter-tile channels -> interconnect
  resources (``xy``);
* :class:`BufferPolicy` -- initial capacities and the growth schedule
  (``linear``, ``exponential``);
* :class:`SchedulingStrategy` -- per-tile static orders
  (``static-order``).

A :class:`MappingPipeline` chains resolved stages and runs the
constraint loop; :func:`repro.mapping.flow.map_application` is now a
thin wrapper over the default pipeline and produces results identical
to the pre-redesign monolith.  :class:`StrategyTuple` is the hashable
identity of a pipeline configuration -- the design-space exploration
engine embeds it in cache keys so two evaluations of the same platform
under different strategies never collide.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, replace
from fractions import Fraction
from typing import (
    Dict,
    List,
    Optional,
    Protocol,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.appmodel.implementation import ActorImplementation
from repro.appmodel.model import ApplicationModel
from repro.arch.noc import SDMNoC
from repro.arch.platform import ArchitectureModel
from repro.comm.serialization import SerializationModel
from repro.exceptions import DeadlockError, MappingError, \
    ThroughputConstraintError
from repro.mapping.binding import _memory_fits, bind_actors
from repro.mapping.bound_graph import (
    BoundGraph,
    apply_buffer_capacities,
    build_bound_graph,
)
from repro.mapping.buffer_alloc import allocate_buffers, grow_buffers
from repro.mapping.costs import CostWeights
from repro.mapping.routing import route_channels
from repro.mapping.scheduling import build_static_orders
from repro.mapping.spec import ChannelMapping, Mapping, MappingResult
from repro.sdf.engine import ThroughputEngine, normalize_engine_mode
from repro.sdf.repetition import repetition_vector


# ----------------------------------------------------------------------
# effort presets (moved here from repro.mapping.flow, re-exported there)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MappingEffort:
    """How hard the mapper tries before giving up on a design point.

    The exploration engine sweeps *many* points, most of which it only
    needs a quick feasibility verdict on; the final chosen point deserves
    the full retry budget.  An effort level bundles the knobs that
    trade mapping quality for wall-clock time: the number of buffer-growth
    rounds, the state-space budget of the throughput analysis, and the
    throughput-engine tier policy (:data:`repro.sdf.engine.ENGINE_MODES`;
    ``auto`` lets the engine pick per graph and keeps the effort name --
    and therefore every derived cache key -- unchanged).
    """

    name: str
    max_buffer_rounds: int
    max_iterations: int
    engine: str = "auto"

    @classmethod
    def of(cls, level: Union[str, "MappingEffort"]) -> "MappingEffort":
        """Resolve an effort level by name (``low``/``normal``/``high``).

        A ``+it<N>`` suffix (e.g. ``"normal+it50000"``) derives a preset
        with the state-space iteration budget overridden to ``N`` -- the
        string form the CLI's ``--max-iterations`` plumbs through the
        exploration engine, whose candidates carry effort by name.  A
        ``+eng<MODE>`` suffix pins the throughput-engine tier the same
        way (the CLI's ``--engine``); suffixes combine in either order.
        """
        if isinstance(level, MappingEffort):
            return level
        base_name, *suffixes = level.split("+")
        try:
            effort: MappingEffort = EFFORT_LEVELS[base_name]
        except KeyError:
            raise ValueError(
                f"unknown mapping effort {level!r}; pick from "
                f"{sorted(EFFORT_LEVELS)} (optionally suffixed with "
                "'+it<N>' to override the analysis iteration budget "
                "and/or '+eng<MODE>' to pin the throughput engine)"
            ) from None
        for token in suffixes:
            if token.startswith("it"):
                try:
                    iterations = int(token[2:])
                except ValueError:
                    raise ValueError(
                        f"invalid iteration override in mapping effort "
                        f"{level!r}; expected '+it<N>' with a positive "
                        "integer N"
                    ) from None
                effort = effort.with_iterations(iterations)
            elif token.startswith("eng"):
                try:
                    effort = effort.with_engine(token[3:])
                except ValueError:
                    raise ValueError(
                        f"invalid engine override in mapping effort "
                        f"{level!r}; expected '+eng<MODE>' with MODE one "
                        "of auto, analytic, vectorized, reference"
                    ) from None
            else:
                raise ValueError(
                    f"unknown suffix {token!r} in mapping effort "
                    f"{level!r}; expected '+it<N>' or '+eng<MODE>'"
                )
        return effort

    def _derived_name(self, max_iterations: int, engine: str) -> str:
        """Canonical derived name ``base[+it<N>][+eng<MODE>]``, eliding
        suffixes that match the base preset / the ``auto`` default."""
        base_name = self.name.split("+", 1)[0]
        base = EFFORT_LEVELS.get(base_name)
        name = base_name
        if base is None or base.max_iterations != max_iterations:
            name += f"+it{max_iterations}"
        if engine != "auto":
            name += f"+eng{engine}"
        return name

    def with_iterations(self, max_iterations: int) -> "MappingEffort":
        """Same preset with a different state-space iteration budget.

        The derived name round-trips through :meth:`of`, so the override
        survives string-typed plumbing (CLI, design-space candidates,
        cache keys).
        """
        if max_iterations < 1:
            raise ValueError(
                f"max_iterations must be >= 1, got {max_iterations}"
            )
        if max_iterations == self.max_iterations:
            return self
        return MappingEffort(
            name=self._derived_name(max_iterations, self.engine),
            max_buffer_rounds=self.max_buffer_rounds,
            max_iterations=max_iterations,
            engine=self.engine,
        )

    def with_engine(self, engine: str) -> "MappingEffort":
        """Same preset with the throughput-engine tier pinned.

        ``auto`` (the default) keeps the name unchanged, so cache keys
        derived from the effort name stay byte-identical; other modes
        append ``+eng<MODE>`` and round-trip through :meth:`of`.
        """
        engine = normalize_engine_mode(engine)
        if engine == self.engine:
            return self
        return MappingEffort(
            name=self._derived_name(self.max_iterations, engine),
            max_buffer_rounds=self.max_buffer_rounds,
            max_iterations=self.max_iterations,
            engine=engine,
        )


#: The named effort presets, cheapest first.
EFFORT_LEVELS: Dict[str, MappingEffort] = {
    "low": MappingEffort("low", max_buffer_rounds=4, max_iterations=4_000),
    "normal": MappingEffort(
        "normal", max_buffer_rounds=12, max_iterations=10_000
    ),
    "high": MappingEffort(
        "high", max_buffer_rounds=24, max_iterations=40_000
    ),
}


# ----------------------------------------------------------------------
# stage protocols
# ----------------------------------------------------------------------
@runtime_checkable
class BindingStrategy(Protocol):
    """Stage 1: assign every actor to a tile (and pick implementations)."""

    def bind(
        self,
        app: ApplicationModel,
        arch: ArchitectureModel,
        weights: Optional[CostWeights] = None,
        fixed: Optional[Dict[str, str]] = None,
        seed: Optional[int] = None,
    ) -> Tuple[Dict[str, str], Dict[str, ActorImplementation]]:
        ...


@runtime_checkable
class RoutingStrategy(Protocol):
    """Stage 2: allocate interconnect resources per inter-tile channel."""

    def route(
        self,
        app: ApplicationModel,
        arch: ArchitectureModel,
        binding: Dict[str, str],
    ) -> Dict[str, ChannelMapping]:
        ...


@runtime_checkable
class BufferPolicy(Protocol):
    """Stage 3: choose starting capacities and the growth schedule."""

    def allocate(
        self, app: ApplicationModel, channels: Dict[str, ChannelMapping]
    ) -> None:
        ...

    def grow(
        self, channels: Dict[str, ChannelMapping], round_index: int
    ) -> None:
        ...


@runtime_checkable
class SchedulingStrategy(Protocol):
    """Stage 4: derive per-tile static orders for the bound graph."""

    def build(self, bound: BoundGraph) -> Dict[str, List[str]]:
        ...


#: Stage kinds, in pipeline order.
STAGE_KINDS: Tuple[str, ...] = ("binding", "routing", "buffer", "scheduling")

_REGISTRY: Dict[str, Dict[str, type]] = {kind: {} for kind in STAGE_KINDS}


def register_strategy(kind: str, name: str):
    """Class decorator registering a strategy under ``(kind, name)``.

    Duplicate registrations raise immediately (a silent override would
    change mapping results behind the caller's back).  The decorated
    class gains ``kind`` and ``name`` attributes, which is how a
    pipeline recovers the registry identity of an instance.
    """
    if kind not in _REGISTRY:
        raise ValueError(
            f"unknown stage kind {kind!r}; pick from {sorted(_REGISTRY)}"
        )

    def decorator(cls):
        if name in _REGISTRY[kind]:
            raise ValueError(
                f"duplicate registration of {kind} strategy {name!r} "
                f"(already provided by "
                f"{_REGISTRY[kind][name].__qualname__})"
            )
        _REGISTRY[kind][name] = cls
        cls.kind = kind
        cls.name = name
        return cls

    return decorator


def resolve(kind: str, name: str):
    """Instantiate the registered ``kind`` strategy called ``name``."""
    if kind not in _REGISTRY:
        raise ValueError(
            f"unknown stage kind {kind!r}; pick from {sorted(_REGISTRY)}"
        )
    try:
        cls = _REGISTRY[kind][name]
    except KeyError:
        raise ValueError(
            f"unknown {kind} strategy {name!r}; registered: "
            f"{sorted(_REGISTRY[kind])}"
        ) from None
    return cls()


def registered(kind: str) -> Tuple[str, ...]:
    """The names registered for one stage kind, sorted."""
    if kind not in _REGISTRY:
        raise ValueError(
            f"unknown stage kind {kind!r}; pick from {sorted(_REGISTRY)}"
        )
    return tuple(sorted(_REGISTRY[kind]))


# ----------------------------------------------------------------------
# binding strategies
# ----------------------------------------------------------------------
@register_strategy("binding", "greedy")
class GreedyBinding:
    """The paper's recipe: heavy actors first, lowest cost-function tile."""

    def bind(self, app, arch, weights=None, fixed=None, seed=None):
        return bind_actors(app, arch, weights=weights, fixed=fixed)


def _dataflow_order(app: ApplicationModel) -> List[str]:
    """Actors in deterministic dataflow (topological-ish) order.

    Kahn's algorithm over the explicit edges; actors on cycles (or left
    unreachable) are appended in name order so the traversal is total.
    """
    incoming: Dict[str, int] = {a.name: 0 for a in app.graph}
    successors: Dict[str, List[str]] = {a.name: [] for a in app.graph}
    for edge in app.graph.explicit_edges():
        if edge.src == edge.dst:
            continue
        incoming[edge.dst] += 1
        successors[edge.src].append(edge.dst)
    ready = sorted(a for a, n in incoming.items() if n == 0)
    order: List[str] = []
    seen = set()
    while ready:
        actor = ready.pop(0)
        if actor in seen:
            continue
        seen.add(actor)
        order.append(actor)
        for succ in successors[actor]:
            if succ in seen:
                continue
            incoming[succ] -= 1
            if incoming[succ] <= 0:
                ready.append(succ)
    order.extend(a for a in sorted(incoming) if a not in seen)
    return order


def _spiral_tile_order(arch: ArchitectureModel) -> List[str]:
    """Processor tiles ordered outward from the master tile.

    On the SDM NoC, outward means increasing hop distance from the
    master's router (ties broken by name) -- Benhaoua et al.'s spiral
    walk on a square mesh.  FSL platforms are distance-free, so the
    template order (master first) already *is* the spiral.
    """
    tiles = list(arch.processor_tiles())
    masters = [t for t in tiles if t.role == "master"]
    anchor = masters[0] if masters else tiles[0]
    noc = arch.interconnect if isinstance(arch.interconnect, SDMNoC) else None
    if noc is None:
        ordered = [anchor] + [t for t in tiles if t.name != anchor.name]
        return [t.name for t in ordered]
    return [
        t.name
        for t in sorted(
            tiles,
            key=lambda t: (noc.hop_distance(anchor.name, t.name), t.name),
        )
    ]


@register_strategy("binding", "spiral")
class SpiralBinding:
    """Benhaoua-style placement: walk the dataflow, fill tiles outward.

    Actors are visited in dataflow order and packed onto the current
    tile of the outward spiral until its projected load exceeds the
    balanced share (total workload / tile count); then the walk advances
    one tile.  Communicating neighbours therefore land on the same or an
    adjacent tile, which is the point of run-time spiral mappers:
    short routes at placement cost O(actors x tiles).  ``weights`` is
    ignored: the spiral optimizes locality, not the generic cost
    functions.
    """

    def bind(self, app, arch, weights=None, fixed=None, seed=None):
        app.validate()
        arch.validate()
        q = repetition_vector(app.graph)
        spiral = _spiral_tile_order(arch)

        def workload(actor: str) -> int:
            wcets = [i.wcet for i in app.implementations_of(actor)]
            return q[actor] * min(wcets)

        total = sum(workload(a.name) for a in app.graph)
        share = max(total // max(len(spiral), 1), 1)

        binding: Dict[str, str] = {}
        implementations: Dict[str, ActorImplementation] = {}
        load: Dict[str, int] = {}
        cursor = 0

        def feasible(actor: str, tile_name: str):
            tile = arch.tile(tile_name)
            impl = app.implementation_for(actor, tile.pe_type)
            if impl is None:
                return None
            on_tile = [a for a, t in binding.items() if t == tile_name]
            trial = dict(implementations)
            trial[actor] = impl
            if not _memory_fits(app, arch, tile_name, on_tile + [actor],
                                trial):
                return None
            return impl

        def place(actor: str, tile_name: str,
                  impl: ActorImplementation) -> None:
            binding[actor] = tile_name
            implementations[actor] = impl
            load[tile_name] = load.get(tile_name, 0) + q[actor] * impl.wcet

        for actor in _dataflow_order(app):
            if fixed and actor in fixed:
                impl = (
                    feasible(actor, fixed[actor])
                    if fixed[actor] in spiral else None
                )
                if impl is None:
                    raise MappingError(
                        f"actor {actor!r} cannot be bound: pinned to "
                        f"{fixed[actor]!r} but infeasible there"
                    )
                place(actor, fixed[actor], impl)
                continue
            placed = False
            # advance the spiral while the current tile is full, then
            # fall back to any later (wrapping) tile that still fits
            for offset in range(len(spiral)):
                tile_name = spiral[(cursor + offset) % len(spiral)]
                impl = feasible(actor, tile_name)
                if impl is None:
                    continue
                projected = load.get(tile_name, 0) + q[actor] * impl.wcet
                if offset == 0 and projected > share and load.get(tile_name):
                    continue  # current tile is full; spiral outward
                cursor = (cursor + offset) % len(spiral)
                place(actor, tile_name, impl)
                placed = True
                break
            if not placed:
                # every tile is either full or infeasible; retry ignoring
                # the balance threshold (feasibility beats balance)
                for tile_name in spiral:
                    impl = feasible(actor, tile_name)
                    if impl is not None:
                        place(actor, tile_name, impl)
                        placed = True
                        break
            if not placed:
                raise MappingError(
                    f"actor {actor!r} cannot be bound: no tile offers a "
                    "matching PE type with enough memory"
                )
        return binding, implementations


@register_strategy("binding", "energy")
class EnergyBiasedBinding:
    """Marcon-style energy-aware placement: minimize communication energy.

    Actors are visited in dataflow order; each is placed on the feasible
    tile that minimizes the interconnect energy of its edges to already
    placed neighbours (per-word bit energy from
    :class:`repro.power.PowerModel` -- zero intra-tile, flat per FSL
    word, injection + per-hop on the NoC), with ties broken by the
    lighter projected load and then the outward spiral order.  The
    result co-locates chatty neighbours when memory allows and keeps
    unavoidable NoC routes short.  Fully deterministic: exact-fraction
    energies, no seed (``weights``/``seed`` are ignored).
    """

    def bind(self, app, arch, weights=None, fixed=None, seed=None):
        from repro.power.model import PowerModel

        app.validate()
        arch.validate()
        model = PowerModel()
        q = repetition_vector(app.graph)
        spiral = _spiral_tile_order(arch)
        edges = list(app.graph.explicit_edges())

        binding: Dict[str, str] = {}
        implementations: Dict[str, ActorImplementation] = {}
        load: Dict[str, int] = {}

        def feasible(actor: str, tile_name: str):
            tile = arch.tile(tile_name)
            impl = app.implementation_for(actor, tile.pe_type)
            if impl is None:
                return None
            on_tile = [a for a, t in binding.items() if t == tile_name]
            trial = dict(implementations)
            trial[actor] = impl
            if not _memory_fits(app, arch, tile_name, on_tile + [actor],
                                trial):
                return None
            return impl

        def communication_pj(actor: str, tile_name: str) -> Fraction:
            """Interconnect energy per iteration of ``actor``'s edges to
            neighbours already placed, were it bound to ``tile_name``."""
            if arch.interconnect is None:
                return Fraction(0)
            total = Fraction(0)
            for edge in edges:
                if edge.src == edge.dst:
                    continue
                if edge.src == actor and edge.dst in binding:
                    other = binding[edge.dst]
                elif edge.dst == actor and edge.src in binding:
                    other = binding[edge.src]
                else:
                    continue
                total += model.transfer_energy_pj(
                    arch.interconnect,
                    tile_name,
                    other,
                    q[edge.src] * edge.production,
                    edge.token_size,
                )
            return total

        def place(actor: str, tile_name: str,
                  impl: ActorImplementation) -> None:
            binding[actor] = tile_name
            implementations[actor] = impl
            load[tile_name] = load.get(tile_name, 0) + q[actor] * impl.wcet

        for actor in _dataflow_order(app):
            if fixed and actor in fixed:
                impl = (
                    feasible(actor, fixed[actor])
                    if fixed[actor] in spiral else None
                )
                if impl is None:
                    raise MappingError(
                        f"actor {actor!r} cannot be bound: pinned to "
                        f"{fixed[actor]!r} but infeasible there"
                    )
                place(actor, fixed[actor], impl)
                continue
            best = None
            for position, tile_name in enumerate(spiral):
                impl = feasible(actor, tile_name)
                if impl is None:
                    continue
                cost = (
                    communication_pj(actor, tile_name),
                    load.get(tile_name, 0) + q[actor] * impl.wcet,
                    position,
                )
                if best is None or cost < best[0]:
                    best = (cost, tile_name, impl)
            if best is None:
                raise MappingError(
                    f"actor {actor!r} cannot be bound: no tile offers a "
                    "matching PE type with enough memory"
                )
            place(actor, best[1], best[2])
        return binding, implementations


@register_strategy("binding", "ga")
class BiasElitistGABinding:
    """Quan & Pimentel-style bias-elitist genetic binding, seeded.

    Chromosomes are tile choices per actor (restricted to tiles whose PE
    type has an implementation, and to the pinned tile for fixed
    actors).  The *bias*: the initial population is seeded with the
    greedy binding, so the GA starts from the best known constructive
    solution.  The *elitism*: the top ``elite`` individuals survive each
    generation unchanged.  Fitness minimizes the bottleneck tile load
    plus an interconnect-traffic term, with memory overflows pushed out
    by a large penalty.  Fully deterministic under a fixed ``seed``
    (``None`` runs as seed 0).  ``weights`` only shapes the greedy bias
    genome, not the GA's own fitness.
    """

    population = 24
    generations = 40
    elite = 2
    mutation_boost = 1.0  # scales the per-gene mutation rate 1/len
    #: This strategy is randomized: the seed is part of its identity
    #: (cache keys, labels).  Deterministic strategies leave this False
    #: so a stray ``seed`` cannot split their cache entries.
    uses_seed = True

    def bind(self, app, arch, weights=None, fixed=None, seed=None):
        app.validate()
        arch.validate()
        rng = random.Random(0 if seed is None else seed)
        q = repetition_vector(app.graph)
        actors = sorted(a.name for a in app.graph)
        tiles = list(arch.processor_tiles())

        domains: List[List[int]] = []
        for actor in actors:
            feasible = [
                i for i, tile in enumerate(tiles)
                if app.implementation_for(actor, tile.pe_type) is not None
                and (not fixed or actor not in fixed
                     or tile.name == fixed[actor])
            ]
            if not feasible:
                reason = (
                    f"pinned to {fixed[actor]!r} but infeasible there"
                    if fixed and actor in fixed
                    else "no tile offers a matching PE type"
                )
                raise MappingError(
                    f"actor {actor!r} cannot be bound: {reason}"
                )
            domains.append(feasible)

        def impl_of(actor: str, tile_index: int) -> ActorImplementation:
            return app.implementation_for(
                actor, tiles[tile_index].pe_type
            )

        fitness_cache: Dict[Tuple[int, ...], float] = {}

        def fitness(genome: Tuple[int, ...]) -> float:
            cached = fitness_cache.get(genome)
            if cached is not None:
                return cached
            load: Dict[int, int] = {}
            per_tile: Dict[int, List[str]] = {}
            impls: Dict[str, ActorImplementation] = {}
            for actor, gene in zip(actors, genome):
                impl = impl_of(actor, gene)
                impls[actor] = impl
                load[gene] = load.get(gene, 0) + q[actor] * impl.wcet
                per_tile.setdefault(gene, []).append(actor)
            cost = float(max(load.values()))
            by_actor = dict(zip(actors, genome))
            for edge in app.graph.explicit_edges():
                if by_actor[edge.src] != by_actor[edge.dst]:
                    words = -(-edge.token_size // 4)
                    cost += q[edge.src] * edge.production * words
            for gene, on_tile in per_tile.items():
                if not _memory_fits(app, arch, tiles[gene].name, on_tile,
                                    impls):
                    cost += 1e12
            fitness_cache[genome] = cost
            return cost

        def greedy_genome() -> Optional[Tuple[int, ...]]:
            try:
                greedy, _ = bind_actors(
                    app, arch, weights=weights, fixed=fixed
                )
            except MappingError:
                return None
            index = {t.name: i for i, t in enumerate(tiles)}
            return tuple(index[greedy[a]] for a in actors)

        def random_genome() -> Tuple[int, ...]:
            return tuple(rng.choice(d) for d in domains)

        population = [random_genome() for _ in range(self.population)]
        bias = greedy_genome()
        if bias is not None:
            population[0] = bias

        mutation_rate = min(
            1.0, self.mutation_boost / max(len(actors), 1)
        )

        def tournament(scored) -> Tuple[int, ...]:
            a, b = rng.randrange(len(scored)), rng.randrange(len(scored))
            return scored[min(a, b)][1]  # scored is sorted best-first

        for _ in range(self.generations):
            scored = sorted(
                ((fitness(g), g) for g in population), key=lambda x: x[0]
            )
            next_population = [g for _, g in scored[: self.elite]]
            while len(next_population) < self.population:
                mother = tournament(scored)
                father = tournament(scored)
                child = tuple(
                    (m if rng.random() < 0.5 else f)
                    for m, f in zip(mother, father)
                )
                child = tuple(
                    (rng.choice(domains[i])
                     if rng.random() < mutation_rate else gene)
                    for i, gene in enumerate(child)
                )
                next_population.append(child)
            population = next_population

        best_cost, best = min(
            ((fitness(g), g) for g in population), key=lambda x: x[0]
        )
        if best_cost >= 1e12:
            raise MappingError(
                f"GA binding found no memory-feasible placement of "
                f"{app.name!r} on {arch.name!r} "
                f"(population {self.population}, "
                f"{self.generations} generations)"
            )
        binding = {a: tiles[g].name for a, g in zip(actors, best)}
        implementations = {
            a: impl_of(a, g) for a, g in zip(actors, best)
        }
        return binding, implementations


# ----------------------------------------------------------------------
# routing strategies
# ----------------------------------------------------------------------
@register_strategy("routing", "xy")
class XYRouting:
    """The template router: dedicated FSL links, XY paths on the NoC."""

    def route(self, app, arch, binding):
        return route_channels(app, arch, binding)


# ----------------------------------------------------------------------
# buffer policies
# ----------------------------------------------------------------------
@register_strategy("buffer", "linear")
class LinearBufferGrowth:
    """The paper's schedule: liveness-bound start, +1 burst per round."""

    def allocate(self, app, channels):
        allocate_buffers(app, channels)

    def grow(self, channels, round_index):
        grow_buffers(channels)


@register_strategy("buffer", "exponential")
class ExponentialBufferGrowth:
    """Doubling growth: round ``k`` adds ``2**k`` tokens per buffer.

    Reaches deep pipelining in O(log capacity) analysis rounds instead
    of O(capacity) -- the right schedule when the constraint needs
    buffers far above the liveness bound and every round costs a full
    throughput analysis.  The step is capped so a long hopeless run
    cannot overflow tile memories by orders of magnitude.
    """

    max_step = 1024

    def allocate(self, app, channels):
        allocate_buffers(app, channels)

    def grow(self, channels, round_index):
        step = min(2 ** max(round_index, 0), self.max_step)
        grow_buffers(channels, factor_step=step)


# ----------------------------------------------------------------------
# scheduling strategies
# ----------------------------------------------------------------------
@register_strategy("scheduling", "static-order")
class StaticOrderScheduling:
    """SDF3's list scheduler: record one greedy self-timed iteration."""

    def build(self, bound):
        return build_static_orders(bound)


# ----------------------------------------------------------------------
# the strategy tuple (the pipeline's cacheable identity)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StrategyTuple:
    """Names of the four stage strategies plus the binding seed.

    This is what distinguishes two mapping runs of the same application
    on the same platform: the DSE engine embeds :meth:`cache_token` in
    evaluation keys, and :meth:`build_pipeline` reconstructs the exact
    pipeline later (e.g. when a chosen design point is promoted to the
    full flow).
    """

    binding: str = "greedy"
    routing: str = "xy"
    buffer_policy: str = "linear"
    scheduling: str = "static-order"
    seed: Optional[int] = None

    @property
    def is_default(self) -> bool:
        return self.normalize() == DEFAULT_STRATEGIES

    def normalize(self) -> "StrategyTuple":
        """Canonical form for identity purposes (cache keys, labels).

        The seed only belongs to the identity when the binding strategy
        is randomized (``uses_seed``): greedy/spiral ignore it, so
        ``--seed 7`` with a deterministic binder must neither miss a
        warm cache nor change point labels.  For randomized binders a
        ``None`` seed canonicalizes to 0 (what the GA actually runs
        with), so seeded and unseeded runs that compute identical
        mappings share one entry.
        """
        cls = _REGISTRY["binding"].get(self.binding)
        # unknown (unregistered/custom) binders are conservatively
        # treated as seeded; registered ones default to deterministic
        seeded = (
            getattr(cls, "uses_seed", False) if cls is not None else True
        )
        seed = (0 if self.seed is None else self.seed) if seeded else None
        if seed == self.seed:
            return self
        return replace(self, seed=seed)

    def validate(self) -> "StrategyTuple":
        """Resolve every name once; raises ValueError on unknown names."""
        resolve("binding", self.binding)
        resolve("routing", self.routing)
        resolve("buffer", self.buffer_policy)
        resolve("scheduling", self.scheduling)
        return self

    def cache_token(self) -> str:
        """The strategy part of an evaluation cache key."""
        n = self.normalize()
        return (
            f"binding={n.binding},routing={n.routing}"
            f",buffer={n.buffer_policy},scheduling={n.scheduling}"
            f",seed={n.seed}"
        )

    def short(self) -> str:
        """Compact human-readable form (``default`` when nothing varies)."""
        if self.is_default:
            return "default"
        bits = []
        n = self.normalize()
        default = DEFAULT_STRATEGIES
        for field_name in (
            "binding", "routing", "buffer_policy", "scheduling", "seed"
        ):
            value = getattr(n, field_name)
            if value != getattr(default, field_name):
                bits.append(f"{field_name}={value}")
        return "+".join(bits)

    def label_suffix(self) -> str:
        """What a design-point label appends for a non-default tuple."""
        return "" if self.is_default else f"#{self.short()}"

    def build_pipeline(self) -> "MappingPipeline":
        return MappingPipeline(
            binding=self.binding,
            routing=self.routing,
            buffer_policy=self.buffer_policy,
            scheduling=self.scheduling,
            seed=self.seed,
        )


#: The paper's original recipe; what bare ``map_application`` runs.
DEFAULT_STRATEGIES = StrategyTuple()


# ----------------------------------------------------------------------
# the pipeline
# ----------------------------------------------------------------------
class MappingPipeline:
    """Chains the four mapping stages and runs the constraint loop.

    Stages are given by registry name or as strategy instances; the
    defaults reproduce :func:`repro.mapping.flow.map_application`'s
    historic behaviour exactly.  ``seed`` feeds randomized binding
    strategies (the GA); deterministic strategies ignore it.
    """

    def __init__(
        self,
        binding: Union[str, BindingStrategy] = "greedy",
        routing: Union[str, RoutingStrategy] = "xy",
        buffer_policy: Union[str, BufferPolicy] = "linear",
        scheduling: Union[str, SchedulingStrategy] = "static-order",
        seed: Optional[int] = None,
    ) -> None:
        self.binding = self._coerce("binding", binding)
        self.routing = self._coerce("routing", routing)
        self.buffer_policy = self._coerce("buffer", buffer_policy)
        self.scheduling = self._coerce("scheduling", scheduling)
        self.seed = seed

    @staticmethod
    def _coerce(kind: str, value):
        if isinstance(value, str):
            return resolve(kind, value)
        return value

    @classmethod
    def from_strategies(cls, strategies: StrategyTuple) -> "MappingPipeline":
        return strategies.build_pipeline()

    @property
    def strategies(self) -> StrategyTuple:
        """The registry identity of this pipeline's configuration."""

        def name_of(stage, fallback: str) -> str:
            return getattr(stage, "name", None) or fallback

        return StrategyTuple(
            binding=name_of(self.binding, "custom"),
            routing=name_of(self.routing, "custom"),
            buffer_policy=name_of(self.buffer_policy, "custom"),
            scheduling=name_of(self.scheduling, "custom"),
            seed=self.seed,
        )

    def describe(self) -> str:
        s = self.strategies
        return (
            f"binding={s.binding} routing={s.routing} "
            f"buffers={s.buffer_policy} scheduling={s.scheduling}"
            + (f" seed={s.seed}" if s.seed is not None else "")
        )

    def run(
        self,
        app: ApplicationModel,
        arch: ArchitectureModel,
        constraint: Optional[Fraction] = None,
        weights: Optional[CostWeights] = None,
        fixed: Optional[Dict[str, str]] = None,
        serialization_overrides: Optional[
            Dict[str, SerializationModel]
        ] = None,
        max_buffer_rounds: Optional[int] = None,
        strict: bool = False,
        max_iterations: Optional[int] = None,
        effort: Union[str, MappingEffort] = "normal",
    ) -> MappingResult:
        """Map ``app`` onto ``arch``; see
        :func:`repro.mapping.flow.map_application` for the parameters."""
        budget = MappingEffort.of(effort)
        if max_buffer_rounds is None:
            max_buffer_rounds = budget.max_buffer_rounds
        if max_iterations is None:
            max_iterations = budget.max_iterations
        if constraint is None:
            constraint = app.throughput_constraint

        binding, implementations = self.binding.bind(
            app, arch, weights=weights, fixed=fixed, seed=self.seed
        )
        channels = self.routing.route(app, arch, binding)
        self.buffer_policy.allocate(app, channels)

        best = None
        rounds_used = 0
        # Warm path: the bound graph is built once; buffer growth only
        # changes credit-token counts, so later rounds retune it in place
        # (apply_buffer_capacities) instead of re-expanding every channel.
        # The state-space analyzer is likewise reused across rounds as
        # long as the derived static orders are unchanged -- its simulator
        # re-reads initial tokens on reset.
        bound = None
        analyzer = None
        analyzer_orders = None
        for round_index in range(max_buffer_rounds + 1):
            if bound is None:
                bound = build_bound_graph(
                    app, arch, binding, implementations, channels,
                    serialization_overrides=serialization_overrides,
                )
            else:
                apply_buffer_capacities(bound, app, channels)
            try:
                orders = self.scheduling.build(bound)
                if analyzer is None or orders != analyzer_orders:
                    analyzer = ThroughputEngine(
                        bound.graph,
                        processor_of=bound.processor_of,
                        static_order=orders,
                        reference_actor=bound.app_actors[0],
                        max_iterations=max_iterations,
                        mode=budget.engine,
                    )
                    analyzer_orders = orders
                result = analyzer.analyze()
            except DeadlockError:
                self.buffer_policy.grow(channels, round_index)
                rounds_used = round_index + 1
                continue

            if best is None or result.throughput > best[0].throughput:
                best = (
                    result, orders,
                    {name: _copy_channel(c)
                     for name, c in channels.items()},
                )
            if constraint is None or result.throughput >= constraint:
                break
            self.buffer_policy.grow(channels, round_index)
            rounds_used = round_index + 1

        if best is None:
            raise ThroughputConstraintError(
                f"no deadlock-free buffer configuration found for "
                f"{app.name!r} on {arch.name!r} within "
                f"{max_buffer_rounds} rounds"
            )

        result, orders, best_channels = best
        mapping = Mapping(
            application=app.name,
            architecture=arch.name,
            actor_binding=dict(binding),
            implementations=dict(implementations),
            channels=best_channels,
            static_orders=orders,
        )
        outcome = MappingResult(
            mapping=mapping,
            throughput=result,
            constraint=constraint,
            buffer_growth_rounds=rounds_used,
        )
        if strict and not outcome.constraint_met:
            raise ThroughputConstraintError(
                f"constraint {constraint} unreachable for {app.name!r} on "
                f"{arch.name!r}: best guarantee is {result.throughput} "
                f"after {rounds_used} buffer-growth round(s)"
            )
        return outcome


def _copy_channel(channel: ChannelMapping) -> ChannelMapping:
    """Snapshot a channel for the saved-best mapping.

    ``parameters`` is deep-copied: the live channel keeps being grown by
    the constraint loop, and a shared parameters object would let later
    rounds mutate the supposedly frozen best snapshot.
    """
    return ChannelMapping(
        edge=channel.edge,
        src_tile=channel.src_tile,
        dst_tile=channel.dst_tile,
        capacity=channel.capacity,
        alpha_src=channel.alpha_src,
        alpha_dst=channel.alpha_dst,
        parameters=copy.deepcopy(channel.parameters),
    )
