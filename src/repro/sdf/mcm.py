"""Maximum cycle mean / maximum cycle ratio analysis.

For an HSDF graph the self-timed throughput equals ``1 / MCM`` where::

    MCM = max over cycles C of  (sum of execution times on C)
                                / (sum of initial tokens on C)

The implementation uses *cycle ratio iteration*: start from the ratio of an
arbitrary cycle, then repeatedly run a Bellman-Ford positive-cycle test with
edge weights ``t - lambda * d`` (exact rational arithmetic).  Every round
either proves optimality or produces a cycle with a strictly larger exact
ratio; since a finite graph has finitely many cycle ratios the loop
terminates with the exact MCM as a :class:`fractions.Fraction`.

A cycle carrying zero tokens can never fire and means structural deadlock;
:func:`maximum_cycle_mean` raises :class:`~repro.exceptions.DeadlockError`
for it.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import DeadlockError, GraphError
from repro.sdf.graph import SDFGraph

# An edge for ratio analysis: (src, dst, time_weight, token_count)
RatioEdge = Tuple[str, str, int, int]


class CycleRatioBudgetError(Exception):
    """The ratio iteration exceeded its relaxation budget.

    Raised only when a ``max_relaxations`` budget was passed; the
    throughput engine catches it to fall back to simulation on the rare
    instances (dense multi-rate expansions with many distinct cycle
    ratios) where the iteration grinds through disproportionate work.
    """


def _find_zero_token_cycle(
    nodes: Sequence[str], edges: Iterable[RatioEdge]
) -> Optional[List[str]]:
    """Return a cycle using only zero-token edges, if one exists."""
    adjacency: Dict[str, List[str]] = {n: [] for n in nodes}
    for src, dst, _t, d in edges:
        if d == 0:
            adjacency[src].append(dst)

    WHITE, GREY, BLACK = 0, 1, 2
    color = {n: WHITE for n in nodes}
    parent: Dict[str, str] = {}

    for root in nodes:
        if color[root] != WHITE:
            continue
        stack: List[Tuple[str, Iterator[str]]] = []
        color[root] = GREY
        stack.append((root, iter(adjacency[root])))
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if color[nxt] == WHITE:
                    color[nxt] = GREY
                    parent[nxt] = node
                    stack.append((nxt, iter(adjacency[nxt])))
                    advanced = True
                    break
                if color[nxt] == GREY:
                    # trace the cycle back from node to nxt
                    cycle = [nxt, node]
                    walker = node
                    while walker != nxt:
                        walker = parent[walker]
                        cycle.append(walker)
                    cycle.reverse()
                    return cycle
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return None


def _positive_cycle(
    nodes: Sequence[str],
    edges: Sequence[RatioEdge],
    ratio: Fraction,
    budget: Optional[List[int]] = None,
) -> Optional[List[int]]:
    """Bellman-Ford test: find a cycle with ``sum(t) - ratio * sum(d) > 0``.

    Returns the edge indices of such a cycle, or None when every cycle has
    ratio <= ``ratio``.  Longest-path relaxation from a virtual source that
    reaches every node.  ``budget`` is a shared one-element relaxation
    countdown; raises :class:`CycleRatioBudgetError` when it runs dry.
    """
    n = len(nodes)
    index_of = {name: i for i, name in enumerate(nodes)}
    dist: List[int] = [0] * n  # virtual source to all nodes
    pred_edge: List[Optional[int]] = [None] * n

    # Scale ``t - (p/q) * d`` by the (positive) denominator q: the
    # integer weights ``q*t - p*d`` order every path sum identically, so
    # the relaxation -- the hot loop of the whole MCM -- runs on plain
    # ints instead of Fractions.
    num, den = ratio.numerator, ratio.denominator
    weights = [den * t - num * d for (_s, _d, t, d) in edges]
    edge_idx = [
        (index_of[src], index_of[dst]) for (src, dst, _t, _d) in edges
    ]

    changed_node: Optional[int] = None
    for _round in range(n):
        if budget is not None:
            budget[0] -= len(edge_idx)
            if budget[0] < 0:
                raise CycleRatioBudgetError(
                    "cycle-ratio iteration exceeded its relaxation budget"
                )
        changed_node = None
        for i, (u, v) in enumerate(edge_idx):
            candidate = dist[u] + weights[i]
            if candidate > dist[v]:
                dist[v] = candidate
                pred_edge[v] = i
                changed_node = v
        if changed_node is None:
            return None

    # A node relaxed in round n lies on or is reachable from a positive
    # cycle; walk predecessors n steps to land inside the cycle.
    node = changed_node
    for _ in range(n):
        assert pred_edge[node] is not None
        node = edge_idx[pred_edge[node]][0]
    # Collect the cycle's edges.
    cycle_edges: List[int] = []
    start = node
    while True:
        e = pred_edge[node]
        assert e is not None
        cycle_edges.append(e)
        node = edge_idx[e][0]
        if node == start:
            break
    cycle_edges.reverse()
    return cycle_edges


def _cycle_ratio(edges: Sequence[RatioEdge], cycle: Sequence[int]) -> Fraction:
    total_t = sum(edges[i][2] for i in cycle)
    total_d = sum(edges[i][3] for i in cycle)
    if total_d == 0:
        raise DeadlockError(
            "cycle with zero tokens found during ratio iteration"
        )
    return Fraction(total_t, total_d)


def max_cycle_ratio(
    nodes: Sequence[str],
    edges: Sequence[RatioEdge],
    max_relaxations: Optional[int] = None,
) -> Optional[Fraction]:
    """Exact maximum of (time sum / token sum) over all cycles.

    Returns None when the graph has no cycle at all (throughput is then not
    cycle-limited).  Raises :class:`DeadlockError` when a zero-token cycle
    exists.  ``max_relaxations`` bounds the total Bellman-Ford edge
    relaxations across all rounds; exceeding it raises
    :class:`CycleRatioBudgetError` (used by the throughput engine to bail
    out of adversarial instances).
    """
    if not nodes:
        return None
    zero_cycle = _find_zero_token_cycle(nodes, edges)
    if zero_cycle is not None:
        raise DeadlockError(
            "zero-token cycle (structural deadlock): "
            + " -> ".join(zero_cycle)
        )

    budget = None if max_relaxations is None else [max_relaxations]
    # Seed with any cycle: run the positive-cycle test with a ratio lower
    # than every possible cycle ratio (-1 works: times are >= 0, so every
    # cycle has ratio >= 0 > -1 ... unless there is no cycle).
    seed = _positive_cycle(nodes, edges, Fraction(-1), budget)
    if seed is None:
        return None
    ratio = _cycle_ratio(edges, seed)
    while True:
        better = _positive_cycle(nodes, edges, ratio, budget)
        if better is None:
            return ratio
        new_ratio = _cycle_ratio(edges, better)
        assert new_ratio > ratio, "cycle ratio iteration failed to progress"
        ratio = new_ratio


def maximum_cycle_mean(
    hsdf: SDFGraph, max_relaxations: Optional[int] = None
) -> Optional[Fraction]:
    """MCM of an HSDF graph (cycles weighed by source-actor times).

    Every edge must have unit rates; raises :class:`GraphError` otherwise.
    Returns None for an acyclic graph.  ``max_relaxations`` is passed
    through to :func:`max_cycle_ratio`.
    """
    for edge in hsdf.edges:
        if edge.production != 1 or edge.consumption != 1:
            raise GraphError(
                f"maximum_cycle_mean needs an HSDF graph; edge "
                f"{edge.name!r} has rates {edge.production}/{edge.consumption}"
            )
    nodes = [a.name for a in hsdf]
    edges: List[RatioEdge] = [
        (
            e.src,
            e.dst,
            hsdf.actor(e.src).execution_time,
            e.initial_tokens,
        )
        for e in hsdf.edges
    ]
    return max_cycle_ratio(nodes, edges, max_relaxations)


def hsdf_throughput(hsdf: SDFGraph) -> Optional[Fraction]:
    """Self-timed throughput (iterations per cycle) of an HSDF graph.

    ``1 / MCM``; None when the graph is acyclic (unbounded throughput).
    """
    mcm = maximum_cycle_mean(hsdf)
    if mcm is None:
        return None
    if mcm == 0:
        raise GraphError(
            "HSDF graph has only zero-time cycles; throughput is unbounded"
        )
    return 1 / mcm
