"""Tests for the flow-service scheduler: dedup, coalescing, serving."""

import json
import threading

import pytest

from repro.artifacts import canonical_json, from_payload, to_payload
from repro.flow.fingerprint import flow_request_key
from repro.flow.spec import FlowSpec, FlowSpecError
from repro.service import (
    RESPONSE_KIND,
    SOURCE_ARTIFACTS,
    SOURCE_COMPUTED,
    FlowResponse,
    FlowScheduler,
    FlowServiceError,
    QueueFullError,
    UnknownJobError,
)

SOLO = {
    "name": "solo",
    "app": {"sequence": "gradient", "frames": 1},
    "architecture": {"tiles": 2},
    "mapping": {"fixed": {"VLD": "tile0"}},
}

DUO = {
    "name": "duo",
    "apps": [
        {"name": "decoder", "sequence": "gradient", "frames": 1,
         "fixed": {"VLD": "tile0"}},
        {"name": "osd", "sequence": "checkerboard", "frames": 1},
    ],
    "architecture": {"tiles": 4},
}


@pytest.fixture
def scheduler(tmp_path):
    with FlowScheduler(tmp_path / "ws", jobs=2, max_queue=8) as s:
        yield s


@pytest.fixture
def count_analyses(monkeypatch):
    """Counts real ``map_application`` calls made by sessions."""
    import repro.flow.session as session_module

    calls = []
    lock = threading.Lock()
    original = session_module.map_application

    def counting(*args, **kwargs):
        with lock:
            calls.append(1)
        return original(*args, **kwargs)

    monkeypatch.setattr(session_module, "map_application", counting)
    return calls


def submit_done(scheduler, document, timeout=120.0):
    view = scheduler.submit(document)
    if view["status"] not in ("done", "failed"):
        view = scheduler.wait(view["id"], timeout=timeout)
    assert view["status"] == "done", view
    return view


class TestSubmission:
    def test_submit_computes_and_serves(self, scheduler, count_analyses):
        view = submit_done(scheduler, SOLO)
        assert view["source"] == SOURCE_COMPUTED
        assert view["spec_name"] == "solo"
        assert [s["stage"] for s in view["stages"]] == [
            "application:gradient", "architecture", "mapping:gradient",
        ]
        assert all(s["status"] == "computed" for s in view["stages"])
        assert len(count_analyses) == 1
        payload = json.loads(scheduler.result_text(view["id"]))
        assert payload["kind"] == RESPONSE_KIND
        assert payload["spec_name"] == "solo"
        assert set(payload["mappings"]) == {"gradient"}
        assert payload["constraints_met"] is True
        response = from_payload(payload)
        assert isinstance(response, FlowResponse)
        assert response.guarantees() == payload["guarantees"]

    def test_second_submission_served_from_artifacts(
        self, scheduler, count_analyses
    ):
        first = submit_done(scheduler, SOLO)
        second = scheduler.submit(SOLO)
        assert second["status"] == "done"
        assert second["source"] == SOURCE_ARTIFACTS
        assert second["id"] != first["id"]
        assert scheduler.result_text(second["id"]) == \
            scheduler.result_text(first["id"])
        # the whole second submission did zero mapping analyses
        assert len(count_analyses) == 1
        counters = scheduler.counters
        assert counters.computed == 1
        assert counters.artifact_hits == 1

    def test_multi_app_request_serves_use_case_union(self, scheduler):
        view = submit_done(scheduler, DUO)
        payload = json.loads(scheduler.result_text(view["id"]))
        assert set(payload["mappings"]) == {"decoder", "osd"}
        assert payload["use_cases"]["kind"] == "use-case-mapping"
        assert "use-cases" in [s["stage"] for s in view["stages"]]

    def test_spec_objects_and_paths_accepted(self, scheduler, tmp_path):
        spec_file = tmp_path / "solo.json"
        spec_file.write_text(json.dumps(SOLO), encoding="utf-8")
        by_path = submit_done(scheduler, spec_file)
        by_object = scheduler.submit(FlowSpec.from_dict(dict(SOLO)))
        assert by_object["status"] == "done"
        assert by_object["request_key"] == by_path["request_key"]

    def test_malformed_document_rejected_before_enqueue(self, scheduler):
        with pytest.raises(FlowSpecError, match="unknown top-level"):
            scheduler.submit({"nonsense": True})
        assert scheduler.health()["queue_depth"] == 0

    def test_failing_spec_reports_failed_job(self, scheduler):
        bad = dict(SOLO, name="bad",
                   mapping={"fixed": {"VLD": "tile7"}})
        view = scheduler.submit(bad)
        view = scheduler.wait(view["id"], timeout=120)
        assert view["status"] == "failed"
        assert view["error"]
        assert scheduler.result_text(view["id"]) is None
        assert scheduler.counters.failed == 1
        # the stage whose compute raised is closed out, not left
        # "running" inside a failed job
        assert view["stages"]
        assert all(s["status"] != "running" for s in view["stages"])
        assert view["stages"][-1]["status"] == "failed"

    def test_unknown_job_rejected(self, scheduler):
        with pytest.raises(UnknownJobError, match="job-nope"):
            scheduler.get("job-nope")

    def test_closed_scheduler_rejects_submissions(self, tmp_path):
        scheduler = FlowScheduler(tmp_path / "ws")
        scheduler.close()
        with pytest.raises(FlowServiceError, match="closed"):
            scheduler.submit(SOLO)
        scheduler.close()  # idempotent


class TestCoalescing:
    def test_concurrent_identical_submissions_compute_once(
        self, scheduler, count_analyses
    ):
        """N concurrent clients, one computation, byte-identical fan-out."""
        n = 6
        barrier = threading.Barrier(n)
        views, errors = [], []

        def client():
            try:
                barrier.wait(timeout=10)
                view = scheduler.submit(SOLO)
                if view["status"] not in ("done", "failed"):
                    view = scheduler.wait(view["id"], timeout=120)
                views.append(view)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=client) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=180)
        assert not errors
        assert len(views) == n
        assert all(v["status"] == "done" for v in views)
        # exactly one underlying computation...
        assert len(count_analyses) == 1
        assert scheduler.counters.computed == 1
        # ...and every client got the same bytes
        texts = {scheduler.result_text(v["id"]) for v in views}
        assert len(texts) == 1
        # in-flight duplicates shared the computing job
        shared = {v["id"] for v in views if v["source"] != SOURCE_ARTIFACTS}
        assert len(shared) == 1
        assert scheduler.counters.coalesced >= 1

    def test_queue_bound_rejects_excess_submissions(
        self, tmp_path, monkeypatch
    ):
        release = threading.Event()

        with FlowScheduler(tmp_path / "ws", jobs=1, max_queue=1) as s:
            original = FlowScheduler._compute

            def blocked(self, job):
                assert release.wait(timeout=60)
                return original(self, job)

            monkeypatch.setattr(FlowScheduler, "_compute", blocked)
            first = s.submit(SOLO)
            assert first["status"] in ("queued", "running")
            other = dict(SOLO, name="other",
                         architecture={"tiles": 3})
            with pytest.raises(QueueFullError, match="queue full"):
                s.submit(other)
            # the same spec still coalesces instead of being rejected
            again = s.submit(SOLO)
            assert again["coalesced"] is True
            assert again["id"] == first["id"]
            release.set()
            done = s.wait(first["id"], timeout=120)
            assert done["status"] == "done"


class TestShutdown:
    def test_close_is_bounded_by_a_wedged_job(self, tmp_path,
                                              monkeypatch):
        """close(timeout) must hand control back even when a session
        wedges: the drain times out once and the pool is released
        without a second unbounded join."""
        import time

        release = threading.Event()

        def wedged(self, job):
            release.wait(timeout=60)
            return '{"stub": true}\n'

        monkeypatch.setattr(FlowScheduler, "_compute", wedged)
        scheduler = FlowScheduler(tmp_path / "ws", jobs=1)
        scheduler.submit(SOLO)
        start = time.monotonic()
        scheduler.close(timeout=0.5)
        assert time.monotonic() - start < 10.0
        release.set()  # let the worker thread finish

    def test_worker_pool_close_without_wait(self):
        """WorkerPool.close(wait=False) returns while a worker runs."""
        import time

        from repro.flow.dse import WorkerPool

        release = threading.Event()
        pool = WorkerPool(1)
        future = pool.submit(release.wait, 60)
        start = time.monotonic()
        pool.close(wait=False)
        assert time.monotonic() - start < 5.0
        release.set()
        assert future.result(timeout=10) is True
        pool.close()  # idempotent


class TestWarmWorkspace:
    def test_restart_serves_from_artifacts_without_computing(
        self, tmp_path, count_analyses
    ):
        workspace = tmp_path / "ws"
        with FlowScheduler(workspace, jobs=1) as first:
            before = submit_done(first, SOLO)
            text = first.result_text(before["id"])
        # "restart": a fresh scheduler over the same workspace
        with FlowScheduler(workspace, jobs=1) as second:
            view = second.submit(SOLO)
            assert view["status"] == "done"
            assert view["source"] == SOURCE_ARTIFACTS
            assert second.result_text(view["id"]) == text
        assert len(count_analyses) == 1

    def test_restart_without_response_resumes_all_stages(self, tmp_path):
        """Even with the response artifact gone, a warm workspace
        resumes every session stage (the `repro batch` >=90% gate)."""
        workspace = tmp_path / "ws"
        with FlowScheduler(workspace, jobs=1) as first:
            before = submit_done(first, SOLO)
            text = first.result_text(before["id"])
            key = before["request_key"]
        (workspace / "artifacts" / RESPONSE_KIND / f"{key}.json").unlink()
        with FlowScheduler(workspace, jobs=1) as second:
            view = submit_done(second, SOLO)
            assert view["source"] == SOURCE_COMPUTED
            stages = view["stages"]
            resumed = [s for s in stages if s["status"] == "resumed"]
            assert len(resumed) / len(stages) >= 0.9  # actually 1.0
            assert second.result_text(view["id"]) == text


class TestJobHistory:
    def test_finished_jobs_are_evicted_beyond_the_limit(
        self, tmp_path, count_analyses
    ):
        """Tracked jobs are transient serving state: a long-running
        server must not grow memory with traffic.  Artifacts remain the
        durable record, so resubmitting an evicted request still hits."""
        with FlowScheduler(
            tmp_path / "ws", jobs=1, history_limit=2
        ) as scheduler:
            first = submit_done(scheduler, SOLO)
            views = [scheduler.submit(SOLO) for _ in range(3)]
            assert all(v["source"] == SOURCE_ARTIFACTS for v in views)
            assert len(count_analyses) == 1
            assert scheduler.health()["jobs_tracked"] == 2
            with pytest.raises(UnknownJobError):
                scheduler.get(first["id"])
            # the newest jobs survive
            assert scheduler.get(views[-1]["id"])["status"] == "done"


class TestByteIdentity:
    def test_served_payload_matches_run_workspace_json(
        self, scheduler, tmp_path, capsys
    ):
        """The acceptance gate: the served mappings are byte-identical
        to what ``repro run --workspace --json`` emits and persists for
        the same spec."""
        from repro.cli import main

        view = submit_done(scheduler, DUO)
        served = json.loads(scheduler.result_text(view["id"]))

        spec_file = tmp_path / "duo.json"
        spec_file.write_text(json.dumps(DUO), encoding="utf-8")
        cli_ws = tmp_path / "cli-ws"
        assert main(["run", "--spec", str(spec_file),
                     "--workspace", str(cli_ws), "--json"]) == 0
        cli_payload = json.loads(capsys.readouterr().out)

        # identical canonical bytes for every deterministic subtree
        for name in ("decoder", "osd"):
            assert canonical_json(served["mappings"][name]) == \
                canonical_json(cli_payload["mappings"][name])
        assert canonical_json(served["use_cases"]) == \
            canonical_json(cli_payload["use_cases"])

        # and the artifact stores themselves are byte-identical where
        # they overlap (the service adds only flow-response documents)
        service_root = scheduler.workspace / "artifacts"
        for path in sorted(cli_ws.joinpath("artifacts").rglob("*.json")):
            twin = service_root / path.relative_to(cli_ws / "artifacts")
            assert twin.read_bytes() == path.read_bytes()


class TestRequestKey:
    def test_key_is_deterministic_and_knob_sensitive(self):
        spec = FlowSpec.from_dict(dict(SOLO))
        again = FlowSpec.from_dict(dict(SOLO))
        assert flow_request_key(spec) == flow_request_key(again)
        assert len(flow_request_key(spec)) == 64
        changed = FlowSpec.from_dict(
            dict(SOLO, architecture={"tiles": 3})
        )
        assert flow_request_key(changed) != flow_request_key(spec)
        strategy = FlowSpec.from_dict(
            dict(SOLO, mapping={"binding": "spiral"})
        )
        assert flow_request_key(strategy) != flow_request_key(spec)

    def test_key_follows_effective_pins_not_document_layout(self):
        """The key hashes what the session *runs*: an app whose empty
        pin table overrides the spec-level pins must not share a key
        with an app that inherits them (they map differently), while
        spelling the same pins at spec level or app level must."""
        base = {
            "name": "pins",
            "apps": [{"name": "a", "sequence": "gradient", "frames": 1}],
            "architecture": {"tiles": 2},
            "mapping": {"fixed": {"VLD": "tile0"}},
        }
        inherited = FlowSpec.from_dict(json.loads(json.dumps(base)))
        overridden = json.loads(json.dumps(base))
        overridden["apps"][0]["fixed"] = {}  # explicit: no pins
        overridden = FlowSpec.from_dict(overridden)
        assert inherited.fixed_for(inherited.apps[0]) == {"VLD": "tile0"}
        assert overridden.fixed_for(overridden.apps[0]) is None
        assert flow_request_key(inherited) != flow_request_key(overridden)

        per_app = json.loads(json.dumps(base))
        per_app["apps"][0]["fixed"] = {"VLD": "tile0"}
        del per_app["mapping"]["fixed"]
        per_app = FlowSpec.from_dict(per_app)
        assert flow_request_key(per_app) == flow_request_key(inherited)

    def test_response_payload_roundtrips(self, scheduler):
        view = submit_done(scheduler, SOLO)
        text = scheduler.result_text(view["id"])
        response = from_payload(json.loads(text))
        assert canonical_json(to_payload(response)) + "\n" == text
