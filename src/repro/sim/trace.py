"""Execution-trace analysis: tile utilization and ASCII Gantt charts.

The platform simulator can record its full firing trace; this module turns
that trace into the reports a designer wants when deciding whether a
mapping is balanced: per-resource utilization (how busy each tile and CA
is) and a Gantt rendering of a time window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sdf.simulation import Firing, SimulationTrace


@dataclass(frozen=True)
class UtilizationReport:
    """Busy fraction per resource over an observation window."""

    window_cycles: int
    busy_cycles: Dict[str, int]

    def utilization_of(self, resource: str) -> float:
        if self.window_cycles == 0:
            return 0.0
        return self.busy_cycles.get(resource, 0) / self.window_cycles

    def bottleneck(self) -> Optional[str]:
        """The busiest resource -- where extra WCET slack pays off most."""
        if not self.busy_cycles:
            return None
        return max(self.busy_cycles, key=self.busy_cycles.get)

    def as_table(self) -> str:
        lines = [f"{'resource':<12} {'busy':>10} {'utilization':>12}"]
        lines.append("-" * 36)
        for resource in sorted(self.busy_cycles):
            busy = self.busy_cycles[resource]
            lines.append(
                f"{resource:<12} {busy:>10} "
                f"{100 * self.utilization_of(resource):>11.1f}%"
            )
        return "\n".join(lines)


def utilization(
    trace: SimulationTrace,
    processor_of: Dict[str, str],
    until: Optional[int] = None,
) -> UtilizationReport:
    """Busy cycles per resource from a recorded trace.

    Only firings of actors bound to a resource count; unbound actors
    (channel-model bookkeeping) occupy no processor.  ``until`` clips the
    window (defaults to the trace makespan).
    """
    window = until if until is not None else trace.makespan()
    busy: Dict[str, int] = {}
    for firing in trace.firings:
        resource = processor_of.get(firing.actor)
        if resource is None:
            continue
        start = min(firing.start, window)
        end = min(firing.end, window)
        if end > start:
            busy[resource] = busy.get(resource, 0) + (end - start)
    return UtilizationReport(window_cycles=window, busy_cycles=busy)


def gantt(
    trace: SimulationTrace,
    actors: Sequence[str],
    start: int = 0,
    end: Optional[int] = None,
    width: int = 72,
) -> str:
    """ASCII Gantt chart of the chosen actors over [start, end).

    Each row is one actor; each column covers ``(end-start)/width`` cycles;
    a column prints ``#`` when the actor runs during any part of it.
    """
    if end is None:
        end = trace.makespan()
    if end <= start:
        raise ValueError(f"empty window [{start}, {end})")
    span = end - start
    cycles_per_column = max(1, span // width)
    columns = -(-span // cycles_per_column)

    rows: List[str] = []
    name_width = max((len(a) for a in actors), default=4)
    header = (
        f"{'':<{name_width}} | t = {start} .. {end} "
        f"({cycles_per_column} cycles/column)"
    )
    rows.append(header)
    for actor in actors:
        cells = [" "] * columns
        for firing in trace.firings:
            if firing.actor != actor:
                continue
            if firing.end <= start or firing.start >= end:
                continue
            first = max(0, (firing.start - start) // cycles_per_column)
            last = min(
                columns - 1,
                (min(firing.end, end) - 1 - start) // cycles_per_column,
            )
            for column in range(first, last + 1):
                cells[column] = "#"
        rows.append(f"{actor:<{name_width}} |{''.join(cells)}|")
    return "\n".join(rows)
