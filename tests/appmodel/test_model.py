"""Tests for the application model."""

import pytest

from repro.appmodel import (
    ActorImplementation,
    ApplicationModel,
    FiringContext,
    FiringOutput,
    ImplementationMetrics,
    MemoryRequirements,
)
from repro.exceptions import GraphError
from repro.sdf import SDFGraph


def metrics(wcet=100, instr=1024, data=512):
    return ImplementationMetrics(
        wcet=wcet,
        memory=MemoryRequirements(instruction_bytes=instr, data_bytes=data),
    )


def impl(actor, pe_type="microblaze", wcet=100, **kwargs):
    return ActorImplementation(
        actor=actor, pe_type=pe_type, metrics=metrics(wcet=wcet), **kwargs
    )


@pytest.fixture
def app(figure2_graph):
    return ApplicationModel(
        graph=figure2_graph,
        implementations=[
            impl("A", wcet=40),
            impl("B", wcet=30),
            impl("C", wcet=20),
        ],
    )


class TestLookups:
    def test_implementation_for(self, app):
        found = app.implementation_for("A", "microblaze")
        assert found is not None
        assert found.name == "A_microblaze"
        assert app.implementation_for("A", "armv7") is None

    def test_wcet(self, app):
        assert app.wcet("B", "microblaze") == 30
        with pytest.raises(GraphError, match="no implementation"):
            app.wcet("B", "armv7")

    def test_supported_pe_types(self, app):
        app.add_implementation(impl("A", pe_type="accelerator", wcet=5))
        assert app.supported_pe_types("A") == ("microblaze", "accelerator")

    def test_add_implementation_unknown_actor(self, app):
        with pytest.raises(GraphError, match="unknown actor"):
            app.add_implementation(impl("Zed"))


class TestTimedGraph:
    def test_uses_wcets(self, app):
        timed = app.timed_graph()
        assert timed.actor("A").execution_time == 40
        assert timed.actor("C").execution_time == 20

    def test_pe_type_selection(self, app):
        app.add_implementation(impl("A", pe_type="accelerator", wcet=5))
        timed = app.timed_graph(pe_type_of={"A": "accelerator"})
        assert timed.actor("A").execution_time == 5
        assert timed.actor("B").execution_time == 30

    def test_original_untouched(self, app, figure2_graph):
        app.timed_graph()
        assert figure2_graph.actor("A").execution_time == 4


class TestValidation:
    def test_valid_model_passes(self, app):
        app.validate()

    def test_missing_implementation_fails(self, figure2_graph):
        model = ApplicationModel(
            graph=figure2_graph, implementations=[impl("A")]
        )
        with pytest.raises(GraphError, match="no implementation"):
            model.validate()

    def test_argument_order_must_reference_explicit_edges(self, figure2_graph):
        model = ApplicationModel(
            graph=figure2_graph,
            implementations=[
                impl("A", argument_order=["selfA"]),  # implicit edge
                impl("B"),
                impl("C"),
            ],
        )
        with pytest.raises(GraphError, match="not an explicit edge"):
            model.validate()

    def test_argument_order_must_touch_actor(self, figure2_graph):
        model = ApplicationModel(
            graph=figure2_graph,
            implementations=[
                impl("A", argument_order=["b2c"]),  # edge of B and C
                impl("B"),
                impl("C"),
            ],
        )
        with pytest.raises(GraphError, match="not connected"):
            model.validate()

    def test_token_size_required_on_explicit_edges(self):
        g = SDFGraph("g")
        g.add_actor("A", execution_time=1)
        g.add_actor("B", execution_time=1)
        g.add_edge("ab", "A", "B")  # token_size defaults to 0
        model = ApplicationModel(
            graph=g, implementations=[impl("A"), impl("B")]
        )
        with pytest.raises(GraphError, match="token size"):
            model.validate()

    def test_partially_functional_rejected(self, figure2_graph):
        def fn(ctx):
            return FiringOutput(outputs={}, cycles=1)

        model = ApplicationModel(
            graph=figure2_graph,
            implementations=[
                impl("A", function=fn),
                impl("B"),
                impl("C"),
            ],
        )
        with pytest.raises(GraphError, match="partially functional"):
            model.validate()

    def test_name_defaults_to_graph_name(self, app):
        assert app.name == "figure2"


class TestFiringContext:
    def test_single_helper(self):
        ctx = FiringContext(inputs={"e": [42]})
        assert ctx.single("e") == 42

    def test_single_rejects_multi_token(self):
        ctx = FiringContext(inputs={"e": [1, 2]})
        with pytest.raises(GraphError, match="single"):
            ctx.single("e")

    def test_fire_without_function_raises(self):
        implementation = impl("A")
        with pytest.raises(GraphError, match="no functional model"):
            implementation.fire(FiringContext())


class TestMetrics:
    def test_memory_addition(self):
        a = MemoryRequirements(100, 200)
        b = MemoryRequirements(10, 20)
        total = a + b
        assert total.instruction_bytes == 110
        assert total.data_bytes == 220
        assert total.total_bytes == 330

    def test_negative_rejected(self):
        with pytest.raises(GraphError):
            MemoryRequirements(-1, 0)
        with pytest.raises(GraphError):
            ImplementationMetrics(wcet=-1)

    def test_implementation_requires_names(self):
        with pytest.raises(GraphError):
            ActorImplementation(actor="", pe_type="mb", metrics=metrics())
        with pytest.raises(GraphError):
            ActorImplementation(actor="A", pe_type="", metrics=metrics())
