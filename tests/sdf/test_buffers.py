"""Tests for buffer modelling and sizing."""

from fractions import Fraction

import pytest

from repro.exceptions import GraphError, ThroughputConstraintError
from repro.sdf import (
    BufferDistribution,
    SDFGraph,
    add_buffer_edges,
    analyze_throughput,
    is_deadlock_free,
    minimal_buffer_distribution,
)
from repro.sdf.buffers import (
    buffer_edge_name,
    bufferable_edges,
    minimal_capacity_bound,
    occupancy_based_capacities,
)


class TestBufferEdges:
    def test_back_edge_structure(self, two_actor_pipeline):
        g = add_buffer_edges(
            two_actor_pipeline, BufferDistribution({"p2q": 3})
        )
        back = g.edge(buffer_edge_name("p2q"))
        assert back.src == "Q" and back.dst == "P"
        assert back.production == 1 and back.consumption == 1
        assert back.initial_tokens == 3
        assert back.implicit

    def test_initial_tokens_reduce_credits(self):
        g = SDFGraph("g")
        g.add_actor("A", execution_time=1)
        g.add_actor("B", execution_time=1)
        g.add_edge("ab", "A", "B", initial_tokens=2)
        bounded = add_buffer_edges(g, BufferDistribution({"ab": 5}))
        assert bounded.edge(buffer_edge_name("ab")).initial_tokens == 3

    def test_capacity_below_initial_tokens_rejected(self):
        g = SDFGraph("g")
        g.add_actor("A", execution_time=1)
        g.add_actor("B", execution_time=1)
        g.add_edge("ab", "A", "B", initial_tokens=4)
        with pytest.raises(GraphError, match="initial token"):
            add_buffer_edges(g, BufferDistribution({"ab": 3}))

    def test_capacity_below_burst_rejected(self, figure2_graph):
        with pytest.raises(GraphError, match="burst"):
            add_buffer_edges(figure2_graph, BufferDistribution({"a2b": 1}))

    def test_self_edge_not_bufferable(self, figure2_graph):
        with pytest.raises(GraphError, match="self-edge"):
            add_buffer_edges(figure2_graph, BufferDistribution({"selfA": 2}))

    def test_original_graph_untouched(self, two_actor_pipeline):
        add_buffer_edges(two_actor_pipeline, BufferDistribution({"p2q": 3}))
        assert len(two_actor_pipeline.edges) == 1


class TestCapacityBound:
    def test_unit_rates(self, two_actor_pipeline):
        edge = two_actor_pipeline.edge("p2q")
        assert minimal_capacity_bound(edge) == 1

    def test_multirate(self, figure2_graph):
        # p=2, c=1: bound = 2 + 1 - 1 = 2
        assert minimal_capacity_bound(figure2_graph.edge("a2b")) == 2
        # p=1, c=2: bound = 1 + 2 - 1 = 2
        assert minimal_capacity_bound(figure2_graph.edge("b2c")) == 2

    def test_initial_tokens_dominate(self):
        g = SDFGraph("g")
        g.add_actor("A", execution_time=1)
        g.add_actor("B", execution_time=1)
        g.add_edge("ab", "A", "B", initial_tokens=9)
        assert minimal_capacity_bound(g.edge("ab")) == 9

    def test_bufferable_edges_exclude_self_and_implicit(self, figure2_graph):
        names = {e.name for e in bufferable_edges(figure2_graph)}
        assert names == {"a2b", "a2c", "b2c"}


class TestMinimalDistribution:
    def test_liveness_only(self, figure2_graph):
        distribution, result = minimal_buffer_distribution(figure2_graph)
        bounded = add_buffer_edges(figure2_graph, distribution)
        assert is_deadlock_free(bounded)
        assert result.throughput > 0

    def test_meets_throughput_constraint(self, two_actor_pipeline):
        target = Fraction(1, 7)  # bottleneck rate of Q
        distribution, result = minimal_buffer_distribution(
            two_actor_pipeline, throughput_constraint=target
        )
        assert result.throughput >= target
        # Capacity 2 suffices for full overlap on a 2-stage pipeline.
        assert distribution["p2q"] <= 3

    def test_unreachable_constraint_raises(self, two_actor_pipeline):
        impossible = Fraction(1, 2)  # faster than Q can ever run
        with pytest.raises(ThroughputConstraintError):
            minimal_buffer_distribution(
                two_actor_pipeline,
                throughput_constraint=impossible,
                max_rounds=30,
            )

    def test_distribution_grows_monotonically_with_constraint(
        self, two_actor_pipeline
    ):
        loose, _ = minimal_buffer_distribution(
            two_actor_pipeline, throughput_constraint=Fraction(1, 12)
        )
        tight, _ = minimal_buffer_distribution(
            two_actor_pipeline, throughput_constraint=Fraction(1, 7)
        )
        assert tight["p2q"] >= loose["p2q"]

    def test_graph_without_bufferable_edges(self):
        g = SDFGraph("solo")
        g.add_actor("A", execution_time=5)
        g.add_edge("selfA", "A", "A", initial_tokens=1)
        distribution, result = minimal_buffer_distribution(g)
        assert distribution.capacities == {}
        assert result.throughput == Fraction(1, 5)


class TestDistributionHelpers:
    def test_totals(self, figure2_graph):
        d = BufferDistribution({"a2b": 4, "a2c": 2, "b2c": 4})
        assert d.total_tokens() == 10
        assert d.total_bytes(figure2_graph) == 40  # token_size 4 each

    def test_contains_getitem(self):
        d = BufferDistribution({"x": 3})
        assert "x" in d and d["x"] == 3
        assert "y" not in d

    def test_occupancy_based_capacities(self, figure2_graph):
        observed = {"a2b": 3, "a2c": 1, "b2c": 2}
        d = occupancy_based_capacities(figure2_graph, observed, slack=1)
        assert d["a2b"] == 4
        assert d["a2c"] == 2
        # observed+slack (3) wins over structural bound (2)
        assert d["b2c"] == 3

    def test_occupancy_respects_structural_bound(self, figure2_graph):
        d = occupancy_based_capacities(figure2_graph, {}, slack=0)
        assert d["a2b"] == 2  # never below the liveness bound


def test_bounded_throughput_increases_with_capacity(two_actor_pipeline):
    previous = Fraction(0)
    for capacity in (1, 2, 3):
        g = add_buffer_edges(
            two_actor_pipeline, BufferDistribution({"p2q": capacity})
        )
        current = analyze_throughput(g).throughput
        assert current >= previous
        previous = current


class TestWarmPath:
    def test_retune_buffer_capacity_in_place(self, two_actor_pipeline):
        g = add_buffer_edges(
            two_actor_pipeline, BufferDistribution({"p2q": 3})
        )
        from repro.sdf import retune_buffer_capacity

        retune_buffer_capacity(g, "p2q", 5)
        assert g.edge(buffer_edge_name("p2q")).initial_tokens == 5
        with pytest.raises(GraphError, match="below a"):
            retune_buffer_capacity(g, "p2q", 0)

    def test_sizing_result_matches_fresh_rebuild(self, figure2_graph):
        """The in-place warm search must land on a distribution whose
        *freshly rebuilt* bounded graph reproduces the returned analysis
        bit for bit."""
        constraint = Fraction(1, 16)
        distribution, result = minimal_buffer_distribution(
            figure2_graph, throughput_constraint=constraint
        )
        rebuilt = add_buffer_edges(figure2_graph, distribution)
        assert analyze_throughput(rebuilt) == result
        assert result.throughput >= constraint

    def test_source_graph_left_untouched(self, figure2_graph):
        before = {
            e.name: e.initial_tokens for e in figure2_graph.edges
        }
        minimal_buffer_distribution(
            figure2_graph, throughput_constraint=Fraction(1, 20)
        )
        after = {e.name: e.initial_tokens for e in figure2_graph.edges}
        assert before == after
