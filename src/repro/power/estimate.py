"""Platform power and application energy estimates.

Two result types thread power awareness through the flow:

* :class:`PowerEstimate` -- peak platform power: every tile's leakage
  plus every component's switching power, technology-scaled.  This is
  what a ``--power-budget`` is checked against.
* :class:`EnergyEstimate` -- energy per graph iteration of a *mapped*
  application, split into compute (repetition-vector firing counts x
  WCET x tile dynamic power), communication (channel token traffic x
  words x per-word interconnect energy over the existing
  :class:`~repro.mapping.spec.ChannelMapping` routes), and the static
  energy leaked over one guaranteed-throughput period.  This is what an
  ``--energy-budget`` is checked against.

Every figure is an exact :class:`fractions.Fraction`, so estimates are
deterministic and artifact round-trips are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import TYPE_CHECKING, Dict, Optional

from repro.exceptions import PowerError
from repro.power.model import PowerModel, power_counters
from repro.sdf.repetition import repetition_vector

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.appmodel.model import ApplicationModel
    from repro.arch.platform import ArchitectureModel
    from repro.mapping.spec import MappingResult


@dataclass(frozen=True)
class PowerEstimate:
    """Peak platform power in milliwatts (exact fractions)."""

    static_mw: Fraction
    dynamic_mw: Fraction
    tech_nm: int

    @property
    def total_mw(self) -> Fraction:
        return self.static_mw + self.dynamic_mw

    def within_budget(self, budget_mw: Optional[Fraction]) -> bool:
        return budget_mw is None or self.total_mw <= budget_mw

    def describe(self) -> str:
        return (
            f"{float(self.total_mw):.1f} mW peak "
            f"({float(self.static_mw):.1f} static + "
            f"{float(self.dynamic_mw):.1f} dynamic, "
            f"{self.tech_nm} nm)"
        )

    def to_payload(self) -> Dict[str, object]:
        from repro.artifacts.schema import to_payload

        return to_payload(self)

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "PowerEstimate":
        from repro.artifacts.schema import check_envelope, from_payload

        check_envelope(payload, "power-estimate")
        return from_payload(payload)


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy per graph iteration in picojoules (exact fractions)."""

    compute_pj: Fraction
    communication_pj: Fraction
    static_pj: Fraction
    tech_nm: int

    @property
    def total_pj(self) -> Fraction:
        return self.compute_pj + self.communication_pj + self.static_pj

    @property
    def total_nj(self) -> Fraction:
        return self.total_pj / 1000

    def within_budget(self, budget_nj: Optional[Fraction]) -> bool:
        return budget_nj is None or self.total_nj <= budget_nj

    def describe(self) -> str:
        return (
            f"{float(self.total_nj):.2f} nJ/iteration "
            f"({float(self.compute_pj):.0f} pJ compute + "
            f"{float(self.communication_pj):.0f} pJ communication + "
            f"{float(self.static_pj):.0f} pJ static, "
            f"{self.tech_nm} nm)"
        )

    def to_payload(self) -> Dict[str, object]:
        from repro.artifacts.schema import to_payload

        return to_payload(self)

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "EnergyEstimate":
        from repro.artifacts.schema import check_envelope, from_payload

        check_envelope(payload, "energy-estimate")
        return from_payload(payload)


def _platform_static_uw(
    architecture: "ArchitectureModel", model: PowerModel
) -> Fraction:
    total = Fraction(0)
    for tile in architecture.tiles:
        total += model.tile_static_uw(tile)
    if architecture.interconnect is not None:
        total += model.interconnect_static_uw(architecture.interconnect)
    return total


def platform_power(
    architecture: "ArchitectureModel",
    model: Optional[PowerModel] = None,
) -> PowerEstimate:
    """Peak power of the platform as currently configured/allocated."""
    model = model or PowerModel()
    static_uw = _platform_static_uw(architecture, model)
    dynamic_uw = Fraction(0)
    for tile in architecture.tiles:
        dynamic_uw += model.tile_dynamic_uw(tile)
    if architecture.interconnect is not None:
        dynamic_uw += model.interconnect_dynamic_uw(
            architecture.interconnect
        )
    power_counters().record("platform")
    return PowerEstimate(
        static_mw=static_uw / 1000,
        dynamic_mw=dynamic_uw / 1000,
        tech_nm=model.tech_nm,
    )


def application_energy(
    application: "ApplicationModel",
    result: "MappingResult",
    architecture: "ArchitectureModel",
    model: Optional[PowerModel] = None,
) -> EnergyEstimate:
    """Energy one graph iteration costs under the given mapping.

    Uses only data the flow already computed: the repetition vector for
    firing counts, the bound implementations' WCETs, the channel routes
    of the mapping, and the guaranteed throughput for the period over
    which static power leaks.  1 uW x 1 ns = 1 fJ, hence the /1000
    conversions to pJ.
    """
    model = model or PowerModel()
    throughput = result.guaranteed_throughput
    if throughput is None or throughput <= 0:
        raise PowerError(
            "application energy is undefined for a mapping without a "
            "positive guaranteed throughput"
        )
    graph = application.graph
    q = repetition_vector(graph)

    compute_fj = Fraction(0)
    for actor, implementation in result.mapping.implementations.items():
        tile = architecture.tile(result.mapping.tile_of(actor))
        cycles = q[actor] * implementation.wcet
        compute_fj += (
            cycles * model.clock_ns * model.tile_dynamic_uw(tile)
        )

    communication_pj = Fraction(0)
    interconnect = architecture.interconnect
    if interconnect is not None:
        for channel in result.mapping.inter_tile_channels():
            edge = graph.edge(channel.edge)
            tokens = q[edge.src] * edge.production
            communication_pj += model.transfer_energy_pj(
                interconnect,
                channel.src_tile,
                channel.dst_tile,
                tokens,
                edge.token_size,
            )

    period_cycles = 1 / throughput
    static_fj = (
        _platform_static_uw(architecture, model)
        * period_cycles
        * model.clock_ns
    )
    power_counters().record("application")
    return EnergyEstimate(
        compute_pj=compute_fj / 1000,
        communication_pj=communication_pj,
        static_pj=static_fj / 1000,
        tech_nm=model.tech_nm,
    )


__all__ = [
    "PowerEstimate",
    "EnergyEstimate",
    "platform_power",
    "application_energy",
]
