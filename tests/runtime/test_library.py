"""Library builds: sweep, persistence, FlowSession key sharing."""

from repro.artifacts import ArtifactStore, canonical_json, to_payload
from repro.flow.session import execute_spec
from repro.flow.spec import FlowSpec
from repro.runtime import LIBRARY_KIND, build_library, library_key_for

from tests.runtime.conftest import ARCH_FSL, flow_specs


class TestBuild:
    def test_cold_build_sweeps_every_prefix_size(self, fsl_builds):
        for spec, build in fsl_builds:
            # one mapping attempt per platform size, none resumed
            assert build.analyses == spec.architecture.tiles
            assert build.resumed == 0
            assert len(build.library) >= 1
            assert build.library.app_name == spec.app.effective_name

    def test_max_tiles_caps_the_sweep(self):
        spec = flow_specs("chain", 1, 5, ARCH_FSL)[0]
        build = build_library(spec, max_tiles=2)
        assert build.analyses == 2
        assert all(p.n_tiles <= 2 for p in build.library.points)

    def test_key_is_stable_across_document_round_trip(self, fsl_builds):
        for spec, build in fsl_builds:
            clone = FlowSpec.from_dict(spec.to_document())
            assert library_key_for(clone) == build.key


class TestPersistence:
    def test_warm_workspace_short_circuits_to_zero_analyses(
        self, tmp_path
    ):
        spec = flow_specs("chain", 1, 5, ARCH_FSL)[0]
        store = ArtifactStore(tmp_path / "artifacts")
        cold = build_library(spec, store=store)
        assert cold.analyses == spec.architecture.tiles
        assert store.get(LIBRARY_KIND, cold.key) is not None

        warm = build_library(spec, store=store)
        assert warm.analyses == 0
        assert warm.key == cold.key
        assert canonical_json(to_payload(warm.library)) == \
            canonical_json(to_payload(cold.library))

    def test_flow_session_results_resume_the_build(self, tmp_path):
        # a workspace that already ran the flow shares the exact
        # mapping-result keying, so the full-size analysis resumes
        spec = flow_specs("chain", 1, 5, ARCH_FSL)[0]
        execute_spec(spec, tmp_path)
        store = ArtifactStore(tmp_path / "artifacts")
        build = build_library(spec, store=store)
        assert build.resumed >= 1
        assert build.analyses + build.resumed == \
            spec.architecture.tiles
