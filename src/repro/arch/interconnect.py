"""Interconnect base class and the FSL point-to-point interconnect.

Both interconnect variants implement the same contract (Section 4: "All
tile and interconnect variants use this same network interface"): given a
connection between two tiles they provide :class:`ChannelParameters` for the
Fig. 4 communication model, and they can account for the resources a
connection claims (FSL: one dedicated FIFO per connection; NoC: wires along
a route -- see :mod:`repro.arch.noc`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.comm.params import ChannelParameters
from repro.exceptions import ArchitectureError, RoutingError


@dataclass(frozen=True)
class Connection:
    """A point-to-point logical connection request between two tiles."""

    name: str
    src_tile: str
    dst_tile: str

    def __post_init__(self) -> None:
        if self.src_tile == self.dst_tile:
            raise ArchitectureError(
                f"connection {self.name!r}: both ends on tile "
                f"{self.src_tile!r}; tile-local channels do not use the "
                "interconnect"
            )


class Interconnect:
    """Common interface of the MAMPS interconnect variants."""

    kind: str = "abstract"

    def allocate(self, connection: Connection) -> ChannelParameters:
        """Reserve resources for ``connection`` and return its channel
        parameters.  Raises :class:`RoutingError` when the interconnect
        cannot accept the connection."""
        raise NotImplementedError

    def release_all(self) -> None:
        """Forget all allocations (used when the mapper retries)."""
        raise NotImplementedError

    def allocated_connections(self) -> Tuple[Connection, ...]:
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human-readable summary for reports."""
        raise NotImplementedError


class FSLInterconnect(Interconnect):
    """Point-to-point Xilinx Fast Simplex Links (Section 5.3.1).

    Every connection gets a dedicated unidirectional FIFO link: full word
    rate (one word per cycle), a latency of a couple of cycles, and
    ``fifo_depth_words`` of buffering.  The only capacity limit is the
    number of FSL ports per processor (8 masters + 8 slaves on a
    Microblaze), checked per tile.

    Parameters are calibration points for the Fig. 4 model: ``w`` (words in
    simultaneous transmission) is the link pipeline depth.
    """

    kind = "fsl"

    def __init__(
        self,
        fifo_depth_words: int = 16,
        latency_cycles: int = 2,
        max_links_per_tile: int = 8,
    ) -> None:
        if fifo_depth_words < 1:
            raise ArchitectureError("FSL FIFO depth must be >= 1")
        if latency_cycles < 1:
            raise ArchitectureError("FSL latency must be >= 1")
        self.fifo_depth_words = fifo_depth_words
        self.latency_cycles = latency_cycles
        self.max_links_per_tile = max_links_per_tile
        self._connections: List[Connection] = []

    def allocate(self, connection: Connection) -> ChannelParameters:
        out_links = sum(
            1 for c in self._connections if c.src_tile == connection.src_tile
        )
        in_links = sum(
            1 for c in self._connections if c.dst_tile == connection.dst_tile
        )
        if out_links >= self.max_links_per_tile:
            raise RoutingError(
                f"tile {connection.src_tile!r} has no free master FSL port "
                f"for {connection.name!r} (limit {self.max_links_per_tile})"
            )
        if in_links >= self.max_links_per_tile:
            raise RoutingError(
                f"tile {connection.dst_tile!r} has no free slave FSL port "
                f"for {connection.name!r} (limit {self.max_links_per_tile})"
            )
        self._connections.append(connection)
        return ChannelParameters(
            words_in_flight=self.latency_cycles,
            network_buffer_words=self.fifo_depth_words,
            injection_cycles_per_word=1,
            channel_latency=self.latency_cycles,
        )

    def release_all(self) -> None:
        self._connections.clear()

    def allocated_connections(self) -> Tuple[Connection, ...]:
        return tuple(self._connections)

    def __eq__(self, other: object) -> bool:
        """Structural equality: parameters plus current allocations."""
        if not isinstance(other, FSLInterconnect):
            return NotImplemented
        return (
            self.fifo_depth_words == other.fifo_depth_words
            and self.latency_cycles == other.latency_cycles
            and self.max_links_per_tile == other.max_links_per_tile
            and self._connections == other._connections
        )

    __hash__ = object.__hash__  # mutable allocation state

    def describe(self) -> str:
        return (
            f"FSL point-to-point ({len(self._connections)} links, depth "
            f"{self.fifo_depth_words} words, latency {self.latency_cycles})"
        )
