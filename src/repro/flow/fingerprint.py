"""Content-addressed fingerprints for exploration caching.

The design-space exploration engine memoizes mapping results keyed on
*what was analyzed*, not on object identity: two :class:`ApplicationModel`
instances that describe the same graph, implementations and constraint
produce the same fingerprint, and likewise for two independently
instantiated template architectures.  This is what lets repeated sweeps --
and overlapping multi-application use-cases that share design points --
skip re-analysis entirely.

Fingerprints cover everything the conservative mapping analysis reads:

* application: actors (name, execution time, rate metadata), edges
  (endpoints, rates, initial tokens, token sizes, implicitness),
  implementations (actor, PE type, WCET, memory footprint) and the
  throughput constraint;
* architecture: tiles (name, role, PE type, memory capacities,
  peripherals, communication assist) and the interconnect's structural
  parameters (kind, FIFO depths, mesh wiring, flow control).

Functional models (Python callables) are excluded entirely: the
analysis never executes them, so they cannot change a mapping result --
and excluding them makes the fingerprint *portable*: an application
reloaded from a workspace artifact (:mod:`repro.artifacts`, where
callables decode to ``None``) fingerprints identically to the freshly
built one, which is what lets a :class:`~repro.flow.session.FlowSession`
resume mapping stages across processes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from fractions import Fraction
from typing import TYPE_CHECKING, Dict, Iterable, Optional

from repro.appmodel.model import ApplicationModel
from repro.arch.interconnect import FSLInterconnect
from repro.arch.noc import SDMNoC
from repro.arch.platform import ArchitectureModel

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.flow.spec import FlowSpec


def _digest(parts: Iterable[str]) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def application_fingerprint(app: ApplicationModel) -> str:
    """Stable hex digest of everything the mapping analysis reads from
    ``app``.  Token *values* and functional models are excluded: the
    conservative analysis only consumes structure, WCETs and sizes, so
    a timing-only copy (e.g. one reloaded from an artifact) shares the
    fingerprint of the functional original."""
    parts = ["app", app.name, str(app.throughput_constraint)]
    for actor in sorted(app.graph.actors, key=lambda a: a.name):
        parts.append(
            f"actor:{actor.name}:{actor.execution_time}"
            f":{actor.group}:{actor.concurrency}"
        )
    for edge in sorted(app.graph.edges, key=lambda e: e.name):
        parts.append(
            f"edge:{edge.name}:{edge.src}:{edge.dst}:{edge.production}"
            f":{edge.consumption}:{edge.initial_tokens}:{edge.token_size}"
            f":{int(edge.implicit)}"
        )
    for impl in sorted(
        app.implementations, key=lambda i: (i.actor, i.pe_type)
    ):
        parts.append(
            f"impl:{impl.actor}:{impl.pe_type}:{impl.metrics.wcet}"
            f":{impl.metrics.memory.instruction_bytes}"
            f":{impl.metrics.memory.data_bytes}"
        )
    return _digest(parts)


def _interconnect_parts(arch: ArchitectureModel) -> Iterable[str]:
    fabric = arch.interconnect
    if fabric is None:
        yield "interconnect:none"
    elif isinstance(fabric, FSLInterconnect):
        yield (
            f"interconnect:fsl:{fabric.fifo_depth_words}"
            f":{fabric.latency_cycles}:{fabric.max_links_per_tile}"
        )
    elif isinstance(fabric, SDMNoC):
        yield (
            f"interconnect:noc:{fabric.columns}x{fabric.rows}"
            f":{fabric.wires_per_link}:{fabric.default_connection_wires}"
            f":{int(fabric.flow_control)}"
        )
    else:
        yield f"interconnect:{fabric.kind}:{fabric.describe()}"


def architecture_fingerprint(arch: ArchitectureModel) -> str:
    """Stable hex digest of the platform structure: tiles, memories,
    peripherals, CAs and interconnect parameters.  Excludes transient
    allocation state (released between mapping attempts anyway)."""
    parts = ["arch"]
    for tile in arch.tiles:
        peripherals = ",".join(sorted(p.name for p in tile.peripherals))
        parts.append(
            f"tile:{tile.name}:{tile.role}:{tile.pe_type}"
            f":{tile.instruction_memory.capacity_bytes}"
            f":{tile.data_memory.capacity_bytes}"
            f":{peripherals}:{int(tile.has_ca)}"
        )
    parts.extend(_interconnect_parts(arch))
    return _digest(parts)


def flow_request_key(spec: "FlowSpec") -> str:
    """Content address of one FlowSpec *request*: the dedup key of the
    flow service (:mod:`repro.service`).

    Covers everything :class:`~repro.flow.session.FlowSession` reads
    from the spec: applications (sequence, quality, frames, use-case
    name), the architecture template parameters, the effort preset, the
    strategy tuple, and -- per application -- the *effective* constraint
    and pins (:meth:`FlowSpec.constraint_for` / :meth:`FlowSpec.fixed_for`,
    exactly what the session hands the mapper).  Encoding the effective
    values rather than the raw document layout means two documents that
    would run the exact same session share the key (e.g. spec-level pins
    vs the same pins repeated per app), and two that differ in any
    knob the session acts on never do.  Nothing transient (paths,
    wall-clock, process identity) participates, which is what lets a
    served response be reused across submissions, server restarts and
    machines sharing a workspace.
    """
    document = {
        "name": spec.name,
        "apps": [
            {
                "sequence": app.sequence,
                "quality": app.quality,
                "frames": app.frames,
                "name": app.effective_name,
                "constraint": (
                    None
                    if spec.constraint_for(app) is None
                    else str(spec.constraint_for(app))
                ),
                # fixed_for normalizes no-pins to None, so an empty
                # pin table and an absent one share the key they share
                # a session with
                "fixed": (
                    None
                    if spec.fixed_for(app) is None
                    else dict(sorted(spec.fixed_for(app).items()))
                ),
                # a generated workload's identity is its scenario
                # table; the key is omitted (not null) for case-study
                # apps so their request keys are unchanged
                **(
                    {}
                    if app.scenario is None
                    else {"scenario": app.scenario.to_table()}
                ),
            }
            for app in spec.apps
        ],
        # asdict covers every ArchSpec field, so a spec knob added
        # later cannot be silently left out of the request identity
        "architecture": dataclasses.asdict(spec.architecture),
        "effort": spec.effort,
        "strategies": spec.strategies.cache_token(),
    }
    return _digest(
        [
            "flow-request",
            json.dumps(document, sort_keys=True, separators=(",", ":")),
        ]
    )


def evaluation_key(
    app_fingerprint: str,
    arch_fingerprint: str,
    constraint: Optional[Fraction],
    fixed: Optional[Dict[str, str]],
    effort: str,
    strategy: Optional[str] = None,
    budgets: Optional[str] = None,
) -> str:
    """The content address of one design-point evaluation: application +
    architecture + every knob that steers ``map_application``.

    ``strategy`` is the mapping-pipeline identity
    (:meth:`repro.mapping.pipeline.StrategyTuple.cache_token`); two
    evaluations of the same platform under different stage strategies
    must never share an entry.  ``None`` (legacy callers) hashes as a
    distinct marker rather than colliding with any real tuple.

    ``budgets`` is the power configuration (technology node, clock,
    power/energy budgets) when power estimation is on.  It joins the
    digest *only when present*, so budget-less evaluations keep the
    exact keys they had before the power subsystem existed -- warm
    caches and persisted workspaces stay valid.
    """
    pins = ",".join(f"{a}={t}" for a, t in sorted((fixed or {}).items()))
    parts = [
        "eval",
        app_fingerprint,
        arch_fingerprint,
        str(constraint),
        pins,
        effort,
        strategy if strategy is not None else "-",
    ]
    if budgets is not None:
        parts.append(f"budgets:{budgets}")
    return _digest(parts)
