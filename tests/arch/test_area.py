"""Tests for the FPGA area model (including the 12% flow-control claim)."""

import pytest

from repro.arch import (
    AreaEstimate,
    SDMNoC,
    architecture_from_template,
    interconnect_area,
    ip_tile,
    master_tile,
    platform_area,
    slave_tile,
    tile_area,
)
from repro.arch.area import (
    CA_SLICES,
    MICROBLAZE_SLICES,
    NOC_FLOW_CONTROL_OVERHEAD,
    memory_brams,
    noc_router_slices,
)
from repro.arch.interconnect import Connection


def test_flow_control_costs_about_12_percent():
    """Section 5.3.1: 'approximately 12% more slices'."""
    base = noc_router_slices(flow_control=False)
    with_fc = noc_router_slices(flow_control=True)
    overhead = (with_fc - base) / base
    assert overhead == pytest.approx(NOC_FLOW_CONTROL_OVERHEAD, abs=0.005)


def test_master_bigger_than_slave():
    assert tile_area(master_tile("m")).slices > tile_area(
        slave_tile("s")
    ).slices


def test_ca_adds_slices():
    plain = tile_area(slave_tile("s"))
    with_ca = tile_area(slave_tile("s", with_ca=True))
    assert with_ca.slices - plain.slices == CA_SLICES


def test_ip_tile_has_no_processor_slices():
    area = tile_area(ip_tile("hw"))
    assert area.slices < MICROBLAZE_SLICES


def test_memory_brams_rounds_up():
    assert memory_brams(1) == 1
    assert memory_brams(4608) == 1
    assert memory_brams(4609) == 2


def test_fsl_area_scales_with_links():
    arch = architecture_from_template(3, "fsl")
    empty = interconnect_area(arch.interconnect)
    arch.connect("c0", "tile0", "tile1")
    arch.connect("c1", "tile1", "tile2")
    used = interconnect_area(arch.interconnect)
    assert used.slices > empty.slices


def test_noc_area_scales_with_routers():
    small = SDMNoC([f"t{i}" for i in range(2)])
    large = SDMNoC([f"t{i}" for i in range(9)])
    assert interconnect_area(large).slices > interconnect_area(small).slices


def test_noc_flow_control_platform_delta():
    fc = SDMNoC(["a", "b"], flow_control=True)
    plain = SDMNoC(["a", "b"], flow_control=False)
    ratio = interconnect_area(fc).slices / interconnect_area(plain).slices
    assert ratio == pytest.approx(1.12, abs=0.01)


def test_platform_area_totals():
    arch = architecture_from_template(4, "noc")
    total = platform_area(arch)
    tiles_only = sum(tile_area(t).slices for t in arch.tiles)
    assert total.slices == tiles_only + interconnect_area(
        arch.interconnect
    ).slices
    assert total.brams > 0


def test_area_addition():
    a = AreaEstimate(10, 1) + AreaEstimate(5, 2)
    assert a.slices == 15 and a.brams == 3


def test_memory_brams_zero_capacity():
    assert memory_brams(0) == 0


def test_heterogeneous_mix_saves_brams_not_slices():
    """The compact mix (half-size slave memories) trims BRAMs only:
    logic area is memory-independent in this model."""
    uniform = architecture_from_template(3, "fsl")
    compact = architecture_from_template(
        3, "fsl", slave_instruction_kb=64, slave_data_kb=64
    )
    assert platform_area(compact).brams < platform_area(uniform).brams
    assert platform_area(compact).slices == platform_area(uniform).slices
    # the master keeps its full-size memories in the compact mix
    assert (
        tile_area(compact.tiles[0]).brams
        == tile_area(uniform.tiles[0]).brams
    )


def test_ca_platform_delta_is_per_tile():
    plain = architecture_from_template(4, "fsl")
    with_ca = architecture_from_template(4, "fsl", with_ca=True)
    delta = platform_area(with_ca).slices - platform_area(plain).slices
    assert delta == 4 * CA_SLICES
    assert platform_area(with_ca).brams == platform_area(plain).brams


def test_ca_tile_brams_unchanged():
    plain = tile_area(slave_tile("s"))
    with_ca = tile_area(slave_tile("s", with_ca=True))
    assert with_ca.brams == plain.brams


def test_ip_tile_area_counts_its_small_memories():
    area = tile_area(ip_tile("hw"))
    # 1 kB instruction + 1 kB data each round up to one BRAM
    assert area.brams == 2
    assert area.slices == tile_area(ip_tile("hw2")).slices


def test_zero_tile_architecture_rejected():
    from repro.arch.platform import ArchitectureModel
    from repro.exceptions import ArchitectureError

    arch = ArchitectureModel("empty")
    assert platform_area(arch).slices == 0  # the model itself is total
    with pytest.raises(ArchitectureError, match="has no tiles"):
        arch.validate()


def test_multi_tile_architecture_needs_interconnect():
    from repro.arch.platform import ArchitectureModel
    from repro.exceptions import ArchitectureError

    arch = ArchitectureModel(
        "island", tiles=[master_tile("m"), slave_tile("s")]
    )
    with pytest.raises(ArchitectureError, match="no interconnect"):
        arch.validate()


def test_unallocated_fsl_interconnect_has_no_area():
    arch = architecture_from_template(3, "fsl")
    assert interconnect_area(arch.interconnect) == AreaEstimate(0, 0)
