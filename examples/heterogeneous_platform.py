#!/usr/bin/env python3
"""Heterogeneous mapping: automatic implementation selection (Section 7).

The application model may carry several implementations per actor, one per
processing-element type; the binder then picks "the correct implementation
when heterogeneous systems are designed".  This example builds a platform
with two Microblaze tiles plus one DSP-flavoured tile on which the IDCT is
four times faster, and shows the flow (a) choosing the DSP implementation
automatically and (b) the guaranteed throughput gain it buys.

Run:  python examples/heterogeneous_platform.py
"""

from repro.appmodel import ActorImplementation, ImplementationMetrics
from repro.appmodel.metrics import MemoryRequirements
from repro.arch import ArchitectureModel, FSLInterconnect, Tile
from repro.arch.components import ProcessorType
from repro.arch.tile import master_tile
from repro.mapping import map_application
from repro.mjpeg import (
    build_mjpeg_application,
    encode_sequence,
    test_set_sequences,
)


def build_heterogeneous_architecture() -> ArchitectureModel:
    dsp = ProcessorType(name="dsp", context_switch_cycles=8)
    arch = ArchitectureModel(
        name="hetero_3t",
        tiles=[
            master_tile("tile0"),
            Tile(name="tile1", role="slave"),
            Tile(name="tile2", role="slave", processor=dsp),
        ],
        interconnect=FSLInterconnect(),
    )
    arch.validate()
    return arch


def main() -> None:
    frames = test_set_sequences(n_frames=2)["blobs"]
    encoded = encode_sequence(frames, quality=75)
    app = build_mjpeg_application(encoded)

    # Homogeneous baseline: 3 Microblaze tiles.
    from repro.arch import architecture_from_template

    baseline_arch = architecture_from_template(3, "fsl")
    baseline = map_application(app, baseline_arch, fixed={"VLD": "tile0"})

    # Add a DSP implementation of the IDCT: 4x faster, more code memory.
    microblaze_idct = app.implementation_for("IDCT", "microblaze")
    app.add_implementation(
        ActorImplementation(
            actor="IDCT",
            pe_type="dsp",
            metrics=ImplementationMetrics(
                wcet=microblaze_idct.wcet // 4,
                memory=MemoryRequirements(
                    instruction_bytes=20 * 1024, data_bytes=8 * 1024
                ),
            ),
            function=microblaze_idct.function,  # same functionality
        )
    )

    hetero_arch = build_heterogeneous_architecture()
    hetero = map_application(app, hetero_arch, fixed={"VLD": "tile0"})

    chosen = hetero.mapping.implementations["IDCT"]
    print(f"IDCT bound to: {hetero.mapping.tile_of('IDCT')}")
    print(f"implementation selected: {chosen.name} (pe_type={chosen.pe_type})")
    assert chosen.pe_type == "dsp", "binder should have picked the DSP"

    base_throughput = float(baseline.guaranteed_throughput * 1e6)
    hetero_throughput = float(hetero.guaranteed_throughput * 1e6)
    print(f"guaranteed, homogeneous (3x Microblaze): "
          f"{base_throughput:.4f} MCU/Mcycle")
    print(f"guaranteed, heterogeneous (2x MB + DSP): "
          f"{hetero_throughput:.4f} MCU/Mcycle")
    print(f"speedup from the DSP implementation: "
          f"{hetero_throughput / base_throughput:.2f}x")


if __name__ == "__main__":
    main()
