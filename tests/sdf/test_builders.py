"""Tests for the validated graph family constructors (repro.sdf.builders)."""

import pytest

from repro.exceptions import GraphError
from repro.sdf import (
    chain_graph,
    check_well_formed,
    diamond_graph,
    is_deadlock_free,
    repetition_vector,
    ring_graph,
    split_join_graph,
    SDFGraph,
)


class TestChain:
    def test_default_rates(self):
        g = chain_graph("c", [10, 20, 30])
        assert len(g) == 3
        assert repetition_vector(g) == {"a0": 1, "a1": 1, "a2": 1}
        assert is_deadlock_free(g)

    def test_skewed_rates_are_consistent(self):
        g = chain_graph("c", [1, 1, 1], rates=[(3, 2), (1, 4)])
        q = repetition_vector(g)
        assert q["a0"] * 3 == q["a1"] * 2
        assert q["a1"] * 1 == q["a2"] * 4

    def test_too_short_rejected(self):
        with pytest.raises(GraphError, match="at least 2"):
            chain_graph("c", [5])

    def test_mismatched_rates_rejected(self):
        with pytest.raises(GraphError, match="rate pairs"):
            chain_graph("c", [1, 2, 3], rates=[(1, 1)])


class TestSplitJoin:
    def test_branches_and_repeats(self):
        g = split_join_graph("sj", 5, [7, 11, 13], 3,
                             branch_repeats=[1, 2, 4])
        q = repetition_vector(g)
        assert q["src"] == q["snk"]
        assert q["b1"] == 2 * q["src"]
        assert q["b2"] == 4 * q["src"]
        assert is_deadlock_free(g)

    def test_single_branch_rejected(self):
        with pytest.raises(GraphError, match="at least 2 branches"):
            split_join_graph("sj", 1, [2], 3)

    def test_zero_repeat_rejected(self):
        with pytest.raises(GraphError, match=">= 1"):
            split_join_graph("sj", 1, [2, 3], 4, branch_repeats=[1, 0])


class TestDiamond:
    def test_shape(self):
        g = diamond_graph("d", [1, 2, 3, 4], branch_repeats=(2, 3))
        q = repetition_vector(g)
        assert q["top"] == q["bottom"]
        assert q["left"] == 2 * q["top"]
        assert q["right"] == 3 * q["top"]
        assert is_deadlock_free(g)

    def test_wrong_wcet_count_rejected(self):
        with pytest.raises(GraphError, match="expected 4"):
            diamond_graph("d", [1, 2, 3])


class TestRing:
    def test_live_with_one_token(self):
        g = ring_graph("r", [10, 20, 30], initial_tokens=1)
        assert is_deadlock_free(g)
        assert g.edge("back").initial_tokens == 1

    def test_tokenless_ring_rejected(self):
        with pytest.raises(GraphError, match="initial token"):
            ring_graph("r", [1, 2], initial_tokens=0)


class TestPostCondition:
    def test_check_well_formed_flags_disconnected(self):
        g = SDFGraph("d")
        g.add_actor("A")
        g.add_actor("B")
        with pytest.raises(GraphError, match="not connected"):
            check_well_formed(g)

    def test_check_well_formed_flags_deadlock(self):
        g = SDFGraph("cycle")
        g.add_actor("A")
        g.add_actor("B")
        g.add_edge("ab", "A", "B")
        g.add_edge("ba", "B", "A")
        with pytest.raises(GraphError, match="not live"):
            check_well_formed(g)
