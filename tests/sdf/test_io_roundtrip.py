"""Round-trip property tests for the SDF3-style XML serializer.

The XML dialect (:mod:`repro.sdf.io_sdf3`) is the flow's oldest
serializer and previously had no fuzz coverage: randomized graphs are
pushed through parse(serialize(parse(serialize(g)))) and compared
structurally, plus explicit malformed-document error paths.

The XML format intentionally carries less than the canonical artifact
schema: ``group`` and ``concurrency`` are artifact-only metadata, so the
generator below sticks to XML-representable graphs.
"""

import random
import xml.etree.ElementTree as ET

import pytest

from repro.exceptions import GraphError
from repro.sdf import SDFGraph
from repro.sdf.io_sdf3 import (
    graph_from_xml,
    graph_to_xml,
    load_graph,
    save_graph,
)


def random_graph(seed: int) -> SDFGraph:
    """A random well-formed SDF graph (XML-representable fields only)."""
    rng = random.Random(seed)
    graph = SDFGraph(f"fuzz{seed}")
    n_actors = rng.randint(1, 8)
    names = [f"a{i}" for i in range(n_actors)]
    for name in names:
        graph.add_actor(name, execution_time=rng.randint(0, 5000))
    n_edges = rng.randint(0, 12)
    for index in range(n_edges):
        src, dst = rng.choice(names), rng.choice(names)
        consumption = rng.randint(1, 6)
        initial_tokens = rng.randint(0, 4)
        if src == dst and initial_tokens < consumption:
            # build-time validation rejects a self-loop that could never
            # fire; keep the generated graph constructible
            initial_tokens = consumption + rng.randint(0, 2)
        graph.add_edge(
            f"e{index}",
            src,
            dst,
            production=rng.randint(1, 6),
            consumption=consumption,
            initial_tokens=initial_tokens,
            token_size=rng.choice((0, 1, 4, 12, 64)),
            implicit=rng.random() < 0.3,
        )
    return graph


def xml_roundtrip(graph: SDFGraph) -> SDFGraph:
    return graph_from_xml(graph_to_xml(graph))


class TestRandomizedRoundTrip:
    @pytest.mark.parametrize("seed", range(40))
    def test_parse_serialize_parse_equality(self, seed):
        graph = random_graph(seed)
        once = xml_roundtrip(graph)
        assert once == graph
        # idempotence: a reparsed graph serializes to the same document
        twice = xml_roundtrip(once)
        assert twice == once
        assert ET.tostring(graph_to_xml(once)) == \
            ET.tostring(graph_to_xml(twice))

    @pytest.mark.parametrize("seed", range(40, 50))
    def test_file_roundtrip(self, seed, tmp_path):
        graph = random_graph(seed)
        path = tmp_path / "g.xml"
        save_graph(graph, path)
        assert load_graph(path) == graph

    def test_every_field_class_survives(self):
        g = SDFGraph("fields")
        g.add_actor("A", execution_time=123)
        g.add_actor("B")  # zero execution time
        g.add_edge("ab", "A", "B", production=3, consumption=2,
                   initial_tokens=5, token_size=12)
        g.add_edge("state", "A", "A", initial_tokens=1, implicit=True)
        clone = xml_roundtrip(g)
        assert clone == g
        assert clone.edge("ab").token_size == 12
        assert clone.edge("state").implicit
        assert clone.actor("B").execution_time == 0


def _doc(body: str) -> ET.Element:
    return ET.fromstring(body)


class TestMalformedDocuments:
    def test_wrong_root_rejected(self):
        with pytest.raises(GraphError, match="sdf3"):
            graph_from_xml(_doc("<nonsense/>"))

    def test_missing_application_graph_rejected(self):
        with pytest.raises(GraphError, match="applicationGraph"):
            graph_from_xml(_doc('<sdf3 type="sdf"/>'))

    def test_missing_sdf_section_rejected(self):
        with pytest.raises(GraphError, match="<sdf>"):
            graph_from_xml(
                _doc('<sdf3><applicationGraph name="g"/></sdf3>')
            )

    def test_nameless_actor_rejected(self):
        with pytest.raises(GraphError, match="without name"):
            graph_from_xml(_doc(
                '<sdf3><applicationGraph name="g"><sdf name="g">'
                "<actor/></sdf></applicationGraph></sdf3>"
            ))

    def test_channel_missing_endpoints_rejected(self):
        with pytest.raises(GraphError, match="missing"):
            graph_from_xml(_doc(
                '<sdf3><applicationGraph name="g"><sdf name="g">'
                '<actor name="A"/><channel name="c"/>'
                "</sdf></applicationGraph></sdf3>"
            ))

    def test_channel_to_unknown_actor_rejected(self):
        with pytest.raises(GraphError, match="unknown actor"):
            graph_from_xml(_doc(
                '<sdf3><applicationGraph name="g"><sdf name="g">'
                '<actor name="A"/>'
                '<channel name="c" srcActor="A" dstActor="ghost"/>'
                "</sdf></applicationGraph></sdf3>"
            ))

    def test_duplicate_actor_rejected(self):
        with pytest.raises(GraphError, match="duplicate actor"):
            graph_from_xml(_doc(
                '<sdf3><applicationGraph name="g"><sdf name="g">'
                '<actor name="A"/><actor name="A"/>'
                "</sdf></applicationGraph></sdf3>"
            ))

    def test_unparseable_file_raises(self, tmp_path):
        path = tmp_path / "broken.xml"
        path.write_text("<sdf3><unclosed>", encoding="utf-8")
        with pytest.raises(ET.ParseError):
            load_graph(path)
