"""Stdlib HTTP JSON API over a :class:`~repro.service.FlowScheduler`.

A thin, dependency-free transport: every route delegates to the
scheduler and speaks the canonical artifact payloads of
:mod:`repro.artifacts`.  Endpoints (all ``application/json``):

========================================  ==============================
``POST /v1/flows``                        submit a FlowSpec document;
                                          returns the job view (``200``
                                          when served instantly from
                                          artifacts -- then the decoded
                                          result rides along under
                                          ``result`` -- ``202`` while
                                          queued/running/coalesced,
                                          ``400`` malformed spec,
                                          ``429`` queue full)
``GET /v1/flows/{id}``                    slim job status incl.
                                          per-stage progress (never the
                                          result document)
``GET /v1/flows/{id}/result``             the *exact* canonical
                                          ``flow-response`` document
                                          (``202`` while pending,
                                          ``500`` when the job failed)
``GET /v1/artifacts/{kind}/{key}``        exact on-disk bytes of one
                                          workspace artifact
``GET /v1/healthz``                       queue depth, worker slots,
                                          service counters, throughput-
                                          engine tier counters and
                                          platform occupancy
``POST /v1/platform/apps``                admit a FlowSpec's application
                                          onto the run-time platform
                                          (``201`` admitted, ``409``
                                          rejected -- does not fit the
                                          residual platform)
``POST /v1/platform/apps/{id}/depart``    depart one application;
                                          optional JSON body
                                          ``{"migrate": true}``
                                          rebalances the survivors
                                          (``404`` unknown app)
``GET /v1/platform``                      full platform state: admitted
                                          apps, placements, residual
                                          capacity, transition counters
========================================  ==============================

Result and artifact routes serve the stored document text verbatim
(via :meth:`~repro.artifacts.store.ArtifactStore.get_text`), so what a
client receives is byte-identical to what the workspace holds.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.artifacts.schema import ArtifactError
from repro.exceptions import AdmissionError, ReproError, UnknownAppError
from repro.flow.spec import FlowSpecError
from repro.service.scheduler import (
    DONE,
    FAILED,
    FlowScheduler,
    QueueFullError,
    UnknownJobError,
)

#: Largest accepted request body; a FlowSpec document is tiny.
MAX_BODY_BYTES = 1 << 20


class FlowServiceServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one scheduler.

    Handler threads are daemonic, so a blocked client cannot keep the
    process alive past :meth:`shutdown`; the scheduler itself is closed
    by the caller (see :func:`serve`), not the server.
    """

    daemon_threads = True

    def __init__(
        self,
        scheduler: FlowScheduler,
        host: str = "127.0.0.1",
        port: int = 0,
        quiet: bool = True,
    ) -> None:
        self.scheduler = scheduler
        self.quiet = quiet
        super().__init__((host, port), FlowRequestHandler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def serve(
    workspace: Union[str, Path],
    host: str = "127.0.0.1",
    port: int = 0,
    jobs: int = 2,
    max_queue: int = 32,
    quiet: bool = True,
    backend: str = "thread",
    replica: str = "",
) -> FlowServiceServer:
    """Scheduler + bound server over ``workspace`` (not yet serving).

    The caller drives ``server.serve_forever()`` (possibly on its own
    thread) and owns shutdown: ``server.shutdown()``,
    ``server.server_close()``, then ``server.scheduler.close()``.
    ``port=0`` binds an ephemeral port -- read it back from
    ``server.url``.  ``backend="process"`` computes flows on worker
    processes; ``replica`` names this instance in health and job views
    (replicas sharing a workspace need no other coordination -- see
    docs/service.md).
    """
    scheduler = FlowScheduler(
        workspace,
        jobs=jobs,
        max_queue=max_queue,
        backend=backend,
        replica=replica or None,
    )
    return FlowServiceServer(scheduler, host=host, port=port, quiet=quiet)


class FlowRequestHandler(BaseHTTPRequestHandler):
    """Routes one connection's requests onto the server's scheduler."""

    server_version = "repro-flow-service/1"
    protocol_version = "HTTP/1.1"

    # the server is annotated for the benefit of route helpers
    server: FlowServiceServer

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        parts = self._route()
        if parts == ["v1", "flows"]:
            return self._submit()
        if parts == ["v1", "platform", "apps"]:
            return self._platform_admit()
        if (
            len(parts) == 5
            and parts[:3] == ["v1", "platform", "apps"]
            and parts[4] == "depart"
        ):
            return self._platform_depart(parts[3])
        # the body was never read; keeping the connection alive would
        # let its bytes be parsed as the next request
        self.close_connection = True
        self._send_error(404, f"no such endpoint: POST {self.path}")

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parts = self._route()
        if parts == ["v1", "healthz"]:
            return self._send_json(200, self.server.scheduler.health())
        if parts == ["v1", "platform"]:
            return self._platform_status()
        if len(parts) == 3 and parts[:2] == ["v1", "flows"]:
            return self._job_status(parts[2])
        if (
            len(parts) == 4
            and parts[:2] == ["v1", "flows"]
            and parts[3] == "result"
        ):
            return self._job_result(parts[2])
        if len(parts) == 4 and parts[:2] == ["v1", "artifacts"]:
            return self._artifact(parts[2], parts[3])
        self._send_error(404, f"no such endpoint: GET {self.path}")

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------
    def _submit(self) -> None:
        try:
            document = self._read_json()
        except ValueError as error:
            # the body may be partly or wholly unread (missing length,
            # oversized, undecodable); never reuse this connection
            self.close_connection = True
            return self._send_error(400, str(error))
        try:
            view = self.server.scheduler.submit(document)
        except QueueFullError as error:
            return self._send_error(429, str(error))
        except FlowSpecError as error:
            return self._send_error(400, str(error))
        except ReproError as error:
            return self._send_error(500, str(error))
        self._send_json(200 if view["status"] == DONE else 202, view)

    def _job_status(self, job_id: str) -> None:
        # the status view stays slim -- polling a done job must not
        # re-parse and re-ship the (large) response document every
        # time; /result delivers it once, verbatim
        try:
            view = self.server.scheduler.get(job_id)
        except UnknownJobError as error:
            return self._send_error(404, str(error))
        self._send_json(200, view)

    def _job_result(self, job_id: str) -> None:
        try:
            view = self.server.scheduler.get(job_id)
            text = (
                self.server.scheduler.result_text(job_id)
                if view["status"] == DONE
                else None
            )
        except UnknownJobError as error:  # includes eviction mid-request
            return self._send_error(404, str(error))
        if view["status"] == FAILED:
            return self._send_error(
                500, f"flow {view['spec_name']!r} failed: {view['error']}"
            )
        if view["status"] != DONE:
            return self._send_json(202, view)
        assert text is not None  # done implies a stored response
        self._send_document(200, text)

    def _platform_admit(self) -> None:
        try:
            document = self._read_json()
        except ValueError as error:
            self.close_connection = True
            return self._send_error(400, str(error))
        try:
            decision = self.server.scheduler.platform_admit(document)
        except QueueFullError as error:
            return self._send_error(429, str(error))
        except AdmissionError as error:
            # typed rejection: the residual platform cannot host the
            # app; nothing already running was touched
            return self._send_error(409, str(error))
        except FlowSpecError as error:
            return self._send_error(400, str(error))
        except ReproError as error:
            return self._send_error(500, str(error))
        self._send_json(201, decision)

    def _platform_depart(self, app_id: str) -> None:
        # the body is optional ({"migrate": true}); only read when sent
        length = int(self.headers.get("Content-Length") or 0)
        document: Dict[str, Any] = {}
        if length > 0:
            try:
                document = self._read_json()
            except ValueError as error:
                self.close_connection = True
                return self._send_error(400, str(error))
        migrate = bool(document.get("migrate", False))
        try:
            outcome = self.server.scheduler.platform_depart(
                app_id, migrate=migrate
            )
        except UnknownAppError as error:
            return self._send_error(404, str(error))
        except ReproError as error:
            return self._send_error(500, str(error))
        self._send_json(200, outcome)

    def _platform_status(self) -> None:
        try:
            status = self.server.scheduler.platform_status()
        except ReproError as error:
            return self._send_error(500, str(error))
        self._send_json(200, status)

    def _artifact(self, kind: str, key: str) -> None:
        key = key[:-5] if key.endswith(".json") else key
        try:
            text = self.server.scheduler.store.get_text(kind, key)
        except ArtifactError as error:
            return self._send_error(400, str(error))
        if text is None:
            return self._send_error(
                404, f"no artifact {kind}/{key} in the workspace"
            )
        self._send_document(200, text)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _route(self) -> List[str]:
        path = self.path.split("?", 1)[0]
        return [part for part in path.split("/") if part]

    def _read_json(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ValueError("request body must be a JSON FlowSpec document")
        if length > MAX_BODY_BYTES:
            raise ValueError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length)
        try:
            document = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ValueError(f"invalid JSON request body: {error}") from None
        if not isinstance(document, dict):
            raise ValueError(
                "request body must be a JSON object (a FlowSpec document)"
            )
        return document

    def _send_json(self, code: int, payload: Dict[str, Any]) -> None:
        self._send_document(
            code, json.dumps(payload, sort_keys=True) + "\n"
        )

    def _send_error(self, code: int, message: str) -> None:
        self._send_json(code, {"error": message, "status_code": code})

    def _send_document(self, code: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)
