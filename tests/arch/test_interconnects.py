"""Tests for the FSL interconnect and the SDM mesh NoC."""

import pytest

from repro.arch import FSLInterconnect, SDMNoC, mesh_dimensions
from repro.arch.interconnect import Connection
from repro.arch.noc import xy_route
from repro.exceptions import ArchitectureError, RoutingError


def conn(name, src, dst):
    return Connection(name=name, src_tile=src, dst_tile=dst)


class TestFSL:
    def test_allocation_returns_full_rate(self):
        fsl = FSLInterconnect()
        params = fsl.allocate(conn("c", "t0", "t1"))
        assert params.injection_cycles_per_word == 1
        assert params.channel_latency == 2
        assert params.network_buffer_words == 16

    def test_port_limit_enforced(self):
        fsl = FSLInterconnect(max_links_per_tile=2)
        fsl.allocate(conn("c0", "t0", "t1"))
        fsl.allocate(conn("c1", "t0", "t2"))
        with pytest.raises(RoutingError, match="master FSL port"):
            fsl.allocate(conn("c2", "t0", "t3"))

    def test_inbound_port_limit(self):
        fsl = FSLInterconnect(max_links_per_tile=1)
        fsl.allocate(conn("c0", "t1", "t0"))
        with pytest.raises(RoutingError, match="slave FSL port"):
            fsl.allocate(conn("c1", "t2", "t0"))

    def test_release_all(self):
        fsl = FSLInterconnect(max_links_per_tile=1)
        fsl.allocate(conn("c0", "t0", "t1"))
        fsl.release_all()
        fsl.allocate(conn("c1", "t0", "t2"))  # no port error

    def test_self_connection_rejected(self):
        with pytest.raises(ArchitectureError, match="both ends"):
            conn("c", "t0", "t0")


class TestMeshDimensions:
    @pytest.mark.parametrize(
        "tiles,expected",
        [(1, (1, 1)), (2, (2, 1)), (4, (2, 2)), (5, (3, 2)),
         (6, (3, 2)), (7, (3, 3)), (9, (3, 3)), (12, (4, 3))],
    )
    def test_near_square(self, tiles, expected):
        assert mesh_dimensions(tiles) == expected

    def test_mesh_covers_all_tiles(self):
        for n in range(1, 20):
            columns, rows = mesh_dimensions(n)
            assert columns * rows >= n
            # near-square: aspect ratio never exceeds 2 for n > 2
            if n > 2:
                assert columns <= 2 * rows and rows <= 2 * columns


class TestXYRoute:
    def test_straight_line(self):
        assert xy_route((0, 0), (2, 0)) == [(0, 0), (1, 0), (2, 0)]

    def test_l_shape_x_first(self):
        assert xy_route((0, 0), (1, 2)) == [
            (0, 0), (1, 0), (1, 1), (1, 2)
        ]

    def test_same_point(self):
        assert xy_route((1, 1), (1, 1)) == [(1, 1)]

    def test_negative_direction(self):
        assert xy_route((2, 1), (0, 1)) == [(2, 1), (1, 1), (0, 1)]


class TestSDMNoC:
    def make(self, tiles=4, **kwargs):
        return SDMNoC([f"t{i}" for i in range(tiles)], **kwargs)

    def test_placement_row_major(self):
        noc = self.make(4)  # 2x2 mesh
        assert noc.position_of("t0") == (0, 0)
        assert noc.position_of("t1") == (1, 0)
        assert noc.position_of("t2") == (0, 1)
        assert noc.position_of("t3") == (1, 1)

    def test_hop_distance(self):
        noc = self.make(4)
        assert noc.hop_distance("t0", "t3") == 2
        assert noc.hop_distance("t0", "t1") == 1

    def test_allocation_parameters_scale_with_distance(self):
        noc = self.make(4)
        near = noc.allocate(conn("c0", "t0", "t1"))
        far = noc.allocate(conn("c1", "t0", "t3"))
        assert far.channel_latency > near.channel_latency

    def test_wire_rate(self):
        noc = self.make(4, wires_per_link=32, default_connection_wires=8)
        params = noc.allocate(conn("c0", "t0", "t1"))
        assert params.injection_cycles_per_word == 4  # ceil(32/8)

    def test_more_wires_faster(self):
        noc = self.make(4, wires_per_link=32)
        fast = noc.allocate(conn("c0", "t0", "t1"), wires=32)
        slow = noc.allocate(conn("c1", "t2", "t3"), wires=4)
        assert fast.injection_cycles_per_word < slow.injection_cycles_per_word

    def test_wires_are_exclusive(self):
        noc = self.make(4, wires_per_link=8, default_connection_wires=8)
        noc.allocate(conn("c0", "t0", "t1"))
        with pytest.raises(RoutingError, match="free wires"):
            noc.allocate(conn("c1", "t0", "t1"))

    def test_disjoint_routes_coexist(self):
        noc = self.make(4, wires_per_link=8, default_connection_wires=8)
        noc.allocate(conn("c0", "t0", "t1"))
        noc.allocate(conn("c1", "t2", "t3"))  # different link

    def test_release_all_restores_wires(self):
        noc = self.make(4, wires_per_link=8, default_connection_wires=8)
        noc.allocate(conn("c0", "t0", "t1"))
        noc.release_all()
        noc.allocate(conn("c1", "t0", "t1"))

    def test_over_wide_request_rejected(self):
        noc = self.make(4, wires_per_link=16)
        with pytest.raises(RoutingError, match="links have"):
            noc.allocate(conn("c0", "t0", "t1"), wires=17)

    def test_no_flow_control_cannot_allocate(self):
        noc = self.make(4, flow_control=False)
        with pytest.raises(RoutingError, match="flow"):
            noc.allocate(conn("c0", "t0", "t1"))

    def test_unknown_tile_rejected(self):
        noc = self.make(2)
        with pytest.raises(ArchitectureError, match="not placed"):
            noc.position_of("zed")

    def test_duplicate_tiles_rejected(self):
        with pytest.raises(ArchitectureError, match="duplicate"):
            SDMNoC(["a", "a"])

    def test_buffering_scales_with_hops(self):
        noc = self.make(9, buffer_words_per_hop=2)  # 3x3
        one_hop = noc.allocate(conn("c0", "t0", "t1"))
        two_hops = noc.allocate(conn("c1", "t0", "t2"))
        assert two_hops.network_buffer_words == 4
        assert one_hop.network_buffer_words == 2
