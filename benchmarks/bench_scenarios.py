"""Benchmark: scenario generation + full-flow mapping throughput.

Times the synthetic-workload pipeline (:mod:`repro.scenarios`) per
family: spec -> SDF graph -> application -> template platform -> mapped
result.  Generation must be negligible next to mapping -- the generator
exists to *feed* sweeps, so its own cost has to disappear into the
noise -- and every generated scenario must map feasibly (the corpus
guarantee the fuzz suite enforces test-by-test, asserted here over the
benchmark batch too).

Emits ``benchmarks/results/BENCH_scenarios.json`` (wired into CI's
bench-smoke job) and a human-readable table next to it.
"""

import json
import time

from benchmarks.conftest import RESULTS_DIR, write_results
from repro.scenarios import (
    FAMILIES,
    generate_scenarios,
    scenario_flow_spec,
)
from repro.mapping import map_application

#: scenarios per family; small enough for CI smoke, large enough for a
#: stable per-scenario average
PER_FAMILY = 8


def test_scenario_pipeline_throughput(benchmark):
    records = {}

    def run_all():
        for family in FAMILIES:
            specs = generate_scenarios(family, PER_FAMILY, seed=13)

            start = time.perf_counter()
            flow_specs = [scenario_flow_spec(s) for s in specs]
            apps = [fs.build_application() for fs in flow_specs]
            generate_s = time.perf_counter() - start

            start = time.perf_counter()
            feasible = 0
            for fs, app in zip(flow_specs, apps):
                result = map_application(
                    app,
                    fs.build_architecture(),
                    pipeline=fs.strategies.build_pipeline(),
                )
                if result.guaranteed_throughput is not None:
                    feasible += 1
            map_s = time.perf_counter() - start

            records[family] = {
                "scenarios": len(specs),
                "feasible": feasible,
                "actors_total": sum(len(a.graph) for a in apps),
                "generate_s": generate_s,
                "map_s": map_s,
            }
        return records

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    header = (
        f"{'family':<10} {'n':>3} {'feasible':>8} {'actors':>6} "
        f"{'gen [ms]':>9} {'map [ms]':>9} {'gen share':>9}"
    )
    rows = [header, "-" * len(header)]
    for family, rec in records.items():
        total = rec["generate_s"] + rec["map_s"]
        rows.append(
            f"{family:<10} {rec['scenarios']:>3} {rec['feasible']:>8} "
            f"{rec['actors_total']:>6} {rec['generate_s'] * 1e3:>9.1f} "
            f"{rec['map_s'] * 1e3:>9.1f} "
            f"{rec['generate_s'] / total:>8.0%}"
        )
    table = "\n".join(rows)
    path = write_results("scenarios.txt", table)

    RESULTS_DIR.mkdir(exist_ok=True)
    json_path = RESULTS_DIR / "BENCH_scenarios.json"
    json_path.write_text(
        json.dumps(
            {
                "bench": "synthetic-scenario pipeline (generate + map), "
                         f"{PER_FAMILY} scenarios per family",
                "unit": "seconds per family batch",
                "families": records,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    print(f"\n{table}\n-> {path}\n-> {json_path}")

    for family, rec in records.items():
        assert rec["feasible"] == rec["scenarios"], (
            f"{family}: {rec['scenarios'] - rec['feasible']} generated "
            "scenario(s) failed to map feasibly"
        )
