#!/usr/bin/env python3
"""Sharing a peripheral predictably with a TDM arbiter (Section 7).

The paper keeps its platform predictable by *not* sharing peripherals,
and names the predictable arbiter of [1] as the future-work path to
sharing.  This example builds that arbiter: three tiles share an SDRAM
through a TDM slot table, and the worst-case access latency of each tile
is computed in closed form -- the number a WCET analysis would add to any
actor that touches the shared resource.

Run:  python examples/shared_peripheral_arbiter.py
"""

from repro.arch import TDMArbiter, validate_shared_peripheral


def main() -> None:
    # tile0 is a heavy user (half the slots); tile1/tile2 share the rest.
    arbiter = TDMArbiter(
        resource="sdram",
        slot_table=("tile0", "tile1", "tile0", "tile2"),
        slot_cycles=32,
    )
    print(arbiter.describe())
    print(f"frame length: {arbiter.frame_cycles} cycles")
    print()

    validate_shared_peripheral(
        "sdram", ["tile0", "tile1", "tile2"], arbiter
    )
    print("admission check passed: every sharer owns a slot")
    print()

    header = (
        f"{'tile':<7} {'bandwidth':>10} {'worst wait':>11} "
        f"{'1-slot access':>14} {'4-slot access':>14}"
    )
    print(header)
    print("-" * len(header))
    for tile in arbiter.requesters():
        print(
            f"{tile:<7} "
            f"{100 * arbiter.bandwidth_share(tile):>9.0f}% "
            f"{arbiter.worst_case_wait(tile):>11} "
            f"{arbiter.worst_case_access(tile):>14} "
            f"{arbiter.worst_case_access(tile, service_slots=4):>14}"
        )
    print()
    print(
        "these bounds are what make the sharing predictable: add the\n"
        "worst-case access time to the WCET of any actor using the\n"
        "peripheral and the flow's throughput guarantee stays valid"
    )


if __name__ == "__main__":
    main()
