"""The Fig. 1 flow driver.

``DesignFlow(app, arch).run()`` executes, in order:

1. architecture validation (the template instantiation of Table 1);
2. SDF3 mapping: binding, routing, buffers, schedules, throughput
   guarantee;
3. MAMPS generation: netlist, software, XPS project;
4. synthesis: the runnable platform (simulator);
5. optional measurement on the synthesized platform.

Each automated step is timed into an :class:`EffortReport`, reproducing
the bottom half of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional, Union

if TYPE_CHECKING:  # avoid a runtime cycle with repro.flow.dse
    from repro.flow.dse import CandidatePoint, DesignPoint
    from repro.flow.spec import FlowSpec

from repro.appmodel.model import ApplicationModel
from repro.arch.platform import ArchitectureModel
from repro.comm.serialization import SerializationModel
from repro.flow.effort import EffortReport
from repro.mamps.generator import generate_platform, synthesize
from repro.mamps.project import PlatformProject
from repro.mapping.flow import MappingEffort, map_application
from repro.mapping.pipeline import MappingPipeline
from repro.mapping.spec import MappingResult
from repro.sdf.engine import collect_engine_counters
from repro.sim.platform_sim import MeasuredThroughput, PlatformSimulator


@dataclass
class FlowResult:
    """Everything the flow produced."""

    mapping_result: MappingResult
    project: PlatformProject
    simulator: Optional[PlatformSimulator]
    measured: Optional[MeasuredThroughput]
    effort: EffortReport

    @property
    def guaranteed_throughput(self) -> Fraction:
        return self.mapping_result.guaranteed_throughput

    @property
    def measured_throughput(self) -> Optional[Fraction]:
        return self.measured.throughput if self.measured else None

    def to_payload(self) -> Dict[str, object]:
        """Canonical versioned artifact payload (:mod:`repro.artifacts`).

        The live simulator is not serializable; decoded results carry
        ``simulator=None`` (mapping result, generated project, measured
        throughput and effort timings survive).
        """
        from repro.artifacts.schema import to_payload

        return to_payload(self)

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "FlowResult":
        from repro.artifacts.schema import check_envelope, from_payload

        check_envelope(payload, "flow-result")
        return from_payload(payload)

    def summary(self) -> str:
        lines = [
            f"guaranteed: {float(self.guaranteed_throughput * 1e6):.4f} "
            "iterations/Mcycle",
        ]
        if self.measured is not None:
            lines.append(
                f"measured:   {self.measured.per_mega_cycle():.4f} "
                "iterations/Mcycle"
            )
        lines.append("")
        lines.append(self.effort.as_table())
        return "\n".join(lines)


class DesignFlow:
    """The automated flow: application + architecture -> running platform."""

    def __init__(
        self,
        app: ApplicationModel,
        arch: ArchitectureModel,
        constraint: Optional[Fraction] = None,
        fixed: Optional[Dict[str, str]] = None,
        serialization_overrides: Optional[
            Dict[str, SerializationModel]
        ] = None,
        effort: str = "normal",
        pipeline: Optional[MappingPipeline] = None,
    ) -> None:
        self.app = app
        self.arch = arch
        self.constraint = constraint
        self.fixed = fixed
        self.serialization_overrides = serialization_overrides
        self.effort = MappingEffort.of(effort)
        #: The mapping pipeline to run; None means the paper's default
        #: recipe (greedy/xy/linear/static-order).
        self.pipeline = pipeline

    @classmethod
    def from_design_point(
        cls,
        app: ApplicationModel,
        point: "Union[CandidatePoint, DesignPoint]",
        constraint: Optional[Fraction] = None,
        fixed: Optional[Dict[str, str]] = None,
    ) -> "DesignFlow":
        """Build the full flow for a point the exploration engine picked.

        The typical hand-off: explore the template space with
        :class:`repro.flow.dse.ParallelExplorer`, take
        ``best_meeting_constraint()``, then run *this* flow on it to get
        the generated project and the measured throughput.  Accepts both
        an evaluated :class:`~repro.flow.dse.DesignPoint` (which carries
        its candidate) and a raw :class:`~repro.flow.dse.CandidatePoint`.
        """
        candidate = getattr(point, "candidate", None) or point
        if not hasattr(candidate, "build_architecture"):
            raise ValueError(
                f"design point {point.label!r} carries no candidate "
                "description; pass the CandidatePoint it was evaluated "
                "from"
            )
        strategy = getattr(candidate, "strategy", None)
        return cls(
            app,
            candidate.build_architecture(),
            constraint=constraint,
            fixed=fixed,
            effort=candidate.effort,
            pipeline=(
                strategy.build_pipeline() if strategy is not None else None
            ),
        )

    @classmethod
    def from_spec(
        cls,
        spec: "Union[FlowSpec, str, Path]",
        app: Optional[ApplicationModel] = None,
    ) -> "DesignFlow":
        """Build the flow from a declarative scenario (FlowSpec).

        ``spec`` is a :class:`~repro.flow.spec.FlowSpec` or a path to a
        TOML/JSON document (see :mod:`repro.flow.spec` for the schema).
        Pass ``app`` to substitute a prebuilt application for the
        spec's case-study section.
        """
        from repro.flow.spec import FlowSpec, load_flow_spec

        if not isinstance(spec, FlowSpec):
            spec = load_flow_spec(spec)
        # honour per-app overrides exactly like FlowSession does, so a
        # spec means the same thing with and without a workspace
        return cls(
            app if app is not None else spec.build_application(),
            spec.build_architecture(),
            constraint=spec.constraint_for(spec.app),
            fixed=spec.fixed_for(spec.app),
            effort=spec.effort,
            pipeline=spec.strategies.build_pipeline(),
        )

    def run(
        self,
        measure: bool = True,
        iterations: int = 30,
        warmup_iterations: int = 4,
    ) -> FlowResult:
        """Execute the full flow; ``measure=False`` stops after synthesis
        (e.g. for timing-only studies on non-functional models)."""
        effort = EffortReport()

        with collect_engine_counters() as tiers:
            with effort.step("Generating architecture model"):
                self.arch.validate()

            with effort.step("Mapping the design (SDF3)"):
                mapping_result = map_application(
                    self.app,
                    self.arch,
                    constraint=self.constraint,
                    fixed=self.fixed,
                    serialization_overrides=self.serialization_overrides,
                    effort=self.effort,
                    pipeline=self.pipeline,
                )

            with effort.step("Generating Xilinx project (MAMPS)"):
                project = generate_platform(
                    self.app, self.arch, mapping_result
                )

            simulator = None
            measured = None
            can_run = self.app.is_functional()
            with effort.step("Synthesis of the system"):
                if can_run:
                    simulator = synthesize(
                        self.app,
                        self.arch,
                        mapping_result,
                        serialization_overrides=(
                            self.serialization_overrides
                        ),
                    )
            if measure and simulator is not None:
                measured = simulator.measure_throughput(
                    iterations=iterations,
                    warmup_iterations=warmup_iterations,
                )
        effort.engine_tiers = {
            tier: count
            for tier, count in tiers.snapshot().items()
            if count
        }
        return FlowResult(
            mapping_result=mapping_result,
            project=project,
            simulator=simulator,
            measured=measured,
            effort=effort,
        )
