"""Tests for routing, scheduling, the bound graph and the end-to-end flow."""

from fractions import Fraction

import pytest

from repro.arch import architecture_from_template
from repro.comm.serialization import CASerialization
from repro.exceptions import RoutingError, ThroughputConstraintError
from repro.mapping import (
    allocate_buffers,
    bind_actors,
    build_bound_graph,
    build_static_orders,
    map_application,
    route_channels,
)
from repro.mapping.bound_graph import ca_resource_name
from repro.mapping.buffer_alloc import buffer_bytes_on_tile
from repro.sdf import analyze_throughput
from repro.sdf.repetition import repetition_vector


def prepared(app, arch, **kwargs):
    binding, impls = bind_actors(app, arch, **kwargs)
    channels = route_channels(app, arch, binding)
    allocate_buffers(app, channels)
    return binding, impls, channels


class TestRouting:
    def test_intra_tile_channels_have_no_parameters(self, small_app):
        arch = architecture_from_template(1)
        binding, _, channels = prepared(small_app, arch)
        assert all(c.intra_tile for c in channels.values())
        assert all(c.parameters is None for c in channels.values())

    def test_inter_tile_channels_have_parameters(self, small_app):
        arch = architecture_from_template(3)
        _, _, channels = prepared(small_app, arch)
        inter = [c for c in channels.values() if not c.intra_tile]
        assert inter
        assert all(c.parameters is not None for c in inter)

    def test_routing_is_idempotent(self, small_app):
        arch = architecture_from_template(3)
        binding, _impls, _ = prepared(small_app, arch)
        channels_again = route_channels(small_app, arch, binding)
        assert set(channels_again) == {"a2b", "a2c", "b2c"}

    def test_noc_congestion_raises(self, chain_app):
        arch = architecture_from_template(
            3, "noc", noc_wires_per_link=8, noc_connection_wires=8
        )
        binding = {"P": "tile0", "Q": "tile1", "R": "tile2"}
        # tile0->tile1 and tile1->tile2 use disjoint links; force overlap
        binding2 = {"P": "tile0", "Q": "tile2", "R": "tile1"}
        try:
            route_channels(chain_app, arch, binding2)
        except RoutingError:
            return  # overlap detected, as expected for some placements
        # otherwise saturate one link explicitly
        with pytest.raises(RoutingError):
            for i in range(4):
                arch.connect(f"extra{i}", "tile0", "tile1")


class TestBufferAllocation:
    def test_capacities_meet_liveness_bounds(self, small_app):
        arch = architecture_from_template(3)
        _, _, channels = prepared(small_app, arch)
        for channel in channels.values():
            edge = small_app.graph.edge(channel.edge)
            if channel.intra_tile:
                assert channel.capacity >= max(edge.production,
                                               edge.consumption)
            else:
                assert channel.alpha_src >= edge.production
                assert channel.alpha_dst >= edge.consumption

    def test_buffer_bytes_on_tile(self, chain_app):
        arch = architecture_from_template(2)
        binding = {"P": "tile0", "Q": "tile0", "R": "tile1"}
        channels = route_channels(chain_app, arch, binding)
        allocate_buffers(chain_app, channels)
        src_bytes = buffer_bytes_on_tile(chain_app, channels, "tile0")
        dst_bytes = buffer_bytes_on_tile(chain_app, channels, "tile1")
        assert src_bytes > 0 and dst_bytes > 0
        pq = channels["pq"]
        qr = channels["qr"]
        assert src_bytes == pq.capacity * 32 + qr.alpha_src * 32
        assert dst_bytes == qr.alpha_dst * 32


class TestBoundGraph:
    def test_app_actors_preserved_with_wcets(self, small_app):
        arch = architecture_from_template(3)
        binding, impls, channels = prepared(small_app, arch)
        bound = build_bound_graph(small_app, arch, binding, impls, channels)
        dispatch = arch.tile(binding["A"]).processor.context_switch_cycles
        assert bound.graph.actor("A").execution_time == 400 + dispatch
        assert set(bound.app_actors) == {"A", "B", "C"}

    def test_time_overrides_replace_wcets(self, small_app):
        arch = architecture_from_template(3)
        binding, impls, channels = prepared(small_app, arch)
        bound = build_bound_graph(
            small_app, arch, binding, impls, channels,
            time_overrides={"A": 100},
        )
        dispatch = arch.tile(binding["A"]).processor.context_switch_cycles
        assert bound.graph.actor("A").execution_time == 100 + dispatch
        assert bound.graph.actor("B").execution_time == 300 + dispatch

    def test_inter_tile_edges_expanded(self, small_app):
        arch = architecture_from_template(3)
        binding, impls, channels = prepared(small_app, arch)
        bound = build_bound_graph(small_app, arch, binding, impls, channels)
        for channel in channels.values():
            if channel.intra_tile:
                continue
            names = bound.comm_names[channel.edge]
            assert bound.graph.has_actor(names.s1)
            assert not bound.graph.has_edge(channel.edge)

    def test_serialization_bound_to_pe(self, small_app):
        arch = architecture_from_template(3)
        binding, impls, channels = prepared(small_app, arch)
        bound = build_bound_graph(small_app, arch, binding, impls, channels)
        for channel in channels.values():
            if channel.intra_tile:
                continue
            names = bound.comm_names[channel.edge]
            assert bound.processor_of[names.s1] == channel.src_tile
            assert bound.processor_of[names.d1] == channel.dst_tile

    def test_ca_tiles_offload_serialization(self, small_app):
        arch = architecture_from_template(3, with_ca=True)
        binding, impls, channels = prepared(small_app, arch)
        bound = build_bound_graph(small_app, arch, binding, impls, channels)
        for channel in channels.values():
            if channel.intra_tile:
                continue
            names = bound.comm_names[channel.edge]
            assert bound.processor_of[names.s1] == ca_resource_name(
                channel.src_tile
            )

    def test_serialization_overrides(self, small_app):
        arch = architecture_from_template(3)
        binding, impls, channels = prepared(small_app, arch)
        overrides = {t: CASerialization() for t in arch.tile_names()}
        bound = build_bound_graph(
            small_app, arch, binding, impls, channels,
            serialization_overrides=overrides,
        )
        for channel in channels.values():
            if channel.intra_tile:
                continue
            names = bound.comm_names[channel.edge]
            assert bound.processor_of[names.s1].endswith("__ca")

    def test_bound_graph_is_consistent(self, small_app):
        arch = architecture_from_template(3)
        binding, impls, channels = prepared(small_app, arch)
        bound = build_bound_graph(small_app, arch, binding, impls, channels)
        q = repetition_vector(bound.graph)
        base = repetition_vector(small_app.graph)
        for actor in small_app.graph:
            assert q[actor.name] == base[actor.name]


class TestScheduling:
    def test_orders_cover_repetition_vector(self, small_app):
        arch = architecture_from_template(2)
        binding, impls, channels = prepared(small_app, arch)
        bound = build_bound_graph(small_app, arch, binding, impls, channels)
        orders = build_static_orders(bound)
        q = repetition_vector(small_app.graph)
        counted = {}
        for order in orders.values():
            for actor in order:
                counted[actor] = counted.get(actor, 0) + 1
        assert counted == {a.name: q[a.name] for a in small_app.graph}

    def test_orders_respect_dependencies(self, chain_app):
        """On a single tile the order must be a topological-ish P,Q,R."""
        arch = architecture_from_template(1)
        binding, impls, channels = prepared(chain_app, arch)
        bound = build_bound_graph(chain_app, arch, binding, impls, channels)
        orders = build_static_orders(bound)
        assert orders["tile0"] == ["P", "Q", "R"]


class TestMapApplication:
    def test_guarantee_is_positive(self, small_app):
        arch = architecture_from_template(3)
        result = map_application(small_app, arch)
        assert result.guaranteed_throughput > 0
        assert result.constraint_met  # no constraint set

    def test_more_tiles_do_not_hurt(self, small_app):
        t1 = map_application(
            small_app, architecture_from_template(1)
        ).guaranteed_throughput
        t3 = map_application(
            small_app, architecture_from_template(3)
        ).guaranteed_throughput
        assert t3 >= t1

    def test_fsl_at_least_as_fast_as_noc(self, small_app):
        fsl = map_application(
            small_app, architecture_from_template(3, "fsl")
        ).guaranteed_throughput
        noc = map_application(
            small_app, architecture_from_template(3, "noc")
        ).guaranteed_throughput
        assert fsl >= noc

    def test_constraint_met_via_buffer_growth(self, chain_app):
        arch = architecture_from_template(3)
        # Q (700 cycles) bounds throughput near 1/700; ask for a rate that
        # needs pipelining but is achievable.
        constraint = Fraction(1, 1200)
        result = map_application(chain_app, arch, constraint=constraint)
        assert result.constraint_met
        assert result.guaranteed_throughput >= constraint

    def test_impossible_constraint_strict_raises(self, chain_app):
        arch = architecture_from_template(3)
        with pytest.raises(ThroughputConstraintError, match="unreachable"):
            map_application(
                chain_app, arch,
                constraint=Fraction(1, 100),  # faster than Q alone
                strict=True, max_buffer_rounds=3,
            )

    def test_impossible_constraint_lenient_reports(self, chain_app):
        arch = architecture_from_template(3)
        result = map_application(
            chain_app, arch, constraint=Fraction(1, 100),
            max_buffer_rounds=3,
        )
        assert not result.constraint_met
        assert result.guaranteed_throughput < Fraction(1, 100)

    def test_mapping_describe(self, small_app):
        arch = architecture_from_template(2)
        result = map_application(small_app, arch)
        text = result.mapping.describe()
        assert "figure2" in text
        assert "tile0" in text

    def test_ca_overrides_improve_throughput(self, chain_app):
        """The Section 6.3 experiment mechanism: same mapping, CA
        serialization times -> throughput goes up (or stays equal)."""
        arch = architecture_from_template(3)
        base = map_application(chain_app, arch).guaranteed_throughput
        with_ca = map_application(
            chain_app, arch,
            serialization_overrides={
                t: CASerialization() for t in arch.tile_names()
            },
        ).guaranteed_throughput
        assert with_ca >= base

    def test_throughput_guarantee_matches_unordered_analysis(self, small_app):
        """Static orders can only restrict the greedy execution."""
        arch = architecture_from_template(3)
        binding, impls, channels = prepared(small_app, arch)
        bound = build_bound_graph(small_app, arch, binding, impls, channels)
        greedy = analyze_throughput(
            bound.graph, processor_of=bound.processor_of,
            reference_actor="A",
        )
        ordered = map_application(small_app, arch).throughput
        assert ordered.throughput <= greedy.throughput
