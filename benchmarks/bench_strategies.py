"""Ablation: binding strategies of the pluggable mapping pipeline.

Compares the paper's greedy load-balanced binder against the two
literature-inspired alternatives on the MJPEG decoder (5-tile FSL
platform of the case study):

* ``spiral`` -- Benhaoua-style outward placement from the master tile
  (arXiv:1312.5764);
* ``ga`` -- Quan & Pimentel-style bias-elitist genetic binding, seeded
  (arXiv:1406.7539).

For each strategy the bench records the guaranteed throughput, the
number of inter-tile channels (interconnect pressure) and the mapping
wall-clock, and asserts the structural expectations: every strategy
completes the flow end to end, the GA (seeded with the greedy solution)
never does worse than fitness-random placement would suggest, and the
spiral binder trades at most a modest guarantee loss for its O(n)
placement cost.
"""

import time

from benchmarks.conftest import write_results
from repro.arch import architecture_from_template
from repro.mapping import map_application
from repro.mjpeg import build_mjpeg_application

STRATEGIES = ("greedy", "spiral", "ga")
SEED = 7


def test_binding_strategy_ablation(benchmark, workloads):
    app = build_mjpeg_application(workloads["gradient"])

    rows = []
    results = {}

    def run_all():
        for name in STRATEGIES:
            arch = architecture_from_template(5, "fsl")
            start = time.perf_counter()
            result = map_application(
                app, arch, fixed={"VLD": "tile0"},
                binding=name, seed=SEED,
            )
            elapsed = time.perf_counter() - start
            results[name] = (result, elapsed)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    header = (
        f"{'binding':<8} {'throughput/Mcycle':>18} "
        f"{'inter-tile ch.':>14} {'map time [ms]':>14}"
    )
    rows = [header, "-" * len(header)]
    for name in STRATEGIES:
        result, elapsed = results[name]
        inter = len(result.mapping.inter_tile_channels())
        rows.append(
            f"{name:<8} "
            f"{float(result.guaranteed_throughput * 1e6):>18.4f} "
            f"{inter:>14} {elapsed * 1e3:>14.1f}"
        )
    table = "\n".join(rows)
    path = write_results("ablation_binding_strategies.txt", table)
    print("\n" + table + f"\n-> {path}")

    # every strategy completes the flow with a positive guarantee
    for name in STRATEGIES:
        assert results[name][0].guaranteed_throughput > 0

    greedy = results["greedy"][0].guaranteed_throughput
    for name in ("spiral", "ga"):
        other = results[name][0].guaranteed_throughput
        # alternative heuristics stay within 2x of the greedy guarantee
        # (they optimize different objectives, not nothing at all)
        assert other * 2 >= greedy


def test_ga_binding_is_deterministic(workloads):
    app = build_mjpeg_application(workloads["gradient"])

    def bind():
        arch = architecture_from_template(5, "fsl")
        return map_application(
            app, arch, fixed={"VLD": "tile0"}, binding="ga", seed=SEED
        ).mapping.actor_binding

    assert bind() == bind()
