"""Operating points: precomputed mappings a platform manager can place.

The design-time/run-time split of Weichslgartner et al. (PAPERS.md):
design time produces, per application, a *library* of mapping operating
points -- a Pareto front over (guaranteed throughput, platform cost) --
and run time merely *selects* a stored point that fits the residual
platform.  An :class:`OperatingPoint` therefore carries everything the
run-time side needs without re-running any analysis:

* the full :class:`~repro.mapping.spec.MappingResult` (binding, channel
  capacities, static orders, throughput guarantee);
* the per-tile memory footprint, including the generated runtime layer
  (:data:`~repro.mapping.binding.RUNTIME_INSTRUCTION_BYTES` /
  :data:`~repro.mapping.binding.RUNTIME_DATA_BYTES`), so admission can
  check a candidate tile without touching the application model;
* the per-channel interconnect footprint: hop count and claimed SDM
  wires on the NoC, or one master + one slave FSL port per link;
* ``state_bytes``, the data-memory state a migration must move (the
  SW->HW migration cost model of Sebai et al., PAPERS.md).

Points are computed on *canonical prefix platforms* (``tile0 ..
tile{k-1}`` of the template); admission relocates them onto whichever
real tiles are free.  A relocation is only accepted when every channel
keeps its recorded hop count, which makes the stored channel parameters
-- and therefore the stored throughput guarantee -- transfer *exactly*
(FSL parameters are placement-independent; SDM wires are exclusive, so
other applications cannot degrade the guarantee either).

Both :class:`OperatingPoint` and :class:`OperatingPointLibrary` are
registered artifact codecs (kinds ``operating-point`` and
``operating-point-library``), so libraries persist in any workspace
:class:`~repro.artifacts.store.ArtifactStore` and journal events can
embed points verbatim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, List, Optional, Tuple

from repro.arch.interconnect import FSLInterconnect
from repro.arch.noc import SDMNoC
from repro.arch.platform import ArchitectureModel
from repro.artifacts.schema import (
    decode_fraction,
    encode_fraction,
    from_payload,
    register,
    to_payload,
)
from repro.comm.params import WORD_BITS
from repro.mapping.binding import (
    RUNTIME_DATA_BYTES,
    RUNTIME_INSTRUCTION_BYTES,
)
from repro.mapping.spec import MappingResult

#: Artifact kind of a single persisted operating point.
POINT_KIND = "operating-point"
#: Artifact kind of a persisted per-application library.
LIBRARY_KIND = "operating-point-library"


@dataclass(frozen=True)
class ChannelFootprint:
    """Interconnect resources one inter-tile channel occupies.

    ``src``/``dst`` name canonical build tiles.  On the SDM NoC the
    channel claims ``wires`` wires on each of ``hops`` links along its
    XY route; on FSL it claims one master port at ``src`` and one slave
    port at ``dst`` (``hops``/``wires`` are zero -- FSL links are
    distance-free).
    """

    edge: str
    src: str
    dst: str
    hops: int = 0
    wires: int = 0


@dataclass
class OperatingPoint:
    """One admissible mapping of an application, fully precomputed."""

    label: str
    #: Canonical build tiles the mapping uses, in template order.
    tiles: Tuple[str, ...]
    interconnect: str  # "fsl" | "noc" | "none"
    throughput: Fraction
    constraint_met: bool
    area_slices: int
    #: Canonical tile -> (instruction bytes, data bytes), runtime
    #: overhead included.
    tile_memory: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    channels: Tuple[ChannelFootprint, ...] = ()
    #: Data-memory state a migration of this point must transfer.
    state_bytes: int = 0
    result: Optional[MappingResult] = None

    @property
    def n_tiles(self) -> int:
        return len(self.tiles)

    def cost_key(self) -> Tuple[int, int, Fraction]:
        """Cheapest-first selection order: tiles, area, then -throughput."""
        return (self.n_tiles, self.area_slices, -self.throughput)

    def to_payload(self) -> Dict[str, Any]:
        """Canonical versioned artifact payload (:mod:`repro.artifacts`)."""
        return to_payload(self)

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "OperatingPoint":
        from repro.artifacts.schema import check_envelope

        check_envelope(payload, POINT_KIND)
        return from_payload(payload)


@dataclass
class OperatingPointLibrary:
    """The per-application Pareto front of operating points.

    ``points`` is kept cheapest-first (the order
    :meth:`~repro.flow.dse.ParetoFront.points` produces), which is
    exactly the admission policy's scan order: the first stored point
    that fits the residual platform is the cheapest feasible one.
    """

    app_name: str
    app_fingerprint: str
    constraint: Optional[Fraction] = None
    points: List[OperatingPoint] = field(default_factory=list)

    def eligible(self) -> List[OperatingPoint]:
        """Points an admission may select: constraint-satisfying ones
        (every point, when the application carries no constraint)."""
        if self.constraint is None:
            return list(self.points)
        return [p for p in self.points if p.constraint_met]

    def __len__(self) -> int:
        return len(self.points)

    def to_payload(self) -> Dict[str, Any]:
        """Canonical versioned artifact payload (:mod:`repro.artifacts`)."""
        return to_payload(self)

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "OperatingPointLibrary":
        from repro.artifacts.schema import check_envelope

        check_envelope(payload, LIBRARY_KIND)
        return from_payload(payload)


# ----------------------------------------------------------------------
# deriving a point from a mapping result
# ----------------------------------------------------------------------
def operating_point_from_result(
    label: str,
    result: MappingResult,
    arch: ArchitectureModel,
    area_slices: int,
) -> OperatingPoint:
    """Project a :class:`MappingResult` into an :class:`OperatingPoint`.

    ``arch`` is the platform the result was computed on: tile order,
    memory capacities and NoC geometry are read from it, never from the
    managed platform the point is later placed on.
    """
    mapping = result.mapping
    used = [
        name for name in arch.tile_names()
        if name in mapping.actor_binding.values()
    ]

    tile_memory: Dict[str, Tuple[int, int]] = {}
    for tile_name in used:
        instruction = RUNTIME_INSTRUCTION_BYTES
        data = RUNTIME_DATA_BYTES
        for actor in mapping.actors_on(tile_name):
            memory = mapping.implementations[actor].metrics.memory
            instruction += memory.instruction_bytes
            data += memory.data_bytes
        tile_memory[tile_name] = (instruction, data)

    fabric = arch.interconnect
    if isinstance(fabric, SDMNoC):
        kind = "noc"
    elif isinstance(fabric, FSLInterconnect):
        kind = "fsl"
    else:
        kind = "none"

    channels: List[ChannelFootprint] = []
    for channel in sorted(
        mapping.inter_tile_channels(), key=lambda c: c.edge
    ):
        hops = wires = 0
        if isinstance(fabric, SDMNoC):
            hops = fabric.hop_distance(channel.src_tile, channel.dst_tile)
            wires = fabric.default_connection_wires
        channels.append(
            ChannelFootprint(
                edge=channel.edge,
                src=channel.src_tile,
                dst=channel.dst_tile,
                hops=hops,
                wires=wires,
            )
        )

    state_bytes = sum(
        impl.metrics.memory.data_bytes
        for impl in mapping.implementations.values()
    )
    return OperatingPoint(
        label=label,
        tiles=tuple(used),
        interconnect=kind,
        throughput=result.guaranteed_throughput,
        constraint_met=result.constraint_met,
        area_slices=area_slices,
        tile_memory=tile_memory,
        channels=tuple(channels),
        state_bytes=state_bytes,
        result=result,
    )


def transfer_cycles(state_bytes: int, wires: int = 0) -> int:
    """Cycles to move ``state_bytes`` over one connection.

    The migration cost model: an FSL link (``wires=0``) moves one 32-bit
    word per cycle; an SDM connection of ``wires`` wires needs
    ``ceil(32 / wires)`` cycles per word.  Word-granular, rounded up.
    """
    words = math.ceil(state_bytes / (WORD_BITS // 8))
    cycles_per_word = 1 if wires < 1 else math.ceil(WORD_BITS / wires)
    return words * cycles_per_word


# ----------------------------------------------------------------------
# artifact codecs
# ----------------------------------------------------------------------
def _encode_point(point: OperatingPoint) -> Dict[str, Any]:
    return {
        "label": point.label,
        "tiles": list(point.tiles),
        "interconnect": point.interconnect,
        "throughput": encode_fraction(point.throughput),
        "constraint_met": point.constraint_met,
        "area_slices": point.area_slices,
        "tile_memory": {
            tile: list(memory)
            for tile, memory in sorted(point.tile_memory.items())
        },
        "channels": [
            {
                "edge": c.edge,
                "src": c.src,
                "dst": c.dst,
                "hops": c.hops,
                "wires": c.wires,
            }
            for c in point.channels
        ],
        "state_bytes": point.state_bytes,
        "result": (
            None if point.result is None else to_payload(point.result)
        ),
    }


def _decode_point(payload: Dict[str, Any]) -> OperatingPoint:
    return OperatingPoint(
        label=payload["label"],
        tiles=tuple(payload["tiles"]),
        interconnect=payload["interconnect"],
        throughput=decode_fraction(payload["throughput"]),
        constraint_met=payload["constraint_met"],
        area_slices=payload["area_slices"],
        tile_memory={
            tile: (memory[0], memory[1])
            for tile, memory in payload["tile_memory"].items()
        },
        channels=tuple(
            ChannelFootprint(
                edge=c["edge"],
                src=c["src"],
                dst=c["dst"],
                hops=c["hops"],
                wires=c["wires"],
            )
            for c in payload["channels"]
        ),
        state_bytes=payload["state_bytes"],
        result=(
            None
            if payload["result"] is None
            else from_payload(payload["result"])
        ),
    )


def _encode_library(library: OperatingPointLibrary) -> Dict[str, Any]:
    return {
        "app_name": library.app_name,
        "app_fingerprint": library.app_fingerprint,
        "constraint": encode_fraction(library.constraint),
        "points": [to_payload(p) for p in library.points],
    }


def _decode_library(payload: Dict[str, Any]) -> OperatingPointLibrary:
    return OperatingPointLibrary(
        app_name=payload["app_name"],
        app_fingerprint=payload["app_fingerprint"],
        constraint=decode_fraction(payload["constraint"]),
        points=[from_payload(p) for p in payload["points"]],
    )


register(POINT_KIND, OperatingPoint, _encode_point, _decode_point)
register(
    LIBRARY_KIND, OperatingPointLibrary, _encode_library, _decode_library
)
