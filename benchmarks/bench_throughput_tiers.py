"""Tiered throughput engine: per-tier analysis cost and sizing call counts.

Three measurements of :class:`repro.sdf.engine.ThroughputEngine`:

* **corpus sweep** -- per-analysis wall clock of the adaptive ``auto``
  policy vs. the pinned reference tier, over every committed
  ``examples/corpus/`` scenario.  Exact ``Fraction`` equality is a hard
  failure.  Short-state-space scenarios stay on the vectorized probe
  (parity with the reference is the *win*: the engine did not pay for
  the HSDF transform); the stress band (``diamond-s7-*``: long state
  spaces, the regime the analytic tier exists for) escalates, and the
  median speedup over those escalated analyses is gated (locally well
  above 5x; relax on noisy shared runners via
  ``BENCH_TIERS_MIN_SPEEDUP``);
* **Fig. 6 workloads** -- the MJPEG decoder mapped onto the 5-tile FSL
  (fig6a) and NoC (fig6b) templates.  Mapped graphs carry static orders,
  so auto falls back to the vectorized core; this times that tier
  against the reference on the flow's real hot analyses;
* **buffer-sizing calls** -- engine analyses consumed by the monotone
  capacity search of :func:`repro.sdf.buffers.
  minimal_buffer_distribution` vs. an inline replica of the historic
  greedy steepest-ascent search (one analysis per edge per round).

Emits ``benchmarks/results/BENCH_throughput.json`` (wired into CI's
bench-smoke job) so later PRs have a tier-cost trajectory to regress
against.
"""

import json
import os
import statistics
import time
from fractions import Fraction
from pathlib import Path

from benchmarks.conftest import RESULTS_DIR, write_results
from repro.arch import architecture_from_template
from repro.flow.spec import load_flow_spec
from repro.mapping import map_application
from repro.mapping.bound_graph import build_bound_graph
from repro.mjpeg import build_mjpeg_application
from repro.sdf import SDFGraph
from repro.sdf.buffers import (
    BufferDistribution,
    add_buffer_edges,
    bufferable_edges,
    minimal_buffer_distribution,
    minimal_capacity_bound,
    retune_buffer_capacity,
)
from repro.sdf.deadlock import is_deadlock_free
from repro.sdf.engine import ThroughputEngine, collect_engine_counters
from repro.sdf.throughput import ThroughputAnalyzer

CORPUS = sorted(
    (Path(__file__).resolve().parents[1] / "examples" / "corpus").glob(
        "*.toml"
    )
)
PLATFORMS = (("fig6a", "fsl"), ("fig6b", "noc"))
TIMING_ROUNDS = 3
#: Median speedup gate over the corpus analyses where the adaptive
#: policy escalated to the analytic tier (locally it lands far beyond
#: this).  CI's shared runners relax it via the env knob.
SPEEDUP_TARGET = float(os.environ.get("BENCH_TIERS_MIN_SPEEDUP", "5.0"))


def _best_of(fn, rounds=TIMING_ROUNDS):
    """(best seconds, last result) over a few repetitions."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _bounded(graph):
    """Analysis form: liveness-bound capacities plus headroom (mirrors
    buffer-sizing phase 1 and the fuzz suite)."""
    capacities = {
        edge.name: minimal_capacity_bound(edge)
        + max(edge.production, edge.consumption)
        for edge in bufferable_edges(graph)
    }
    bounded = add_buffer_edges(graph, BufferDistribution(capacities))
    for _ in range(4):
        if is_deadlock_free(bounded):
            break
        for name in capacities:
            edge = graph.edge(name)
            capacities[name] += max(edge.production, edge.consumption)
        bounded = add_buffer_edges(graph, BufferDistribution(capacities))
    return bounded


def _corpus_sweep():
    records = {}
    for spec_path in CORPUS:
        graph = load_flow_spec(spec_path).build_application().graph
        bounded = _bounded(graph)
        auto = ThroughputEngine(bounded)
        reference = ThroughputEngine(bounded, mode="reference")
        fast_s, fast = _best_of(auto.analyze)
        slow_s, slow = _best_of(reference.analyze)
        assert fast.throughput == slow.throughput, (
            f"{spec_path.stem}: {fast.tier} tier diverged from the "
            f"reference ({fast.throughput} vs {slow.throughput})"
        )
        records[spec_path.stem] = {
            "actors": len(bounded),
            "tier": fast.tier,
            "tier_reason": fast.tier_reason,
            "tier_s": fast_s,
            "reference_s": slow_s,
            "speedup": slow_s / fast_s if fast_s else float("inf"),
        }
    return records


def _fig6_sweep(workloads):
    app = build_mjpeg_application(workloads["gradient"])
    records = {}
    for figure, interconnect in PLATFORMS:
        arch = architecture_from_template(5, interconnect)
        result = map_application(app, arch, fixed={"VLD": "tile0"})
        mapping = result.mapping
        bound = build_bound_graph(
            app,
            arch,
            mapping.actor_binding,
            mapping.implementations,
            mapping.channels,
        )
        kwargs = dict(
            processor_of=bound.processor_of,
            static_order=mapping.static_orders,
            reference_actor=bound.app_actors[0],
        )
        auto = ThroughputEngine(bound.graph, **kwargs)
        reference = ThroughputEngine(bound.graph, mode="reference",
                                     **kwargs)
        tier, reason = auto.tier_for()
        fast_s, fast = _best_of(auto.analyze)
        slow_s, slow = _best_of(reference.analyze)
        assert fast == slow, (
            f"{figure}: {tier} tier diverged from the reference "
            f"({fast} vs {slow})"
        )
        records[figure] = {
            "interconnect": interconnect,
            "actors": len(bound.graph),
            "edges": len(bound.graph.edges),
            "tier": tier,
            "fallback_reason": reason,
            "throughput": str(fast.throughput),
            "tier_s": fast_s,
            "reference_s": slow_s,
            "speedup": slow_s / fast_s if fast_s else float("inf"),
        }
    return records


# ----------------------------------------------------------------------
# buffer-sizing analysis-call counts
# ----------------------------------------------------------------------
def _sizing_chain():
    """An 8-stage pipeline whose constraint needs several growth steps.

    Deep chains are where per-edge trial resimulation hurts: every
    greedy round re-analyzes once per edge, while the monotone search
    grows all constraining edges from one analysis.
    """
    g = SDFGraph("sizing")
    times = (10, 20, 35, 60, 50, 40, 25, 15)
    names = [chr(ord("A") + i) for i in range(len(times))]
    for name, t in zip(names, times):
        g.add_actor(name, execution_time=t)
    for i in range(len(times) - 1):
        g.add_edge(f"e{i}", names[i], names[i + 1], token_size=4)
    return g, Fraction(1, 60)


def _greedy_sizing_calls(graph, constraint, max_rounds=200, step=1):
    """Analysis count of the historic greedy steepest-ascent search
    (replicated from the pre-engine ``minimal_buffer_distribution``)."""
    distribution = {
        e.name: minimal_capacity_bound(e) for e in bufferable_edges(graph)
    }
    bounded = add_buffer_edges(graph, BufferDistribution(dict(distribution)))

    def set_capacity(name, capacity):
        distribution[name] = capacity
        retune_buffer_capacity(bounded, name, capacity)

    for _ in range(max_rounds):
        if is_deadlock_free(bounded):
            break
        for name in distribution:
            set_capacity(name, distribution[name] + step)

    calls = 0
    analyzer = ThroughputAnalyzer(bounded)
    result = analyzer.analyze()
    calls += 1
    for _ in range(max_rounds):
        if result.throughput >= constraint:
            return calls, distribution
        best_name = None
        best_result = result
        for name in list(distribution):
            current = distribution[name]
            set_capacity(name, current + step)
            trial = analyzer.analyze(check_deadlock=False)
            calls += 1
            set_capacity(name, current)
            if trial.throughput > best_result.throughput:
                best_result = trial
                best_name = name
        if best_name is None:
            for name in distribution:
                set_capacity(name, distribution[name] + step)
            result = analyzer.analyze(check_deadlock=False)
            calls += 1
        else:
            set_capacity(best_name, distribution[best_name] + step)
            result = best_result
    raise AssertionError("greedy sizing did not converge")


def _sizing_calls():
    graph, constraint = _sizing_chain()
    greedy_calls, greedy_dist = _greedy_sizing_calls(graph, constraint)
    with collect_engine_counters() as tiers:
        distribution, result = minimal_buffer_distribution(
            graph, throughput_constraint=constraint
        )
    monotone_calls = tiers.total()
    assert result.throughput >= constraint
    # Same quality: the monotone search must not gold-plate capacities.
    assert (
        sum(distribution.capacities.values())
        <= sum(greedy_dist.values())
    )
    return {
        "graph": graph.name,
        "edges": len(greedy_dist),
        "constraint": str(constraint),
        "greedy_calls": greedy_calls,
        "monotone_calls": monotone_calls,
        "total_tokens": sum(distribution.capacities.values()),
        "tiers": tiers.snapshot(),
    }


def test_throughput_tiers(benchmark, workloads):
    payload = {}

    def run_all():
        payload["corpus"] = _corpus_sweep()
        payload["fig6"] = _fig6_sweep(workloads)
        payload["buffer_sizing"] = _sizing_calls()
        return payload

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    corpus = payload["corpus"]
    analytic_speedups = [
        rec["speedup"] for rec in corpus.values()
        if rec["tier"] == "analytic"
    ]
    assert analytic_speedups, (
        "no corpus scenario escalated to the analytic tier; the stress "
        "band (diamond-s7-*) no longer exercises the fast path"
    )
    median_speedup = statistics.median(analytic_speedups)
    sizing = payload["buffer_sizing"]
    payload["summary"] = {
        "analytic_median_speedup": median_speedup,
        "analytic_engaged": len(analytic_speedups),
        "corpus_tiers": {
            tier: sum(1 for r in corpus.values() if r["tier"] == tier)
            for tier in ("analytic", "vectorized", "reference")
        },
        "sizing_call_ratio": (
            sizing["greedy_calls"] / sizing["monotone_calls"]
        ),
    }

    header = (
        f"{'scenario':<18} {'tier':<10} {'tier [ms]':>10} "
        f"{'ref [ms]':>10} {'speedup':>8}"
    )
    rows = [header, "-" * len(header)]
    for name, rec in sorted(corpus.items()):
        rows.append(
            f"{name:<18} {rec['tier']:<10} {rec['tier_s'] * 1e3:>10.3f} "
            f"{rec['reference_s'] * 1e3:>10.3f} {rec['speedup']:>7.1f}x"
        )
    for figure, rec in payload["fig6"].items():
        rows.append(
            f"{figure:<18} {rec['tier']:<10} {rec['tier_s'] * 1e3:>10.3f} "
            f"{rec['reference_s'] * 1e3:>10.3f} {rec['speedup']:>7.1f}x"
        )
    rows.append("")
    rows.append(
        f"median speedup over {len(analytic_speedups)} "
        f"analytic-escalated analyses: {median_speedup:.1f}x  |  buffer "
        f"sizing: {sizing['monotone_calls']} engine calls vs "
        f"{sizing['greedy_calls']} greedy "
        f"({payload['summary']['sizing_call_ratio']:.1f}x fewer)"
    )
    table = "\n".join(rows)
    path = write_results("throughput_tiers.txt", table)

    RESULTS_DIR.mkdir(exist_ok=True)
    json_path = RESULTS_DIR / "BENCH_throughput.json"
    json_path.write_text(
        json.dumps(
            {
                "bench": "tiered throughput engine: corpus + Fig. 6 "
                         "analyses, buffer-sizing call counts",
                "unit": f"seconds per analysis (best of {TIMING_ROUNDS})",
                **payload,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    print(f"\n{table}\n-> {path}\n-> {json_path}")

    assert median_speedup >= SPEEDUP_TARGET, (
        f"median speedup over analytic-escalated corpus analyses "
        f"{median_speedup:.1f}x below the {SPEEDUP_TARGET}x floor"
    )
    assert sizing["monotone_calls"] < sizing["greedy_calls"], (
        "monotone buffer sizing should need fewer analyses than the "
        "greedy search"
    )
