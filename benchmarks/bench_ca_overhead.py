"""Section 6.3: the (de)serialization overhead experiment.

The paper's "short second experiment": keep the mapping fixed, replace the
worst-case execution time of the software (de)serialization with the
communication-assist times of [13], stop charging serialization to the
processing element, and re-run the SDF3 analysis.  Result in the paper: up
to 300 % more predicted throughput.

The improvement depends entirely on how much processor time the software
NI library burns relative to the actors.  Our default calibration is
IDCT-dominated (chosen to land Fig. 6 in the paper's axis range), where
serialization is a small fraction of the bottleneck tile -- so the bench
also sweeps the experiment across NI-library cost regimes and actor-speed
regimes, reproducing the paper's magnitude (~4x = +300 %) in the
communication-dominated regime the original platform operated in.  See
EXPERIMENTS.md for the discussion.
"""

import pytest

from benchmarks.conftest import write_results
from repro.arch import architecture_from_template
from repro.comm.serialization import CASerialization, PESerialization
from repro.mapping import map_application
from repro.mjpeg import MJPEGCostModel, build_mjpeg_application


def guaranteed(app, arch, serialization):
    overrides = {t: serialization for t in arch.tile_names()}
    result = map_application(
        app, arch, fixed={"VLD": "tile0"},
        serialization_overrides=overrides,
    )
    return result.guaranteed_throughput


def scaled_cost_model(divisor: int) -> MJPEGCostModel:
    """Actor compute scaled down -- the 'optimized actors' regime where
    communication dominates the processing elements."""
    base = MJPEGCostModel()
    return MJPEGCostModel(
        vld_base=base.vld_base // divisor,
        vld_per_block=base.vld_per_block // divisor,
        vld_per_bit=max(1, base.vld_per_bit // divisor),
        vld_per_coefficient=max(1, base.vld_per_coefficient // divisor),
        vld_padding_block=max(1, base.vld_padding_block // divisor),
        iqzz_base=base.iqzz_base // divisor,
        iqzz_per_nonzero=max(1, base.iqzz_per_nonzero // divisor),
        iqzz_padding=max(1, base.iqzz_padding // divisor),
        idct_base=base.idct_base // divisor,
        idct_per_nonzero=max(1, base.idct_per_nonzero // divisor),
        idct_padding=max(1, base.idct_padding // divisor),
        cc_base=base.cc_base // divisor,
        cc_per_pixel=max(1, base.cc_per_pixel // divisor),
        raster_base=base.raster_base // divisor,
        raster_per_pixel=max(1, base.raster_per_pixel // divisor),
    )


def run_experiment(workloads):
    """The experiment across regimes; returns report rows."""
    encoded = workloads["gradient"]
    arch = architecture_from_template(5, "fsl")
    ca = CASerialization()
    rows = []

    # Regime 1: this repository's default calibration (IDCT-dominated).
    app = build_mjpeg_application(encoded)
    base = guaranteed(app, arch, PESerialization())
    with_ca = guaranteed(app, arch, ca)
    rows.append(("default calibration", PESerialization().cycles_per_word,
                 float(with_ca / base)))

    # Regime 2+: optimized actors with increasingly expensive NI software
    # (per-token handshake + per-word copy loops), the regime the original
    # MAMPS library operated in.  The last point reproduces the paper's
    # headline: roughly a 4x prediction, i.e. "up to 300%" more throughput.
    for divisor, setup, per_word in (
        (24, 1000, 24),
        (96, 2000, 48),
        (96, 4000, 96),
    ):
        fast_app = build_mjpeg_application(
            encoded, cost=scaled_cost_model(divisor)
        )
        software = PESerialization(
            setup_cycles=setup, cycles_per_word=per_word
        )
        base = guaranteed(fast_app, arch, software)
        with_ca = guaranteed(fast_app, arch, ca)
        rows.append(
            (f"actors/{divisor}, NI {setup}+{per_word}/word",
             per_word, float(with_ca / base))
        )
    return rows


def test_section63_ca_overhead(benchmark, workloads):
    rows = benchmark.pedantic(
        lambda: run_experiment(workloads), rounds=1, iterations=1
    )

    lines = [
        f"{'regime':<40} {'speedup':>8} {'increase':>9}",
        "-" * 60,
    ]
    for name, _per_word, speedup in rows:
        lines.append(
            f"{name:<40} {speedup:>7.2f}x {100 * (speedup - 1):>+8.0f}%"
        )
    table = "\n".join(lines)
    path = write_results("section63_ca_overhead.txt", table)
    print("\n" + table + f"\n-> {path}")

    speedups = [s for _n, _w, s in rows]
    # The CA never hurts, improvements grow with NI software cost, and the
    # communication-dominated regime reaches the paper's magnitude
    # (a multi-fold increase; paper: "up to 300%").
    assert all(s >= 1.0 for s in speedups)
    assert speedups == sorted(speedups), (
        "improvement should grow with serialization cost"
    )
    # The paper's magnitude: "up to 300%" increase, i.e. roughly 4x.
    assert 3.0 <= speedups[-1] <= 5.0, (
        f"communication-dominated regime reached {speedups[-1]:.2f}x, "
        "expected the paper's ~4x"
    )
