"""Execution backends: the worker plumbing behind every fan-out.

Everything in the flow that runs work concurrently -- the exploration
engine (:mod:`repro.flow.dse`), the batch runner
(:func:`repro.flow.session.run_batch`) and the flow service scheduler
(:mod:`repro.service.scheduler`) -- goes through one
:class:`ExecutionBackend`:

* :class:`ThreadBackend` (``"thread"``) is the historic
  :class:`WorkerPool`: deterministic ordered fan-out over a
  ``concurrent.futures`` thread pool, with ``jobs == 1`` strictly
  serial.  Workers share the caller's memory, so arbitrary callables
  (closures, bound methods) are fine -- but pure-Python work contends
  on the GIL.
* :class:`ProcessBackend` (``"process"``) fans *registered tasks* out
  over a stdlib :class:`~concurrent.futures.ProcessPoolExecutor`.  Work
  crosses the process boundary as JSON payloads (a
  :meth:`~repro.flow.spec.FlowSpec.to_document` document, a canonical
  artifact payload), never as pickled object graphs, so only
  :func:`backend_task` functions -- module-level, payload-in /
  payload-out -- are eligible.  Results come back as canonical
  payloads and are reassembled through the artifact codecs; the
  content-addressed :class:`~repro.artifacts.store.ArtifactStore`
  (atomic, idempotent writes) is the only coordination N workers --
  or N independent ``repro serve`` replicas sharing a workspace --
  ever need.

Both backends also accept *local* callables via :meth:`submit`; on the
process backend those run on a small auxiliary **thread** pool (bound
methods and closures are not picklable), which is exactly what the
scheduler's platform operations need.

The byte-identity guarantee of the flow survives the backend choice:
a task computes canonical artifacts keyed by content, so a thread run
and a process run of the same spec write byte-identical ``artifacts/``
trees (regression-tested in ``tests/flow/test_session_backends.py``).
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
import threading
import time
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Optional, Tuple, Union

from repro.exceptions import ReproError

#: The selectable backend names (the ``--backend`` choices).
BACKENDS: Tuple[str, ...] = ("thread", "process")


class BackendError(ReproError):
    """Raised for unknown backends, unknown tasks and backend misuse."""


# ----------------------------------------------------------------------
# the task registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Task:
    """One process-shippable unit of work.

    ``fn`` takes a JSON-able payload dict and returns a JSON-able
    result; ``module`` is the defining module, which a worker process
    imports before dispatch (registration is an import side effect, so
    this works under both ``fork`` and ``spawn`` start methods).
    """

    name: str
    module: str
    fn: Callable[[Dict[str, Any]], Any]


_TASKS: Dict[str, Task] = {}


def backend_task(
    name: str,
) -> Callable[[Callable[[Dict[str, Any]], Any]],
              Callable[[Dict[str, Any]], Any]]:
    """Register a module-level function as a process-shippable task.

    Only the task *name* and its payload cross the process boundary;
    the worker re-resolves the function through this registry after
    importing the defining module.  Payloads and results must be
    JSON-able (ship documents and canonical artifact payloads, not
    live objects).
    """

    def decorate(
        fn: Callable[[Dict[str, Any]], Any]
    ) -> Callable[[Dict[str, Any]], Any]:
        existing = _TASKS.get(name)
        if existing is not None and existing.module != fn.__module__:
            raise BackendError(
                f"backend task {name!r} already registered by "
                f"{existing.module}; refusing to rebind from "
                f"{fn.__module__}"
            )
        _TASKS[name] = Task(name=name, module=fn.__module__, fn=fn)
        return fn

    return decorate


def task_named(name: str) -> Task:
    """Look a registered task up; raises :class:`BackendError`."""
    task = _TASKS.get(name)
    if task is None:
        known = ", ".join(sorted(_TASKS)) or "none registered"
        raise BackendError(f"unknown backend task {name!r} ({known})")
    return task


@backend_task("backend.warm")
def _warm_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """No-op warm-up task; the brief sleep keeps this worker busy so
    the executor spawns a sibling for the next pending warm-up."""
    time.sleep(float(payload.get("seconds", 0.0)))
    return {"pid": os.getpid()}


def run_task(name: str, module: str, payload: Dict[str, Any]) -> Any:
    """Worker-process entry point: import, resolve, dispatch.

    Importing ``module`` (re-)runs its :func:`backend_task`
    registrations, so a freshly spawned worker that never saw the
    parent's imports still resolves the task.
    """
    task = _TASKS.get(name)
    if task is None:
        importlib.import_module(module)
        task = _TASKS.get(name)
    if task is None:
        raise BackendError(
            f"task {name!r} not registered by importing {module!r}"
        )
    return task.fn(payload)


# ----------------------------------------------------------------------
# the backends
# ----------------------------------------------------------------------
class ExecutionBackend:
    """The protocol both backends implement.

    Two submission surfaces:

    * **local callables** -- :meth:`submit` / :meth:`map_ordered` run
      arbitrary callables.  On the thread backend these are the
      workers themselves; on the process backend :meth:`submit` runs
      on an auxiliary thread pool (for unpicklable work like bound
      methods) and :meth:`map_ordered` is refused.
    * **registered tasks** -- :meth:`submit_task` /
      :meth:`run_tasks_ordered` run :func:`backend_task` functions by
      name with JSON payloads; the only surface that crosses a
      process boundary.

    ``submit``/``submit_task`` use one *persistent* executor (alive
    until :meth:`close`) -- the long-lived mode the flow service runs
    on; the ordered-map calls tear their executor down per batch.
    """

    name: str = "?"

    def __init__(self, jobs: int = 1) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    # -- local callables ----------------------------------------------
    def submit(self, worker: Callable[..., Any], *args: Any) -> Future:
        raise NotImplementedError

    def map_ordered(
        self,
        worker: Callable[[Any], Any],
        items: Iterable[Any],
        fold: Optional[Callable[[Iterable[Any]], Any]] = None,
    ) -> Any:
        raise NotImplementedError

    # -- registered tasks ---------------------------------------------
    def submit_task(self, name: str, payload: Dict[str, Any]) -> Future:
        raise NotImplementedError

    def run_tasks_ordered(
        self,
        name: str,
        payloads: Iterable[Dict[str, Any]],
        fold: Optional[Callable[[Iterable[Any]], Any]] = None,
    ) -> Any:
        raise NotImplementedError

    def warm(self) -> None:
        """Start the workers now instead of at first use; no-op where
        workers are cheap (threads)."""

    def close(self, wait: bool = True) -> None:
        raise NotImplementedError

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class ThreadBackend(ExecutionBackend):
    """Deterministic ordered fan-out over a thread pool.

    ``jobs == 1`` stays strictly serial (no pool, no threads), so a
    single-job run is bit-for-bit what a loop would do.  With more jobs,
    work items are submitted eagerly and results are *consumed* in
    submission order, which is what keeps parallel output identical to
    serial output.  This is the worker plumbing behind both
    :class:`~repro.flow.dse.ParallelExplorer` and the batch runner
    (:func:`repro.flow.session.run_batch`); ``WorkerPool`` is its
    historic name and remains an alias.
    """

    name = "thread"

    def __init__(self, jobs: int = 1) -> None:
        super().__init__(jobs)
        self._executor: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()

    def submit(self, worker: Callable[..., Any], *args: Any) -> Future:
        """Submit one call to the pool's *persistent* executor.

        Unlike :meth:`map_ordered`, which tears its thread pool down at
        the end of every batch, ``submit`` keeps one executor (of
        ``jobs`` workers) alive until :meth:`close` -- the long-lived
        mode the flow service scheduler (:mod:`repro.service`) runs on,
        where requests arrive over time rather than as one sequence.
        Returns the ``concurrent.futures.Future`` of the call;
        ``jobs == 1`` still executes asynchronously on the (single)
        worker thread, serializing submissions.
        """
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.jobs, thread_name_prefix="flow-pool"
                )
            return self._executor.submit(worker, *args)

    def close(self, wait: bool = True) -> None:
        """Shut the persistent executor down.

        Only needed after :meth:`submit`; :meth:`map_ordered` cleans up
        after itself.  Idempotent.  ``wait=False`` returns without
        joining running workers -- for shutdown paths that already
        waited out a drain timeout and must hand control back rather
        than block behind a wedged job.  (The interpreter still joins
        executor threads at exit; ``wait=False`` bounds *this* call,
        not a hung worker's lifetime.)
        """
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait, cancel_futures=not wait)

    def map_ordered(
        self,
        worker: Callable[[Any], Any],
        items: Iterable[Any],
        fold: Optional[Callable[[Iterable[Any]], Any]] = None,
    ) -> Any:
        """Apply ``worker`` to every item; results in submission order.

        ``fold`` consumes the lazily produced result iterator and its
        return value is returned; it may stop early (remaining futures
        are cancelled -- workers should also honour a stop flag, since a
        running future cannot be cancelled).  The default fold collects
        a list.
        """
        if fold is None:
            fold = list
        if self.jobs == 1:
            return fold(worker(item) for item in items)
        with ThreadPoolExecutor(max_workers=self.jobs) as pool:
            futures = [pool.submit(worker, item) for item in items]
            try:
                return fold(future.result() for future in futures)
            finally:
                for future in futures:
                    future.cancel()  # no-op for completed futures

    # -- registered tasks run as plain calls on the thread side --------
    def submit_task(self, name: str, payload: Dict[str, Any]) -> Future:
        return self.submit(task_named(name).fn, payload)

    def run_tasks_ordered(
        self,
        name: str,
        payloads: Iterable[Dict[str, Any]],
        fold: Optional[Callable[[Iterable[Any]], Any]] = None,
    ) -> Any:
        return self.map_ordered(task_named(name).fn, payloads, fold)


#: Historic name of the thread backend (PRs 1-9); kept as the
#: compatible spelling for existing callers and tests.
WorkerPool = ThreadBackend


def default_start_method() -> str:
    """``fork`` where the platform offers it (fast: workers inherit the
    parent's imports, ~0.3 s of them), ``spawn`` otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


class ProcessBackend(ExecutionBackend):
    """Registered-task fan-out over a ``ProcessPoolExecutor``.

    Pure-Python flow sessions scale with processes where threads only
    interleave (the GIL): each worker owns an interpreter, and the
    shared workspace's content-addressed atomic artifact writes make
    concurrent computation idempotent -- no locks, no IPC beyond the
    task payloads.

    Only :func:`backend_task` functions run in workers
    (:meth:`submit_task` / :meth:`run_tasks_ordered`); :meth:`submit`
    accepts arbitrary callables but runs them on an auxiliary *thread*
    pool in this process -- the escape hatch for work that cannot ship
    (bound methods, closures).  :meth:`map_ordered` is refused rather
    than silently degraded to threads.

    ``close(wait=False)`` **terminates** the worker processes (after
    cancelling queued work) instead of waiting them out: an
    interrupted ``repro serve`` must not leave orphaned children
    computing into the void.  ``jobs == 1`` still runs one worker
    process -- the backend name states where work executes, not how
    much of it runs at once.
    """

    name = "process"

    def __init__(
        self, jobs: int = 1, start_method: Optional[str] = None
    ) -> None:
        super().__init__(jobs)
        self._context = multiprocessing.get_context(
            start_method if start_method else default_start_method()
        )
        self._executor: Optional[ProcessPoolExecutor] = None
        self._aux: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()

    # -- local callables ----------------------------------------------
    def submit(self, worker: Callable[..., Any], *args: Any) -> Future:
        """Run one *local* callable on the auxiliary thread pool.

        For parent-side work that must not ship (the scheduler's
        platform-manager operations are bound methods over live
        state); heavy computation belongs in a registered task.
        """
        with self._lock:
            if self._aux is None:
                self._aux = ThreadPoolExecutor(
                    max_workers=self.jobs, thread_name_prefix="flow-aux"
                )
            return self._aux.submit(worker, *args)

    def map_ordered(
        self,
        worker: Callable[[Any], Any],
        items: Iterable[Any],
        fold: Optional[Callable[[Iterable[Any]], Any]] = None,
    ) -> Any:
        raise BackendError(
            "the process backend runs registered tasks only; use "
            "run_tasks_ordered(name, payloads) with a @backend_task "
            "function (arbitrary callables cannot cross the process "
            "boundary)"
        )

    # -- registered tasks ---------------------------------------------
    def submit_task(self, name: str, payload: Dict[str, Any]) -> Future:
        """Ship one task to the *persistent* worker-process pool."""
        task = task_named(name)
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.jobs, mp_context=self._context
                )
            return self._executor.submit(
                run_task, task.name, task.module, payload
            )

    def run_tasks_ordered(
        self,
        name: str,
        payloads: Iterable[Dict[str, Any]],
        fold: Optional[Callable[[Iterable[Any]], Any]] = None,
    ) -> Any:
        """Ship every payload; fold results in submission order.

        Same ordering/fold contract as the thread backend's
        :meth:`~ThreadBackend.map_ordered`; the per-batch executor is
        torn down before returning.
        """
        task = task_named(name)
        if fold is None:
            fold = list
        items = list(payloads)
        with ProcessPoolExecutor(
            max_workers=self.jobs, mp_context=self._context
        ) as pool:
            futures = [
                pool.submit(run_task, task.name, task.module, payload)
                for payload in items
            ]
            try:
                return fold(future.result() for future in futures)
            finally:
                for future in futures:
                    future.cancel()  # no-op for completed futures

    def warm(self) -> None:
        """Fork all persistent workers *now*, while this process is
        quiet.

        Under the default ``fork`` start method a child inherits every
        lock in whatever state it was at fork time; forking lazily at
        first use -- other threads mid-computation -- can hand a worker
        a lock that is never released.  Long-lived owners (the flow
        service scheduler) warm the pool at startup so every fork
        happens before concurrent work exists.  Each warm-up task
        sleeps briefly so the executor spawns a fresh sibling for the
        next one instead of reusing the first worker.
        """
        futures = [
            self.submit_task("backend.warm", {"seconds": 0.05})
            for _ in range(self.jobs)
        ]
        for future in futures:
            future.result()

    def worker_processes(self) -> Tuple[Any, ...]:
        """The live worker ``multiprocessing.Process`` handles.

        Empty until the first :meth:`submit_task` lazily starts the
        pool.  Exposed so shutdown paths (and their regression tests)
        can verify no child outlives :meth:`close`.
        """
        with self._lock:
            if self._executor is None:
                return ()
            return tuple(
                getattr(self._executor, "_processes", {}).values()
            )

    def close(self, wait: bool = True) -> None:
        """Shut both executors down; idempotent.

        ``wait=True`` joins idle workers cleanly.  ``wait=False`` is
        the prompt path: queued work is cancelled and live worker
        processes are **terminated** and reaped, so a drain-timeout
        shutdown (SIGINT under a wedged job) leaves no orphans.
        """
        with self._lock:
            executor, self._executor = self._executor, None
            aux, self._aux = self._aux, None
        if aux is not None:
            aux.shutdown(wait=wait, cancel_futures=not wait)
        if executor is None:
            return
        if wait:
            executor.shutdown(wait=True)
            return
        processes = list(getattr(executor, "_processes", {}).values())
        executor.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            if process.is_alive():
                process.terminate()
        for process in processes:
            process.join(timeout=5.0)


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
def create_backend(name: str, jobs: int = 1) -> ExecutionBackend:
    """Instantiate a backend by its ``--backend`` name."""
    if name == "thread":
        return ThreadBackend(jobs)
    if name == "process":
        return ProcessBackend(jobs)
    raise BackendError(
        f"unknown backend {name!r}; expected one of {', '.join(BACKENDS)}"
    )


def as_backend(
    backend: Union[None, str, ExecutionBackend], jobs: int = 1
) -> ExecutionBackend:
    """Coerce a backend argument: ``None`` -> thread, name -> new
    instance of ``jobs`` workers, instance -> itself (caller-owned)."""
    if backend is None:
        return ThreadBackend(jobs)
    if isinstance(backend, str):
        return create_backend(backend, jobs)
    if isinstance(backend, ExecutionBackend):
        return backend
    raise BackendError(
        f"not a backend: {backend!r} (expected a name from "
        f"{', '.join(BACKENDS)} or an ExecutionBackend)"
    )
