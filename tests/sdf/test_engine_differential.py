"""Differential tests: engine tiers vs. the state-space oracle.

Whatever tier the adaptive policy lands on -- vectorized via the probe,
analytic after escalation, vectorized again after a declined transform
or a blown relaxation budget -- the engine must produce the *same exact*
``Fraction`` throughput as the retained full-rescan state-space
reference, over the committed example corpus (``examples/corpus/``) and
over seeded fuzz scenarios.  On top of that the analytic tier (HSDF
transform + maximum cycle mean) is forced explicitly on every graph it
accepts, so its exactness is checked even where the probe would have
answered first.
"""

from pathlib import Path

import pytest

from repro.flow.spec import load_flow_spec
from repro.scenarios import generate_scenarios, build_scenario_graph
from repro.sdf.buffers import (
    BufferDistribution,
    add_buffer_edges,
    bufferable_edges,
    minimal_capacity_bound,
)
from repro.sdf.deadlock import is_deadlock_free
from repro.sdf.engine import ThroughputEngine
from repro.sdf.simulation_reference import reference_analyze_throughput

CORPUS = sorted(
    (Path(__file__).resolve().parents[2] / "examples" / "corpus").glob(
        "*.toml"
    )
)

FUZZ_SCENARIOS = generate_scenarios("all", 20, seed=42)


def _bounded(graph):
    """Analysis form: credit back-edges at the structural liveness bound
    plus headroom (mirrors buffer-sizing phase 1)."""
    capacities = {
        edge.name: minimal_capacity_bound(edge)
        + max(edge.production, edge.consumption)
        for edge in bufferable_edges(graph)
    }
    bounded = add_buffer_edges(graph, BufferDistribution(capacities))
    for _ in range(4):
        if is_deadlock_free(bounded):
            break
        for name in capacities:
            edge = graph.edge(name)
            capacities[name] += max(edge.production, edge.consumption)
        bounded = add_buffer_edges(graph, BufferDistribution(capacities))
    return bounded


def assert_engine_matches_oracle(bounded):
    """Exact-Fraction agreement for auto *and* for forced analytic."""
    engine = ThroughputEngine(bounded)
    result = engine.analyze()
    oracle = reference_analyze_throughput(bounded)
    assert result.throughput == oracle.throughput
    assert result.tier_reason is not None
    if result.tier == "vectorized":
        # Simulation tiers replay the oracle's recurrence: every field
        # is bit-identical, not just the throughput.
        assert result.period == oracle.period
        assert result.transient_iterations == oracle.transient_iterations
        assert (result.iterations_per_period
                == oracle.iterations_per_period)
    if engine.analytic_decline_reason is not None:
        assert result.tier == "vectorized"
        assert result.tier_reason == engine.analytic_decline_reason
    else:
        # Eligible graph: the probe either answered (vectorized) or
        # escalated (analytic); force the analytic tier regardless so
        # the transform itself is differentially checked everywhere it
        # is tractable.
        forced = ThroughputEngine(bounded, mode="analytic").analyze()
        assert forced.tier == "analytic"
        assert forced.throughput == oracle.throughput


@pytest.mark.parametrize(
    "spec_path", CORPUS, ids=[p.stem for p in CORPUS]
)
def test_corpus_analytic_matches_reference(spec_path):
    graph = load_flow_spec(spec_path).build_application().graph
    assert_engine_matches_oracle(_bounded(graph))


@pytest.mark.parametrize(
    "spec", FUZZ_SCENARIOS, ids=[s.name for s in FUZZ_SCENARIOS]
)
def test_fuzz_analytic_matches_reference(spec):
    graph = build_scenario_graph(spec)
    assert_engine_matches_oracle(_bounded(graph))


def test_corpus_is_present():
    """The sweep must not silently shrink to nothing."""
    assert len(CORPUS) >= 10


def test_declined_transform_cases_occur_in_sweep():
    """The sweep exercises the fallback path, not only the fast path:
    at least one mapped variant declines (static orders) and records
    why."""
    graph = _bounded(build_scenario_graph(FUZZ_SCENARIOS[0]))
    actors = [a.name for a in graph]
    engine = ThroughputEngine(
        graph,
        processor_of={a: "tile0" for a in actors},
        static_order=None,
    )
    assert engine.analytic_decline_reason is not None
    result = engine.analyze()
    assert result.tier == "vectorized"
    assert result.tier_reason == engine.analytic_decline_reason
    oracle = reference_analyze_throughput(
        graph, processor_of={a: "tile0" for a in actors}
    )
    assert result.throughput == oracle.throughput
    assert result.period == oracle.period
