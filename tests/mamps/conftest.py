"""A small *functional* application for generation/simulation tests."""

import pytest

from repro.appmodel import (
    ActorImplementation,
    ApplicationModel,
    FiringOutput,
    ImplementationMetrics,
    MemoryRequirements,
)
from repro.sdf import SDFGraph


@pytest.fixture
def functional_app():
    """P -> Q -> R pipeline that squares then sums integers.

    P's cycle count varies with the firing index (data-dependent timing
    below the WCET), which is what creates the measured-vs-worst-case gap
    the Fig. 6 benchmarks rely on.
    """
    g = SDFGraph("squares")
    g.add_actor("P", execution_time=400)
    g.add_actor("Q", execution_time=600)
    g.add_actor("R", execution_time=300)
    g.add_edge("pq", "P", "Q", token_size=4)
    g.add_edge("qr", "Q", "R", token_size=4)

    def p_fn(ctx):
        value = ctx.firing_index % 17
        cycles = 250 + (value * 8)  # 250..378, WCET 400
        return FiringOutput(outputs={"pq": [value]}, cycles=cycles)

    def q_fn(ctx):
        value = ctx.single("pq")
        return FiringOutput(outputs={"qr": [value * value]},
                            cycles=450 + (value % 5) * 10)

    def r_fn(ctx):
        ctx.state["sum"] = ctx.state.get("sum", 0) + ctx.single("qr")
        return FiringOutput(outputs={}, cycles=280)

    def impl(actor, wcet, fn):
        return ActorImplementation(
            actor=actor,
            pe_type="microblaze",
            metrics=ImplementationMetrics(
                wcet=wcet,
                memory=MemoryRequirements(
                    instruction_bytes=2048, data_bytes=1024
                ),
            ),
            function=fn,
        )

    return ApplicationModel(
        graph=g,
        implementations=[
            impl("P", 400, p_fn),
            impl("Q", 600, q_fn),
            impl("R", 300, r_fn),
        ],
    )
