"""Property-based tests for the Fig. 4 channel expansion.

For arbitrary (rates, token size, buffer sizes, channel parameters) the
expansion must preserve consistency, stay live whenever the buffers admit
a burst, and behave monotonically: faster channels / bigger buffers never
reduce throughput.
"""

from hypothesis import given, settings, strategies as st

from repro.comm import (
    ChannelParameters,
    PESerialization,
    expand_channel,
    expanded_names,
    words_per_token,
)
from repro.sdf import (
    SDFGraph,
    analyze_throughput,
    is_deadlock_free,
    repetition_vector,
)


@st.composite
def channel_setups(draw):
    p = draw(st.integers(min_value=1, max_value=3))
    q = draw(st.integers(min_value=1, max_value=3))
    token_size = draw(st.integers(min_value=1, max_value=64))
    alpha_src = p + draw(st.integers(min_value=0, max_value=3))
    alpha_dst = q + draw(st.integers(min_value=0, max_value=3))
    params = ChannelParameters(
        words_in_flight=draw(st.integers(min_value=1, max_value=4)),
        network_buffer_words=draw(st.integers(min_value=0, max_value=8)),
        injection_cycles_per_word=draw(
            st.integers(min_value=1, max_value=4)
        ),
        channel_latency=draw(st.integers(min_value=1, max_value=8)),
    )
    src_time = draw(st.integers(min_value=1, max_value=50))
    dst_time = draw(st.integers(min_value=1, max_value=50))
    return p, q, token_size, alpha_src, alpha_dst, params, src_time, dst_time


def build(setup):
    p, q, token_size, alpha_src, alpha_dst, params, src_time, dst_time = (
        setup
    )
    g = SDFGraph("prop_pipe")
    g.add_actor("P", execution_time=src_time)
    g.add_actor("Q", execution_time=dst_time)
    g.add_edge("pq", "P", "Q", production=p, consumption=q,
               token_size=token_size)
    expand_channel(
        g, "pq", params, PESerialization(),
        alpha_src=alpha_src, alpha_dst=alpha_dst,
    )
    return g


@given(channel_setups())
@settings(max_examples=50, deadline=None)
def test_expansion_preserves_consistency(setup):
    g = build(setup)
    p, q = setup[0], setup[1]
    rates = repetition_vector(g)
    names = expanded_names("pq")
    n_words = words_per_token(setup[2])
    # Words per iteration = tokens per iteration * N, at every word actor.
    tokens_per_iteration = rates["P"] * p
    for word_actor in (names.s2, names.c1, names.c2, names.d1):
        assert rates[word_actor] == tokens_per_iteration * n_words
    assert rates[names.s1] == tokens_per_iteration
    assert rates[names.d2] == tokens_per_iteration


@given(channel_setups())
@settings(max_examples=50, deadline=None)
def test_expansion_is_live(setup):
    assert is_deadlock_free(build(setup))


@given(channel_setups())
@settings(max_examples=25, deadline=None)
def test_expansion_throughput_analyzable_and_positive(setup):
    result = analyze_throughput(build(setup), max_iterations=3000)
    assert result.throughput > 0


@given(channel_setups())
@settings(max_examples=20, deadline=None)
def test_faster_channel_never_slower(setup):
    p, q, token_size, alpha_src, alpha_dst, params, src_time, dst_time = (
        setup
    )
    fast_params = ChannelParameters(
        words_in_flight=params.words_in_flight,
        network_buffer_words=params.network_buffer_words,
        injection_cycles_per_word=max(
            1, params.injection_cycles_per_word - 1
        ),
        channel_latency=max(1, params.channel_latency // 2),
    )
    base = analyze_throughput(build(setup), max_iterations=3000).throughput
    fast_setup = (p, q, token_size, alpha_src, alpha_dst, fast_params,
                  src_time, dst_time)
    fast = analyze_throughput(
        build(fast_setup), max_iterations=3000
    ).throughput
    assert fast >= base


@given(channel_setups())
@settings(max_examples=20, deadline=None)
def test_bigger_buffers_never_slower(setup):
    p, q, token_size, alpha_src, alpha_dst, params, src_time, dst_time = (
        setup
    )
    base = analyze_throughput(build(setup), max_iterations=3000).throughput
    roomy_setup = (p, q, token_size, alpha_src + 2, alpha_dst + 2, params,
                   src_time, dst_time)
    roomy = analyze_throughput(
        build(roomy_setup), max_iterations=3000
    ).throughput
    assert roomy >= base
