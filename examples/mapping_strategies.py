#!/usr/bin/env python3
"""Mapping strategies: one platform, three binders, two buffer policies.

Maps the MJPEG decoder onto the case-study 5-tile FSL platform with
every registered binding strategy (the paper's greedy binder, the
Benhaoua-style spiral binder, the Quan & Pimentel-style bias-elitist
GA), compares the guarantees, then runs the same sweep through the
design-space exploration engine to show that cache keys distinguish
strategies, and finally executes the declarative FlowSpec scenario
shipped in this directory.

Run:  python examples/mapping_strategies.py
"""

from pathlib import Path

from repro.arch import architecture_from_template
from repro.flow import DesignFlow, EvaluationCache, explore_design_space
from repro.flow.spec import build_case_study_app
from repro.mapping import map_application, registered

SEED = 7


def main() -> None:
    app = build_case_study_app("gradient")

    print("== one platform, every binding strategy ==")
    for binding in registered("binding"):
        arch = architecture_from_template(5, "fsl")
        result = map_application(
            app, arch, fixed={"VLD": "tile0"}, binding=binding, seed=SEED
        )
        inter = len(result.mapping.inter_tile_channels())
        print(
            f"  {binding:<7} "
            f"{float(result.guaranteed_throughput * 1e6):8.4f} "
            f"iterations/Mcycle, {inter} inter-tile channel(s)"
        )

    print()
    print("== the same sweep, strategy-aware cache ==")
    cache = EvaluationCache()
    for binding in ("greedy", "spiral"):
        result = explore_design_space(
            app,
            tile_counts=(1, 2, 3),
            interconnects=("fsl",),
            fixed={"VLD": "tile0"},
            binding=binding,
            cache=cache,
        )
        best = max(result.points, key=lambda p: p.throughput)
        print(f"  binding={binding}: best point {best.label} at "
              f"{float(best.throughput * 1e6):.4f}/Mcycle")
    stats = cache.stats
    print(f"  cache: {stats.hits} hit(s) / {stats.lookups} lookup(s) -- "
          "different strategies never share entries")

    print()
    print("== declarative scenario (FlowSpec) ==")
    scenario = Path(__file__).parent / "scenario_spiral_noc.toml"
    flow = DesignFlow.from_spec(scenario, app=app)
    outcome = flow.run(iterations=8)
    print(f"  guaranteed: "
          f"{float(outcome.guaranteed_throughput * 1e6):.4f}/Mcycle")
    if outcome.measured_throughput is not None:
        print(f"  measured:   "
              f"{float(outcome.measured_throughput * 1e6):.4f}/Mcycle")


if __name__ == "__main__":
    main()
