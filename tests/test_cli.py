"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.sdf import SDFGraph
from repro.sdf.buffers import BufferDistribution, add_buffer_edges
from repro.sdf.io_sdf3 import save_graph


@pytest.fixture
def graph_file(tmp_path):
    g = SDFGraph("cli_demo")
    g.add_actor("A", execution_time=10)
    g.add_actor("B", execution_time=20)
    g.add_edge("ab", "A", "B", token_size=4)
    bounded = add_buffer_edges(g, BufferDistribution({"ab": 2}))
    path = tmp_path / "graph.xml"
    save_graph(bounded, path)
    return str(path)


class TestAnalyze:
    def test_reports_vector_and_throughput(self, graph_file, capsys):
        assert main(["analyze", graph_file]) == 0
        out = capsys.readouterr().out
        assert "repetition vector" in out
        assert "deadlock-free: yes" in out
        assert "throughput" in out

    def test_deadlocked_graph_reported(self, tmp_path, capsys):
        g = SDFGraph("dead")
        g.add_actor("A", execution_time=1)
        g.add_actor("B", execution_time=1)
        g.add_edge("ab", "A", "B")
        g.add_edge("ba", "B", "A")
        path = tmp_path / "dead.xml"
        save_graph(g, path)
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "deadlock-free: NO" in out

    def test_missing_file_fails_cleanly(self, tmp_path):
        with pytest.raises((FileNotFoundError, OSError)):
            main(["analyze", str(tmp_path / "nope.xml")])

    def test_json_output_includes_mapping_result(self, graph_file, capsys):
        assert main(
            ["analyze", graph_file, "--json", "--tiles", "2"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["deadlock_free"] is True
        assert payload["repetition_vector"] == {"A": 1, "B": 1}
        assert payload["throughput"]["period_cycles"] > 0
        mapping = payload["mapping"]
        assert set(mapping["binding"]) == {"A", "B"}
        assert mapping["guaranteed_per_mega_cycle"] > 0
        assert mapping["constraint_met"] is True
        for channel in mapping["channels"].values():
            total = (
                channel["capacity"]
                + channel["alpha_src"] + channel["alpha_dst"]
            )
            assert total > 0

    def test_json_mapping_handles_pre_bounded_graphs(self, tmp_path,
                                                     capsys):
        """Graphs saved with buffer back-edges must still map: the CLI
        strips the ``buf__`` credit edges (the mapping flow allocates
        its own capacities) instead of colliding with the bound graph's
        modeling edges on intra-tile placements."""
        g = SDFGraph("bounded3")
        for name, t in (("A", 10), ("B", 20), ("C", 15)):
            g.add_actor(name, execution_time=t)
        g.add_edge("ab", "A", "B", token_size=4)
        g.add_edge("bc", "B", "C", token_size=4)
        bounded = add_buffer_edges(
            g, BufferDistribution({"ab": 2, "bc": 2})
        )
        path = tmp_path / "bounded.xml"
        save_graph(bounded, path)
        assert main(["analyze", str(path), "--json", "--tiles", "1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        mapping = payload["mapping"]
        assert "error" not in mapping
        assert set(mapping["binding"]) == {"A", "B", "C"}
        assert set(mapping["channels"]) == {"ab", "bc"}

    def test_json_output_for_deadlocked_graph(self, tmp_path, capsys):
        g = SDFGraph("dead")
        g.add_actor("A", execution_time=1)
        g.add_actor("B", execution_time=1)
        g.add_edge("ab", "A", "B")
        g.add_edge("ba", "B", "A")
        path = tmp_path / "dead.xml"
        save_graph(g, path)
        assert main(["analyze", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["deadlock_free"] is False
        assert "throughput" not in payload
        assert "mapping" not in payload


class TestDemo:
    def test_runs_case_study(self, capsys, tmp_path):
        code = main(
            ["demo", "gradient", "--tiles", "3", "--iterations", "6",
             "--output", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "guaranteed" in out
        assert "measured" in out
        assert "project written" in out
        assert any(tmp_path.iterdir())

    def test_unknown_sequence_errors(self, capsys):
        assert main(["demo", "nonsense"]) == 1
        err = capsys.readouterr().err
        assert "unknown sequence" in err


class TestRunSpec:
    def test_runs_toml_scenario(self, tmp_path, capsys):
        spec = tmp_path / "scenario.toml"
        spec.write_text(
            "\n".join(
                [
                    'name = "cli-spec"',
                    "[architecture]",
                    "tiles = 2",
                    "[mapping]",
                    'binding = "spiral"',
                    'buffer_policy = "exponential"',
                    "[mapping.fixed]",
                    'VLD = "tile0"',
                ]
            ),
            encoding="utf-8",
        )
        code = main(["run", "--spec", str(spec), "--iterations", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cli-spec" in out
        assert "binding=spiral" in out
        assert "guaranteed" in out
        assert "measured" in out

    def test_bad_spec_fails_cleanly(self, tmp_path, capsys):
        spec = tmp_path / "scenario.toml"
        spec.write_text('[mapping]\nbinding = "quantum"\n',
                        encoding="utf-8")
        assert main(["run", "--spec", str(spec)]) == 1
        err = capsys.readouterr().err
        assert "quantum" in err

    def test_missing_spec_fails_cleanly(self, tmp_path, capsys):
        assert main(["run", "--spec", str(tmp_path / "none.toml")]) == 1
        assert "cannot read" in capsys.readouterr().err


class TestDSE:
    def test_prints_pareto_table(self, capsys):
        assert main(["dse", "gradient", "--max-tiles", "2"]) == 0
        out = capsys.readouterr().out
        assert "1t/fsl" in out
        assert "pareto" in out

    def test_strategy_flags(self, capsys):
        code = main(
            ["explore", "gradient", "--max-tiles", "2",
             "--binding", "spiral", "--buffer-policy", "exponential",
             "--effort", "low"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "binding=spiral" in out

    def test_unknown_binding_rejected(self):
        with pytest.raises(SystemExit):
            main(["explore", "--binding", "quantum"])


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


class TestMaxIterationsPlumbing:
    def test_analyze_accepts_budget(self, graph_file, capsys):
        assert main(
            ["analyze", graph_file, "--max-iterations", "50000"]
        ) == 0
        assert "throughput:" in capsys.readouterr().out

    def test_analyze_rejects_nonpositive_budget(self, graph_file, capsys):
        assert main(["analyze", graph_file, "--max-iterations", "0"]) == 1
        assert "--max-iterations" in capsys.readouterr().err

    def test_analyze_json_carries_budget_into_mapping(self, graph_file,
                                                      capsys):
        assert main(
            ["analyze", graph_file, "--json", "--max-iterations", "20000"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "error" not in payload["mapping"]

    def test_explore_budget_override(self, capsys):
        code = main(
            ["explore", "gradient", "--max-tiles", "1",
             "--effort", "low", "--max-iterations", "20000"]
        )
        assert code == 0

    def test_explore_rejects_nonpositive_budget(self, capsys):
        code = main(
            ["explore", "gradient", "--max-tiles", "1",
             "--max-iterations", "-3"]
        )
        assert code == 1
        assert "--max-iterations" in capsys.readouterr().err


class TestEffortIterationSuffix:
    def test_of_parses_override(self):
        from repro.mapping.flow import MappingEffort

        effort = MappingEffort.of("low+it12345")
        assert effort.max_iterations == 12345
        assert effort.max_buffer_rounds == (
            MappingEffort.of("low").max_buffer_rounds
        )
        # the derived name round-trips through string plumbing
        assert MappingEffort.of(effort.name) == effort

    def test_with_iterations_is_stable(self):
        from repro.mapping.flow import MappingEffort

        base = MappingEffort.of("normal")
        assert base.with_iterations(base.max_iterations) is base
        derived = base.with_iterations(99)
        assert derived.with_iterations(77).name == "normal+it77"

    def test_bad_overrides_rejected(self):
        from repro.mapping.flow import MappingEffort

        with pytest.raises(ValueError, match="positive integer"):
            MappingEffort.of("low+itxyz")
        with pytest.raises(ValueError, match="unknown mapping effort"):
            MappingEffort.of("turbo+it5")
        with pytest.raises(ValueError, match=">= 1"):
            MappingEffort.of("low").with_iterations(0)
