"""The seeded synthetic-workload generator.

Everything here is a pure function of a :class:`ScenarioSpec`: the SDF
graph, the timing-only application model, the matching architecture
template parameters and the bridged :class:`~repro.flow.spec.FlowSpec`.
Determinism is the load-bearing property -- the scenario *is* its spec,
so fingerprints, artifact keys and served responses behave exactly as
they do for the hand-written case study:

* all random draws come from ``random.Random`` streams seeded with
  strings derived from the spec seed (string seeding hashes via SHA-512,
  so it is stable across processes and machines, unlike ``hash()``);
* consistency is guaranteed *by construction*: a repetition vector is
  drawn first and edge rates are derived from it (the technique of the
  PR 3 differential suite), so the balance equations always close --
  including around the ``cyclic`` family's feedback edge;
* liveness is guaranteed by placing the structural token bound (plus
  seeded slack) on every cycle-closing edge;
* every builder finishes with the validity post-conditions
  (:func:`repro.sdf.builders.check_well_formed` plus
  ``ApplicationModel.validate``); a violation raises the typed
  :class:`~repro.scenarios.spec.ScenarioError` rather than surfacing
  later inside the simulator.

Fan-out is capped so generated workloads stay routable on the FSL
template (8 master/slave ports per tile) and footprints stay well under
the smallest heterogeneous tile memories.
"""

from __future__ import annotations

import random
from math import gcd
from typing import Callable, List, Optional

from repro.appmodel.implementation import ActorImplementation
from repro.appmodel.metrics import ImplementationMetrics, MemoryRequirements
from repro.appmodel.model import ApplicationModel
from repro.exceptions import ReproError
from repro.flow.spec import AppSpec, ArchSpec, FlowSpec
from repro.mapping.pipeline import StrategyTuple
from repro.scenarios.spec import (
    FAMILIES,
    WCET_PROFILES,
    ScenarioError,
    ScenarioSpec,
)
from repro.scenarios.templates import TEMPLATES
from repro.sdf.builders import check_well_formed
from repro.sdf.graph import SDFGraph

#: PE type of the MAMPS template tiles; generated implementations
#: target it so any template platform can host any scenario.
PE_TYPE = "microblaze"

#: Fan-out cap: the FSL template offers 8 master ports per tile.
MAX_FAN = 6


def _wcet_drawer(
    rng: random.Random, profile: str
) -> Callable[[], int]:
    low, high = WCET_PROFILES[profile]

    def draw() -> int:
        return rng.randint(low, high)

    return draw


def _token_size_drawer(
    rng: random.Random, token_bytes: int
) -> Callable[[], int]:
    words = max(1, token_bytes // 4)

    def draw() -> int:
        return 4 * rng.randint(1, words)

    return draw


def _derived_rates(
    rng: random.Random, q_src: int, q_dst: int
) -> tuple:
    """A consistent ``(production, consumption)`` pair for an edge
    between actors with repetition counts ``q_src``/``q_dst``."""
    m = rng.randint(1, 2)
    g = gcd(q_src, q_dst)
    return m * q_dst // g, m * q_src // g


# ----------------------------------------------------------------------
# family builders (graph structure only)
# ----------------------------------------------------------------------
def _chain(spec: ScenarioSpec, rng: random.Random) -> SDFGraph:
    n = spec.actors
    wcet_of = _wcet_drawer(rng, spec.wcet_profile)
    token_of = _token_size_drawer(rng, spec.token_bytes)
    q = [rng.randint(1, spec.max_rate) for _ in range(n)]
    graph = SDFGraph(spec.effective_name)
    for index in range(n):
        graph.add_actor(f"a{index}", execution_time=wcet_of())
    for index in range(n - 1):
        production, consumption = _derived_rates(
            rng, q[index], q[index + 1]
        )
        graph.add_edge(
            f"e{index}", f"a{index}", f"a{index + 1}",
            production=production, consumption=consumption,
            initial_tokens=rng.choice((0, 0, 1)),
            token_size=token_of(),
        )
    return graph


def _splitjoin(spec: ScenarioSpec, rng: random.Random) -> SDFGraph:
    branches = min(max(2, spec.actors - 2), MAX_FAN)
    wcet_of = _wcet_drawer(rng, spec.wcet_profile)
    token_of = _token_size_drawer(rng, spec.token_bytes)
    graph = SDFGraph(spec.effective_name)
    graph.add_actor("src", execution_time=wcet_of())
    graph.add_actor("snk", execution_time=wcet_of())
    for index in range(branches):
        branch = f"b{index}"
        graph.add_actor(branch, execution_time=wcet_of())
        repeat = rng.randint(1, spec.max_rate)
        graph.add_edge(
            f"split{index}", "src", branch,
            production=repeat, consumption=1, token_size=token_of(),
        )
        graph.add_edge(
            f"join{index}", branch, "snk",
            production=1, consumption=repeat, token_size=token_of(),
        )
    return graph


def _diamonds(spec: ScenarioSpec, rng: random.Random) -> SDFGraph:
    segments = max(1, round(spec.actors / 4))
    wcet_of = _wcet_drawer(rng, spec.wcet_profile)
    token_of = _token_size_drawer(rng, spec.token_bytes)
    graph = SDFGraph(spec.effective_name)
    previous_exit: Optional[str] = None
    for segment in range(segments):
        entry, exit_ = TEMPLATES["diamond"].instantiate(
            graph, f"d{segment}_", rng, wcet_of, token_of
        )
        if previous_exit is not None:
            graph.add_edge(
                f"bridge{segment}", previous_exit, entry,
                token_size=token_of(),
            )
        previous_exit = exit_
    return graph


def _cyclic(spec: ScenarioSpec, rng: random.Random) -> SDFGraph:
    n = spec.actors
    wcet_of = _wcet_drawer(rng, spec.wcet_profile)
    token_of = _token_size_drawer(rng, spec.token_bytes)
    q = [rng.randint(1, spec.max_rate) for _ in range(n)]
    graph = SDFGraph(spec.effective_name)
    for index in range(n):
        graph.add_actor(f"a{index}", execution_time=wcet_of())
    for index in range(n - 1):
        production, consumption = _derived_rates(
            rng, q[index], q[index + 1]
        )
        graph.add_edge(
            f"e{index}", f"a{index}", f"a{index + 1}",
            production=production, consumption=consumption,
            token_size=token_of(),
        )
    # the controlled feedback edge: rates derived from q so the cycle's
    # balance equation closes; tokens at the one-iteration structural
    # bound (a0 fires q[0] times before any feedback returns) + slack
    production, consumption = _derived_rates(rng, q[n - 1], q[0])
    tokens = consumption * q[0] + rng.randint(0, spec.max_rate)
    graph.add_edge(
        "back", f"a{n - 1}", "a0",
        production=production, consumption=consumption,
        initial_tokens=tokens, token_size=token_of(),
    )
    return graph


def _mixed(spec: ScenarioSpec, rng: random.Random) -> SDFGraph:
    wcet_of = _wcet_drawer(rng, spec.wcet_profile)
    token_of = _token_size_drawer(rng, spec.token_bytes)
    graph = SDFGraph(spec.effective_name)
    budget = spec.actors
    previous_exit: Optional[str] = None
    segment = 0
    # alternate bridge-rate skew around 1 so the repetition vector stays
    # small no matter how many segments compose
    scale_up = True
    while budget > 0:
        candidates = [
            t for t in TEMPLATES.values() if t.actors_min <= budget
        ]
        template = rng.choice(candidates) if candidates \
            else TEMPLATES["stage"]
        entry, exit_ = template.instantiate(
            graph, f"t{segment}_", rng, wcet_of, token_of
        )
        if previous_exit is not None:
            rate = rng.randint(1, spec.max_rate)
            production, consumption = (
                (rate, 1) if scale_up else (1, rate)
            )
            scale_up = not scale_up
            graph.add_edge(
                f"bridge{segment}", previous_exit, entry,
                production=production, consumption=consumption,
                token_size=token_of(),
            )
        previous_exit = exit_
        budget -= template.actors_max
        segment += 1
    return graph


_FAMILY_BUILDERS = {
    "chain": _chain,
    "splitjoin": _splitjoin,
    "diamond": _diamonds,
    "cyclic": _cyclic,
    "mixed": _mixed,
}
assert tuple(sorted(_FAMILY_BUILDERS)) == tuple(sorted(FAMILIES))


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------
def build_scenario_graph(spec: ScenarioSpec) -> SDFGraph:
    """The scenario's SDF graph; deterministic for equal specs.

    Post-condition: non-empty, connected, consistent and deadlock-free
    (:func:`~repro.sdf.builders.check_well_formed`); a violation is a
    generator bug and raises :class:`ScenarioError`.
    """
    rng = random.Random(f"graph:{spec.seed}")
    graph = _FAMILY_BUILDERS[spec.family](spec, rng)
    try:
        check_well_formed(graph)
    except ReproError as error:
        raise ScenarioError(
            f"scenario {spec.effective_name!r} generated an invalid "
            f"graph: {error}"
        ) from error
    return graph


def build_scenario_application(spec: ScenarioSpec) -> ApplicationModel:
    """The scenario's timing-only application model.

    One implementation per actor (PE type :data:`PE_TYPE`, WCET equal to
    the actor's drawn execution time, small seeded memory footprint), no
    functional models -- exactly the analysis-side shape FlowSession
    artifacts round-trip.
    """
    graph = build_scenario_graph(spec)
    rng = random.Random(f"impl:{spec.seed}")
    implementations = [
        ActorImplementation(
            actor=actor.name,
            pe_type=PE_TYPE,
            metrics=ImplementationMetrics(
                wcet=max(1, actor.execution_time),
                memory=MemoryRequirements(
                    instruction_bytes=256 * rng.randint(4, 16),
                    data_bytes=256 * rng.randint(2, 8),
                ),
            ),
        )
        for actor in graph
    ]
    app = ApplicationModel(
        graph=graph,
        implementations=implementations,
        throughput_constraint=None,
        name=spec.effective_name,
    )
    try:
        app.validate()
    except ReproError as error:
        raise ScenarioError(
            f"scenario {spec.effective_name!r} generated an invalid "
            f"application: {error}"
        ) from error
    return app


def scenario_architecture(spec: ScenarioSpec) -> ArchSpec:
    """Matching template-architecture parameters for a scenario.

    Deterministic for equal specs (its own seeded stream): tile count
    scaled to the actor count, FSL or NoC fabric with varied structural
    knobs (FIFO depth, mesh wiring), and an occasional heterogeneous
    memory mix when the workload is small enough to fit it.
    """
    rng = random.Random(f"arch:{spec.seed}")
    tiles = min(4, max(2, 2 + spec.actors // 6))
    interconnect = rng.choice(("fsl", "noc"))
    heterogeneous = spec.actors <= 24 and rng.random() < 0.5
    kwargs = {}
    if interconnect == "fsl":
        kwargs["fsl_fifo_depth"] = rng.choice((8, 16, 32))
    else:
        # roomy meshes: >= 8 connections per link, so any conservative
        # scenario routes (tight-wire platforms are a DSE concern, not
        # a corpus one)
        kwargs["noc_wires_per_link"] = rng.choice((64, 128))
        kwargs["noc_connection_wires"] = rng.choice((4, 8))
    return ArchSpec(
        tiles=tiles,
        interconnect=interconnect,
        with_ca=False,
        instruction_kb=128,
        data_kb=128,
        slave_instruction_kb=64 if heterogeneous else None,
        slave_data_kb=64 if heterogeneous else None,
        **kwargs,
    )


def scenario_strategies(spec: ScenarioSpec) -> StrategyTuple:
    """A seeded strategy tuple so corpora exercise every binder."""
    rng = random.Random(f"strategy:{spec.seed}")
    binding = rng.choice(("greedy", "spiral", "ga"))
    return StrategyTuple(
        binding=binding,
        buffer_policy=rng.choice(("linear", "exponential")),
        seed=spec.seed if binding == "ga" else None,
    )


def scenario_flow_spec(
    spec: ScenarioSpec,
    architecture: Optional[ArchSpec] = None,
    strategies: Optional[StrategyTuple] = None,
    constraint=None,
    name: Optional[str] = None,
) -> FlowSpec:
    """The ScenarioSpec -> FlowSpec bridge.

    The returned spec is a first-class scenario document: runnable by
    ``repro run/batch/serve`` unchanged, serializable with
    :func:`render_flow_spec_toml`, and parseable back through
    ``FlowSpec.from_dict`` (the ``[app.scenario]`` table).
    """
    return FlowSpec(
        name=name or spec.effective_name,
        apps=(AppSpec(scenario=spec, name=spec.effective_name),),
        architecture=(
            architecture if architecture is not None
            else scenario_architecture(spec)
        ),
        constraint=constraint,
        strategies=(
            strategies if strategies is not None
            else scenario_strategies(spec)
        ),
    )


def generate_scenarios(
    family: str,
    count: int,
    seed: int,
    actors: Optional[int] = None,
    max_rate: int = 3,
    wcet_profile: str = "mixed",
    token_bytes: int = 16,
    name_prefix: Optional[str] = None,
) -> List[ScenarioSpec]:
    """A deterministic batch of scenario specs.

    Per-scenario seeds and shape variation derive from one master
    ``Random(seed)`` stream, so ``(family, count, seed, ...)`` fully
    determines the batch -- running the generator twice produces
    byte-identical corpora.  ``family`` may be a member of
    :data:`FAMILIES` or ``"all"`` to cycle through every family.
    """
    if count < 1:
        raise ScenarioError(f"count must be >= 1, got {count}")
    if family != "all" and family not in FAMILIES:
        raise ScenarioError(
            f"unknown scenario family {family!r}; pick from "
            f"{', '.join(FAMILIES + ('all',))}"
        )
    rng = random.Random(f"batch:{seed}")
    specs: List[ScenarioSpec] = []
    for index in range(count):
        chosen = (
            FAMILIES[index % len(FAMILIES)] if family == "all" else family
        )
        prefix = name_prefix or chosen
        specs.append(
            ScenarioSpec(
                family=chosen,
                seed=rng.randrange(1 << 30),
                actors=(
                    actors if actors is not None else rng.randint(4, 10)
                ),
                max_rate=max_rate,
                wcet_profile=wcet_profile,
                token_bytes=token_bytes,
                name=f"{prefix}-s{seed}-{index:02d}",
            )
        )
    return specs
