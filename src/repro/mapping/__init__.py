"""The SDF3-style mapping flow (paper Section 5.1).

Maps a throughput-constrained application onto a MAMPS architecture:

1. **Binding** (:mod:`repro.mapping.binding`) -- assign each actor to a tile
   using generic cost functions over "processing, memory usage,
   communication, and latency".
2. **Routing** (:mod:`repro.mapping.routing`) -- allocate interconnect
   resources for every inter-tile channel.
3. **Buffer allocation** (:mod:`repro.mapping.buffer_alloc`) -- choose
   source/destination buffer capacities.
4. **Scheduling** (:mod:`repro.mapping.scheduling`) -- derive a static-order
   schedule per tile from a resource-constrained self-timed execution.
5. **Analysis** (:mod:`repro.mapping.bound_graph`) -- build the bound graph
   (binding + schedules + Fig. 4 communication models) and compute the
   *guaranteed* worst-case throughput.

:func:`repro.mapping.flow.map_application` runs all five steps and iterates
buffer sizes until the application's throughput constraint is met (or
reports the best mapping found).
"""

from repro.mapping.spec import ChannelMapping, Mapping, MappingResult
from repro.mapping.costs import CostWeights, binding_cost
from repro.mapping.binding import bind_actors
from repro.mapping.routing import route_channels
from repro.mapping.buffer_alloc import allocate_buffers
from repro.mapping.scheduling import build_static_orders
from repro.mapping.bound_graph import BoundGraph, build_bound_graph
from repro.mapping.pipeline import (
    DEFAULT_STRATEGIES,
    BindingStrategy,
    BufferPolicy,
    MappingPipeline,
    RoutingStrategy,
    SchedulingStrategy,
    StrategyTuple,
    register_strategy,
    registered,
    resolve,
)
from repro.mapping.flow import EFFORT_LEVELS, MappingEffort, map_application

__all__ = [
    "DEFAULT_STRATEGIES",
    "EFFORT_LEVELS",
    "BindingStrategy",
    "BufferPolicy",
    "MappingEffort",
    "MappingPipeline",
    "RoutingStrategy",
    "SchedulingStrategy",
    "StrategyTuple",
    "register_strategy",
    "registered",
    "resolve",
    "Mapping",
    "ChannelMapping",
    "MappingResult",
    "CostWeights",
    "binding_cost",
    "bind_actors",
    "route_channels",
    "allocate_buffers",
    "build_static_orders",
    "BoundGraph",
    "build_bound_graph",
    "map_application",
]
