"""Deadlock-freedom analysis.

A consistent SDF graph is deadlock-free iff a single complete iteration can
execute from the initial token distribution [Lee & Messerschmitt 1987].  The
check below symbolically executes one iteration with plain token counting
(timing is irrelevant for liveness) and reports which actors starve when the
graph deadlocks, which makes mapping failures actionable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import repetition_vector


def _execute_one_iteration(
    graph: SDFGraph,
) -> Tuple[bool, Dict[str, int], Dict[str, int]]:
    """Try to fire each actor ``q[a]`` times; untimed, greedy.

    Returns (completed, remaining_firings, final_tokens).  Greedy order is
    safe: firing a ready actor can never disable another actor in SDF.
    """
    q = repetition_vector(graph)
    remaining = dict(q)
    tokens = {e.name: e.initial_tokens for e in graph.edges}

    progress = True
    while progress:
        progress = False
        for actor in graph:
            name = actor.name
            while remaining[name] > 0 and all(
                tokens[e.name] >= e.consumption for e in graph.in_edges(name)
            ):
                for e in graph.in_edges(name):
                    tokens[e.name] -= e.consumption
                for e in graph.out_edges(name):
                    tokens[e.name] += e.production
                remaining[name] -= 1
                progress = True
    completed = all(v == 0 for v in remaining.values())
    return completed, remaining, tokens


def is_deadlock_free(graph: SDFGraph) -> bool:
    """True when one full iteration can execute from the initial state."""
    completed, _remaining, _tokens = _execute_one_iteration(graph)
    return completed


def deadlock_report(graph: SDFGraph) -> Optional[str]:
    """Human-readable description of a deadlock, or None when live.

    Lists the starving actors and, per actor, the input edges lacking
    tokens -- the usual culprits are missing initial tokens on a cycle or an
    overly small buffer back-edge.
    """
    completed, remaining, tokens = _execute_one_iteration(graph)
    if completed:
        return None
    lines: List[str] = [f"graph {graph.name!r} deadlocks; starving actors:"]
    for name, left in sorted(remaining.items()):
        if left == 0:
            continue
        blocking = [
            f"{e.name} (has {tokens[e.name]}, needs {e.consumption})"
            for e in graph.in_edges(name)
            if tokens[e.name] < e.consumption
        ]
        lines.append(
            f"  {name}: {left} firing(s) left, blocked on "
            + (", ".join(blocking) if blocking else "<nothing?>")
        )
    return "\n".join(lines)
