"""Differential tests: incremental engine vs. the retained reference.

The incremental dirty-set simulator (:mod:`repro.sdf.simulation`) must be
*observably identical* to the retained full-rescan reference engine
(:mod:`repro.sdf.simulation_reference`): same firing traces (including
order among simultaneous events), same token peaks, same completion
counts, same quiescence verdicts, and exactly the same ``Fraction``
throughput / period / transient from the state-space analysis.  These
tests drive both engines over randomized (seeded, reproducible) SDF
graphs, bindings and static orders and compare everything.
"""

import random
from math import gcd

import pytest

from repro.exceptions import DeadlockError, ReproError
from repro.sdf.buffers import (
    BufferDistribution,
    add_buffer_edges,
    bufferable_edges,
    minimal_capacity_bound,
)
from repro.sdf.deadlock import is_deadlock_free
from repro.sdf.graph import SDFGraph
from repro.sdf.repetition import repetition_vector
from repro.sdf.simulation import SelfTimedSimulator
from repro.sdf.simulation_reference import (
    ReferenceSelfTimedSimulator,
    reference_analyze_throughput,
)
from repro.sdf.throughput import analyze_throughput


def random_bounded_graph(rng: random.Random) -> SDFGraph:
    """A random consistent, bounded, usually-live SDF graph.

    Consistency by construction: a repetition vector is drawn first and
    every edge's rates are derived from it (p * q[src] == c * q[dst]).
    Explicit edges then get credit back-edges at the structural liveness
    bound plus random slack; if the result still deadlocks, capacities
    are grown a few times (mirroring sizing phase 1).
    """
    n = rng.randint(2, 6)
    g = SDFGraph(f"rand{rng.randrange(1 << 16)}")
    q = [rng.randint(1, 4) for _ in range(n)]
    for i in range(n):
        g.add_actor(f"a{i}", execution_time=rng.choice((0, 1, 2, 3, 5, 8)))

    def rates(src: int, dst: int):
        m = rng.randint(1, 3)
        g_ = gcd(q[src], q[dst])
        return m * q[dst] // g_, m * q[src] // g_

    edge_id = 0

    def connect(src: int, dst: int, tokens: int) -> None:
        nonlocal edge_id
        p, c = rates(src, dst)
        g.add_edge(
            f"e{edge_id}", f"a{src}", f"a{dst}",
            production=p, consumption=c,
            initial_tokens=tokens,
            token_size=rng.choice((0, 4, 12)),
        )
        edge_id += 1

    for i in range(n - 1):  # the chain
        connect(i, i + 1, rng.randint(0, 2))
    for _ in range(rng.randint(0, 2)):  # extra forward edges
        src = rng.randrange(n - 1)
        dst = rng.randrange(src + 1, n)
        connect(src, dst, rng.randint(0, 2))
    for i in range(n):  # occasional state self-edges
        if rng.random() < 0.3:
            g.add_edge(
                f"self{i}", f"a{i}", f"a{i}",
                production=1, consumption=1,
                initial_tokens=rng.randint(1, 2),
            )

    capacities = {
        e.name: minimal_capacity_bound(e) + rng.randint(0, 3)
        for e in bufferable_edges(g)
    }
    bounded = add_buffer_edges(g, BufferDistribution(capacities))
    for _ in range(4):
        if is_deadlock_free(bounded):
            break
        for name in capacities:
            capacities[name] += max(
                g.edge(name).production, g.edge(name).consumption
            )
        bounded = add_buffer_edges(g, BufferDistribution(capacities))
    return bounded


def random_binding(rng: random.Random, graph: SDFGraph):
    """Randomly bind a subset of actors to one of up to three processors."""
    processor_of = {}
    for actor in graph:
        if rng.random() < 0.7:
            processor_of[actor.name] = f"p{rng.randrange(3)}"
    return processor_of


def derive_static_orders(graph, processor_of, rng: random.Random):
    """One-greedy-iteration static orders (the scheduling recipe, inline)."""
    q = repetition_vector(graph)
    sim = ReferenceSelfTimedSimulator(
        graph, processor_of=processor_of, record_trace=True
    )
    targets = {a: q[a] for a in processor_of}
    sim.run(
        stop_when=lambda s: all(
            s.started[a] >= n for a, n in targets.items()
        ),
        max_firings=sum(q.values()) * 4 + 200,
    )
    counted = {a: 0 for a in targets}
    orders = {}
    for firing in sorted(sim.trace.firings, key=lambda f: (f.start, f.end)):
        actor = firing.actor
        if actor not in targets or counted[actor] >= targets[actor]:
            continue
        counted[actor] += 1
        orders.setdefault(processor_of[actor], []).append(actor)
    for actor, needed in targets.items():
        while counted[actor] < needed:
            counted[actor] += 1
            orders.setdefault(processor_of[actor], []).append(actor)
    return {proc: order for proc, order in orders.items() if order}


def assert_same_execution(fast, slow, *, compare_tokens=True):
    """Both engines advanced identically (traces, counters, statistics)."""
    assert fast.now == slow.now
    assert fast.completed == slow.completed
    assert fast.started == slow.started
    assert fast.trace.firings == slow.trace.firings
    assert fast.trace.max_tokens == slow.trace.max_tokens
    assert fast.trace.completed_count == slow.trace.completed_count
    assert fast.ongoing_firings() == slow.ongoing_firings()
    assert fast.is_quiescent() == slow.is_quiescent()
    if compare_tokens:
        assert fast.tokens == slow.tokens


@pytest.mark.parametrize("seed", range(25))
def test_unconstrained_execution_matches_reference(seed):
    rng = random.Random(1000 + seed)
    graph = random_bounded_graph(rng)
    concurrency = rng.choice((1, 2, None))
    fast = SelfTimedSimulator(
        graph, auto_concurrency=concurrency, record_trace=True
    )
    slow = ReferenceSelfTimedSimulator(
        graph, auto_concurrency=concurrency, record_trace=True
    )
    fast.run(max_firings=80)
    slow.run(max_firings=80)
    assert_same_execution(fast, slow)


@pytest.mark.parametrize("seed", range(25))
def test_bound_execution_matches_reference(seed):
    rng = random.Random(2000 + seed)
    graph = random_bounded_graph(rng)
    processor_of = random_binding(rng, graph)
    fast = SelfTimedSimulator(
        graph, processor_of=processor_of, record_trace=True
    )
    slow = ReferenceSelfTimedSimulator(
        graph, processor_of=processor_of, record_trace=True
    )
    fast.run(max_firings=80)
    slow.run(max_firings=80)
    assert_same_execution(fast, slow)


@pytest.mark.parametrize("seed", range(25))
def test_static_order_execution_matches_reference(seed):
    rng = random.Random(3000 + seed)
    graph = random_bounded_graph(rng)
    processor_of = random_binding(rng, graph)
    orders = derive_static_orders(graph, processor_of, rng)
    kwargs = dict(processor_of=processor_of, static_order=orders,
                  record_trace=True)
    fast = SelfTimedSimulator(graph, **kwargs)
    slow = ReferenceSelfTimedSimulator(graph, **kwargs)
    fast.run(max_firings=80)
    slow.run(max_firings=80)
    assert_same_execution(fast, slow)


def _both_analyses(graph, **kwargs):
    """Run both analyzers; return (result, result) or (error, error).

    The vectorized tier is pinned for the field-exact comparison: it
    promises bit-identical state-space results (period, transient, ...);
    the analytic tier promises only the same exact throughput value and
    is compared separately.
    """
    outcomes = []
    for analyze in (
        lambda g, **kw: analyze_throughput(g, engine="vectorized", **kw),
        reference_analyze_throughput,
    ):
        try:
            outcomes.append(analyze(graph, **kwargs))
        except ReproError as error:
            outcomes.append(type(error))
    return outcomes


@pytest.mark.parametrize("seed", range(25))
def test_throughput_analysis_matches_reference(seed):
    rng = random.Random(4000 + seed)
    graph = random_bounded_graph(rng)
    fast, slow = _both_analyses(graph, max_iterations=2_000)
    assert fast == slow  # identical ThroughputResult or same error class
    # The tier the auto policy picks must agree on the throughput value.
    try:
        auto = analyze_throughput(graph, max_iterations=2_000)
    except ReproError as error:
        assert isinstance(slow, type) and type(error) is slow
    else:
        assert auto.throughput == slow.throughput


@pytest.mark.parametrize("seed", range(25))
def test_mapped_throughput_analysis_matches_reference(seed):
    rng = random.Random(5000 + seed)
    graph = random_bounded_graph(rng)
    processor_of = random_binding(rng, graph)
    orders = derive_static_orders(graph, processor_of, rng)
    fast, slow = _both_analyses(
        graph,
        processor_of=processor_of,
        static_order=orders,
        max_iterations=2_000,
    )
    assert fast == slow


@pytest.mark.parametrize("seed", range(10))
def test_data_dependent_times_match_reference(seed):
    rng = random.Random(6000 + seed)
    graph = random_bounded_graph(rng)
    series = {
        a.name: [rng.randint(0, 7) for _ in range(5)] for a in graph
    }

    def exec_time(actor, index):
        values = series[actor]
        return values[index % len(values)]

    fast = SelfTimedSimulator(
        graph, execution_time_of=exec_time, record_trace=True
    )
    slow = ReferenceSelfTimedSimulator(
        graph, execution_time_of=exec_time, record_trace=True
    )
    fast.run(max_firings=60)
    slow.run(max_firings=60)
    assert_same_execution(fast, slow)


def test_blocked_static_order_detected_identically():
    g = SDFGraph("blocked")
    g.add_actor("A", execution_time=1)
    g.add_actor("B", execution_time=1)
    g.add_edge("ab", "A", "B")
    g.add_edge("ba", "B", "A", initial_tokens=1)
    kwargs = dict(
        processor_of={"A": "t", "B": "t"},
        static_order={"t": ["B", "A"]},  # B first, but B needs A's token
    )
    with pytest.raises(DeadlockError):
        analyze_throughput(g, **kwargs)
    with pytest.raises(DeadlockError):
        reference_analyze_throughput(g, **kwargs)
