"""Ablation: the buffer-size / throughput trade-off.

The flow sizes channel buffers by iterating "grow buffers until the
throughput constraint holds" (Section 5.1's buffer distributions; Stuijk's
thesis explores the full Pareto space).  This bench regenerates the
underlying trade-off curve on a two-stage pipeline and on the MJPEG bound
graph: throughput as a function of total buffer tokens, which saturates at
the processing bound once enough slack for full pipelining exists.
"""

from fractions import Fraction

import pytest

from benchmarks.conftest import write_results
from repro.sdf import (
    BufferDistribution,
    SDFGraph,
    add_buffer_edges,
    analyze_throughput,
    minimal_buffer_distribution,
)


def pipeline(p_time=50, q_time=70):
    g = SDFGraph("tradeoff")
    g.add_actor("P", execution_time=p_time)
    g.add_actor("Q", execution_time=q_time)
    g.add_edge("pq", "P", "Q", token_size=4)
    return g


def curve():
    rows = []
    g = pipeline()
    for capacity in (1, 2, 3, 4, 6, 8):
        bounded = add_buffer_edges(
            g, BufferDistribution({"pq": capacity})
        )
        throughput = analyze_throughput(bounded).throughput
        rows.append((capacity, float(throughput * 1e6)))
    return rows


def test_buffer_throughput_tradeoff(benchmark):
    rows = benchmark(curve)

    lines = ["two-stage pipeline (P=50, Q=70 cycles):",
             f"{'capacity':>8} {'iter/Mcycle':>12}"]
    for capacity, throughput in rows:
        lines.append(f"{capacity:>8} {throughput:>12.2f}")

    # The constrained sizing finds the knee automatically.
    target = Fraction(1, 70)
    distribution, result = minimal_buffer_distribution(
        pipeline(), throughput_constraint=target
    )
    lines.append("")
    lines.append(
        f"minimal distribution meeting 1/70: capacity "
        f"{distribution['pq']} tokens -> "
        f"{float(result.throughput * 1e6):.2f} iter/Mcycle"
    )
    table = "\n".join(lines)
    path = write_results("ablation_buffer_tradeoff.txt", table)
    print("\n" + table + f"\n-> {path}")

    values = [t for _c, t in rows]
    # Monotone non-decreasing, strictly better from 1 -> 2, saturating at
    # the bottleneck rate 1/70.
    assert all(b >= a for a, b in zip(values, values[1:]))
    assert values[1] > values[0]
    assert values[-1] == pytest.approx(1e6 / 70)
    assert values[-1] == values[-2]  # saturated
    # The automatic sizing stops at the knee (no gold-plating).
    assert distribution["pq"] <= 3
