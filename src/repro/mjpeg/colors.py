"""Color-space conversion shared by encoder, reference decoder and the CC
actor (identical arithmetic so their outputs match bit-exactly)."""

from __future__ import annotations

import numpy as np


def rgb_to_ycbcr(rgb: np.ndarray) -> np.ndarray:
    """BT.601 full-range RGB -> YCbCr, uint8 in, uint8 out (HxWx3)."""
    rgb = rgb.astype(np.float64)
    r, g, b = rgb[..., 0], rgb[..., 1], rgb[..., 2]
    y = 0.299 * r + 0.587 * g + 0.114 * b
    cb = -0.168736 * r - 0.331264 * g + 0.5 * b + 128.0
    cr = 0.5 * r - 0.418688 * g - 0.081312 * b + 128.0
    out = np.stack([y, cb, cr], axis=-1)
    return np.clip(np.round(out), 0, 255).astype(np.uint8)


def ycbcr_to_rgb(ycbcr: np.ndarray) -> np.ndarray:
    """BT.601 full-range YCbCr -> RGB, uint8 in, uint8 out (HxWx3)."""
    ycbcr = ycbcr.astype(np.float64)
    y = ycbcr[..., 0]
    cb = ycbcr[..., 1] - 128.0
    cr = ycbcr[..., 2] - 128.0
    r = y + 1.402 * cr
    g = y - 0.344136 * cb - 0.714136 * cr
    b = y + 1.772 * cb
    out = np.stack([r, g, b], axis=-1)
    return np.clip(np.round(out), 0, 255).astype(np.uint8)


def upsample_nearest(plane: np.ndarray, factor_y: int,
                     factor_x: int) -> np.ndarray:
    """Nearest-neighbour chroma upsampling (what the CC actor does)."""
    return np.repeat(np.repeat(plane, factor_y, axis=0), factor_x, axis=1)
