"""The residual platform: what is left of an architecture at run time.

A :class:`ResidualPlatform` tracks, for one managed
:class:`~repro.arch.platform.ArchitectureModel`, which tiles are free
and how much interconnect capacity remains -- per-directed-link SDM
wires on the NoC, per-tile master/slave port counts on FSL.  Admitted
applications own their tiles exclusively (the paper's predictability
argument: no sharing, no interference), so the platform never has to
reason about co-scheduled actors of different applications.

Two services sit on top of the bookkeeping:

* :func:`find_placement` relocates a library operating point (computed
  on canonical prefix tiles) onto the free tiles.  A placement is valid
  only when every channel keeps its recorded hop count -- equal hops
  reproduce the exact :class:`~repro.comm.params.ChannelParameters` the
  stored throughput guarantee was computed with, so the guarantee
  transfers without re-analysis (FSL parameters are distance-free, so
  any injective placement preserves them).
* :meth:`ResidualPlatform.residual_architecture` materializes the free
  portion as a real :class:`ArchitectureModel` for the spiral fallback
  mapper.  Its fabric is a wrapper whose ``release_all`` restores the
  *residual* baseline instead of an empty one, because
  :func:`repro.mapping.routing.route_channels` resets the interconnect
  before routing -- without the wrapper, a fallback mapping could claim
  wires that running applications already own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.arch.interconnect import Connection, FSLInterconnect
from repro.arch.noc import SDMNoC, xy_route
from repro.arch.platform import ArchitectureModel
from repro.runtime.points import OperatingPoint

Coordinate = Tuple[int, int]
Link = Tuple[Coordinate, Coordinate]


def mesh_links(columns: int, rows: int) -> List[Link]:
    """All directed links of a ``columns x rows`` mesh."""
    links: List[Link] = []
    for x in range(columns):
        for y in range(rows):
            for nx, ny in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)):
                if 0 <= nx < columns and 0 <= ny < rows:
                    links.append(((x, y), (nx, ny)))
    return links


def link_label(link: Link) -> str:
    """Canonical string form of a directed link (for snapshots)."""
    (x1, y1), (x2, y2) = link
    return f"{x1},{y1}->{x2},{y2}"


@dataclass
class ResourceClaim:
    """Everything one placed operating point occupies.

    Computed once at admission (:meth:`ResidualPlatform.claim_for`) and
    kept with the running application so departure releases exactly what
    admission claimed.
    """

    #: Real tiles, in the operating point's canonical tile order.
    tiles: Tuple[str, ...]
    #: Real tile -> (instruction bytes, data bytes) required.
    tile_memory: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: NoC: directed link -> wires claimed (summed over channels).
    link_wires: Dict[Link, int] = field(default_factory=dict)
    #: FSL: real tile -> master (out) ports claimed.
    out_ports: Dict[str, int] = field(default_factory=dict)
    #: FSL: real tile -> slave (in) ports claimed.
    in_ports: Dict[str, int] = field(default_factory=dict)


class ResidualNoC(SDMNoC):
    """An SDM NoC whose 'empty' state is the managed platform's residual.

    Keeps the *full* managed placement (so hop distances and XY routes
    are those of the real mesh; ``ArchitectureModel.validate`` only
    requires that the sub-architecture's tiles are placed, extra
    placements are fine) but starts every link at the wires still free
    after the running applications' claims.  ``release_all`` -- which
    the routing stage calls before every attempt -- restores that
    baseline, never the pristine mesh.
    """

    def __init__(self, base: SDMNoC, baseline: Dict[Link, int]) -> None:
        self._baseline: Dict[Link, int] = {}
        super().__init__(
            list(base.tile_names),
            wires_per_link=base.wires_per_link,
            default_connection_wires=base.default_connection_wires,
            router_latency=base.router_latency,
            buffer_words_per_hop=base.buffer_words_per_hop,
            flow_control=base.flow_control,
        )
        self._baseline = dict(baseline)
        self.release_all()

    def release_all(self) -> None:
        if self._baseline:
            self._free_wires = dict(self._baseline)
            self._allocations = []
        else:
            super().release_all()


class ResidualFSL(FSLInterconnect):
    """An FSL fabric pre-loaded with the running applications' ports.

    FSL capacity is per-tile port counts; occupancy is modelled as
    synthetic baseline connections against a reserved pseudo-tile
    (allocation only counts matching endpoints, it never resolves tile
    names), so the per-tile limits bind exactly as on the managed
    platform.  ``release_all`` restores the baseline.
    """

    def __init__(
        self,
        base: FSLInterconnect,
        out_used: Dict[str, int],
        in_used: Dict[str, int],
    ) -> None:
        self._baseline: List[Connection] = []
        super().__init__(
            fifo_depth_words=base.fifo_depth_words,
            latency_cycles=base.latency_cycles,
            max_links_per_tile=base.max_links_per_tile,
        )
        baseline: List[Connection] = []
        for tile, count in sorted(out_used.items()):
            for i in range(count):
                baseline.append(
                    Connection(f"occupied-out-{tile}-{i}", tile, "@occupied")
                )
        for tile, count in sorted(in_used.items()):
            for i in range(count):
                baseline.append(
                    Connection(f"occupied-in-{tile}-{i}", "@occupied", tile)
                )
        self._baseline = baseline
        self.release_all()

    def release_all(self) -> None:
        self._connections = list(self._baseline)


class ResidualPlatform:
    """Residual-capacity bookkeeping for one managed architecture."""

    def __init__(self, arch: ArchitectureModel) -> None:
        arch.validate()
        self.arch = arch
        self._free: List[str] = list(arch.tile_names())
        fabric = arch.interconnect
        if isinstance(fabric, SDMNoC):
            self.kind = "noc"
            self._noc = fabric
            self._free_wires: Dict[Link, int] = {
                link: fabric.wires_per_link
                for link in mesh_links(fabric.columns, fabric.rows)
            }
        elif isinstance(fabric, FSLInterconnect):
            self.kind = "fsl"
            self._fsl = fabric
            self._out_used: Dict[str, int] = {}
            self._in_used: Dict[str, int] = {}
        else:
            self.kind = "none"

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def free_tiles(self) -> Tuple[str, ...]:
        """Unoccupied tiles, in managed platform order."""
        return tuple(self._free)

    def total_tiles(self) -> int:
        return len(self.arch.tiles)

    def memory_fits(self, tile_name: str, need: Tuple[int, int]) -> bool:
        tile = self.arch.tile(tile_name)
        return (
            need[0] <= tile.instruction_memory.capacity_bytes
            and need[1] <= tile.data_memory.capacity_bytes
        )

    # ------------------------------------------------------------------
    # claims
    # ------------------------------------------------------------------
    def claim_for(
        self, point: OperatingPoint, placement: Dict[str, str]
    ) -> ResourceClaim:
        """The resources ``point`` occupies under ``placement``
        (canonical tile -> real tile)."""
        claim = ResourceClaim(
            tiles=tuple(placement[t] for t in point.tiles),
            tile_memory={
                placement[t]: need for t, need in point.tile_memory.items()
            },
        )
        for channel in point.channels:
            src, dst = placement[channel.src], placement[channel.dst]
            if self.kind == "noc" and channel.wires:
                path = xy_route(
                    self._noc.position_of(src), self._noc.position_of(dst)
                )
                for link in zip(path, path[1:]):
                    claim.link_wires[link] = (
                        claim.link_wires.get(link, 0) + channel.wires
                    )
            elif self.kind == "fsl":
                claim.out_ports[src] = claim.out_ports.get(src, 0) + 1
                claim.in_ports[dst] = claim.in_ports.get(dst, 0) + 1
        return claim

    def admissible(self, claim: ResourceClaim) -> Optional[str]:
        """``None`` when the claim fits; otherwise the first reason."""
        for tile in claim.tiles:
            if tile not in self._free:
                return f"tile {tile!r} is occupied"
        if len(set(claim.tiles)) != len(claim.tiles):
            return "placement maps two canonical tiles onto one tile"
        for tile, need in claim.tile_memory.items():
            if not self.memory_fits(tile, need):
                return (
                    f"tile {tile!r} lacks memory for "
                    f"{need[0]}B instruction + {need[1]}B data"
                )
        if self.kind == "noc":
            for link, wires in claim.link_wires.items():
                if self._free_wires[link] < wires:
                    return (
                        f"link {link_label(link)} has "
                        f"{self._free_wires[link]} free wires, needs {wires}"
                    )
        elif self.kind == "fsl":
            limit = self._fsl.max_links_per_tile
            for tile, n in claim.out_ports.items():
                if self._out_used.get(tile, 0) + n > limit:
                    return f"tile {tile!r} has no free master FSL port"
            for tile, n in claim.in_ports.items():
                if self._in_used.get(tile, 0) + n > limit:
                    return f"tile {tile!r} has no free slave FSL port"
        return None

    def claim(self, claim: ResourceClaim) -> None:
        reason = self.admissible(claim)
        if reason is not None:
            raise ValueError(f"inadmissible claim: {reason}")
        for tile in claim.tiles:
            self._free.remove(tile)
        if self.kind == "noc":
            for link, wires in claim.link_wires.items():
                self._free_wires[link] -= wires
        elif self.kind == "fsl":
            for tile, n in claim.out_ports.items():
                self._out_used[tile] = self._out_used.get(tile, 0) + n
            for tile, n in claim.in_ports.items():
                self._in_used[tile] = self._in_used.get(tile, 0) + n

    def release(self, claim: ResourceClaim) -> None:
        order = {name: i for i, name in enumerate(self.arch.tile_names())}
        for tile in claim.tiles:
            if tile in self._free:
                raise ValueError(f"tile {tile!r} was not claimed")
            self._free.append(tile)
        self._free.sort(key=order.__getitem__)
        if self.kind == "noc":
            for link, wires in claim.link_wires.items():
                self._free_wires[link] += wires
        elif self.kind == "fsl":
            for tile, n in claim.out_ports.items():
                self._out_used[tile] -= n
            for tile, n in claim.in_ports.items():
                self._in_used[tile] -= n

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Canonical JSON-able view of the residual state."""
        out: Dict[str, object] = {
            "free_tiles": list(self._free),
            "interconnect": self.kind,
        }
        if self.kind == "noc":
            out["free_wires"] = {
                link_label(link): wires
                for link, wires in sorted(self._free_wires.items())
            }
        elif self.kind == "fsl":
            out["out_ports_used"] = {
                t: n for t, n in sorted(self._out_used.items()) if n
            }
            out["in_ports_used"] = {
                t: n for t, n in sorted(self._in_used.items()) if n
            }
        return out

    def residual_architecture(self) -> Optional[ArchitectureModel]:
        """The free portion as a mappable :class:`ArchitectureModel`.

        ``None`` when no tile is free.  The fabric is a residual wrapper
        (see module docstring); the returned model shares no allocation
        state with the managed platform, so fallback mapping attempts
        never disturb running applications.
        """
        if not self._free:
            return None
        tiles = [self.arch.tile(name) for name in self._free]
        fabric = None
        if self.kind == "noc":
            fabric = ResidualNoC(self._noc, self._free_wires)
        elif self.kind == "fsl":
            fabric = ResidualFSL(self._fsl, self._out_used, self._in_used)
        model = ArchitectureModel(
            name=f"{self.arch.name}-residual",
            tiles=tiles,
            interconnect=fabric,
        )
        model.validate()
        return model


# ----------------------------------------------------------------------
# placing a canonical operating point onto the residual platform
# ----------------------------------------------------------------------
def find_placement(
    point: OperatingPoint,
    residual: ResidualPlatform,
    pinned: Optional[Iterable[str]] = None,
) -> Optional[Tuple[Dict[str, str], ResourceClaim]]:
    """Deterministic search for a valid relocation of ``point``.

    Tries injective assignments of the point's canonical tiles onto the
    free tiles (both in platform order, so results are reproducible),
    requiring per-tile memory fit, identity placement for ``pinned``
    canonical tiles (actor pins name managed tiles directly), and -- on
    the NoC -- *exact* hop equality per channel plus wire availability
    along the real XY routes.  Returns ``(placement, claim)`` for the
    first assignment whose claim is admissible, else ``None``.
    """
    canonical = list(point.tiles)
    free = list(residual.free_tiles())
    if len(canonical) > len(free):
        return None
    pinned_set: Set[str] = set(pinned or ())

    def candidates(c_tile: str) -> List[str]:
        if c_tile in pinned_set:
            return [c_tile] if c_tile in free else []
        need = point.tile_memory.get(c_tile, (0, 0))
        return [
            tile for tile in free if residual.memory_fits(tile, need)
        ]

    def hops_ok(placement: Dict[str, str]) -> bool:
        if residual.kind != "noc":
            return True
        noc = residual._noc
        for channel in point.channels:
            if channel.src in placement and channel.dst in placement:
                if (
                    noc.hop_distance(
                        placement[channel.src], placement[channel.dst]
                    )
                    != channel.hops
                ):
                    return False
        return True

    def search(
        index: int, placement: Dict[str, str], used: Set[str]
    ) -> Optional[Tuple[Dict[str, str], ResourceClaim]]:
        if index == len(canonical):
            claim = residual.claim_for(point, placement)
            if residual.admissible(claim) is None:
                return dict(placement), claim
            return None
        c_tile = canonical[index]
        for real in candidates(c_tile):
            if real in used:
                continue
            placement[c_tile] = real
            used.add(real)
            if hops_ok(placement):
                found = search(index + 1, placement, used)
                if found is not None:
                    return found
            del placement[c_tile]
            used.discard(real)
        return None

    return search(0, {}, set())
