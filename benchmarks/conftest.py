"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper's evaluation
(see DESIGN.md's experiment index).  Heavy artifacts -- encoded sequences,
application models, mapping results -- are cached per session; each bench
writes its regenerated rows to ``benchmarks/results/*.txt`` so the numbers
survive the run.
"""

from pathlib import Path
from typing import Dict

import pytest

from repro.appmodel import measure_execution_times
from repro.arch import architecture_from_template
from repro.flow import DesignFlow, compare_throughput
from repro.flow.report import expected_throughput
from repro.mjpeg import (
    build_mjpeg_application,
    encode_sequence,
    synthetic_sequence,
    test_set_sequences,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Iterations measured per workload (after warm-up); enough for the
#: long-term average to settle while keeping the harness fast.
MEASURE_ITERATIONS = 24
WARMUP_ITERATIONS = 4


def write_results(name: str, content: str) -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(content + "\n", encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def workloads() -> Dict[str, object]:
    """The case-study inputs: 5 test sequences + the synthetic sequence.

    All streams use 10-block MCUs (h=4, v=2 luminance plus Cb and Cr) --
    the paper's maximum ("MCUs consist of up to 10 blocks") -- so the fixed
    VLD output rate involves no padding.  Structured content is encoded at
    quality 75; the synthetic random sequence at quality 90 (high-entropy
    data with fine quantization is what pushes the decoder toward its
    worst case)."""
    encoded = {}
    for name, frames in test_set_sequences(n_frames=2).items():
        encoded[name] = encode_sequence(frames, quality=75, h=4, v=2)
    encoded["synthetic"] = encode_sequence(
        synthetic_sequence(n_frames=2), quality=98, h=4, v=2
    )
    return encoded


@pytest.fixture(scope="session")
def figure6_runner(workloads):
    """Callable regenerating one Fig. 6 sub-figure (one interconnect)."""

    def run(interconnect: str):
        comparisons = []
        for name in ("synthetic", "gradient", "photo", "checkerboard",
                     "text", "blobs"):
            encoded = workloads[name]
            app = build_mjpeg_application(encoded)
            measured_times = measure_execution_times(
                app, iterations=encoded.total_mcus
            )
            arch = architecture_from_template(5, interconnect)
            flow = DesignFlow(app, arch, fixed={"VLD": "tile0"})
            result = flow.run(
                iterations=MEASURE_ITERATIONS,
                warmup_iterations=WARMUP_ITERATIONS,
            )
            expected = expected_throughput(
                app, arch, result.mapping_result, measured_times
            )
            comparisons.append(
                compare_throughput(
                    name,
                    worst_case=result.guaranteed_throughput,
                    expected=expected,
                    measured=result.measured_throughput,
                )
            )
        return comparisons

    return run
