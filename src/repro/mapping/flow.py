"""The end-to-end mapping flow (the SDF3 box of Fig. 1).

``map_application`` chains binding, routing, buffer allocation, static-order
scheduling and throughput analysis, growing buffer capacities until the
application's throughput constraint is met (or the retry budget runs out).
The result carries the mapping -- the interchange object MAMPS consumes --
plus the throughput *guarantee* computed on the bound graph.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Optional

from repro.appmodel.model import ApplicationModel
from repro.arch.platform import ArchitectureModel
from repro.comm.serialization import SerializationModel
from repro.exceptions import DeadlockError, ThroughputConstraintError
from repro.mapping.binding import bind_actors
from repro.mapping.bound_graph import build_bound_graph
from repro.mapping.buffer_alloc import allocate_buffers, grow_buffers
from repro.mapping.costs import CostWeights
from repro.mapping.routing import route_channels
from repro.mapping.scheduling import build_static_orders
from repro.mapping.spec import Mapping, MappingResult
from repro.sdf.throughput import analyze_throughput


def map_application(
    app: ApplicationModel,
    arch: ArchitectureModel,
    constraint: Optional[Fraction] = None,
    weights: Optional[CostWeights] = None,
    fixed: Optional[Dict[str, str]] = None,
    serialization_overrides: Optional[Dict[str, SerializationModel]] = None,
    max_buffer_rounds: int = 12,
    strict: bool = False,
    max_iterations: int = 10_000,
) -> MappingResult:
    """Map ``app`` onto ``arch`` and compute the throughput guarantee.

    Parameters
    ----------
    constraint:
        Required iterations per cycle; defaults to the application's own
        ``throughput_constraint``.
    fixed:
        Pin actors to tiles (e.g. the file-reading actor to the master).
    serialization_overrides:
        Per-tile serialization model substitutions (Section 6.3).
    strict:
        Raise :class:`ThroughputConstraintError` when the constraint cannot
        be met; otherwise return the best mapping with
        ``constraint_met == False``.

    Returns a :class:`MappingResult`.
    """
    if constraint is None:
        constraint = app.throughput_constraint

    binding, implementations = bind_actors(
        app, arch, weights=weights, fixed=fixed
    )
    channels = route_channels(app, arch, binding)
    allocate_buffers(app, channels)

    best = None
    rounds_used = 0
    for round_index in range(max_buffer_rounds + 1):
        bound = build_bound_graph(
            app, arch, binding, implementations, channels,
            serialization_overrides=serialization_overrides,
        )
        try:
            orders = build_static_orders(bound)
            result = analyze_throughput(
                bound.graph,
                processor_of=bound.processor_of,
                static_order=orders,
                reference_actor=bound.app_actors[0],
                max_iterations=max_iterations,
            )
        except DeadlockError:
            grow_buffers(channels)
            rounds_used = round_index + 1
            continue

        if best is None or result.throughput > best[0].throughput:
            best = (result, orders,
                    {name: _copy_channel(c) for name, c in channels.items()})
        if constraint is None or result.throughput >= constraint:
            break
        grow_buffers(channels)
        rounds_used = round_index + 1

    if best is None:
        raise ThroughputConstraintError(
            f"no deadlock-free buffer configuration found for {app.name!r} "
            f"on {arch.name!r} within {max_buffer_rounds} rounds"
        )

    result, orders, best_channels = best
    mapping = Mapping(
        application=app.name,
        architecture=arch.name,
        actor_binding=dict(binding),
        implementations=dict(implementations),
        channels=best_channels,
        static_orders=orders,
    )
    outcome = MappingResult(
        mapping=mapping,
        throughput=result,
        constraint=constraint,
        buffer_growth_rounds=rounds_used,
    )
    if strict and not outcome.constraint_met:
        raise ThroughputConstraintError(
            f"constraint {constraint} unreachable for {app.name!r} on "
            f"{arch.name!r}: best guarantee is {result.throughput} after "
            f"{rounds_used} buffer-growth round(s)"
        )
    return outcome


def _copy_channel(channel):
    from repro.mapping.spec import ChannelMapping

    return ChannelMapping(
        edge=channel.edge,
        src_tile=channel.src_tile,
        dst_tile=channel.dst_tile,
        capacity=channel.capacity,
        alpha_src=channel.alpha_src,
        alpha_dst=channel.alpha_dst,
        parameters=channel.parameters,
    )
