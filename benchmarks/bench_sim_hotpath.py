"""Simulation-core hot path: incremental vs. reference state-space analysis.

Every throughput guarantee of the flow funnels through the self-timed
simulator, and every DSE point / buffer-sizing round re-runs the
state-space analysis.  This bench times that analysis on the Fig. 6
workloads -- the MJPEG decoder mapped onto the 5-tile FSL (fig6a) and
NoC (fig6b) template platforms -- with both engines:

* ``before``: the retained full-rescan reference engine
  (:mod:`repro.sdf.simulation_reference`);
* ``after``: the incremental dirty-set engine behind
  :func:`repro.sdf.throughput.analyze_throughput`.

It asserts exact ``Fraction`` equality of the two analyses (throughput,
period, transient) and the headline speedup target of the incremental
rebuild (>= 3x), and emits ``benchmarks/results/BENCH_simcore.json`` --
before/after seconds-per-analysis per workload -- so later PRs have a
perf trajectory to regress against.
"""

import json
import os
import time

from benchmarks.conftest import RESULTS_DIR, write_results
from repro.arch import architecture_from_template
from repro.mapping import map_application
from repro.mapping.bound_graph import build_bound_graph
from repro.mjpeg import build_mjpeg_application
from repro.sdf.simulation_reference import reference_analyze_throughput
from repro.sdf.throughput import analyze_throughput

#: (figure, interconnect) of the two Fig. 6 platforms.
PLATFORMS = (("fig6a", "fsl"), ("fig6b", "noc"))
TIMING_ROUNDS = 3
#: The headline target (locally ~7-9x).  Exact result equality is always
#: a hard failure; the wall-clock ratio gate can be relaxed on noisy
#: shared runners via BENCH_SIMCORE_MIN_SPEEDUP (CI sets 1.5).
SPEEDUP_TARGET = float(os.environ.get("BENCH_SIMCORE_MIN_SPEEDUP", "3.0"))


def _mapped_analysis_inputs(app, interconnect):
    """Map the decoder and return the bound graph + schedule to analyze."""
    arch = architecture_from_template(5, interconnect)
    result = map_application(app, arch, fixed={"VLD": "tile0"})
    mapping = result.mapping
    bound = build_bound_graph(
        app,
        arch,
        mapping.actor_binding,
        mapping.implementations,
        mapping.channels,
    )
    return dict(
        graph=bound.graph,
        processor_of=bound.processor_of,
        static_order=mapping.static_orders,
        reference_actor=bound.app_actors[0],
    )


def _best_of(fn, rounds=TIMING_ROUNDS):
    """(best seconds, last result) over a few repetitions."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_sim_hotpath_speedup(benchmark, workloads):
    app = build_mjpeg_application(workloads["gradient"])

    records = {}

    def run_all():
        for figure, interconnect in PLATFORMS:
            inputs = _mapped_analysis_inputs(app, interconnect)
            after_s, after = _best_of(lambda: analyze_throughput(**inputs))
            before_s, before = _best_of(
                lambda: reference_analyze_throughput(**inputs)
            )
            assert after == before, (
                f"{figure}: incremental analysis diverged from the "
                f"reference ({after} vs {before})"
            )
            records[figure] = {
                "interconnect": interconnect,
                "actors": len(inputs["graph"]),
                "edges": len(inputs["graph"].edges),
                "throughput": str(after.throughput),
                "period_cycles": after.period,
                "before_s": before_s,
                "after_s": after_s,
                "speedup": before_s / after_s if after_s else float("inf"),
            }
        return records

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    header = (
        f"{'workload':<8} {'ic':<4} {'actors':>6} {'edges':>6} "
        f"{'before [ms]':>12} {'after [ms]':>11} {'speedup':>8}"
    )
    rows = [header, "-" * len(header)]
    for figure, rec in records.items():
        rows.append(
            f"{figure:<8} {rec['interconnect']:<4} {rec['actors']:>6} "
            f"{rec['edges']:>6} {rec['before_s'] * 1e3:>12.2f} "
            f"{rec['after_s'] * 1e3:>11.2f} {rec['speedup']:>7.1f}x"
        )
    table = "\n".join(rows)
    path = write_results("sim_hotpath.txt", table)

    RESULTS_DIR.mkdir(exist_ok=True)
    json_path = RESULTS_DIR / "BENCH_simcore.json"
    json_path.write_text(
        json.dumps(
            {
                "bench": "state-space throughput analysis, Fig. 6 "
                         "workloads (5-tile template)",
                "unit": "seconds per analysis (best of "
                        f"{TIMING_ROUNDS})",
                "workloads": records,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    print(f"\n{table}\n-> {path}\n-> {json_path}")

    for figure, rec in records.items():
        assert rec["speedup"] >= SPEEDUP_TARGET, (
            f"{figure}: incremental engine is only "
            f"{rec['speedup']:.1f}x faster than the reference "
            f"(target {SPEEDUP_TARGET}x)"
        )
