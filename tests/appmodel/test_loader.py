"""Tests for application-model JSON persistence."""

from fractions import Fraction

import pytest

from repro.appmodel import (
    ActorImplementation,
    ApplicationModel,
    FiringOutput,
    ImplementationMetrics,
    MemoryRequirements,
)
from repro.appmodel.loader import (
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
)
from repro.exceptions import GraphError
from repro.sdf import SDFGraph


@pytest.fixture
def app():
    g = SDFGraph("persisted")
    g.add_actor("A", execution_time=100)
    g.add_actor("B", execution_time=200)
    g.add_edge("ab", "A", "B", production=2, consumption=1, token_size=8)

    def a_fn(ctx):
        return FiringOutput(outputs={"ab": [1, 2]}, cycles=90)

    return ApplicationModel(
        graph=g,
        implementations=[
            ActorImplementation(
                actor="A", pe_type="microblaze",
                metrics=ImplementationMetrics(
                    wcet=100,
                    memory=MemoryRequirements(4096, 1024),
                ),
                function=a_fn,
                argument_order=["ab"],
            ),
            ActorImplementation(
                actor="B", pe_type="microblaze",
                metrics=ImplementationMetrics(wcet=200),
            ),
            ActorImplementation(
                actor="B", pe_type="dsp",
                metrics=ImplementationMetrics(wcet=50),
            ),
        ],
        throughput_constraint=Fraction(1, 500),
    )


def test_roundtrip_metadata(app, tmp_path):
    path = tmp_path / "model.json"
    save_model(app, path)
    loaded = load_model(path)
    assert loaded.name == app.name
    assert loaded.throughput_constraint == Fraction(1, 500)
    assert {a.name for a in loaded.graph} == {"A", "B"}
    assert loaded.graph.edge("ab").production == 2
    assert loaded.graph.edge("ab").token_size == 8
    assert loaded.wcet("A", "microblaze") == 100
    assert loaded.wcet("B", "dsp") == 50
    impl = loaded.implementation_for("A", "microblaze")
    assert impl.argument_order == ["ab"]
    assert impl.metrics.memory.instruction_bytes == 4096


def test_functions_reattach_by_name(app, tmp_path):
    path = tmp_path / "model.json"
    save_model(app, path)

    def restored(ctx):
        return FiringOutput(outputs={"ab": [0, 0]}, cycles=10)

    loaded = load_model(path, functions={"A_microblaze": restored})
    impl = loaded.implementation_for("A", "microblaze")
    assert impl.function is restored


def test_missing_declared_function_rejected(app, tmp_path):
    path = tmp_path / "model.json"
    save_model(app, path)
    with pytest.raises(GraphError, match="functional"):
        load_model(path, functions={"wrong_name": lambda ctx: None})


def test_no_constraint_roundtrips(tmp_path):
    g = SDFGraph("nc")
    g.add_actor("A", execution_time=1)
    app = ApplicationModel(
        graph=g,
        implementations=[
            ActorImplementation(
                actor="A", pe_type="mb",
                metrics=ImplementationMetrics(wcet=1),
            )
        ],
    )
    path = tmp_path / "m.json"
    save_model(app, path)
    assert load_model(path).throughput_constraint is None


def test_unsupported_version_rejected(app):
    data = model_to_dict(app)
    data["version"] = 99
    with pytest.raises(GraphError, match="version"):
        model_from_dict(data)


def test_loaded_model_validates_when_token_sizes_present(app, tmp_path):
    path = tmp_path / "model.json"
    save_model(app, path)
    loaded = load_model(path)
    loaded.validate()
