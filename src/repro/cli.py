"""Command-line interface: ``python -m repro <command>``.

Commands mirror the tool invocations of the original flow:

* ``analyze <graph.xml>`` -- SDF3-style analysis of a graph file:
  repetition vector, liveness, throughput (the graph must be bounded,
  e.g. carry buffer back-edges);
* ``demo [sequence] [--tiles N] [--interconnect fsl|noc]`` -- run the
  MJPEG case study end to end and print the Fig. 6-style numbers plus
  Table 1;
* ``explore [sequence] [--max-tiles N] [--jobs N] [--effort LEVEL]
  [--heterogeneous] [--with-ca] [--early-exit] [--csv]`` -- explore the
  template design space for the MJPEG decoder with the parallel, cached
  exploration engine and print the Pareto report (``dse`` is the
  compatible alias).
"""

from __future__ import annotations

import argparse
import sys
from fractions import Fraction
from typing import List, Optional

from repro.arch import architecture_from_template
from repro.exceptions import ReproError
from repro.sdf import (
    analyze_throughput,
    is_deadlock_free,
    repetition_vector,
)
from repro.sdf.io_sdf3 import load_graph


def _cmd_analyze(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    print(f"graph {graph.name!r}: {len(graph)} actors, "
          f"{len(graph.edges)} edges")
    q = repetition_vector(graph)
    print("repetition vector:")
    for name, count in sorted(q.items()):
        print(f"  {name}: {count}")
    live = is_deadlock_free(graph)
    print(f"deadlock-free: {'yes' if live else 'NO'}")
    if live:
        result = analyze_throughput(graph)
        print(
            f"throughput: {result.throughput} iterations/cycle "
            f"({result.per_mega_cycle():.4f} per Mcycle; period "
            f"{result.period} cycles)"
        )
    return 0


def _load_case_study(sequence: str, quality: Optional[int] = None):
    from repro.mjpeg import (
        build_mjpeg_application,
        encode_sequence,
        synthetic_sequence,
        test_set_sequences,
    )

    if sequence == "synthetic":
        frames = synthetic_sequence(n_frames=2)
        quality = quality or 98
    else:
        sequences = test_set_sequences(n_frames=2)
        if sequence not in sequences:
            raise ReproError(
                f"unknown sequence {sequence!r}; pick from "
                f"{sorted(sequences) + ['synthetic']}"
            )
        frames = sequences[sequence]
        quality = quality or 75
    encoded = encode_sequence(frames, quality=quality, h=4, v=2)
    return build_mjpeg_application(encoded)


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.flow import DesignFlow

    app = _load_case_study(args.sequence)
    arch = architecture_from_template(args.tiles, args.interconnect)
    flow = DesignFlow(app, arch, fixed={"VLD": "tile0"})
    result = flow.run(iterations=args.iterations)
    print(result.summary())
    if args.output:
        root = result.project.write_to(args.output)
        print(f"\nproject written to {root}")
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    from repro.flow import (
        COMPACT_MIX,
        UNIFORM_MIX,
        explore_design_space,
        exploration_csv,
        format_exploration_report,
    )

    if args.jobs < 1:
        raise ReproError(f"--jobs must be >= 1, got {args.jobs}")
    if args.early_exit and not args.constraint:
        raise ReproError(
            "--early-exit needs --constraint (the case-study application "
            "carries no throughput constraint of its own)"
        )
    constraint = None
    if args.constraint:
        try:
            constraint = Fraction(args.constraint)
        except (ValueError, ZeroDivisionError):
            raise ReproError(
                f"invalid --constraint {args.constraint!r}; expected a "
                "fraction like 1/6000"
            ) from None
    app = _load_case_study(args.sequence)
    mixes = (UNIFORM_MIX, COMPACT_MIX) if args.heterogeneous \
        else (UNIFORM_MIX,)
    result = explore_design_space(
        app,
        tile_counts=tuple(range(1, args.max_tiles + 1)),
        interconnects=("fsl", "noc"),
        ca_options=(False, True) if args.with_ca else (False,),
        constraint=constraint,
        fixed={"VLD": "tile0"},
        mixes=mixes,
        effort=args.effort,
        jobs=args.jobs,
        early_exit=args.early_exit,
    )
    if args.csv:
        print(exploration_csv(result))
    else:
        print(format_exploration_report(result))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Automated flow to map throughput-constrained applications "
            "to a MPSoC (Jordans et al., PPES 2011 -- reproduction)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    analyze = commands.add_parser(
        "analyze", help="analyze an SDF3-style XML graph"
    )
    analyze.add_argument("graph", help="path to the graph XML file")
    analyze.set_defaults(handler=_cmd_analyze)

    demo = commands.add_parser(
        "demo", help="run the MJPEG case study end to end"
    )
    demo.add_argument("sequence", nargs="?", default="gradient")
    demo.add_argument("--tiles", type=int, default=5)
    demo.add_argument(
        "--interconnect", choices=("fsl", "noc"), default="fsl"
    )
    demo.add_argument("--iterations", type=int, default=16)
    demo.add_argument(
        "--output", help="write the generated project under this directory"
    )
    demo.set_defaults(handler=_cmd_demo)

    for alias in ("explore", "dse"):
        explore = commands.add_parser(
            alias,
            help=(
                "explore the template design space for the case study"
                + ("" if alias == "explore" else " (alias of 'explore')")
            ),
        )
        explore.add_argument("sequence", nargs="?", default="gradient")
        explore.add_argument("--max-tiles", type=int, default=5)
        explore.add_argument(
            "--jobs", type=int, default=1,
            help="concurrent evaluation workers (default 1: serial)",
        )
        explore.add_argument(
            "--effort", choices=("low", "normal", "high"),
            default="normal",
            help="mapping effort per design point",
        )
        explore.add_argument(
            "--heterogeneous", action="store_true",
            help="also sweep the compact heterogeneous tile mix "
                 "(half-size slave memories)",
        )
        explore.add_argument(
            "--with-ca", action="store_true",
            help="also sweep communication-assist variants",
        )
        explore.add_argument(
            "--constraint", metavar="FRACTION",
            help="throughput constraint in iterations/cycle, e.g. 1/6000",
        )
        explore.add_argument(
            "--early-exit", action="store_true",
            help="stop at the first point meeting the constraint",
        )
        explore.add_argument(
            "--csv", action="store_true",
            help="emit machine-readable CSV instead of the report",
        )
        explore.set_defaults(handler=_cmd_explore)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
