"""Tests for repetition vectors and consistency."""

import pytest

from repro.exceptions import InconsistentGraphError
from repro.sdf import SDFGraph, is_consistent, repetition_vector
from repro.sdf.repetition import (
    check_initial_token_feasibility,
    iteration_firings,
)


def test_figure2_repetition_vector(figure2_graph):
    assert repetition_vector(figure2_graph) == {"A": 1, "B": 2, "C": 1}


def test_unit_rate_pipeline(two_actor_pipeline):
    assert repetition_vector(two_actor_pipeline) == {"P": 1, "Q": 1}


def test_multirate_chain():
    g = SDFGraph("multirate")
    g.add_actor("A")
    g.add_actor("B")
    g.add_actor("C")
    g.add_edge("ab", "A", "B", production=3, consumption=2)
    g.add_edge("bc", "B", "C", production=1, consumption=6)
    assert repetition_vector(g) == {"A": 4, "B": 6, "C": 1}


def test_mjpeg_style_rates():
    """VLD produces 10 blocks per MCU, consumed one at a time (Fig. 5)."""
    g = SDFGraph("vld")
    g.add_actor("VLD")
    g.add_actor("IQZZ")
    g.add_edge("vld2iqzz", "VLD", "IQZZ", production=10, consumption=1)
    assert repetition_vector(g) == {"VLD": 1, "IQZZ": 10}


def test_minimality():
    """The vector must be the smallest integer solution."""
    g = SDFGraph("scaled")
    g.add_actor("A")
    g.add_actor("B")
    g.add_edge("ab", "A", "B", production=4, consumption=6)
    # 4*q_A == 6*q_B  ->  minimal solution q_A=3, q_B=2
    assert repetition_vector(g) == {"A": 3, "B": 2}


def test_inconsistent_graph_detected():
    g = SDFGraph("bad")
    g.add_actor("A")
    g.add_actor("B")
    g.add_edge("e1", "A", "B", production=1, consumption=1)
    g.add_edge("e2", "A", "B", production=2, consumption=1)
    with pytest.raises(InconsistentGraphError):
        repetition_vector(g)
    assert not is_consistent(g)


def test_inconsistent_cycle_detected():
    g = SDFGraph("badcycle")
    g.add_actor("A")
    g.add_actor("B")
    g.add_actor("C")
    g.add_edge("ab", "A", "B", production=2, consumption=1)
    g.add_edge("bc", "B", "C", production=1, consumption=1)
    g.add_edge("ca", "C", "A", production=1, consumption=1)
    with pytest.raises(InconsistentGraphError):
        repetition_vector(g)


def test_disconnected_components_minimized_independently():
    g = SDFGraph("islands")
    g.add_actor("A")
    g.add_actor("B")
    g.add_actor("X")
    g.add_actor("Y")
    g.add_edge("ab", "A", "B", production=2, consumption=1)
    g.add_edge("xy", "X", "Y", production=1, consumption=3)
    q = repetition_vector(g)
    assert q == {"A": 1, "B": 2, "X": 3, "Y": 1}


def test_self_edge_does_not_change_vector(figure2_graph):
    q1 = repetition_vector(figure2_graph)
    figure2_graph.add_edge("selfB", "B", "B", initial_tokens=1)
    assert repetition_vector(figure2_graph) == q1


def test_self_edge_with_unequal_rates_inconsistent():
    g = SDFGraph("badself")
    g.add_actor("A")
    g.add_edge("s", "A", "A", production=2, consumption=1, initial_tokens=1)
    with pytest.raises(InconsistentGraphError):
        repetition_vector(g)


def test_single_actor_graph():
    g = SDFGraph("solo")
    g.add_actor("A")
    assert repetition_vector(g) == {"A": 1}


def test_iteration_firings(figure2_graph):
    assert iteration_firings(figure2_graph) == 4


def test_initial_token_feasibility(figure2_graph):
    check_initial_token_feasibility(figure2_graph)
