"""The /v1/platform surface: admission, departure, occupancy."""

import threading

import pytest

from repro.artifacts import ArtifactStore
from repro.flow.spec import ArchSpec
from repro.runtime import build_library
from repro.scenarios import generate_scenarios, scenario_flow_spec
from repro.service import FlowServiceClient, ServiceClientError, serve

ARCH = ArchSpec(tiles=2, interconnect="fsl")


@pytest.fixture(scope="module")
def specs():
    return [
        scenario_flow_spec(s, architecture=ARCH)
        for s in generate_scenarios("chain", 3, 9)
    ]


@pytest.fixture
def service(tmp_path, specs):
    # a warm workspace: libraries for the first two apps are prebuilt
    store = ArtifactStore(tmp_path / "ws" / "artifacts")
    for spec in specs[:2]:
        build_library(spec, store=store)
    server = serve(tmp_path / "ws", port=0, jobs=2, max_queue=8)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    server.scheduler.close()
    thread.join(timeout=10)


@pytest.fixture
def client(service):
    return FlowServiceClient(service.url, timeout=60.0)


class TestPlatformEndpoints:
    def test_unconfigured_platform_reports_so(self, client):
        assert client.platform_status() == {"configured": False}
        assert client.health()["platform"] == {"configured": False}

    def test_admission_round_trip(self, client, specs):
        first = client.platform_admit(specs[0])
        assert first["app_id"].startswith("app-")
        assert first["source"] == "library"
        assert first["analyses"] == 0
        second = client.platform_admit(specs[1])
        assert set(first["tiles"]).isdisjoint(second["tiles"])

        status = client.platform_status()
        assert status["configured"] is True
        assert [a["id"] for a in status["apps"]] == \
            [first["app_id"], second["app_id"]]
        assert status["residual"]["free_tiles"] == []

        health = client.health()["platform"]
        assert health["apps"] == 2
        assert health["residual_tiles"] == 0
        assert health["counters"]["admissions"] == 2
        assert health["counters"]["analyses"] == 0

    def test_infeasible_admission_answers_409(self, client, specs):
        client.platform_admit(specs[0])
        client.platform_admit(specs[1])
        before = client.platform_status()
        with pytest.raises(ServiceClientError) as outcome:
            client.platform_admit(specs[2])
        assert outcome.value.status == 409
        # the rejection did not disturb the running applications
        after = client.platform_status()
        assert after["apps"] == before["apps"]
        assert after["residual"] == before["residual"]
        assert after["counters"]["rejections"] == \
            before["counters"]["rejections"] + 1

    def test_departure_frees_capacity_and_migrates(self, client, specs):
        first = client.platform_admit(specs[0])
        second = client.platform_admit(specs[1])
        outcome = client.platform_depart(first["app_id"], migrate=True)
        assert outcome["departed"] is True
        assert set(outcome["freed_tiles"]) == set(first["tiles"])
        status = client.platform_status()
        assert [a["id"] for a in status["apps"]] == [second["app_id"]]

    def test_unknown_app_answers_404(self, client, specs):
        client.platform_admit(specs[0])
        with pytest.raises(ServiceClientError) as outcome:
            client.platform_depart("app-424242")
        assert outcome.value.status == 404

    def test_malformed_spec_answers_400(self, client):
        with pytest.raises(ServiceClientError) as outcome:
            client.platform_admit({"nonsense": True})
        assert outcome.value.status == 400

    def test_architecture_conflict_answers_409(self, client, specs):
        client.platform_admit(specs[0])
        other = scenario_flow_spec(
            generate_scenarios("chain", 1, 9)[0],
            architecture=ArchSpec(tiles=4, interconnect="noc"),
        )
        with pytest.raises(ServiceClientError) as outcome:
            client.platform_admit(other)
        assert outcome.value.status == 409
