"""Per-tile software generation.

Section 5.2: "This includes generating wrapper code for each actor,
translating the static-order schedule provided by SDF3 into C code, and
generating initialization code for the communication."  The output is C
source text per tile: a schedule table (the lookup-table scheduler of
Section 6.3), one wrapper per mapped actor binding its parameters to the
channel buffers (Listing 1's calling convention), and the communication
initialisation that pre-loads initial tokens into destination buffers.
"""

from __future__ import annotations

from typing import Dict, List

from repro.appmodel.model import ApplicationModel
from repro.mamps.memory_map import TileMemoryMap
from repro.mapping.spec import Mapping


def _wrapper_name(actor: str) -> str:
    return f"wrapper_{actor}"


def _channel_argument(app: ApplicationModel, mapping: Mapping,
                      actor: str, edge_name: str) -> str:
    """Buffer expression an actor wrapper passes for one explicit edge."""
    channel = mapping.channels[edge_name]
    edge = app.graph.edge(edge_name)
    if channel.intra_tile:
        return f"buffer_{edge_name}"
    if edge.src == actor:
        return f"buffer_{edge_name}_src"
    return f"buffer_{edge_name}_dst"


def generate_actor_wrapper(app: ApplicationModel, mapping: Mapping,
                           actor: str) -> str:
    """C wrapper for one actor on its tile.

    Claims input tokens, calls the implementation function with one pointer
    per explicit edge (in the implementation's declared argument order,
    falling back to graph order), releases/sends output tokens.
    """
    impl = mapping.implementations[actor]
    explicit = [
        e for e in app.graph.explicit_edges() if actor in (e.src, e.dst)
    ]
    ordered_names = list(impl.argument_order) or [e.name for e in explicit]
    arguments = ", ".join(
        _channel_argument(app, mapping, actor, name)
        for name in ordered_names
    )

    lines: List[str] = [
        f"/* wrapper for actor {actor} "
        f"(implementation {impl.name}, WCET {impl.wcet} cycles) */",
        f"void {_wrapper_name(actor)}(void)",
        "{",
    ]
    for edge in explicit:
        if edge.dst == actor:
            lines.append(
                f"    ni_claim_tokens({_channel_argument(app, mapping, actor, edge.name)}, "
                f"{edge.consumption});"
            )
    lines.append(f"    {actor}({arguments});")
    for edge in explicit:
        if edge.src == actor:
            channel = mapping.channels[edge.name]
            if channel.intra_tile:
                lines.append(
                    f"    ni_release_tokens(buffer_{edge.name}, "
                    f"{edge.production});"
                )
            else:
                lines.append(
                    f"    ni_send_tokens(buffer_{edge.name}_src, "
                    f"{edge.production}, {edge.token_size});"
                )
    lines.append("}")
    return "\n".join(lines)


def generate_schedule_source(mapping: Mapping, tile: str) -> str:
    """The static-order schedule as a C lookup table plus the main loop."""
    order = mapping.static_orders.get(tile, [])
    entries = ",\n".join(f"    {_wrapper_name(a)}" for a in order)
    return "\n".join(
        [
            f"/* static-order schedule of tile {tile} "
            f"({len(order)} entries per graph iteration) */",
            "typedef void (*actor_fn)(void);",
            f"static const actor_fn schedule[{max(len(order), 1)}] = {{",
            entries if entries else "    0",
            "};",
            "",
            "void scheduler_run(void)",
            "{",
            "    unsigned i = 0;",
            "    for (;;) {",
            f"        schedule[i]();",
            f"        i = (i + 1) % {max(len(order), 1)};",
            "    }",
            "}",
        ]
    )


def generate_comm_init(app: ApplicationModel, mapping: Mapping,
                       tile: str) -> str:
    """Communication initialisation for one tile.

    Declares the tile's buffers at their memory-map offsets and pre-loads
    the initial tokens of incoming channels by calling the producing
    actor's init function (Listing 1's ``actor_A_init``).
    """
    lines: List[str] = [f"/* communication init of tile {tile} */",
                        "void comm_init(void)", "{"]
    for channel in mapping.channels.values():
        edge = app.graph.edge(channel.edge)
        if channel.intra_tile and channel.src_tile == tile:
            lines.append(
                f"    ni_configure_buffer(buffer_{channel.edge}, "
                f"{channel.capacity}, {edge.token_size});"
            )
        elif not channel.intra_tile:
            if channel.src_tile == tile:
                lines.append(
                    f"    ni_configure_buffer(buffer_{channel.edge}_src, "
                    f"{channel.alpha_src}, {edge.token_size});"
                )
            if channel.dst_tile == tile:
                lines.append(
                    f"    ni_configure_buffer(buffer_{channel.edge}_dst, "
                    f"{channel.alpha_dst}, {edge.token_size});"
                )
        if edge.initial_tokens > 0 and (
            (channel.intra_tile and channel.src_tile == tile)
            or (not channel.intra_tile and channel.dst_tile == tile)
        ):
            producer = edge.src
            suffix = "" if channel.intra_tile else "_dst"
            lines.append(
                f"    {producer}_init(buffer_{channel.edge}{suffix});"
                f"  /* {edge.initial_tokens} initial token(s) */"
            )
    lines.append("}")
    return "\n".join(lines)


def generate_tile_main(app: ApplicationModel, mapping: Mapping,
                       memory_map: TileMemoryMap, tile: str) -> str:
    """The complete main.c of one tile."""
    sections: List[str] = [
        f"/* generated by MAMPS for tile {tile} -- do not edit */",
        '#include "mamps_runtime.h"',
        "",
    ]
    for region in memory_map.data_regions:
        if region.label.startswith("buffer_"):
            sections.append(
                f"static token_buffer {region.label} "
                f"__attribute__((address(0x{region.base:08x}))); "
                f"/* {region.size} bytes */"
            )
    sections.append("")
    for actor in mapping.actors_on(tile):
        sections.append(generate_actor_wrapper(app, mapping, actor))
        sections.append("")
    sections.append(generate_comm_init(app, mapping, tile))
    sections.append("")
    sections.append(generate_schedule_source(mapping, tile))
    sections.append("")
    sections.extend(
        [
            "int main(void)",
            "{",
            "    comm_init();",
            "    scheduler_run();",
            "    return 0;",
            "}",
        ]
    )
    return "\n".join(sections)
