"""SDF graph data structure.

A synchronous dataflow (SDF) graph [Lee & Messerschmitt 1987] consists of
*actors* connected by directed *edges* (also called channels).  Each edge has
a constant *production rate* (tokens produced per firing of its source
actor), a constant *consumption rate* (tokens consumed per firing of its
destination actor) and may carry *initial tokens*.  An actor is *ready* when
every input edge holds at least the consumption rate of tokens; executing a
ready actor is called a *firing*.

This module deliberately keeps the graph purely structural.  Timing lives on
:attr:`Actor.execution_time` (worst-case execution time in clock cycles, the
paper's base time unit) and communication metadata lives on
:attr:`Edge.token_size` (bytes).  Higher layers (application model, mapping,
communication model) attach richer information without the core analyses
needing to know about it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.exceptions import GraphError


def _require_int(owner: str, field_name: str, value: object) -> None:
    """Counts and cycle budgets are exact integers; a float (or bool)
    sneaking in would only surface much later as a confusing simulator or
    repetition-vector failure, so reject it where it is written."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise GraphError(
            f"{owner}: {field_name} must be an integer, "
            f"got {value!r} ({type(value).__name__})"
        )


@dataclass
class Actor:
    """A vertex of an SDF graph.

    Parameters
    ----------
    name:
        Unique name within the graph.
    execution_time:
        Worst-case execution time of one firing, in clock cycles.  May be 0
        for bookkeeping actors (e.g. the ``s2``/``s3`` actors of the
        communication model of Fig. 4).
    group:
        Optional label tying derived actors back to their origin.  The
        communication-model expansion tags the 8 channel actors with the
        original edge name; the HSDF expansion tags copies with the original
        actor name.
    concurrency:
        Per-actor override of the maximum number of overlapping firings.
        ``None`` (the default) inherits the simulator-wide setting; the
        communication model sets it on the channel-latency actor ``c2`` to
        let ``w`` words pipeline through the link.
    """

    name: str
    execution_time: int = 0
    group: Optional[str] = None
    concurrency: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphError("actor name must be non-empty")
        _require_int(
            f"actor {self.name!r}", "execution time", self.execution_time
        )
        if self.execution_time < 0:
            raise GraphError(
                f"actor {self.name!r}: execution time must be >= 0, "
                f"got {self.execution_time}"
            )
        if self.concurrency is not None and self.concurrency < 1:
            raise GraphError(
                f"actor {self.name!r}: concurrency must be >= 1 or None"
            )

    def __hash__(self) -> int:  # actors are identified by name within a graph
        return hash(self.name)


@dataclass
class Edge:
    """A directed edge (channel) of an SDF graph.

    Parameters
    ----------
    name:
        Unique name within the graph.
    src, dst:
        Names of the producing and consuming actors.  ``src == dst`` gives a
        self-edge, used to model actor state (Fig. 2) or to sequentialize
        firings.
    production:
        Tokens produced on the edge per firing of ``src``.
    consumption:
        Tokens consumed from the edge per firing of ``dst``.
    initial_tokens:
        Tokens present on the edge before execution starts.
    token_size:
        Size of one token in bytes; used by the communication model to
        compute the number of 32-bit words per token.  ``0`` means the edge
        never crosses the interconnect (e.g. credit/ordering edges).
    implicit:
        Paper Section 3 distinguishes *explicitly implemented* edges (data
        transferred between actor implementations) from *implicitly
        implemented* edges (state self-edges, buffer-size back-edges,
        static-order edges).  Implicit edges never become function arguments
        nor interconnect traffic.
    """

    name: str
    src: str
    dst: str
    production: int = 1
    consumption: int = 1
    initial_tokens: int = 0
    token_size: int = 0
    implicit: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphError("edge name must be non-empty")
        owner = f"edge {self.name!r}"
        _require_int(owner, "production rate", self.production)
        _require_int(owner, "consumption rate", self.consumption)
        _require_int(owner, "initial tokens", self.initial_tokens)
        _require_int(owner, "token size", self.token_size)
        if self.production <= 0 or self.consumption <= 0:
            raise GraphError(
                f"edge {self.name!r}: rates must be positive, got "
                f"production={self.production} consumption={self.consumption}"
            )
        if self.initial_tokens < 0:
            raise GraphError(
                f"edge {self.name!r}: initial tokens must be >= 0"
            )
        if self.token_size < 0:
            raise GraphError(f"edge {self.name!r}: token size must be >= 0")
        if self.src == self.dst and self.initial_tokens < self.consumption:
            # A self-edge is replenished only by its own actor's firings:
            # with fewer than `consumption` initial tokens the actor can
            # never fire at all.  That used to surface much later as a
            # simulator/deadlock failure; reject it at construction.
            raise GraphError(
                f"edge {self.name!r}: self-loop on {self.src!r} needs at "
                f"least {self.consumption} initial token(s) to ever fire, "
                f"got {self.initial_tokens}"
            )

    @property
    def is_self_edge(self) -> bool:
        """True when source and destination are the same actor."""
        return self.src == self.dst

    def __hash__(self) -> int:
        return hash(self.name)


class SDFGraph:
    """A named synchronous dataflow graph.

    The graph is built incrementally with :meth:`add_actor` and
    :meth:`add_edge`; both validate against duplicates and dangling
    references so analyses can assume a well-formed graph.

    The class supports iteration over actors and ``len()`` (number of
    actors), and cheap adjacency queries (:meth:`in_edges`,
    :meth:`out_edges`).
    """

    def __init__(self, name: str = "sdf") -> None:
        if not name:
            raise GraphError("graph name must be non-empty")
        self.name = name
        self._actors: Dict[str, Actor] = {}
        self._edges: Dict[str, Edge] = {}
        self._in: Dict[str, List[Edge]] = {}
        self._out: Dict[str, List[Edge]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_actor(
        self,
        name: str,
        execution_time: int = 0,
        group: Optional[str] = None,
        concurrency: Optional[int] = None,
    ) -> Actor:
        """Add an actor and return it.

        Raises :class:`GraphError` if an actor with the same name exists.
        """
        if name in self._actors:
            raise GraphError(f"duplicate actor {name!r} in graph {self.name!r}")
        actor = Actor(
            name=name,
            execution_time=execution_time,
            group=group,
            concurrency=concurrency,
        )
        self._actors[name] = actor
        self._in[name] = []
        self._out[name] = []
        return actor

    def add_edge(
        self,
        name: str,
        src: str,
        dst: str,
        production: int = 1,
        consumption: int = 1,
        initial_tokens: int = 0,
        token_size: int = 0,
        implicit: bool = False,
    ) -> Edge:
        """Add an edge and return it.

        Both endpoint actors must already exist.
        """
        if name in self._edges:
            raise GraphError(f"duplicate edge {name!r} in graph {self.name!r}")
        for endpoint in (src, dst):
            if endpoint not in self._actors:
                raise GraphError(
                    f"edge {name!r} references unknown actor {endpoint!r}"
                )
        edge = Edge(
            name=name,
            src=src,
            dst=dst,
            production=production,
            consumption=consumption,
            initial_tokens=initial_tokens,
            token_size=token_size,
            implicit=implicit,
        )
        self._edges[name] = edge
        self._out[src].append(edge)
        self._in[dst].append(edge)
        return edge

    def remove_edge(self, name: str) -> None:
        """Remove an edge by name."""
        edge = self._edges.pop(name, None)
        if edge is None:
            raise GraphError(f"unknown edge {name!r}")
        self._out[edge.src].remove(edge)
        self._in[edge.dst].remove(edge)

    def remove_actor(self, name: str) -> None:
        """Remove an actor and every edge touching it."""
        if name not in self._actors:
            raise GraphError(f"unknown actor {name!r}")
        touching = [
            e.name for e in self._edges.values() if name in (e.src, e.dst)
        ]
        for edge_name in touching:
            self.remove_edge(edge_name)
        del self._actors[name]
        del self._in[name]
        del self._out[name]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def actors(self) -> Tuple[Actor, ...]:
        """All actors, in insertion order."""
        return tuple(self._actors.values())

    @property
    def edges(self) -> Tuple[Edge, ...]:
        """All edges, in insertion order."""
        return tuple(self._edges.values())

    def actor(self, name: str) -> Actor:
        """Look up an actor by name."""
        try:
            return self._actors[name]
        except KeyError:
            raise GraphError(
                f"unknown actor {name!r} in graph {self.name!r}"
            ) from None

    def edge(self, name: str) -> Edge:
        """Look up an edge by name."""
        try:
            return self._edges[name]
        except KeyError:
            raise GraphError(
                f"unknown edge {name!r} in graph {self.name!r}"
            ) from None

    def has_actor(self, name: str) -> bool:
        return name in self._actors

    def has_edge(self, name: str) -> bool:
        return name in self._edges

    def in_edges(self, actor: str) -> Tuple[Edge, ...]:
        """Edges whose destination is ``actor`` (self-edges included)."""
        return tuple(self._in[actor])

    def out_edges(self, actor: str) -> Tuple[Edge, ...]:
        """Edges whose source is ``actor`` (self-edges included)."""
        return tuple(self._out[actor])

    def self_edges(self, actor: str) -> Tuple[Edge, ...]:
        return tuple(e for e in self._out[actor] if e.is_self_edge)

    def explicit_edges(self) -> Tuple[Edge, ...]:
        """Edges that transfer data between distinct actors (Section 3)."""
        return tuple(
            e for e in self._edges.values()
            if not e.implicit and not e.is_self_edge
        )

    def __iter__(self) -> Iterator[Actor]:
        return iter(self._actors.values())

    def __eq__(self, other: object) -> bool:
        """Structural equality: same name, actors and edges.

        Insertion order is irrelevant (the dict comparisons are
        order-insensitive), matching the artifact round-trip contract of
        :mod:`repro.artifacts`: ``from_payload(to_payload(g)) == g``.
        """
        if not isinstance(other, SDFGraph):
            return NotImplemented
        return (
            self.name == other.name
            and self._actors == other._actors
            and self._edges == other._edges
        )

    # graphs are mutable containers; keep identity hashing (same pragma
    # as Actor/Edge, which hash by name while comparing structurally)
    __hash__ = object.__hash__

    def __len__(self) -> int:
        return len(self._actors)

    def __contains__(self, actor_name: str) -> bool:
        return actor_name in self._actors

    def __repr__(self) -> str:
        return (
            f"SDFGraph({self.name!r}, actors={len(self._actors)}, "
            f"edges={len(self._edges)})"
        )

    # ------------------------------------------------------------------
    # persistence (the canonical artifact schema; XML lives in io_sdf3)
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        """Canonical versioned artifact payload (:mod:`repro.artifacts`)."""
        from repro.artifacts.schema import to_payload

        return to_payload(self)

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "SDFGraph":
        from repro.artifacts.schema import check_envelope, from_payload

        check_envelope(payload, "sdf-graph")
        return from_payload(payload)

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "SDFGraph":
        """Deep-ish copy (actors and edges are re-created)."""
        clone = SDFGraph(name or self.name)
        for actor in self._actors.values():
            clone.add_actor(
                actor.name,
                actor.execution_time,
                actor.group,
                actor.concurrency,
            )
        for edge in self._edges.values():
            clone.add_edge(
                edge.name,
                edge.src,
                edge.dst,
                production=edge.production,
                consumption=edge.consumption,
                initial_tokens=edge.initial_tokens,
                token_size=edge.token_size,
                implicit=edge.implicit,
            )
        return clone

    def with_execution_times(
        self, times: Dict[str, int], name: Optional[str] = None
    ) -> "SDFGraph":
        """Copy of the graph with some actors' execution times replaced.

        Used to evaluate the same structure under different WCET estimates
        (worst-case vs. measured, Section 6.1) without mutating the source
        graph.
        """
        clone = self.copy(name or self.name)
        for actor_name, time in times.items():
            clone.actor(actor_name).execution_time = time
        return clone

    def undirected_components(self) -> List[List[str]]:
        """Connected components, ignoring edge direction.

        Consistency (repetition vectors) is defined per weakly connected
        component; a well-formed application graph has exactly one.
        """
        seen: Dict[str, bool] = {}
        components: List[List[str]] = []
        for start in self._actors:
            if start in seen:
                continue
            stack = [start]
            component: List[str] = []
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen[node] = True
                component.append(node)
                for edge in self._out[node]:
                    stack.append(edge.dst)
                for edge in self._in[node]:
                    stack.append(edge.src)
            components.append(sorted(component))
        return components

    def is_connected(self) -> bool:
        """True when the graph is weakly connected (or empty)."""
        return len(self.undirected_components()) <= 1

    def total_initial_tokens(self) -> int:
        return sum(e.initial_tokens for e in self._edges.values())


def validate_graph(graph: SDFGraph) -> None:
    """Structural sanity checks beyond what construction already enforces.

    Raises :class:`GraphError` when the graph is empty or not weakly
    connected.  Called by analyses that require a single component.
    """
    if len(graph) == 0:
        raise GraphError(f"graph {graph.name!r} has no actors")
    if not graph.is_connected():
        raise GraphError(
            f"graph {graph.name!r} is not connected: components="
            f"{graph.undirected_components()}"
        )
