"""Tests for state-space throughput analysis."""

from fractions import Fraction

import pytest

from repro.exceptions import DeadlockError, SimulationError
from repro.sdf import SDFGraph, analyze_throughput
from repro.sdf.buffers import BufferDistribution, add_buffer_edges
from repro.sdf.throughput import (
    UnboundedExecutionError,
    processing_throughput_bound,
)


def bounded(graph, capacities):
    return add_buffer_edges(graph, BufferDistribution(capacities))


def test_single_actor_with_self_edge():
    g = SDFGraph("loop")
    g.add_actor("A", execution_time=10)
    g.add_edge("selfA", "A", "A", initial_tokens=1)
    result = analyze_throughput(g)
    assert result.throughput == Fraction(1, 10)
    assert result.period == 10
    assert result.iterations_per_period == 1


def test_two_actor_cycle():
    g = SDFGraph("ring")
    g.add_actor("A", execution_time=3)
    g.add_actor("B", execution_time=4)
    g.add_edge("ab", "A", "B", initial_tokens=1)
    g.add_edge("ba", "B", "A")
    # One token circulates: strictly alternating, period 7.
    result = analyze_throughput(g)
    assert result.throughput == Fraction(1, 7)


def test_two_tokens_pipeline_cycle():
    g = SDFGraph("ring2")
    g.add_actor("A", execution_time=3)
    g.add_actor("B", execution_time=4)
    g.add_edge("ab", "A", "B", initial_tokens=2)
    g.add_edge("ba", "B", "A")
    # Two tokens let A and B overlap; B (the slowest) limits: 1 per 4 cycles.
    result = analyze_throughput(g)
    assert result.throughput == Fraction(1, 4)


def test_bounded_pipeline_reaches_bottleneck_rate(two_actor_pipeline):
    g = bounded(two_actor_pipeline, {"p2q": 2})
    result = analyze_throughput(g)
    assert result.throughput == Fraction(1, 7)  # Q is the bottleneck


def test_tight_buffer_slows_pipeline(two_actor_pipeline):
    wide = bounded(two_actor_pipeline, {"p2q": 4})
    narrow = bounded(two_actor_pipeline, {"p2q": 1})
    fast = analyze_throughput(wide)
    slow = analyze_throughput(narrow)
    # Capacity 1 forbids overlap of P and Q: 1 iteration per 12 cycles.
    assert slow.throughput == Fraction(1, 12)
    assert fast.throughput == Fraction(1, 7)
    assert slow.throughput < fast.throughput


def test_figure2_bounded_throughput(figure2_graph):
    g = bounded(figure2_graph, {"a2b": 4, "a2c": 2, "b2c": 4})
    result = analyze_throughput(g)
    # B fires twice (3 cycles each) per iteration and is the bottleneck.
    assert result.throughput == Fraction(1, 6)


def test_figure2_matches_processing_bound(figure2_graph):
    bound = processing_throughput_bound(figure2_graph)
    assert bound == Fraction(1, 6)
    g = bounded(figure2_graph, {"a2b": 4, "a2c": 2, "b2c": 4})
    result = analyze_throughput(g)
    assert result.throughput <= bound


def test_unbounded_pipeline_raises(two_actor_pipeline):
    # P (5) outpaces Q (7): tokens accumulate forever without buffers.
    with pytest.raises(UnboundedExecutionError, match="buffer"):
        analyze_throughput(two_actor_pipeline, max_iterations=50)


def test_deadlocked_graph_raises():
    g = SDFGraph("dead")
    g.add_actor("A", execution_time=1)
    g.add_actor("B", execution_time=1)
    g.add_edge("ab", "A", "B")
    g.add_edge("ba", "B", "A")
    with pytest.raises(DeadlockError):
        analyze_throughput(g)


def test_static_order_deadlock_detected():
    """A live graph can still block under a bad static-order schedule."""
    g = SDFGraph("g")
    g.add_actor("A", execution_time=1)
    g.add_actor("B", execution_time=1)
    g.add_edge("ab", "A", "B", initial_tokens=1)
    g.add_edge("ba", "B", "A", initial_tokens=1)
    with pytest.raises(DeadlockError, match="blocked"):
        analyze_throughput(
            g,
            processor_of={"A": "t", "B": "t"},
            static_order={"t": ["A", "A", "B"]},  # 2nd A never ready in time
        )


def test_zero_time_graph_raises():
    g = SDFGraph("zero")
    g.add_actor("A", execution_time=0)
    g.add_edge("selfA", "A", "A", initial_tokens=1)
    with pytest.raises(SimulationError, match="zero"):
        analyze_throughput(g)


def test_multirate_throughput():
    g = SDFGraph("multi")
    g.add_actor("A", execution_time=2)
    g.add_actor("B", execution_time=3)
    g.add_edge("ab", "A", "B", production=2, consumption=3)
    g.add_edge("ba", "B", "A", production=3, consumption=2,
               initial_tokens=6)
    # q = {A: 3, B: 2}.  Both actors carry 6 cycles of work per iteration,
    # but the token dependencies leave unavoidable idle time: the periodic
    # phase completes one iteration per 8 cycles (hand-traced; the MCM
    # engine independently confirms it in test_hsdf.py).
    result = analyze_throughput(g)
    assert result.throughput == Fraction(1, 8)


def test_multirate_throughput_improves_with_tokens():
    def ring(tokens):
        g = SDFGraph("multi")
        g.add_actor("A", execution_time=2)
        g.add_actor("B", execution_time=3)
        g.add_edge("ab", "A", "B", production=2, consumption=3)
        g.add_edge("ba", "B", "A", production=3, consumption=2,
                   initial_tokens=tokens)
        return g

    tight = analyze_throughput(ring(6)).throughput
    loose = analyze_throughput(ring(12)).throughput
    assert loose >= tight
    # Never above the processing bound of the busiest actor (1/6).
    assert loose <= Fraction(1, 6)


def test_throughput_with_binding_is_slower(figure2_graph):
    """Binding all actors to one processor serializes everything."""
    g = bounded(figure2_graph, {"a2b": 4, "a2c": 2, "b2c": 4})
    unbound = analyze_throughput(g)
    all_on_one = analyze_throughput(
        g,
        processor_of={"A": "t", "B": "t", "C": "t"},
        static_order={"t": ["A", "B", "B", "C"]},
    )
    # Serial: 4 + 3 + 3 + 2 = 12 cycles per iteration.
    assert all_on_one.throughput == Fraction(1, 12)
    assert all_on_one.throughput <= unbound.throughput


def test_result_helpers():
    g = SDFGraph("loop")
    g.add_actor("A", execution_time=8)
    g.add_edge("selfA", "A", "A", initial_tokens=1)
    result = analyze_throughput(g)
    assert result.cycles_per_iteration() == 8
    assert result.iterations_in(80) == 10
    assert result.per_mega_cycle() == pytest.approx(125_000.0)


def test_reference_actor_choice_does_not_matter(figure2_graph):
    g = bounded(figure2_graph, {"a2b": 4, "a2c": 2, "b2c": 4})
    by_a = analyze_throughput(g, reference_actor="A")
    by_b = analyze_throughput(g, reference_actor="B")
    by_c = analyze_throughput(g, reference_actor="C")
    assert by_a.throughput == by_b.throughput == by_c.throughput


def test_processing_bound_rejects_actorless_graph():
    from repro.exceptions import GraphError

    g = SDFGraph("empty")
    with pytest.raises(GraphError, match="no actors"):
        processing_throughput_bound(g)


def test_processing_bound_rejects_all_zero_times():
    g = SDFGraph("zeros")
    g.add_actor("A", execution_time=0)
    g.add_edge("selfA", "A", "A", initial_tokens=1)
    with pytest.raises(SimulationError, match="zero execution time"):
        processing_throughput_bound(g)


class TestThroughputAnalyzer:
    def test_matches_one_shot_analysis(self, figure2_graph):
        from repro.sdf.throughput import ThroughputAnalyzer

        g = bounded(figure2_graph, {"a2b": 4, "a2c": 2, "b2c": 3})
        analyzer = ThroughputAnalyzer(g)
        # Field-exact against the same (reference) tier; value-exact
        # against whatever tier the auto policy picks.
        assert analyzer.analyze() == analyze_throughput(
            g, engine="reference"
        )
        assert analyzer.analyze().throughput == \
            analyze_throughput(g).throughput

    def test_reanalyze_after_in_place_token_mutation(self):
        """Warm path: mutate credit tokens in place, re-analyze, and get
        exactly what a fresh build-and-analyze produces."""
        from repro.sdf.buffers import retune_buffer_capacity
        from repro.sdf.throughput import ThroughputAnalyzer

        g = SDFGraph("ring")
        g.add_actor("A", execution_time=3)
        g.add_actor("B", execution_time=4)
        g.add_edge("ab", "A", "B", token_size=4)
        bounded_graph = bounded(g, {"ab": 1})
        analyzer = ThroughputAnalyzer(bounded_graph)
        assert analyzer.analyze().throughput == Fraction(1, 7)
        for capacity in (2, 3, 2, 1):
            retune_buffer_capacity(bounded_graph, "ab", capacity)
            warm = analyzer.analyze()
            cold = analyze_throughput(
                bounded(g, {"ab": capacity}), engine="reference"
            )
            assert warm == cold
            assert warm.throughput == analyze_throughput(
                bounded(g, {"ab": capacity})
            ).throughput

    def test_skip_deadlock_precheck_still_detects_blockage(self):
        from repro.sdf.throughput import ThroughputAnalyzer

        g = SDFGraph("dead")
        g.add_actor("A", execution_time=1)
        g.add_actor("B", execution_time=1)
        g.add_edge("ab", "A", "B")
        g.add_edge("ba", "B", "A")  # no initial tokens: deadlock
        analyzer = ThroughputAnalyzer(g)
        with pytest.raises(DeadlockError):
            analyzer.analyze(check_deadlock=False)

    def test_per_call_iteration_budget_override(self, figure2_graph):
        from repro.sdf.throughput import ThroughputAnalyzer

        g = SDFGraph("unbounded")
        g.add_actor("P", execution_time=1)
        g.add_actor("Q", execution_time=2)
        g.add_edge("pq", "P", "Q", token_size=4)
        g.add_edge("selfP", "P", "P", initial_tokens=1)
        g.add_edge("selfQ", "Q", "Q", initial_tokens=1)
        analyzer = ThroughputAnalyzer(g, max_iterations=5)
        with pytest.raises(UnboundedExecutionError, match="within 5 "):
            analyzer.analyze()
        with pytest.raises(UnboundedExecutionError, match="within 9 "):
            analyzer.analyze(max_iterations=9)


def test_deadlock_reported_before_bad_reference_actor():
    """Historic error ordering: the deadlock pre-check fires before the
    reference actor is resolved."""
    g = SDFGraph("dead")
    g.add_actor("A", execution_time=1)
    g.add_actor("B", execution_time=1)
    g.add_edge("ab", "A", "B")
    g.add_edge("ba", "B", "A")  # no initial tokens: deadlock
    with pytest.raises(DeadlockError):
        analyze_throughput(g, reference_actor="ZZZ")


def test_bad_reference_actor_still_rejected(figure2_graph):
    g = bounded(figure2_graph, {"a2b": 4, "a2c": 2, "b2c": 3})
    with pytest.raises(SimulationError, match="reference actor"):
        analyze_throughput(g, reference_actor="ZZZ")
