"""Tests for the MJPEG actors, cost models and application assembly."""

import numpy as np
import pytest

from repro.appmodel import measure_execution_times
from repro.mjpeg import (
    MJPEGCostModel,
    build_mjpeg_application,
    encode_sequence,
    mjpeg_graph,
    synthetic_sequence,
    test_set_sequences as build_test_set,
)
from repro.mjpeg.actors import MJPEGActorSet
from repro.mjpeg.encoder import MAX_BLOCKS_PER_MCU
from repro.sdf import repetition_vector
from repro.sdf.throughput import processing_throughput_bound


@pytest.fixture(scope="module")
def encoded():
    frames = build_test_set(n_frames=2)["gradient"]
    return encode_sequence(frames, quality=75)


@pytest.fixture(scope="module")
def encoded_synthetic():
    return encode_sequence(synthetic_sequence(n_frames=1), quality=90)


class TestGraphShape:
    def test_figure5_actors(self, encoded):
        g = mjpeg_graph(encoded)
        assert {a.name for a in g} == {"VLD", "IQZZ", "IDCT", "CC", "Raster"}

    def test_figure5_edges(self, encoded):
        g = mjpeg_graph(encoded)
        names = {e.name for e in g.edges}
        assert names == {
            "vld2iqzz", "iqzz2idct", "idct2cc", "cc2raster",
            "subHeader1", "subHeader2", "vldState", "rasterState",
        }

    def test_repetition_vector(self, encoded):
        """One iteration decodes one MCU: VLD/CC/Raster once, IQZZ/IDCT
        ten times (the fixed 10-block rate)."""
        q = repetition_vector(mjpeg_graph(encoded))
        assert q == {"VLD": 1, "IQZZ": 10, "IDCT": 10, "CC": 1, "Raster": 1}

    def test_state_self_edges(self, encoded):
        g = mjpeg_graph(encoded)
        assert g.edge("vldState").is_self_edge
        assert g.edge("vldState").initial_tokens == 1
        assert g.edge("rasterState").is_self_edge

    def test_subheader_channels_are_small(self, encoded):
        g = mjpeg_graph(encoded)
        assert g.edge("subHeader1").token_size < g.edge(
            "vld2iqzz"
        ).token_size


class TestCostModel:
    def test_scenario_wcet_grows_with_blocks(self):
        cost = MJPEGCostModel()
        assert cost.vld_wcet(10) > cost.vld_wcet(6) > cost.vld_wcet(1)

    def test_idct_wcet_is_full_block(self):
        cost = MJPEGCostModel()
        assert cost.idct_wcet() == cost.idct_base + 64 * (
            cost.idct_per_nonzero
        )

    def test_wcet_hierarchy_matches_workload(self, encoded):
        """IDCT and VLD dominate -- as on the real platform."""
        g = mjpeg_graph(encoded)
        q = repetition_vector(g)
        work = {
            a.name: q[a.name] * a.execution_time for a in g
        }
        assert work["IDCT"] == max(work.values())
        assert work["VLD"] > work["CC"]


class TestFunctionalActors:
    def test_vld_emits_ten_blocks_with_padding(self, encoded):
        """4:2:0 -> 6 real + 4 padding block tokens per MCU."""
        actors = MJPEGActorSet(encoded=encoded)
        state = {}
        actors.vld_init(state)
        from repro.appmodel import FiringContext

        output = actors.vld(FiringContext(inputs={}, state=state))
        blocks = output.outputs["vld2iqzz"]
        assert len(blocks) == MAX_BLOCKS_PER_MCU
        assert sum(1 for b in blocks if b.valid) == 6
        assert [b.component for b in blocks[:6]] == [
            "y", "y", "y", "y", "cb", "cr"
        ]

    def test_vld_wraps_around_the_stream(self, encoded):
        from repro.appmodel import FiringContext

        actors = MJPEGActorSet(encoded=encoded)
        state = {}
        actors.vld_init(state)
        total = encoded.total_mcus
        for _ in range(total + 1):  # one beyond the end
            actors.vld(FiringContext(inputs={}, state=state))
        assert state["frame_index"] == 0
        assert state["mcu_in_frame"] == 1

    def test_full_pipeline_execution_counts(self, encoded):
        app = build_mjpeg_application(encoded)
        app.validate()
        measured = measure_execution_times(app, iterations=4)
        assert measured.record("VLD").firings == 4
        assert measured.record("IDCT").firings == 40

    def test_wcets_dominate_measurements(self, encoded, encoded_synthetic):
        """The soundness requirement behind the paper's guarantee."""
        for stream in (encoded, encoded_synthetic):
            app = build_mjpeg_application(stream)
            measured = measure_execution_times(
                app, iterations=min(8, stream.total_mcus)
            )
            for actor in app.graph:
                wcet = app.implementations_of(actor.name)[0].wcet
                assert measured.record(actor.name).max_cycles <= wcet

    def test_synthetic_runs_hotter_than_structured(
        self, encoded, encoded_synthetic
    ):
        """Random data consumes more VLD/IDCT cycles per MCU."""
        structured = measure_execution_times(
            build_mjpeg_application(encoded), iterations=8
        )
        noisy = measure_execution_times(
            build_mjpeg_application(encoded_synthetic), iterations=8
        )
        assert (
            noisy.record("VLD").average_cycles
            > 2 * structured.record("VLD").average_cycles
        )
        assert (
            noisy.record("IDCT").average_cycles
            > structured.record("IDCT").average_cycles
        )

    def test_processing_bound_in_paper_range(self, encoded):
        """The WCET calibration lands in Fig. 6's axis range
        (~0.1..1.2 MCU per Mcycle)."""
        bound = processing_throughput_bound(mjpeg_graph(encoded))
        per_mega = float(bound * 1_000_000)
        assert 0.1 < per_mega < 1.0


class TestApplicationModel:
    def test_validates(self, encoded):
        build_mjpeg_application(encoded).validate()

    def test_all_actors_functional(self, encoded):
        assert build_mjpeg_application(encoded).is_functional()

    def test_argument_orders_reference_real_edges(self, encoded):
        app = build_mjpeg_application(encoded)
        explicit = {e.name for e in app.graph.explicit_edges()}
        for impl in app.implementations:
            for edge_name in impl.argument_order:
                assert edge_name in explicit

    def test_memory_fits_microblaze_tile(self, encoded):
        app = build_mjpeg_application(encoded)
        for impl in app.implementations:
            assert impl.metrics.memory.instruction_bytes <= 128 * 1024
            assert impl.metrics.memory.data_bytes <= 128 * 1024
