"""Deterministic TOML rendering of FlowSpec documents.

``repro scenarios generate`` commits its corpus as TOML, and the
acceptance bar is *byte identity*: generating with the same seed twice
-- on any machine, any process -- must produce the same files.  So the
renderer is deliberately minimal and canonical: keys in a fixed order
(document order of :meth:`FlowSpec.to_document`, which itself is
deterministic), strings quoted via JSON (a JSON string is a valid TOML
basic string), no reliance on any external TOML writer.

The output parses back through :func:`repro.flow.spec.load_flow_spec`
to an equal spec -- asserted by the round-trip tests.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.flow.spec import FlowSpec


def _scalar(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, str):
        return json.dumps(value)
    raise TypeError(
        f"cannot render {value!r} ({type(value).__name__}) as TOML"
    )


def _table_lines(header: str, table: Dict[str, Any]) -> List[str]:
    """One ``[header]`` block; nested dicts become ``[header.sub]``
    blocks after the scalars (valid TOML ordering)."""
    lines = [f"[{header}]"]
    nested = []
    for key, value in table.items():
        if value is None:
            continue
        if isinstance(value, dict):
            nested.append((f"{header}.{key}", value))
        else:
            lines.append(f"{key} = {_scalar(value)}")
    for sub_header, sub_table in nested:
        lines.append("")
        lines.extend(_table_lines(sub_header, sub_table))
    return lines


def render_flow_spec_toml(spec: FlowSpec) -> str:
    """Canonical TOML document of ``spec``.

    ``load_flow_spec`` of the written text reproduces an equal
    :class:`FlowSpec`; equal specs render byte-identically.
    """
    document = spec.to_document()
    lines = [f"name = {_scalar(document['name'])}"]
    if "app" in document:
        lines.append("")
        lines.extend(_table_lines("app", document["app"]))
    for app_table in document.get("apps", ()):
        lines.append("")
        lines.extend(_array_table_lines("apps", app_table))
    lines.append("")
    lines.extend(_table_lines("architecture", document["architecture"]))
    lines.append("")
    lines.extend(_table_lines("mapping", document["mapping"]))
    return "\n".join(lines) + "\n"


def _array_table_lines(header: str, table: Dict[str, Any]) -> List[str]:
    lines = [f"[[{header}]]"]
    nested = []
    for key, value in table.items():
        if value is None:
            continue
        if isinstance(value, dict):
            nested.append((f"{header}.{key}", value))
        else:
            lines.append(f"{key} = {_scalar(value)}")
    for sub_header, sub_table in nested:
        lines.append("")
        lines.extend(_table_lines(sub_header, sub_table))
    return lines
