"""Benchmark: thread vs process backend on a CPU-bound scenario batch.

Pure-Python flow sessions contend on the GIL, so ``--jobs 4`` threads
interleave one core while ``--backend process`` owns four.  This bench
maps the same seeded scenario batch on both backends at ``jobs=4``,
gates the process speedup (where the host has the cores to show it),
and hard-fails unless the two backends wrote **byte-identical**
``artifacts/`` trees -- the guarantee that makes the backend a pure
deployment choice.

Emits ``benchmarks/results/BENCH_service_scaling.json`` (wired into
CI's bench-smoke job, where ``BENCH_SERVICE_MIN_SPEEDUP=1.5`` pins the
gate) and a human-readable table next to it.
"""

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import RESULTS_DIR, write_results
from repro.flow import run_batch
from repro.scenarios import generate_scenarios, scenario_flow_spec

#: Scenarios in the batch; heavier graphs make the per-session compute
#: dominate the process-dispatch overhead.
SCENARIOS = 8
ACTORS = 18
JOBS = 4


def _min_speedup() -> float:
    """The process-over-thread throughput gate.

    ``BENCH_SERVICE_MIN_SPEEDUP`` pins it (CI sets 1.5 on its 4-vCPU
    runners).  Without the pin the gate adapts to the host: a
    single-core box *cannot* show a speedup (process dispatch only
    adds overhead there), so the bench reports instead of failing.
    """
    pinned = os.environ.get("BENCH_SERVICE_MIN_SPEEDUP")
    if pinned:
        return float(pinned)
    cores = os.cpu_count() or 1
    if cores >= 4:
        return 1.5
    if cores >= 2:
        return 1.1
    return 0.0


def _artifact_tree(workspace: Path):
    root = workspace / "artifacts"
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*.json"))
    }


def test_process_backend_scales_cpu_bound_batches(benchmark, tmp_path):
    specs = [
        scenario_flow_spec(s)
        for s in generate_scenarios(
            "mixed", SCENARIOS, seed=29, actors=ACTORS
        )
    ]
    records = {}

    def run_all():
        start = time.perf_counter()
        thread_report = run_batch(
            specs, tmp_path / "thread-ws", jobs=JOBS
        )
        thread_s = time.perf_counter() - start

        start = time.perf_counter()
        process_report = run_batch(
            specs, tmp_path / "process-ws", jobs=JOBS,
            backend="process",
        )
        process_s = time.perf_counter() - start

        assert thread_report.ok and process_report.ok
        records.update(
            {
                "scenarios": SCENARIOS,
                "actors": ACTORS,
                "jobs": JOBS,
                "cores": os.cpu_count() or 1,
                "thread_s": thread_s,
                "process_s": process_s,
                "speedup": thread_s / process_s,
                "thread_scenarios_per_s": SCENARIOS / thread_s,
                "process_scenarios_per_s": SCENARIOS / process_s,
            }
        )
        return records

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    # the hard invariant: identical bytes, whatever the backend
    thread_tree = _artifact_tree(tmp_path / "thread-ws")
    assert thread_tree, "thread batch wrote no artifacts"
    assert _artifact_tree(tmp_path / "process-ws") == thread_tree, (
        "process backend artifacts differ from thread backend"
    )
    records["byte_identical_artifacts"] = True
    records["artifact_files"] = len(thread_tree)

    table = "\n".join(
        [
            f"{'metric':<28} {'value':>14}",
            "-" * 43,
            f"{'scenarios x actors':<28} "
            f"{SCENARIOS:>11} x {ACTORS}",
            f"{'jobs / cores':<28} "
            f"{JOBS:>11} / {records['cores']}",
            f"{'thread batch [s]':<28} {records['thread_s']:>14.3f}",
            f"{'process batch [s]':<28} {records['process_s']:>14.3f}",
            f"{'process speedup':<28} {records['speedup']:>13.2f}x",
            f"{'artifact files (identical)':<28} "
            f"{records['artifact_files']:>14}",
        ]
    )
    write_results("service_scaling.txt", table)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_service_scaling.json").write_text(
        json.dumps(
            {
                "bench": "execution backends: thread vs process "
                         f"run_batch of {SCENARIOS} CPU-bound "
                         f"scenarios at jobs={JOBS}",
                "unit": "seconds",
                "results": records,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )

    floor = _min_speedup()
    if floor > 0:
        assert records["speedup"] >= floor, (
            f"process speedup {records['speedup']:.2f}x below the "
            f"{floor:.2f}x gate on {records['cores']} core(s)"
        )
