"""Figure 4: the parameterized communication model.

The paper's claim for Fig. 4 is generality: "The model ... can be used for
modeling communication over many different forms of interconnect by
changing w, alpha_n, and the execution times of s1, c2, and d1 to
appropriate values."  This bench exercises that parameterization on a
communication-bound producer/consumer pipeline (tiny actor work, CA-based
serialization so the channel itself is the bottleneck) and records the
resulting throughput surface:

* token size sweep -- fragmentation into N 32-bit words makes bigger
  tokens proportionally slower;
* latency sweep, unpipelined (w = 1) vs. pipelined (w = latency) -- the
  in-flight budget ``w`` hides channel latency exactly as the paper's
  "maximum number of words in simultaneous transmission" is meant to;
* interconnect points -- FSL full rate vs. NoC connections whose
  bandwidth is the number of assigned wires.
"""

import pytest

from benchmarks.conftest import write_results
from repro.comm import CASerialization, ChannelParameters, expand_channel
from repro.sdf import SDFGraph, analyze_throughput

#: Small actor work so the channel dominates the pipeline.
ACTOR_WORK = 100


def pipeline_throughput(token_size, params):
    g = SDFGraph("bench_pipe")
    g.add_actor("P", execution_time=ACTOR_WORK)
    g.add_actor("Q", execution_time=ACTOR_WORK)
    g.add_edge("pq", "P", "Q", token_size=token_size)
    expand_channel(
        g, "pq", params, CASerialization(), alpha_src=2, alpha_dst=2
    )
    return float(analyze_throughput(g).throughput * 1e6)


def fsl_like():
    return ChannelParameters(
        words_in_flight=2,
        network_buffer_words=16,
        injection_cycles_per_word=1,
        channel_latency=2,
    )


def latency_point(latency, pipelined):
    return ChannelParameters(
        words_in_flight=max(latency, 1) if pipelined else 1,
        network_buffer_words=4,
        injection_cycles_per_word=1,
        channel_latency=latency,
    )


def noc_like(hops=2, wires=8):
    cycles_per_word = -(-32 // wires)
    latency = 3 * hops
    return ChannelParameters(
        words_in_flight=max(1, latency // cycles_per_word),
        network_buffer_words=2 * hops,
        injection_cycles_per_word=cycles_per_word,
        channel_latency=latency,
    )


def sweep():
    token_rows = [
        (size, pipeline_throughput(size, fsl_like()))
        for size in (4, 16, 64, 256, 1024)
    ]
    latency_rows = [
        (
            latency,
            pipeline_throughput(256, latency_point(latency, False)),
            pipeline_throughput(256, latency_point(latency, True)),
        )
        for latency in (1, 2, 4, 8, 16)
    ]
    interconnect_rows = [
        ("fsl 1w/cycle", pipeline_throughput(256, fsl_like())),
        ("noc 1 hop, 8 wires", pipeline_throughput(256, noc_like(1, 8))),
        ("noc 2 hops, 8 wires", pipeline_throughput(256, noc_like(2, 8))),
        ("noc 2 hops, 32 wires", pipeline_throughput(256, noc_like(2, 32))),
    ]
    return token_rows, latency_rows, interconnect_rows


def test_figure4_parameterization(benchmark):
    token_rows, latency_rows, interconnect_rows = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )

    lines = ["token size sweep (FSL channel):",
             f"{'bytes':>6} {'iter/Mcycle':>12}"]
    for size, throughput in token_rows:
        lines.append(f"{size:>6} {throughput:>12.2f}")
    lines.append("")
    lines.append("latency sweep (256-byte tokens):")
    lines.append(f"{'cycles':>6} {'w=1':>10} {'w=latency':>10}")
    for latency, unpiped, piped in latency_rows:
        lines.append(f"{latency:>6} {unpiped:>10.2f} {piped:>10.2f}")
    lines.append("")
    lines.append("interconnect points (256-byte tokens):")
    for name, throughput in interconnect_rows:
        lines.append(f"  {name:<22} {throughput:>10.2f}")
    table = "\n".join(lines)
    path = write_results("fig4_comm_model.txt", table)
    print("\n" + table + f"\n-> {path}")

    # Token fragmentation: bigger tokens are strictly slower once the
    # channel dominates.
    token_values = [t for _s, t in token_rows]
    assert token_values[0] > token_values[-1]
    assert all(
        later <= earlier + 1e-9
        for earlier, later in zip(token_values, token_values[1:])
    )

    # Unpipelined latency hurts; the in-flight budget w hides it.
    for latency, unpiped, piped in latency_rows:
        assert piped >= unpiped
    unpiped_series = [u for _l, u, _p in latency_rows]
    assert unpiped_series[0] > unpiped_series[-1]
    piped_series = [p for _l, _u, p in latency_rows]
    assert piped_series[-1] >= 0.8 * piped_series[0]

    # SDM bandwidth: more wires -> faster; FSL dominates the NoC points.
    by_name = dict(interconnect_rows)
    assert by_name["fsl 1w/cycle"] >= by_name["noc 1 hop, 8 wires"]
    assert by_name["noc 2 hops, 32 wires"] > by_name["noc 2 hops, 8 wires"]
