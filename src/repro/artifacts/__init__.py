"""Versioned, canonical artifact schema for everything the flow produces.

The paper's flow exists to remove manual hand-offs between tools
(Section 2's common input format); this package extends that idea to
every *result* the reproduction computes.  Any public result type --
application and architecture models, mappings, schedules, design points,
Pareto fronts, effort reports, whole flow results, use-case unions --
converts to a versioned canonical JSON payload with
:func:`to_payload` and back with :func:`from_payload`, so results can be
persisted, diffed, resumed, distributed and served instead of dying with
the Python process.

See ``docs/artifacts.md`` for the schema reference, the
versioning/compatibility policy, and the FlowSession resume semantics
built on top (:mod:`repro.flow.session`).
"""

from repro.artifacts.schema import (
    ArtifactError,
    SCHEMA_VERSION,
    artifact_digest,
    canonical_json,
    check_envelope,
    envelope,
    from_payload,
    kind_of,
    registered_kinds,
    to_payload,
)
from repro.artifacts import codecs as _codecs  # registers all codecs
from repro.artifacts.store import ArtifactStore, PersistentEvaluationCache

del _codecs

__all__ = [
    "ArtifactError",
    "ArtifactStore",
    "PersistentEvaluationCache",
    "SCHEMA_VERSION",
    "artifact_digest",
    "canonical_json",
    "check_envelope",
    "envelope",
    "from_payload",
    "kind_of",
    "registered_kinds",
    "to_payload",
]
