"""Mapping data structures.

A :class:`Mapping` is the interchange object between the SDF3 side and the
MAMPS side of the flow: which tile runs which actor (with which
implementation), how each inter-tile channel is routed and parameterized,
which buffer capacities every channel gets, and the static-order schedule of
every tile.  "Buffer distributions, task mapping and static-order schedules
are determined and gathered in the mapping output of SDF3" (Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.appmodel.implementation import ActorImplementation
from repro.comm.params import ChannelParameters
from repro.exceptions import MappingError
from repro.sdf.throughput import ThroughputResult


@dataclass
class ChannelMapping:
    """How one explicit edge is realized.

    ``intra_tile`` channels stay in the tile's local memory with a plain
    bounded buffer of ``capacity`` tokens.  Inter-tile channels carry
    interconnect ``parameters`` and split their storage into a source-side
    and a destination-side buffer (``alpha_src`` / ``alpha_dst``).
    """

    edge: str
    src_tile: str
    dst_tile: str
    capacity: int = 0
    alpha_src: int = 0
    alpha_dst: int = 0
    parameters: Optional[ChannelParameters] = None

    @property
    def intra_tile(self) -> bool:
        return self.src_tile == self.dst_tile

    def total_buffer_tokens(self) -> int:
        if self.intra_tile:
            return self.capacity
        return self.alpha_src + self.alpha_dst


@dataclass
class Mapping:
    """A complete mapping of an application onto an architecture."""

    application: str
    architecture: str
    actor_binding: Dict[str, str] = field(default_factory=dict)
    implementations: Dict[str, ActorImplementation] = field(
        default_factory=dict
    )
    channels: Dict[str, ChannelMapping] = field(default_factory=dict)
    static_orders: Dict[str, List[str]] = field(default_factory=dict)

    def tile_of(self, actor: str) -> str:
        try:
            return self.actor_binding[actor]
        except KeyError:
            raise MappingError(f"actor {actor!r} is not bound") from None

    def actors_on(self, tile: str) -> Tuple[str, ...]:
        return tuple(
            a for a, t in self.actor_binding.items() if t == tile
        )

    def used_tiles(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for tile in self.actor_binding.values():
            if tile not in seen:
                seen.append(tile)
        return tuple(seen)

    def inter_tile_channels(self) -> Tuple[ChannelMapping, ...]:
        return tuple(
            c for c in self.channels.values() if not c.intra_tile
        )

    def intra_tile_channels(self) -> Tuple[ChannelMapping, ...]:
        return tuple(c for c in self.channels.values() if c.intra_tile)

    def to_payload(self) -> Dict[str, object]:
        """Canonical versioned artifact payload (:mod:`repro.artifacts`)."""
        from repro.artifacts.schema import to_payload

        return to_payload(self)

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "Mapping":
        from repro.artifacts.schema import check_envelope, from_payload

        check_envelope(payload, "mapping")
        return from_payload(payload)

    def describe(self) -> str:
        lines = [
            f"mapping of {self.application!r} onto {self.architecture!r}:"
        ]
        for tile in self.used_tiles():
            actors = ", ".join(self.actors_on(tile))
            order = self.static_orders.get(tile)
            order_text = f" | order: {' '.join(order)}" if order else ""
            lines.append(f"  {tile}: {actors}{order_text}")
        inter = self.inter_tile_channels()
        lines.append(f"  {len(inter)} inter-tile channel(s):")
        for channel in inter:
            lines.append(
                f"    {channel.edge}: {channel.src_tile} -> "
                f"{channel.dst_tile} (alpha {channel.alpha_src}/"
                f"{channel.alpha_dst})"
            )
        return "\n".join(lines)


@dataclass
class MappingResult:
    """Outcome of the mapping flow.

    ``guaranteed_throughput`` is the SDF3-side worst-case bound computed on
    the bound graph with WCETs -- the value the paper's Fig. 6 plots as the
    "worst-case analysis" line.  ``constraint_met`` reports it against the
    application's requirement.
    """

    mapping: Mapping
    throughput: ThroughputResult
    constraint: Optional[Fraction]
    buffer_growth_rounds: int = 0

    @property
    def guaranteed_throughput(self) -> Fraction:
        return self.throughput.throughput

    @property
    def constraint_met(self) -> bool:
        if self.constraint is None:
            return True
        return self.guaranteed_throughput >= self.constraint

    def to_payload(self) -> Dict[str, object]:
        """Canonical versioned artifact payload (:mod:`repro.artifacts`).

        This is the shape ``analyze --json`` emits, ``FlowSession``
        persists per mapping stage, and downstream tooling consumes.
        """
        from repro.artifacts.schema import to_payload

        return to_payload(self)

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "MappingResult":
        from repro.artifacts.schema import check_envelope, from_payload

        check_envelope(payload, "mapping-result")
        return from_payload(payload)
