"""Per-tile memory sizing and layout.

Section 5.2: "Memory sizes are calculated for each tile based on the mapped
buffers, actors and the size of the scheduling and communication layer."
This module performs that calculation and lays the regions out in each
tile's instruction and data memories, verifying the template's capacity
limits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.appmodel.model import ApplicationModel
from repro.arch.platform import ArchitectureModel
from repro.exceptions import GenerationError
from repro.mapping.binding import (
    RUNTIME_DATA_BYTES,
    RUNTIME_INSTRUCTION_BYTES,
)
from repro.mapping.spec import Mapping

#: Bytes per static-order schedule table entry (actor id + wrapper pointer).
SCHEDULE_ENTRY_BYTES = 8


@dataclass(frozen=True)
class MemoryRegion:
    """One allocated region: [base, base+size) with a describing label."""

    label: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size


@dataclass
class TileMemoryMap:
    """Instruction and data layout of one tile."""

    tile: str
    instruction_regions: List[MemoryRegion] = field(default_factory=list)
    data_regions: List[MemoryRegion] = field(default_factory=list)

    @property
    def instruction_bytes(self) -> int:
        return sum(r.size for r in self.instruction_regions)

    @property
    def data_bytes(self) -> int:
        return sum(r.size for r in self.data_regions)

    def region(self, label: str) -> MemoryRegion:
        for region in self.instruction_regions + self.data_regions:
            if region.label == label:
                return region
        raise GenerationError(
            f"no region {label!r} in memory map of tile {self.tile!r}"
        )


def _append(regions: List[MemoryRegion], label: str, size: int) -> None:
    base = regions[-1].end if regions else 0
    regions.append(MemoryRegion(label=label, base=base, size=size))


def compute_memory_maps(
    app: ApplicationModel,
    arch: ArchitectureModel,
    mapping: Mapping,
) -> Dict[str, TileMemoryMap]:
    """Compute and validate the memory layout of every used tile.

    Instruction side: runtime (scheduler + communication library) followed
    by each mapped actor's code.  Data side: runtime data, the schedule
    table, each actor's data segment, then one region per channel buffer
    held on this tile (source side of outgoing inter-tile channels,
    destination side of incoming ones, whole buffers of intra-tile ones).

    Raises :class:`GenerationError` when a tile's memories overflow --
    binding checks actor memory, but buffers are only known after the
    mapping flow finished, so this is the authoritative check.
    """
    maps: Dict[str, TileMemoryMap] = {}
    for tile_name in mapping.used_tiles():
        tile = arch.tile(tile_name)
        memory_map = TileMemoryMap(tile=tile_name)

        _append(memory_map.instruction_regions, "runtime_code",
                RUNTIME_INSTRUCTION_BYTES)
        _append(memory_map.data_regions, "runtime_data", RUNTIME_DATA_BYTES)

        order = mapping.static_orders.get(tile_name, ())
        _append(
            memory_map.data_regions,
            "schedule_table",
            max(len(order), 1) * SCHEDULE_ENTRY_BYTES,
        )

        for actor in mapping.actors_on(tile_name):
            impl = mapping.implementations[actor]
            _append(
                memory_map.instruction_regions,
                f"code_{actor}",
                impl.metrics.memory.instruction_bytes,
            )
            _append(
                memory_map.data_regions,
                f"data_{actor}",
                impl.metrics.memory.data_bytes,
            )

        for channel in mapping.channels.values():
            edge = app.graph.edge(channel.edge)
            if channel.intra_tile:
                if channel.src_tile == tile_name:
                    _append(
                        memory_map.data_regions,
                        f"buffer_{channel.edge}",
                        channel.capacity * edge.token_size,
                    )
            else:
                if channel.src_tile == tile_name:
                    _append(
                        memory_map.data_regions,
                        f"buffer_{channel.edge}_src",
                        channel.alpha_src * edge.token_size,
                    )
                if channel.dst_tile == tile_name:
                    _append(
                        memory_map.data_regions,
                        f"buffer_{channel.edge}_dst",
                        channel.alpha_dst * edge.token_size,
                    )

        if memory_map.instruction_bytes > (
            tile.instruction_memory.capacity_bytes
        ):
            raise GenerationError(
                f"tile {tile_name!r}: instruction memory needs "
                f"{memory_map.instruction_bytes} bytes, capacity is "
                f"{tile.instruction_memory.capacity_bytes}"
            )
        if memory_map.data_bytes > tile.data_memory.capacity_bytes:
            raise GenerationError(
                f"tile {tile_name!r}: data memory needs "
                f"{memory_map.data_bytes} bytes, capacity is "
                f"{tile.data_memory.capacity_bytes}"
            )
        maps[tile_name] = memory_map
    return maps
