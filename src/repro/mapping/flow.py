"""The end-to-end mapping flow (the SDF3 box of Fig. 1).

``map_application`` chains binding, routing, buffer allocation, static-order
scheduling and throughput analysis, growing buffer capacities until the
application's throughput constraint is met (or the retry budget runs out).
The result carries the mapping -- the interchange object MAMPS consumes --
plus the throughput *guarantee* computed on the bound graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional, Union

from repro.appmodel.model import ApplicationModel
from repro.arch.platform import ArchitectureModel
from repro.comm.serialization import SerializationModel
from repro.exceptions import DeadlockError, ThroughputConstraintError
from repro.mapping.binding import bind_actors
from repro.mapping.bound_graph import build_bound_graph
from repro.mapping.buffer_alloc import allocate_buffers, grow_buffers
from repro.mapping.costs import CostWeights
from repro.mapping.routing import route_channels
from repro.mapping.scheduling import build_static_orders
from repro.mapping.spec import Mapping, MappingResult
from repro.sdf.throughput import analyze_throughput


@dataclass(frozen=True)
class MappingEffort:
    """How hard the mapper tries before giving up on a design point.

    The exploration engine sweeps *many* points, most of which it only
    needs a quick feasibility verdict on; the final chosen point deserves
    the full retry budget.  An effort level bundles the two knobs that
    trade mapping quality for wall-clock time: the number of buffer-growth
    rounds and the state-space budget of the throughput analysis.
    """

    name: str
    max_buffer_rounds: int
    max_iterations: int

    @classmethod
    def of(cls, level: Union[str, "MappingEffort"]) -> "MappingEffort":
        """Resolve an effort level by name (``low``/``normal``/``high``)."""
        if isinstance(level, MappingEffort):
            return level
        try:
            return EFFORT_LEVELS[level]
        except KeyError:
            raise ValueError(
                f"unknown mapping effort {level!r}; pick from "
                f"{sorted(EFFORT_LEVELS)}"
            ) from None


#: The named effort presets, cheapest first.
EFFORT_LEVELS: Dict[str, MappingEffort] = {
    "low": MappingEffort("low", max_buffer_rounds=4, max_iterations=4_000),
    "normal": MappingEffort(
        "normal", max_buffer_rounds=12, max_iterations=10_000
    ),
    "high": MappingEffort(
        "high", max_buffer_rounds=24, max_iterations=40_000
    ),
}


def map_application(
    app: ApplicationModel,
    arch: ArchitectureModel,
    constraint: Optional[Fraction] = None,
    weights: Optional[CostWeights] = None,
    fixed: Optional[Dict[str, str]] = None,
    serialization_overrides: Optional[Dict[str, SerializationModel]] = None,
    max_buffer_rounds: Optional[int] = None,
    strict: bool = False,
    max_iterations: Optional[int] = None,
    effort: Union[str, MappingEffort] = "normal",
) -> MappingResult:
    """Map ``app`` onto ``arch`` and compute the throughput guarantee.

    Parameters
    ----------
    constraint:
        Required iterations per cycle; defaults to the application's own
        ``throughput_constraint``.
    fixed:
        Pin actors to tiles (e.g. the file-reading actor to the master).
    serialization_overrides:
        Per-tile serialization model substitutions (Section 6.3).
    strict:
        Raise :class:`ThroughputConstraintError` when the constraint cannot
        be met; otherwise return the best mapping with
        ``constraint_met == False``.
    effort:
        A :class:`MappingEffort` (or preset name) supplying the retry
        budgets; explicit ``max_buffer_rounds`` / ``max_iterations``
        arguments override the preset's values.

    Returns a :class:`MappingResult`.
    """
    budget = MappingEffort.of(effort)
    if max_buffer_rounds is None:
        max_buffer_rounds = budget.max_buffer_rounds
    if max_iterations is None:
        max_iterations = budget.max_iterations
    if constraint is None:
        constraint = app.throughput_constraint

    binding, implementations = bind_actors(
        app, arch, weights=weights, fixed=fixed
    )
    channels = route_channels(app, arch, binding)
    allocate_buffers(app, channels)

    best = None
    rounds_used = 0
    for round_index in range(max_buffer_rounds + 1):
        bound = build_bound_graph(
            app, arch, binding, implementations, channels,
            serialization_overrides=serialization_overrides,
        )
        try:
            orders = build_static_orders(bound)
            result = analyze_throughput(
                bound.graph,
                processor_of=bound.processor_of,
                static_order=orders,
                reference_actor=bound.app_actors[0],
                max_iterations=max_iterations,
            )
        except DeadlockError:
            grow_buffers(channels)
            rounds_used = round_index + 1
            continue

        if best is None or result.throughput > best[0].throughput:
            best = (result, orders,
                    {name: _copy_channel(c) for name, c in channels.items()})
        if constraint is None or result.throughput >= constraint:
            break
        grow_buffers(channels)
        rounds_used = round_index + 1

    if best is None:
        raise ThroughputConstraintError(
            f"no deadlock-free buffer configuration found for {app.name!r} "
            f"on {arch.name!r} within {max_buffer_rounds} rounds"
        )

    result, orders, best_channels = best
    mapping = Mapping(
        application=app.name,
        architecture=arch.name,
        actor_binding=dict(binding),
        implementations=dict(implementations),
        channels=best_channels,
        static_orders=orders,
    )
    outcome = MappingResult(
        mapping=mapping,
        throughput=result,
        constraint=constraint,
        buffer_growth_rounds=rounds_used,
    )
    if strict and not outcome.constraint_met:
        raise ThroughputConstraintError(
            f"constraint {constraint} unreachable for {app.name!r} on "
            f"{arch.name!r}: best guarantee is {result.throughput} after "
            f"{rounds_used} buffer-growth round(s)"
        )
    return outcome


def _copy_channel(channel):
    from repro.mapping.spec import ChannelMapping

    return ChannelMapping(
        edge=channel.edge,
        src_tile=channel.src_tile,
        dst_tile=channel.dst_tile,
        capacity=channel.capacity,
        alpha_src=channel.alpha_src,
        alpha_dst=channel.alpha_dst,
        parameters=channel.parameters,
    )
