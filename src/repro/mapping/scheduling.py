"""Static-order schedule construction.

MAMPS tiles run a static-order scheduler -- "a lookup table" (Section 6.3).
The orders are derived the SDF3 way: execute the bound graph self-timed
under the resource binding (greedy, no orders yet) for one iteration and
record, per tile, the order in which application actors start.  List
scheduling via simulation inherits all data dependencies, so the recorded
order is guaranteed executable; fixing it afterwards can only delay firings
relative to the greedy run, and the subsequent throughput analysis of the
ordered graph provides the actual guarantee.
"""

from __future__ import annotations

from typing import Dict, List

from repro.exceptions import DeadlockError, MappingError
from repro.mapping.bound_graph import BoundGraph
from repro.sdf.engine import build_simulator
from repro.sdf.repetition import repetition_vector
from repro.sdf.simulation import SelfTimedSimulator


def build_static_orders(bound: BoundGraph) -> Dict[str, List[str]]:
    """Derive one-iteration static orders for every tile of ``bound``.

    Returns tile name -> cyclic actor order (length = sum of repetition
    counts of the tile's application actors).  Raises
    :class:`DeadlockError` when the greedy execution cannot complete an
    iteration (usually: buffers too small), so the flow can grow buffers
    and retry.
    """
    q = repetition_vector(bound.graph)
    sim = build_simulator(
        bound.graph,
        processor_of=bound.processor_of,
        record_trace=True,
    )

    targets = {a: q[a] for a in bound.app_actors}

    def one_iteration_started(s: SelfTimedSimulator) -> bool:
        # started_of is O(1); this predicate runs after every step.
        return all(s.started_of(a) >= n for a, n in targets.items())

    total_needed = sum(q.values()) * 3  # generous safety bound
    sim.run(
        stop_when=one_iteration_started,
        max_firings=max(total_needed, 100_000),
    )
    if not one_iteration_started(sim):
        raise DeadlockError(
            f"greedy execution of {bound.graph.name!r} could not complete "
            "one iteration while deriving static orders; buffer capacities "
            "are likely too small"
        )

    orders: Dict[str, List[str]] = {tile: [] for tile in bound.tiles()}
    counted: Dict[str, int] = {a: 0 for a in bound.app_actors}
    for firing in sorted(sim.trace.firings, key=lambda f: (f.start, f.end)):
        actor = firing.actor
        if actor not in targets:
            continue
        if counted[actor] >= targets[actor]:
            continue
        counted[actor] += 1
        orders[bound.processor_of[actor]].append(actor)

    # Started-but-unfinished firings do not appear in the trace; append
    # them in deterministic actor order (they are the iteration's tail).
    for actor, needed in targets.items():
        while counted[actor] < needed:
            counted[actor] += 1
            orders[bound.processor_of[actor]].append(actor)

    for tile, order in orders.items():
        expected = sum(q[a] for a in bound.app_actors_on(tile))
        if len(order) != expected:
            raise MappingError(
                f"static order of {tile!r} has {len(order)} entries, "
                f"expected {expected} -- scheduling bug"
            )
    return orders
