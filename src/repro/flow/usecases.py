"""Multiple applications on one platform (use-cases).

MAMPS generates "MPSoC projects ... based on a SDF description of one or
more applications and a task mapping" (Section 1; the MAMPS paper [8] is
about multiple use-cases of multiple applications).  This module provides
the time-multiplexed use-case model: several applications share one
generated platform, one use-case active at a time (the FPGA is
reconfigured between use-cases by loading a different schedule set, not a
different bitstream), so

* each use-case keeps its own mapping, schedules and throughput
  *guarantee*;
* the platform hardware is the union of what all use-cases need: every
  tile any use-case binds to, and one physical link per distinct
  (source tile, destination tile) pair used by any use-case (links are
  reused across use-cases because only one runs at a time);
* the union must respect physical limits (FSL ports per tile), which is
  checked here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.appmodel.model import ApplicationModel
from repro.arch.interconnect import FSLInterconnect
from repro.arch.platform import ArchitectureModel
from repro.exceptions import ArchitectureError, MappingError
from repro.mamps.generator import generate_platform
from repro.mamps.project import PlatformProject
from repro.mapping.flow import map_application
from repro.mapping.spec import MappingResult


@dataclass
class UseCaseMapping:
    """All per-use-case mapping results plus the platform union."""

    results: Dict[str, MappingResult] = field(default_factory=dict)
    link_pairs: Tuple[Tuple[str, str], ...] = ()
    tiles_used: Tuple[str, ...] = ()

    def guarantee_of(self, use_case: str) -> Fraction:
        return self.results[use_case].guaranteed_throughput

    def to_payload(self) -> Dict[str, object]:
        """Canonical versioned artifact payload (:mod:`repro.artifacts`)."""
        from repro.artifacts.schema import to_payload

        return to_payload(self)

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "UseCaseMapping":
        from repro.artifacts.schema import check_envelope, from_payload

        check_envelope(payload, "use-case-mapping")
        return from_payload(payload)

    def as_table(self) -> str:
        # column widths follow the content: long use-case names must
        # widen the name column instead of breaking the header rule
        name_width = max(
            [len(name) for name in self.results] + [len("use-case")]
        )
        header = (
            f"{'use-case':<{name_width}} {'guarantee/Mcycle':>17} "
            f"{'tiles':>6} {'links':>6}"
        )
        lines = [header, "-" * len(header)]
        for name, result in sorted(self.results.items()):
            lines.append(
                f"{name:<{name_width}} "
                f"{float(result.guaranteed_throughput * 1e6):>17.4f} "
                f"{len(result.mapping.used_tiles()):>6} "
                f"{len(result.mapping.inter_tile_channels()):>6}"
            )
        lines.append(
            f"platform union: {len(self.tiles_used)} tile(s), "
            f"{len(self.link_pairs)} physical link(s)"
        )
        return "\n".join(lines)


def _distinct_link_pairs(
    results: Dict[str, MappingResult]
) -> Tuple[Tuple[str, str], ...]:
    pairs: List[Tuple[str, str]] = []
    for result in results.values():
        for channel in result.mapping.inter_tile_channels():
            pair = (channel.src_tile, channel.dst_tile)
            if pair not in pairs:
                pairs.append(pair)
    return tuple(pairs)


def _check_union_feasible(
    arch: ArchitectureModel, pairs: Sequence[Tuple[str, str]]
) -> None:
    """Physical-resource check for the union platform."""
    if isinstance(arch.interconnect, FSLInterconnect):
        limit = arch.interconnect.max_links_per_tile
        out_counts: Dict[str, int] = {}
        in_counts: Dict[str, int] = {}
        for src, dst in pairs:
            out_counts[src] = out_counts.get(src, 0) + 1
            in_counts[dst] = in_counts.get(dst, 0) + 1
        for tile, count in out_counts.items():
            if count > limit:
                raise ArchitectureError(
                    f"use-case union needs {count} outgoing FSL links on "
                    f"{tile!r}, limit is {limit}"
                )
        for tile, count in in_counts.items():
            if count > limit:
                raise ArchitectureError(
                    f"use-case union needs {count} incoming FSL links on "
                    f"{tile!r}, limit is {limit}"
                )
    # The SDM NoC is reconfigured per use-case (its defining feature,
    # [17]: "dynamically reconfigurable"), so per-use-case routability --
    # already checked during each mapping -- is sufficient.


def build_use_case_mapping(
    arch: ArchitectureModel, results: Dict[str, MappingResult]
) -> UseCaseMapping:
    """Fold per-use-case mapping results into the checked platform union.

    This is the second half of :func:`map_use_cases`, split out so
    callers that obtained the per-application results elsewhere -- e.g.
    a :class:`~repro.flow.session.FlowSession` resuming them from a
    workspace -- get the same union computation and physical-limit
    checks.
    """
    pairs = _distinct_link_pairs(results)
    _check_union_feasible(arch, pairs)

    tiles_used: List[str] = []
    for result in results.values():
        for tile in result.mapping.used_tiles():
            if tile not in tiles_used:
                tiles_used.append(tile)

    return UseCaseMapping(
        results=results,
        link_pairs=pairs,
        tiles_used=tuple(sorted(tiles_used)),
    )


def map_use_cases(
    apps: Sequence[ApplicationModel],
    arch: ArchitectureModel,
    fixed: Optional[Dict[str, Dict[str, str]]] = None,
) -> UseCaseMapping:
    """Map every application onto the shared platform.

    ``fixed`` optionally pins actors per application name.  Applications
    must have distinct names.  Each mapping run starts from a clean
    interconnect (time multiplexing); the union of all connection pairs is
    checked against the physical limits afterwards.
    """
    names = [app.name for app in apps]
    if len(set(names)) != len(names):
        raise MappingError(
            f"use-case applications need distinct names, got {names}"
        )
    if not apps:
        raise MappingError("need at least one application")

    results: Dict[str, MappingResult] = {}
    for app in apps:
        pin = (fixed or {}).get(app.name)
        results[app.name] = map_application(app, arch, fixed=pin)

    return build_use_case_mapping(arch, results)


def generate_use_case_platform(
    apps: Sequence[ApplicationModel],
    arch: ArchitectureModel,
    mapping: UseCaseMapping,
) -> PlatformProject:
    """Generate the shared-platform project bundle.

    Layout: one complete per-use-case project under ``usecases/<name>/``
    (schedules + software are per use-case) plus a union summary
    describing the shared hardware.
    """
    project = PlatformProject(name=f"usecases_on_{arch.name}")
    by_name = {app.name: app for app in apps}
    for name, result in mapping.results.items():
        sub_project = generate_platform(by_name[name], arch, result)
        for path, content in sub_project.files.items():
            project.add(f"usecases/{name}/{path}", content)

    summary = [
        f"shared platform for {len(mapping.results)} use-case(s) on "
        f"{arch.name}",
        f"tiles used: {', '.join(mapping.tiles_used)}",
        "physical links (one per distinct pair, reused across use-cases):",
    ]
    for src, dst in mapping.link_pairs:
        summary.append(f"  {src} -> {dst}")
    summary.append("")
    summary.append(mapping.as_table())
    project.add("union_platform.txt", "\n".join(summary) + "\n")
    return project
