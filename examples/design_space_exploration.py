#!/usr/bin/env python3
"""Fast design-space exploration (the Section 7 use case).

The paper's pitch: because every step is automated and the throughput
analysis is conservative, "designers [can] perform a very fast design space
exploration for real-time embedded systems".  This example sweeps the
template over tile counts and both interconnects for the MJPEG decoder,
reporting the guaranteed throughput, the FPGA area estimate, and the
throughput-per-slice trade-off -- all without ever running the platform.

Run:  python examples/design_space_exploration.py
"""

from repro.arch import architecture_from_template, platform_area
from repro.mapping import map_application
from repro.mjpeg import (
    build_mjpeg_application,
    encode_sequence,
    test_set_sequences,
)


def main() -> None:
    frames = test_set_sequences(n_frames=2)["photo"]
    encoded = encode_sequence(frames, quality=75)
    app = build_mjpeg_application(encoded)

    print("design point sweep for the MJPEG decoder")
    header = (
        f"{'tiles':>5}  {'interconnect':>12}  {'guaranteed':>12}  "
        f"{'slices':>7}  {'BRAMs':>5}  {'MCU/Mcycle/kSlice':>18}"
    )
    print(header)
    print("-" * len(header))

    best = None
    for tiles in (1, 2, 3, 4, 5):
        for interconnect in ("fsl", "noc"):
            if tiles == 1 and interconnect == "noc":
                continue  # single tile needs no interconnect
            arch = architecture_from_template(tiles, interconnect)
            result = map_application(app, arch, fixed={"VLD": "tile0"})
            area = platform_area(arch)
            throughput = float(result.guaranteed_throughput * 1e6)
            efficiency = throughput / (area.slices / 1000.0)
            print(
                f"{tiles:>5}  {interconnect:>12}  {throughput:>12.4f}  "
                f"{area.slices:>7}  {area.brams:>5}  {efficiency:>18.4f}"
            )
            if best is None or throughput > best[0]:
                best = (throughput, tiles, interconnect)

    throughput, tiles, interconnect = best
    print()
    print(
        f"best guaranteed throughput: {throughput:.4f} MCU/Mcycle with "
        f"{tiles} tile(s) on {interconnect}"
    )
    print(
        "note: every data point above came from the conservative analysis "
        "alone -- no platform was simulated or synthesized"
    )


if __name__ == "__main__":
    main()
