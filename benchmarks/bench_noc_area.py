"""Section 5.3.1: flow-control area overhead of the SDM NoC.

"Flow-control was added as part of the integration of the NoC in the MAMPS
platform.  The changes to the NoC required approximately 12% more slices on
the FPGA when compared to the original implementation."

Regenerated here from the per-component area model: router slices with and
without the flow-control logic, per router and for whole meshes.
"""

import pytest

from benchmarks.conftest import write_results
from repro.arch import SDMNoC, interconnect_area
from repro.arch.area import NOC_FLOW_CONTROL_OVERHEAD, noc_router_slices


def measure_overheads():
    rows = []
    for tiles in (2, 4, 9, 16):
        names = [f"t{i}" for i in range(tiles)]
        with_fc = interconnect_area(SDMNoC(names, flow_control=True))
        without = interconnect_area(SDMNoC(names, flow_control=False))
        overhead = (with_fc.slices - without.slices) / without.slices
        rows.append((tiles, without.slices, with_fc.slices, overhead))
    return rows


def test_noc_flow_control_area_overhead(benchmark):
    rows = benchmark(measure_overheads)

    lines = [
        f"{'tiles':>5} {'base slices':>12} {'with FC':>10} {'overhead':>9}",
        "-" * 42,
    ]
    for tiles, base, with_fc, overhead in rows:
        lines.append(
            f"{tiles:>5} {base:>12} {with_fc:>10} {100 * overhead:>8.1f}%"
        )
    lines.append("")
    lines.append(
        f"per-router: {noc_router_slices(False)} -> "
        f"{noc_router_slices(True)} slices "
        f"(paper: approximately 12% more)"
    )
    table = "\n".join(lines)
    path = write_results("section531_noc_area.txt", table)
    print("\n" + table + f"\n-> {path}")

    for _tiles, _base, _with_fc, overhead in rows:
        assert overhead == pytest.approx(
            NOC_FLOW_CONTROL_OVERHEAD, abs=0.005
        )
